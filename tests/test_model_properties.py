"""Property-based checks of the §2.5 model properties.

Random fork-join programs (random widths, region layouts, sync orders) are
executed under random schedules with chaotic runtime-initiated data
operations interleaved; the invariants of §2.5 must survive every
interleaving, and data preservation is checked transition-by-transition by
instrumenting coverage snapshots.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.model import transitions as rules
from repro.model.architecture import distributed_cluster
from repro.model.elements import DataItemDecl
from repro.model.interpreter import Interpreter, InterpreterConfig
from repro.model.properties import (
    PropertyViolation,
    capture_coverage,
    check_data_preservation,
    check_exclusive_writes,
    check_satisfied_requirements,
    check_single_execution,
    check_terminal,
)
from repro.model.state import initial_state
from repro.model.task import AccessSpec, Program, simple_task
from repro.regions.interval import IntervalRegion


def noop(ctx):
    return
    yield  # pragma: no cover


def build_program(widths, total=48):
    """Nested fork-join: entry spawns len(widths) rounds of children."""
    item = DataItemDecl(IntervalRegion.span(0, total), name="data")
    rounds = []
    for r, width in enumerate(widths):
        children = []
        per = total // max(1, width)
        for k in range(width):
            lo, hi = k * per, min(total, (k + 1) * per)
            reqs = AccessSpec(
                reads={item: IntervalRegion.span(max(0, lo - 2), min(total, hi + 2))},
                writes={item: IntervalRegion.span(lo, hi)},
            )
            children.append(simple_task(noop, reqs, name=f"r{r}c{k}"))
        rounds.append(children)

    def main(ctx):
        yield ctx.create(item)
        for children in rounds:
            for child in children:
                yield ctx.spawn(child)
            for child in children:
                yield ctx.sync(child)
        yield ctx.destroy(item)

    return Program(simple_task(main, name="main")), item


@given(
    widths=st.lists(st.integers(1, 4), min_size=1, max_size=3),
    seed=st.integers(0, 10_000),
    chaos=st.floats(0.0, 0.5),
    nodes=st.integers(1, 4),
)
@settings(max_examples=40, deadline=None)
def test_invariants_hold_under_random_schedules(widths, seed, chaos, nodes):
    program, item = build_program(widths)
    arch = distributed_cluster(nodes, 2)
    interp = Interpreter(
        InterpreterConfig(seed=seed, chaos_data_ops=chaos, max_transitions=20_000)
    )
    trace, state = interp.run_to_completion(program, arch)
    check_terminal(state)
    check_single_execution(trace, state)
    check_exclusive_writes(state)
    check_satisfied_requirements(state)  # vacuous at terminal, must not raise


@given(seed=st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_mid_execution_invariants(seed):
    """Exclusive writes + satisfied requirements hold at *every* state."""
    program, item = build_program([3, 2])
    arch = distributed_cluster(3, 1)
    interp = Interpreter(
        InterpreterConfig(seed=seed, chaos_data_ops=0.3, max_transitions=20_000)
    )
    # re-implement the run loop with per-step checks
    rng = random.Random(seed)
    state = initial_state(arch, program.entry)
    from repro.model.interpreter import Trace

    trace = Trace(initial=state.snapshot())
    coverage = capture_coverage(state)
    destroyed = set()
    for _ in range(20_000):
        if state.is_terminal():
            break
        items_before = set(state.items)
        fired = interp._fire_one(state, trace, rng)
        if not fired:
            raise AssertionError("unexpected deadlock")
        check_exclusive_writes(state)
        check_satisfied_requirements(state)
        destroyed |= items_before - state.items
        check_data_preservation(coverage, state, destroyed)
        coverage = capture_coverage(state)
    assert state.is_terminal()


def test_data_preservation_detects_loss():
    arch = distributed_cluster(2, 1)
    item = DataItemDecl(IntervalRegion.span(0, 10), name="d")
    state = initial_state(arch, simple_task(noop))
    state.items.add(item)
    memory = sorted(arch.memories, key=lambda m: m.name)[0]
    rules.apply_init(state, memory, item, IntervalRegion.span(0, 10))
    before = capture_coverage(state)
    # simulate an illegal loss
    state.set_present(memory, item, IntervalRegion.span(0, 5))
    with pytest.raises(PropertyViolation):
        check_data_preservation(before, state)


def test_replica_removal_is_not_a_preservation_violation():
    arch = distributed_cluster(2, 1)
    item = DataItemDecl(IntervalRegion.span(0, 10), name="d")
    state = initial_state(arch, simple_task(noop))
    state.items.add(item)
    m0, m1 = sorted(arch.memories, key=lambda m: m.name)
    region = IntervalRegion.span(0, 10)
    rules.apply_init(state, m0, item, region)
    rules.apply_replicate(state, m0, m1, item, region)
    before = capture_coverage(state)
    # drop the replica via migrate-onto-copy (Appendix A.2.5)
    rules.apply_migrate(state, m1, m0, item, region)
    check_data_preservation(before, state)


def test_single_execution_detects_double_start():
    program, _ = build_program([2])
    arch = distributed_cluster(1, 1)
    interp = Interpreter(InterpreterConfig(seed=0))
    trace, state = interp.run_to_completion(program, arch)
    state.started.append(state.started[0])  # forge a duplicate start
    with pytest.raises(PropertyViolation):
        check_single_execution(trace, state)
