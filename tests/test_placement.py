"""Unit tests for the offline placement planner and its runtime policy."""

from __future__ import annotations

import pytest

from repro.apps.stencil import StencilWorkload, stencil_allscale, stencil_program
from repro.items.grid import Grid
from repro.placement import (
    CostModel,
    PlacementPlan,
    PlannedPolicy,
    extract_program,
    plan_placement,
)
from repro.placement.planner import _pins
from repro.placement.extract import PlacementTask
from repro.runtime.config import RuntimeConfig
from repro.runtime.policies import PlacementContext, RandomPolicy
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.tasks import TaskSpec
from repro.sim.cluster import Cluster, ClusterSpec

NODES = 4
WORKLOAD = StencilWorkload(n_per_node=200, timesteps=2, functional=False)


def make_cluster(nodes=NODES):
    return Cluster(
        ClusterSpec(num_nodes=nodes, cores_per_node=2, flops_per_core=1e9)
    )


@pytest.fixture(scope="module")
def program():
    return stencil_program(WORKLOAD, NODES, cores_per_node=2)


@pytest.fixture(scope="module")
def plan(program):
    return plan_placement(program, make_cluster())


class TestExtract:
    def test_frontier_tasks_and_items(self, program):
        extracted = extract_program(program)
        assert extracted.label == f"stencil[{NODES}]"
        assert extracted.tasks
        assert set(extracted.items) == {"stencil.A", "stencil.B"}
        # phases arrive in submission order
        phases = [t.phase for t in extracted.tasks]
        assert phases == sorted(phases)
        # 2 init phases + one per timestep
        assert phases[-1] == 1 + WORKLOAD.timesteps

    def test_effective_regions_cover_the_sweep(self, program):
        """Frontier write regions union back to each init sweep's target."""
        extracted = extract_program(program)
        grid = extracted.items["stencil.A"]
        written = grid.empty_region()
        for task in extracted.tasks:
            if task.phase == 0:
                written = written.union(task.writes["stencil.A"])
        assert written.size() == grid.full_region.size()

    def test_ancestors_name_the_subtree_chain(self, program):
        extracted = extract_program(program)
        deep = [t for t in extracted.tasks if t.ancestors]
        assert deep
        for task in deep:
            assert task.ancestors[0].startswith(("init.stencil.", "step"))


class TestPlanner:
    def test_layouts_disjoint_and_within_item(self, plan):
        assert plan.processes == NODES
        for name, regions in plan.layouts.items():
            assert len(regions) == NODES
            total = 0
            for pid, region in enumerate(regions):
                total += region.size()
                for other in regions[pid + 1:]:
                    assert region.intersect(other).is_empty()
            assert total > 0

    def test_layout_spreads_across_processes(self, plan):
        regions = plan.layouts["stencil.A"]
        assert sum(1 for r in regions if not r.is_empty()) == NODES

    def test_pins_are_valid_processes(self, plan):
        assert plan.pins
        assert all(0 <= pid < NODES for pid in plan.pins.values())

    def test_stats_digest(self, plan):
        for key in ("tasks", "expanded", "load_max", "est_transfer_seconds"):
            assert key in plan.stats
        assert plan.stats["tasks"] > 0
        summary = plan.summary()
        assert summary["processes"] == NODES
        assert set(summary["items"]) == set(plan.layouts)

    def test_layout_for_rejects_other_process_counts(self, plan):
        assert plan.layout_for("stencil.A", NODES) is not None
        assert plan.layout_for("stencil.A", NODES + 1) is None
        assert plan.layout_for("no-such-item", NODES) is None

    def test_conflicting_pin_names_are_dropped(self):
        grid = Grid((4, 4), name="g")
        region = grid.full_region

        def task(name, flops=1.0, ancestors=()):
            return PlacementTask(
                name=name,
                path="0",
                phase=0,
                flops=flops,
                reads={},
                writes={"g": region},
                ancestors=ancestors,
            )

        tasks = [
            task("dup"),
            task("dup"),
            task("solo", ancestors=("root",)),
        ]
        pins = _pins(tasks, [0, 1, 2])
        assert "dup" not in pins
        assert pins["solo"] == 2
        assert pins["root"] == 2


class TestCostModel:
    def test_transfer_scales_with_hops(self):
        cost = CostModel(make_cluster(8))
        assert cost.transfer_seconds(1024, 3, 3) == 0.0
        assert cost.transfer_seconds(0, 0, 1) == 0.0
        near = cost.transfer_seconds(1 << 20, 0, 1)
        assert near > 0.0
        topo = make_cluster(8).topology
        if topo.switch_hops(0, 7) > topo.switch_hops(0, 1):
            assert cost.transfer_seconds(1 << 20, 0, 7) > near


class TestPlannedPolicy:
    def _runtime(self, policy):
        return AllScaleRuntime(
            make_cluster(), RuntimeConfig(functional=False), policy
        )

    def _task(self, name, **kwargs):
        defaults = dict(
            name=name, flops=1.0, size_hint=1.0, body=lambda ctx: None
        )
        defaults.update(kwargs)
        return TaskSpec(**defaults)

    def test_pin_tier_wins(self, plan):
        policy = PlannedPolicy(plan)
        runtime = self._runtime(policy)
        name, pid = next(iter(sorted(plan.pins.items())))
        ctx = PlacementContext(runtime=runtime, origin=0, lookup={})
        assert policy.pick_target(self._task(name), ctx) == pid

    def test_out_of_range_pin_is_ignored(self):
        doctored = PlacementPlan(label="x", processes=NODES)
        doctored.pins = {"t": NODES + 7}
        policy = PlannedPolicy(doctored)
        runtime = self._runtime(policy)
        ctx = PlacementContext(runtime=runtime, origin=2, lookup={})
        # no pin in range, no layouts: falls through to the online policy,
        # which keeps a requirement-free task at its origin
        assert policy.pick_target(self._task("t"), ctx) == 2

    def test_layout_vote_follows_planned_owner(self, plan):
        policy = PlannedPolicy(plan)
        runtime = self._runtime(policy)
        grid = Grid(WORKLOAD.global_shape(NODES), name="stencil.A")
        runtime.register_item(grid)
        layout = plan.layout_for("stencil.A", NODES)
        for pid, owned in enumerate(layout):
            if owned.is_empty():
                continue
            task = self._task(f"unpinned{pid}", writes={grid: owned})
            assert task.name not in plan.pins
            ctx = PlacementContext(runtime=runtime, origin=0, lookup={})
            assert policy.pick_target(task, ctx) == pid

    def test_register_item_preplaces_ownership(self, plan):
        policy = PlannedPolicy(plan)
        runtime = self._runtime(policy)
        grid = Grid(WORKLOAD.global_shape(NODES), name="stencil.A")
        runtime.register_item(grid)
        assert runtime.metrics.counter("placement.preplaced_items") == 1
        layout = plan.layout_for("stencil.A", NODES)
        for pid, region in enumerate(layout):
            owned = runtime.processes[pid].data_manager.owned_region(grid)
            assert owned.covers(region)

    def test_plan_for_other_cluster_size_preplaces_nothing(self, plan):
        policy = PlannedPolicy(plan)
        cluster = make_cluster(NODES * 2)
        runtime = AllScaleRuntime(
            cluster, RuntimeConfig(functional=False), policy
        )
        grid = Grid(WORKLOAD.global_shape(NODES), name="stencil.A")
        runtime.register_item(grid)
        assert runtime.metrics.counter("placement.preplaced_items") == 0


class TestEndToEnd:
    def test_planned_moves_fewer_bytes_than_random(self, plan):
        config = RuntimeConfig(functional=False)

        def race(policy):
            result = stencil_allscale(
                make_cluster(), WORKLOAD, config, policy
            )
            runtime = result.extras["runtime"]
            return runtime.metrics.counter(
                "net.bytes"
            ) + runtime.data_bytes_moved()

        planned = race(PlannedPolicy(plan))
        random = race(RandomPolicy(seed=0))
        assert planned < random
