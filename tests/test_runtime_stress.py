"""Randomized runtime stress tests.

Random sequences of read/write tasks over a functional grid, executed on
random cluster shapes, validated three ways after every barrier:

* ownership stays disjoint and index-consistent;
* every replica holds byte-identical values to the owner (the runtime
  analog of the model's coherence property — see
  :mod:`repro.model.values`);
* the final grid equals a sequential replay of the same writes.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.items.grid import Grid
from repro.regions.box import Box
from repro.runtime.config import RuntimeConfig
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.tasks import TaskSpec
from repro.sim.cluster import Cluster, ClusterSpec

GRID_SIDE = 12


def check_replica_coherence(runtime, grid):
    """Every replicated element equals the owner's value."""
    owners = {}
    for pid in range(runtime.num_processes):
        manager = runtime.process(pid).data_manager
        for coord in manager.owned_region(grid).elements():
            owners[coord] = (pid, manager.fragment(grid).get(coord))
    for pid in range(runtime.num_processes):
        manager = runtime.process(pid).data_manager
        for coord in manager.replica_region(grid).elements():
            owner_pid, value = owners[coord]
            assert owner_pid != pid
            assert manager.fragment(grid).get(coord) == value, (
                f"replica of {coord} at {pid} diverged from owner {owner_pid}"
            )


boxes = st.tuples(
    st.integers(0, GRID_SIDE - 1),
    st.integers(0, GRID_SIDE - 1),
    st.integers(1, 6),
    st.integers(1, 6),
).map(
    lambda t: Box.of(
        (t[0], t[1]),
        (min(GRID_SIDE, t[0] + t[2]), min(GRID_SIDE, t[1] + t[3])),
    )
)

operations = st.lists(
    st.tuples(st.sampled_from(["read", "write"]), boxes),
    min_size=1,
    max_size=12,
)


@given(
    ops=operations,
    nodes=st.integers(1, 4),
    seed=st.integers(0, 1000),
)
@settings(max_examples=30, deadline=None)
def test_random_workload_stays_consistent(ops, nodes, seed):
    cluster = Cluster(
        ClusterSpec(num_nodes=nodes, cores_per_node=2, flops_per_core=1e9)
    )
    runtime = AllScaleRuntime(
        cluster, RuntimeConfig(functional=True, seed=seed)
    )
    grid = Grid((GRID_SIDE, GRID_SIDE), name="g")
    runtime.register_item(grid)
    reference = np.zeros((GRID_SIDE, GRID_SIDE))

    for index, (kind, box) in enumerate(ops):
        region = grid.box(box.lo, box.hi)
        if region.is_empty():
            continue
        if kind == "write":
            value = float(index + 1)

            def body(ctx, box=box, value=value):
                ctx.fragment(grid).scatter(
                    box, np.full(box.widths(), value)
                )

            reference[box.lo[0]:box.hi[0], box.lo[1]:box.hi[1]] = value
            task = TaskSpec(
                name=f"w{index}",
                writes={grid: region},
                body=body,
                size_hint=region.size(),
            )
        else:
            def body(ctx, box=box):
                return float(ctx.fragment(grid).gather(box).sum())

            task = TaskSpec(
                name=f"r{index}",
                reads={grid: region},
                body=body,
                size_hint=region.size(),
            )
        result = runtime.wait(runtime.submit(task, origin=index % nodes))
        if kind == "read":
            expected = float(
                reference[box.lo[0]:box.hi[0], box.lo[1]:box.hi[1]].sum()
            )
            assert result == expected
        runtime.check_ownership_invariants()
        check_replica_coherence(runtime, grid)

    # final full read matches the sequential replay
    def read_all(ctx):
        return ctx.fragment(grid).gather(
            Box.of((0, 0), (GRID_SIDE, GRID_SIDE))
        ).copy()

    final = runtime.wait(
        runtime.submit(
            TaskSpec(
                name="final",
                reads={grid: grid.full_region},
                body=read_all,
                size_hint=1,
            )
        )
    )
    assert np.array_equal(final, reference)


@given(seed=st.integers(0, 500), nodes=st.integers(2, 4))
@settings(max_examples=10, deadline=None)
def test_concurrent_disjoint_writers(seed, nodes):
    """Many simultaneous writers on disjoint regions never interfere."""
    cluster = Cluster(
        ClusterSpec(num_nodes=nodes, cores_per_node=2, flops_per_core=1e9)
    )
    runtime = AllScaleRuntime(
        cluster, RuntimeConfig(functional=True, seed=seed)
    )
    grid = Grid((GRID_SIDE, GRID_SIDE), name="g")
    runtime.register_item(grid)

    treetures = []
    for row in range(GRID_SIDE):
        box = Box.of((row, 0), (row + 1, GRID_SIDE))
        region = grid.box(box.lo, box.hi)

        def body(ctx, box=box, row=row):
            ctx.fragment(grid).scatter(
                box, np.full(box.widths(), float(row))
            )

        treetures.append(
            runtime.submit(
                TaskSpec(
                    name=f"row{row}",
                    writes={grid: region},
                    body=body,
                    size_hint=GRID_SIDE,
                ),
                origin=row % nodes,
            )
        )
    for treeture in treetures:
        runtime.wait(treeture)
    runtime.check_ownership_invariants()
    check_replica_coherence(runtime, grid)

    def read_all(ctx):
        return ctx.fragment(grid).gather(
            Box.of((0, 0), (GRID_SIDE, GRID_SIDE))
        ).copy()

    final = runtime.wait(
        runtime.submit(
            TaskSpec(
                name="final",
                reads={grid: grid.full_region},
                body=read_all,
                size_hint=1,
            )
        )
    )
    expected = np.repeat(
        np.arange(GRID_SIDE, dtype=float)[:, None], GRID_SIDE, axis=1
    )
    assert np.array_equal(final, expected)
