"""Tests for data item implementations (façade/fragment behaviour)."""

import numpy as np
import pytest

from repro.items import (
    BalancedTree,
    Grid,
    KDTreeItem,
    ScalarItem,
    build_kdtree,
    synthetic_kdtree,
)
from repro.regions.box import Box
from repro.regions.blocked_tree import BlockedTreeRegion
from repro.regions.tree import TreeRegion


class TestGridItem:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Grid(())
        with pytest.raises(ValueError):
            Grid((0, 4))
        with pytest.raises(ValueError):
            Grid((4, 4), element_bytes=0)

    def test_bytes_per_element(self):
        assert Grid((2, 2)).bytes_per_element == 8
        assert Grid((2, 2), dtype=np.float32).bytes_per_element == 4
        assert Grid((2, 2), element_bytes=100).bytes_per_element == 100

    def test_box_helper_clips(self):
        grid = Grid((4, 4))
        assert grid.box((2, 2), (10, 10)).size() == 4

    def test_decompose_partitions(self):
        grid = Grid((12, 12))
        parts = grid.decompose(5)
        assert len(parts) == 5
        total = grid.empty_region()
        for part in parts:
            assert total.intersect(part).is_empty()
            total = total.union(part)
        assert total.same_elements(grid.full_region)

    def test_declaration(self):
        grid = Grid((3, 3), name="g")
        decl = grid.declaration()
        assert decl.name == "g"
        assert decl.num_elements() == 9


class TestGridFragment:
    def setup_method(self):
        self.grid = Grid((8, 8), name="g")

    def test_gather_scatter_roundtrip(self):
        frag = self.grid.new_fragment(self.grid.box((0, 0), (8, 8)))
        window = Box.of((2, 2), (6, 6))
        frag.scatter(window, np.arange(16.0).reshape(4, 4))
        assert np.array_equal(
            frag.gather(window), np.arange(16.0).reshape(4, 4)
        )

    def test_gather_across_stored_boxes(self):
        region = self.grid.box((0, 0), (4, 8)).union(
            self.grid.box((4, 0), (8, 4))
        )
        frag = self.grid.new_fragment(region)
        frag.fill(lambda c: c[0] * 8 + c[1])
        window = Box.of((2, 0), (6, 4))
        values = frag.gather(window)
        assert values[0, 0] == 16 and values[3, 3] == 43

    def test_gather_outside_region_rejected(self):
        frag = self.grid.new_fragment(self.grid.box((0, 0), (4, 8)))
        with pytest.raises(KeyError):
            frag.gather(Box.of((2, 0), (6, 8)))

    def test_scatter_shape_checked(self):
        frag = self.grid.new_fragment(self.grid.full_region)
        with pytest.raises(ValueError):
            frag.scatter(Box.of((0, 0), (2, 2)), np.zeros((3, 3)))

    def test_resize_preserves_overlap(self):
        frag = self.grid.new_fragment(self.grid.box((0, 0), (4, 8)))
        frag.set((2, 3), 42.0)
        frag.resize(self.grid.box((2, 0), (6, 8)))
        assert frag.get((2, 3)) == 42.0
        with pytest.raises(KeyError):
            frag.get((0, 0))

    def test_extract_insert_moves_values(self):
        src = self.grid.new_fragment(self.grid.box((0, 0), (4, 8)))
        src.fill(lambda c: 1.0)
        dst = self.grid.new_fragment(self.grid.empty_region())
        dst.insert(src.extract(self.grid.box((1, 0), (3, 8))))
        assert dst.region.size() == 16
        assert dst.get((2, 5)) == 1.0

    def test_virtual_fragment_denies_value_access(self):
        frag = self.grid.new_fragment(self.grid.full_region, functional=False)
        with pytest.raises(RuntimeError):
            frag.get((0, 0))
        with pytest.raises(RuntimeError):
            frag.gather(Box.of((0, 0), (2, 2)))
        payload = frag.extract(self.grid.box((0, 0), (2, 8)))
        assert payload.nbytes == 16 * 8 and payload.data is None

    def test_virtual_payload_into_functional_rejected(self):
        functional = self.grid.new_fragment(self.grid.empty_region())
        virtual = self.grid.new_fragment(self.grid.full_region, functional=False)
        with pytest.raises(ValueError):
            functional.insert(virtual.extract(self.grid.full_region))


class TestScalarItem:
    def test_value_roundtrip(self):
        item = ScalarItem(name="s")
        frag = item.new_fragment(item.full_region)
        frag.set(2.5)
        assert frag.get() == 2.5
        payload = frag.extract(item.full_region)
        other = item.new_fragment(item.empty_region())
        other.insert(payload)
        assert other.get() == 2.5

    def test_empty_fragment_denies_access(self):
        item = ScalarItem()
        frag = item.new_fragment(item.empty_region())
        with pytest.raises(KeyError):
            frag.get()

    def test_resize_to_empty_drops_value(self):
        item = ScalarItem()
        frag = item.new_fragment(item.full_region)
        frag.set(1)
        frag.resize(item.empty_region())
        assert frag.value is None


class TestBalancedTree:
    def test_scheme_selection(self):
        flexible = BalancedTree(depth=4)
        blocked = BalancedTree(depth=4, scheme="blocked", root_height=2)
        assert isinstance(flexible.full_region, TreeRegion)
        assert isinstance(blocked.full_region, BlockedTreeRegion)
        with pytest.raises(ValueError):
            BalancedTree(depth=4, scheme="magic")

    def test_subtree_region_alignment(self):
        blocked = BalancedTree(depth=4, scheme="blocked", root_height=2)
        region = blocked.subtree_region(4)  # block root: aligned
        assert region.size() == 3
        with pytest.raises(ValueError):
            blocked.subtree_region(2)  # inside the root tree: not aligned
        flexible = BalancedTree(depth=4)
        assert flexible.subtree_region(2).size() == 7

    def test_nodes_region_only_flexible(self):
        blocked = BalancedTree(depth=4, scheme="blocked")
        with pytest.raises(ValueError):
            blocked.nodes_region([1])

    def test_decompose_both_schemes(self):
        for scheme in ("flexible", "blocked"):
            tree = BalancedTree(depth=5, scheme=scheme, root_height=2)
            parts = tree.decompose(3)
            assert len(parts) == 3
            total = tree.empty_region()
            for part in parts:
                assert total.intersect(part).is_empty()
                total = total.union(part)
            assert total.same_elements(tree.full_region)

    def test_fragment_values(self):
        tree = BalancedTree(depth=4)
        frag = tree.new_fragment(tree.subtree_region(2))
        frag.set(4, "x")
        assert frag.get(4) == "x"
        with pytest.raises(KeyError):
            frag.set(3, "y")  # node 3 not in subtree of 2
        other = tree.new_fragment(tree.subtree_region(3))
        other.insert(frag.extract(tree.subtree_region(4)))
        assert other.get(4) == "x"

    def test_fragment_resize_drops_values(self):
        tree = BalancedTree(depth=4)
        frag = tree.new_fragment(tree.full_region)
        frag.set(5, 1)
        frag.resize(tree.subtree_region(3))
        with pytest.raises(KeyError):
            frag.get(5)


class TestKDTree:
    def test_functional_query_matches_brute_force(self):
        rng = np.random.default_rng(7)
        points = rng.uniform(0, 100, size=(512, 3))
        tree = build_kdtree(points, depth=6)
        for _ in range(10):
            q = rng.uniform(0, 100, size=3)
            stats = tree.query(q, 25.0)
            assert stats.count == tree.brute_force_count(q, 25.0)
            assert stats.visited_nodes <= tree.num_nodes

    def test_pruning_reduces_work(self):
        rng = np.random.default_rng(8)
        points = rng.uniform(0, 100, size=(2048, 7))
        tree = build_kdtree(points, depth=8)
        stats = tree.query(rng.uniform(0, 100, size=7), 10.0)
        assert stats.visited_nodes < tree.num_nodes / 2
        assert stats.scanned_points < 2048

    def test_query_from_subtree_partition(self):
        rng = np.random.default_rng(9)
        points = rng.uniform(0, 100, size=(1024, 4))
        tree = build_kdtree(points, depth=6)
        q = rng.uniform(0, 100, size=4)
        whole = tree.query(q, 30.0).count
        # level-2 subtrees partition the point set
        split = sum(tree.query_from(r, q, 30.0).count for r in (2, 3))
        assert split == whole

    def test_synthetic_structure(self):
        tree = synthetic_kdtree(2**20, depth=10, low=[0] * 3, high=[100] * 3)
        assert tree.total_points == 2**20
        assert tree.leaf_points is None
        stats = tree.query([50, 50, 50], 20.0)
        assert stats.visited_nodes > 1
        with pytest.raises(RuntimeError):
            tree.brute_force_count([0, 0, 0], 1.0)

    def test_synthetic_counts_halve(self):
        tree = synthetic_kdtree(1024.0, depth=4, low=[0, 0], high=[8, 8])
        assert tree.counts[2] == tree.counts[3] == 512

    def test_item_and_fragment(self):
        rng = np.random.default_rng(10)
        tree = build_kdtree(rng.uniform(0, 100, (256, 2)), depth=5)
        item = KDTreeItem(tree, name="kd")
        assert item.bytes_per_element >= 1
        frag = item.new_fragment(item.subtree_region(2))
        assert frag.can_visit(4)
        assert not frag.can_visit(3)
        payload = frag.extract(item.subtree_region(4))
        other = item.new_fragment(item.subtree_region(3))
        other.insert(payload)
        assert other.can_visit(4)

    def test_item_decompose_contiguous_bands(self):
        tree = synthetic_kdtree(2**12, depth=8, low=[0] * 2, high=[1] * 2)
        item = KDTreeItem(tree)
        parts = item.decompose(4)
        total = item.empty_region()
        for part in parts:
            assert total.intersect(part).is_empty()
            total = total.union(part)
        assert total.same_elements(item.full_region)

    def test_build_validation(self):
        with pytest.raises(ValueError):
            build_kdtree(np.zeros(5), depth=3)
        with pytest.raises(ValueError):
            synthetic_kdtree(100, depth=4, low=[0, 0], high=[1])
