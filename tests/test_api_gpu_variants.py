"""GPU variants through the user API (pfor/prec device costs)."""

import pytest

from repro.api import box_region
from repro.api.pfor import pfor, pfor_task
from repro.items.grid import Grid
from repro.runtime.config import RuntimeConfig
from repro.runtime.runtime import AllScaleRuntime
from repro.sim.accelerator import AcceleratorSpec
from repro.sim.cluster import Cluster, ClusterSpec


def gpu_runtime(gpus=1):
    cluster = Cluster(
        ClusterSpec(
            num_nodes=2,
            cores_per_node=2,
            flops_per_core=1e9,
            gpus_per_node=gpus,
            gpu=AcceleratorSpec(flops=1e12),
        )
    )
    return AllScaleRuntime(cluster, RuntimeConfig(functional=False))


class TestPforGpuVariant:
    def test_gpu_flops_attached_down_the_tree(self):
        task = pfor_task(
            (0, 0),
            (64, 64),
            body=lambda ctx, box: None,
            flops_per_element=100.0,
            gpu_flops_per_element=10.0,
            granularity=512,
        )
        assert task.gpu_flops == pytest.approx(10.0 * 64 * 64)
        children = task.splitter()
        for child in children:
            assert child.gpu_flops == pytest.approx(10.0 * child.size_hint)

    def test_no_gpu_cost_means_cpu_only(self):
        task = pfor_task(
            (0,), (8,), body=lambda ctx, box: None, granularity=8
        )
        assert task.gpu_flops is None

    def test_compute_bound_pfor_offloads_and_speeds_up(self):
        def run(gpus):
            runtime = gpu_runtime(gpus)
            grid = Grid((256, 256), name="g")
            runtime.register_item(grid, placement=grid.decompose(2))
            sweep = pfor(
                runtime,
                (0, 0),
                (256, 256),
                body=lambda ctx, box: None,
                writes=lambda box: {grid: box_region(grid, box)},
                flops_per_element=5e4,  # compute-bound
                gpu_flops_per_element=5e4,
            )
            runtime.wait(sweep)
            return runtime.now, runtime.metrics.counter("proc.gpu_offloads")

        cpu_time, cpu_offloads = run(0)
        gpu_time, gpu_offloads = run(1)
        assert cpu_offloads == 0
        assert gpu_offloads > 0
        assert gpu_time < cpu_time / 5

    def test_transfer_bound_pfor_stays_on_cpu(self):
        runtime = gpu_runtime(1)
        grid = Grid((256, 256), name="g")
        runtime.register_item(grid, placement=grid.decompose(2))
        sweep = pfor(
            runtime,
            (0, 0),
            (256, 256),
            body=lambda ctx, box: None,
            reads=lambda box: {grid: box_region(grid, box)},
            writes=lambda box: {grid: box_region(grid, box)},
            flops_per_element=1.0,  # trivial compute, heavy data
            gpu_flops_per_element=1.0,
        )
        runtime.wait(sweep)
        assert runtime.metrics.counter("proc.gpu_offloads") == 0
