"""Property-based tests for the hierarchical index under random churn.

Random sequences of ownership updates (growth, shrink, handoffs) must keep
every inner node's covered region equal to the union of its children, and
every lookup must return exactly the intersection of the request with the
true ownership map — regardless of origin.
"""

from hypothesis import given, settings, strategies as st

from repro.items.grid import Grid
from repro.regions.box import Box, BoxSetRegion
from repro.runtime.index import HierarchicalIndex
from repro.sim.cluster import Cluster, ClusterSpec

SIDE = 16


def make_index(num_processes):
    cluster = Cluster(ClusterSpec(num_nodes=num_processes, cores_per_node=1))
    index = HierarchicalIndex(cluster.network, num_processes)
    return cluster, index


def check_hierarchy_consistency(index, item, num_processes):
    """Inner covers equal the union of their children at every level."""
    for level in range(2, index.levels + 1):
        span = 1 << (level - 1)
        for root in range(0, num_processes, span):
            left, right = index.children_of(level, root)
            expected = index.covered(item, level - 1, left)
            if right < num_processes:
                expected = expected.union(
                    index.covered(item, level - 1, right)
                )
            actual = index.covered(item, level, root)
            assert actual.same_elements(expected), (
                f"level {level} node {root} diverged"
            )


boxes = st.tuples(
    st.integers(0, SIDE - 1),
    st.integers(0, SIDE - 1),
    st.integers(1, 6),
    st.integers(1, 6),
).map(
    lambda t: Box.of(
        (t[0], t[1]), (min(SIDE, t[0] + t[2]), min(SIDE, t[1] + t[3]))
    )
)


@given(
    num_processes=st.sampled_from([1, 2, 3, 4, 6, 8]),
    updates=st.lists(
        st.tuples(st.integers(0, 7), boxes, st.booleans()),
        min_size=1,
        max_size=15,
    ),
    lookups=st.lists(
        st.tuples(st.integers(0, 7), boxes), min_size=1, max_size=5
    ),
)
@settings(max_examples=50, deadline=None)
def test_random_updates_keep_hierarchy_consistent(
    num_processes, updates, lookups
):
    cluster, index = make_index(num_processes)
    grid = Grid((SIDE, SIDE), name="g")
    index.register_item(grid)
    # ground truth: per-process owned regions (kept disjoint by always
    # removing a region from everyone before granting it)
    truth = [grid.empty_region() for _ in range(num_processes)]

    for pid_raw, box, grow in updates:
        pid = pid_raw % num_processes
        region = BoxSetRegion((box,))
        if grow:
            for other in range(num_processes):
                if other != pid:
                    truth[other] = truth[other].difference(region)
                    index.update_ownership(grid, other, truth[other])
            truth[pid] = truth[pid].union(region)
        else:
            truth[pid] = truth[pid].difference(region)
        index.update_ownership(grid, pid, truth[pid])

    for pid in range(num_processes):
        assert index.owned_region(grid, pid).same_elements(truth[pid])
    check_hierarchy_consistency(index, grid, num_processes)

    total = grid.empty_region()
    for region in truth:
        total = total.union(region)

    for origin_raw, box in lookups:
        origin = origin_raw % num_processes
        request = BoxSetRegion((box,))
        done = cluster.engine.spawn(index.lookup(grid, request, origin))
        cluster.engine.run()
        mapping, unresolved = done.value
        # resolved pieces are disjoint, correct, and complete
        resolved = grid.empty_region()
        for part, pid in mapping:
            assert truth[pid].covers(part), "wrong owner reported"
            assert resolved.intersect(part).is_empty(), "overlapping pieces"
            resolved = resolved.union(part)
        assert resolved.same_elements(request.intersect(total))
        assert unresolved.same_elements(request.difference(total))


@given(seed_boxes=st.lists(boxes, min_size=1, max_size=6))
@settings(max_examples=30, deadline=None)
def test_lookup_is_origin_independent(seed_boxes):
    num_processes = 4
    cluster, index = make_index(num_processes)
    grid = Grid((SIDE, SIDE), name="g")
    index.register_item(grid)
    for k, box in enumerate(seed_boxes):
        pid = k % num_processes
        region = BoxSetRegion((box,))
        current = index.owned_region(grid, pid)
        for other in range(num_processes):
            if other != pid:
                index.update_ownership(
                    grid,
                    other,
                    index.owned_region(grid, other).difference(region),
                )
        index.update_ownership(grid, pid, current.union(region))

    request = grid.full_region
    results = []
    for origin in range(num_processes):
        done = cluster.engine.spawn(index.lookup(grid, request, origin))
        cluster.engine.run()
        mapping, unresolved = done.value
        owned_by = {}
        for part, pid in mapping:
            for element in part.elements():
                owned_by[element] = pid
        results.append((owned_by, unresolved.size()))
    first = results[0]
    for other in results[1:]:
        assert other == first
