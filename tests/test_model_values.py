"""Tests for the value semantics layer (§2.1's ``val`` function).

Versions stand in for values: equal versions ⇒ equal values (computational
equivalence of variants).  The coherence and freshness properties are
checked both on hand-driven transitions and — via the interpreter's
observer hooks — across randomized executions with chaotic data
management.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.model import transitions as rules
from repro.model.architecture import distributed_cluster
from repro.model.elements import DataItemDecl
from repro.model.interpreter import Interpreter, InterpreterConfig
from repro.model.state import initial_state
from repro.model.task import AccessSpec, simple_task
from repro.model.values import CoherenceViolation, VersionTracker
from repro.regions.interval import IntervalRegion

from tests.test_model_properties import build_program


def noop(ctx):
    return
    yield  # pragma: no cover


class TestVersionBookkeeping:
    def setup_method(self):
        self.arch = distributed_cluster(2, 1)
        self.m0, self.m1 = sorted(self.arch.memories, key=lambda m: m.name)
        self.item = DataItemDecl(IntervalRegion.span(0, 10), name="d")
        self.state = initial_state(self.arch, simple_task(noop))
        self.state.items.add(self.item)
        self.tracker = VersionTracker()

    def test_init_stamps_version_zero(self):
        region = IntervalRegion.span(0, 5)
        rules.apply_init(self.state, self.m0, self.item, region)
        self.tracker.on_init(self.m0, self.item, region)
        assert self.tracker.version(self.m0, self.item, 3) == 0
        assert self.tracker.version(self.m0, self.item, 7) is None
        self.tracker.check_consistent_with_distribution(self.state)

    def test_migrate_carries_versions(self):
        region = IntervalRegion.span(0, 5)
        rules.apply_init(self.state, self.m0, self.item, region)
        self.tracker.on_init(self.m0, self.item, region)
        rules.apply_migrate(self.state, self.m0, self.m1, self.item, region)
        self.tracker.on_migrate(self.m0, self.m1, self.item, region)
        assert self.tracker.version(self.m0, self.item, 1) is None
        assert self.tracker.version(self.m1, self.item, 1) == 0
        self.tracker.check_consistent_with_distribution(self.state)

    def test_replicate_copies_versions(self):
        region = IntervalRegion.span(0, 5)
        rules.apply_init(self.state, self.m0, self.item, region)
        self.tracker.on_init(self.m0, self.item, region)
        rules.apply_replicate(self.state, self.m0, self.m1, self.item, region)
        self.tracker.on_replicate(self.m0, self.m1, self.item, region)
        assert self.tracker.copies_of(self.item, 2) == [0, 0]
        self.tracker.check_replica_coherence(self.state)

    def test_write_bumps_versions(self):
        region = IntervalRegion.span(0, 10)
        rules.apply_init(self.state, self.m0, self.item, region)
        self.tracker.on_init(self.m0, self.item, region)
        write = IntervalRegion.span(2, 4)
        task = simple_task(noop, AccessSpec(writes={self.item: write}))
        self.state.queued.add(task)
        self.state.spawned.add(task)
        candidate = next(
            c for c in rules.enabled_starts(self.state) if c.task is task
        )
        entry = rules.apply_start(self.state, candidate)
        self.tracker.on_start(self.state, entry)
        self.tracker.on_variant_end(self.state, entry.variant)
        assert self.tracker.version(self.m0, self.item, 2) == 1
        assert self.tracker.version(self.m0, self.item, 5) == 0
        assert self.tracker.newest_version(self.item, 3) == 1

    def test_divergent_copies_detected(self):
        region = IntervalRegion.span(0, 3)
        rules.apply_init(self.state, self.m0, self.item, region)
        self.tracker.on_init(self.m0, self.item, region)
        rules.apply_replicate(self.state, self.m0, self.m1, self.item, region)
        self.tracker.on_replicate(self.m0, self.m1, self.item, region)
        # forge a divergence (a buggy runtime writing through a replica)
        self.tracker._versions[(self.m1, self.item)][1] = 7
        with pytest.raises(CoherenceViolation):
            self.tracker.check_replica_coherence(self.state)

    def test_stale_read_detected(self):
        region = IntervalRegion.span(0, 5)
        rules.apply_init(self.state, self.m0, self.item, region)
        self.tracker.on_init(self.m0, self.item, region)
        read = IntervalRegion.span(0, 2)
        task = simple_task(noop, AccessSpec(reads={self.item: read}))
        self.state.queued.add(task)
        self.state.spawned.add(task)
        candidate = next(
            c for c in rules.enabled_starts(self.state) if c.task is task
        )
        entry = rules.apply_start(self.state, candidate)
        # forge a newer version elsewhere
        self.tracker._versions[(self.m1, self.item)] = {0: 5}
        with pytest.raises(CoherenceViolation):
            self.tracker.check_read_freshness(self.state, entry)

    def test_destroy_forgets_item(self):
        region = IntervalRegion.span(0, 5)
        rules.apply_init(self.state, self.m0, self.item, region)
        self.tracker.on_init(self.m0, self.item, region)
        self.tracker.on_destroy(self.item)
        assert self.tracker.copies_of(self.item, 1) == []


@given(
    widths=st.lists(st.integers(1, 4), min_size=1, max_size=3),
    seed=st.integers(0, 10_000),
    chaos=st.floats(0.0, 0.5),
    nodes=st.integers(1, 4),
)
@settings(max_examples=30, deadline=None)
def test_coherence_and_freshness_under_random_schedules(
    widths, seed, chaos, nodes
):
    """Every start in every interleaving reads fresh, coherent data.

    The VersionTracker raises from its ``on_start`` hook if a variant ever
    begins with a stale copy or while divergent copies exist — which the
    exclusive-writes discipline must prevent.
    """
    program, _item = build_program(widths)
    tracker = VersionTracker()
    interp = Interpreter(
        InterpreterConfig(
            seed=seed, chaos_data_ops=chaos, max_transitions=20_000
        ),
        observer=tracker,
    )
    trace, state = interp.run_to_completion(
        program, distributed_cluster(nodes, 2)
    )
    tracker.check_replica_coherence(state)
    tracker.check_consistent_with_distribution(state)
