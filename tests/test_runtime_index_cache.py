"""Tests for origin-side index lookup caching (§6 gap-closing extension)."""


from repro.apps.tpc import TPCWorkload, make_problem, tpc_allscale
from repro.items.graph import PartitionedGraph
from repro.items.grid import Grid
from repro.runtime.config import RuntimeConfig
from repro.runtime.index import HierarchicalIndex
from repro.sim.cluster import Cluster, ClusterSpec


def make_index(num_processes=4):
    cluster = Cluster(ClusterSpec(num_nodes=num_processes, cores_per_node=1))
    return cluster, HierarchicalIndex(cluster.network, num_processes)


def run(cluster, gen):
    future = cluster.engine.spawn(gen)
    cluster.engine.run()
    return future.value


class TestLookupCache:
    def setup_method(self):
        self.cluster, self.index = make_index()
        # interval regions are canonical and hashable — cacheable
        self.item = PartitionedGraph(64, name="g")
        self.index.register_item(self.item)
        self.parts = self.item.decompose(4)
        for pid, region in enumerate(self.parts):
            self.index.update_ownership(self.item, pid, region)

    def test_second_lookup_hits_and_costs_nothing(self):
        region = self.parts[3]
        first = run(
            self.cluster,
            self.index.lookup_cached(self.item, region, 0),
        )
        hops_after_first = self.index.lookup_hops
        second = run(
            self.cluster,
            self.index.lookup_cached(self.item, region, 0),
        )
        assert self.index.cache_hits == 1
        assert self.index.lookup_hops == hops_after_first  # no new messages
        assert second[0] == first[0]

    def test_ownership_update_invalidates(self):
        region = self.parts[3]
        run(self.cluster, self.index.lookup_cached(self.item, region, 0))
        # move ownership: the cached mapping is now stale
        self.index.update_ownership(self.item, 3, self.item.empty_region())
        self.index.update_ownership(
            self.item,
            2,
            self.index.owned_region(self.item, 2).union(region),
        )
        mapping, unresolved = run(
            self.cluster, self.index.lookup_cached(self.item, region, 0)
        )
        assert self.index.cache_misses >= 2
        assert {pid for _r, pid in mapping} == {2}
        assert unresolved.is_empty()

    def test_per_origin_entries(self):
        region = self.parts[1]
        run(self.cluster, self.index.lookup_cached(self.item, region, 0))
        run(self.cluster, self.index.lookup_cached(self.item, region, 2))
        assert self.index.cache_hits == 0  # distinct origins, distinct caches
        run(self.cluster, self.index.lookup_cached(self.item, region, 2))
        assert self.index.cache_hits == 1

    def test_locality_cache_serves_subregions(self):
        # learn a big region once, then any covered sub-request is free
        whole = self.item.full_region
        run(self.cluster, self.index.lookup_cached(self.item, whole, 0))
        hops = self.index.lookup_hops
        from repro.regions.interval import IntervalRegion

        sub = IntervalRegion.span(10, 20)
        mapping, unresolved = run(
            self.cluster, self.index.lookup_cached(self.item, sub, 0)
        )
        assert self.index.cache_hits == 1
        assert self.index.lookup_hops == hops
        assert unresolved.is_empty()
        total = self.item.empty_region()
        for piece, pid in mapping:
            assert self.parts[pid].covers(piece)
            total = total.union(piece)
        assert total.same_elements(sub)

    def test_box_regions_cache_too(self):
        # the locality cache needs no hashing: box-set regions work
        grid = Grid((8, 8), name="boxes")
        self.index.register_item(grid)
        for pid, region in enumerate(grid.decompose(4)):
            self.index.update_ownership(grid, pid, region)
        region = grid.decompose(4)[0]
        run(self.cluster, self.index.lookup_cached(grid, region, 0))
        run(self.cluster, self.index.lookup_cached(grid, region, 0))
        assert self.index.cache_hits == 1


class TestCachingImprovesTPC:
    def test_tpc_throughput_improves_with_caching(self):
        """Tree regions are hashable, TPC ownership is static: the cache
        eliminates most lookup traffic, narrowing the AllScale/MPI gap —
        the §6 direction demonstrated."""
        workload = TPCWorkload(
            total_points=2**22,
            depth=12,
            queries_total=96,
            functional=False,
            visit_flops=150.0,
            point_flops=30.0,
        )
        nodes = 8
        problem = make_problem(workload, nodes)

        def run_tpc(caching):
            cluster = Cluster(
                ClusterSpec(num_nodes=nodes, cores_per_node=4,
                            flops_per_core=2.4e9)
            )
            result = tpc_allscale(
                cluster,
                workload,
                RuntimeConfig(functional=False, index_caching=caching),
                problem=problem,
            )
            index = result.extras["runtime"].index
            return result.throughput, index.cache_hits, index.lookup_hops

        base_qps, base_hits, base_hops = run_tpc(False)
        cached_qps, cached_hits, cached_hops = run_tpc(True)
        assert base_hits == 0
        assert cached_hits > 0
        assert cached_hops < base_hops
        assert cached_qps >= base_qps * 0.95  # never worse, usually better


class TestNoOpUpdateKeepsCache:
    def test_noop_ownership_update_preserves_cache(self):
        """Regression: re-asserting the ownership already recorded used to
        bump the item's version — wiping every origin's locality cache and
        emitting maintenance messages for a change that never happened."""
        cluster, index = make_index()
        item = PartitionedGraph(64, name="g")
        index.register_item(item)
        parts = item.decompose(4)
        for pid, region in enumerate(parts):
            index.update_ownership(item, pid, region)
        region = parts[3]
        run(cluster, index.lookup_cached(item, region, 0))
        assert index.cache_misses == 1
        messages_before = index.update_messages
        # identical leaf content, fresh (non-identical) region object
        index.update_ownership(item, 3, parts[3].union(item.empty_region()))
        assert index.update_messages == messages_before
        run(cluster, index.lookup_cached(item, region, 0))
        assert index.cache_hits == 1
