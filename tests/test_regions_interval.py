"""Unit tests for 1-D interval regions."""

import pytest

from repro.regions.interval import (
    Interval,
    IntervalRegion,
    split_interval_region,
)


class TestInterval:
    def test_empty_when_degenerate(self):
        assert Interval(3, 3).is_empty()
        assert Interval(5, 2).is_empty()
        assert not Interval(0, 1).is_empty()

    def test_size(self):
        assert Interval(2, 7).size() == 5
        assert Interval(7, 2).size() == 0

    def test_contains_half_open(self):
        iv = Interval(2, 5)
        assert iv.contains(2)
        assert iv.contains(4)
        assert not iv.contains(5)
        assert not iv.contains(1)

    def test_overlaps(self):
        assert Interval(0, 5).overlaps(Interval(4, 9))
        assert not Interval(0, 5).overlaps(Interval(5, 9))

    def test_intersect(self):
        assert Interval(0, 5).intersect(Interval(3, 9)) == Interval(3, 5)


class TestIntervalRegion:
    def test_normalization_merges_adjacent(self):
        region = IntervalRegion([(0, 3), (3, 6)])
        assert region.intervals == (Interval(0, 6),)

    def test_normalization_merges_overlapping_unordered(self):
        region = IntervalRegion([(4, 9), (0, 5)])
        assert region.intervals == (Interval(0, 9),)

    def test_empty_inputs_dropped(self):
        assert IntervalRegion([(5, 5), (7, 3)]).is_empty()

    def test_span_and_of_points(self):
        assert IntervalRegion.span(2, 5).size() == 3
        pts = IntervalRegion.of_points([1, 2, 3, 7])
        assert pts.intervals == (Interval(1, 4), Interval(7, 8))

    def test_union(self):
        a = IntervalRegion([(0, 3), (10, 12)])
        b = IntervalRegion([(2, 5)])
        assert set((a | b).elements()) == {0, 1, 2, 3, 4, 10, 11}

    def test_intersect(self):
        a = IntervalRegion([(0, 5), (8, 12)])
        b = IntervalRegion([(3, 10)])
        assert set((a & b).elements()) == {3, 4, 8, 9}

    def test_difference(self):
        a = IntervalRegion([(0, 10)])
        b = IntervalRegion([(3, 5), (7, 8)])
        assert set((a - b).elements()) == {0, 1, 2, 5, 6, 8, 9}

    def test_difference_is_self_when_disjoint(self):
        a = IntervalRegion([(0, 3)])
        b = IntervalRegion([(5, 8)])
        assert (a - b) == a

    def test_canonical_equality_and_hash(self):
        a = IntervalRegion([(0, 2), (2, 4)])
        b = IntervalRegion([(0, 4)])
        assert a == b
        assert hash(a) == hash(b)

    def test_contains_binary_search(self):
        region = IntervalRegion([(0, 2), (5, 7), (100, 200)])
        for p in (0, 1, 5, 6, 100, 199):
            assert region.contains(p)
        for p in (-1, 2, 4, 7, 99, 200, "x"):
            assert not region.contains(p)

    def test_bounds(self):
        assert IntervalRegion([(3, 5), (9, 11)]).bounds() == Interval(3, 11)
        assert IntervalRegion.empty().bounds() is None

    def test_covers_and_same_elements(self):
        a = IntervalRegion([(0, 10)])
        b = IntervalRegion([(2, 4)])
        assert a.covers(b)
        assert not b.covers(a)
        assert a.same_elements(IntervalRegion([(0, 5), (5, 10)]))

    def test_operator_sugar(self):
        a = IntervalRegion.span(0, 4)
        assert len(a) == 4
        assert bool(a)
        assert 3 in a
        assert sorted(a) == [0, 1, 2, 3]


class TestSplitIntervalRegion:
    def test_even_split(self):
        chunks = split_interval_region(IntervalRegion.span(0, 100), 4)
        assert [c.size() for c in chunks] == [25, 25, 25, 25]

    def test_uneven_split_covers_everything(self):
        region = IntervalRegion([(0, 7), (20, 23)])
        chunks = split_interval_region(region, 3)
        assert sum(c.size() for c in chunks) == region.size()
        merged = chunks[0]
        for c in chunks[1:]:
            merged = merged | c
        assert merged == region

    def test_more_parts_than_elements(self):
        chunks = split_interval_region(IntervalRegion.span(0, 2), 5)
        assert len(chunks) == 5
        assert sum(c.size() for c in chunks) == 2

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            split_interval_region(IntervalRegion.span(0, 5), 0)
