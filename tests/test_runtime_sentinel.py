"""Tests for the runtime invariant sentinel (§2.5 properties, online).

Three layers:

* clean runs — workloads with overlapping requirements, forced
  migrations, checkpoint/restore and node failure, all under a *strict*
  sentinel: any false positive raises;
* a property-based sweep driving randomized task DAGs through the same
  machinery;
* fault injection — deliberately corrupted lock tables, ownership maps,
  and checkpoint payloads, asserting the sentinel *catches* each with the
  right check name (these carry the ``sentinel_injection`` marker so the
  ``REPRO_SENTINEL=1`` fixture does not auto-attach a strict sentinel on
  top).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.items.grid import Grid
from repro.runtime.config import RuntimeConfig
from repro.runtime.locks import _Hold
from repro.runtime.resilience import ResilienceManager
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.sentinel import (
    RuntimeSentinel,
    SentinelConfig,
    SentinelViolationError,
    Violation,
)
from repro.runtime.tasks import TaskSpec
from repro.sim.cluster import Cluster, ClusterSpec

GRID_SIDE = 12


def make_runtime(nodes=4, **config):
    cluster = Cluster(
        ClusterSpec(num_nodes=nodes, cores_per_node=2, flops_per_core=1e9)
    )
    return AllScaleRuntime(cluster, RuntimeConfig(**config))


def watched_runtime(nodes=4, strict=True, **config):
    runtime = make_runtime(nodes, **config)
    if runtime.sentinel is not None:  # REPRO_SENTINEL fixture beat us to it
        runtime.sentinel.detach()
    sentinel = RuntimeSentinel(
        runtime, SentinelConfig(strict=strict)
    ).attach()
    return runtime, sentinel


def box_region(grid, x0, y0, x1, y1):
    return grid.box((x0, y0), (x1, y1))


def rw_task(grid, name, reads=None, writes=None):
    return TaskSpec(
        name=name,
        reads={grid: reads} if reads is not None else {},
        writes={grid: writes} if writes is not None else {},
        size_hint=1,
    )


class TestSentinelCleanRuns:
    def test_overlapping_workload_has_zero_violations(self):
        runtime, sentinel = watched_runtime(nodes=4)
        grid = Grid((GRID_SIDE, GRID_SIDE), name="g")
        runtime.register_item(grid)
        whole = grid.full_region
        left = box_region(grid, 0, 0, 6, GRID_SIDE)
        right = box_region(grid, 6, 0, GRID_SIDE, GRID_SIDE)
        mid = box_region(grid, 3, 0, 9, GRID_SIDE)
        # overlapping writes and reads from rotating origins: exercises
        # migration, replication, invalidation, and lock queueing
        pending = []
        for step, region in enumerate((left, right, mid, whole, mid)):
            pending.append(
                runtime.submit(
                    rw_task(grid, f"w{step}", writes=region),
                    origin=step % runtime.num_processes,
                )
            )
            pending.append(
                runtime.submit(
                    rw_task(grid, f"r{step}", reads=whole),
                    origin=(step + 1) % runtime.num_processes,
                )
            )
        for treeture in pending:
            runtime.wait(treeture)
        sentinel.verify_all()
        sentinel.check_terminal()
        assert sentinel.violations == []
        assert sentinel.checks > 0
        assert runtime.metrics.counter("sentinel.scans") >= 1
        assert runtime.metrics.counter("sentinel.violations") == 0

    def test_checkpoint_failure_recovery_clean(self):
        runtime, sentinel = watched_runtime(nodes=4)
        grid = Grid((GRID_SIDE, GRID_SIDE), name="g")
        runtime.register_item(grid)
        for pid in range(4):
            runtime.wait(
                runtime.submit(
                    rw_task(
                        grid,
                        f"init{pid}",
                        writes=grid.decompose(4)[pid],
                    ),
                    origin=pid,
                )
            )
        res = ResilienceManager(runtime)
        snapshot = runtime.wait_process(res.checkpoint())
        runtime.fail_process(2)
        runtime.wait_process(res.recover_lost_data(snapshot))
        sentinel.verify_all()
        assert sentinel.violations == []

    def test_orphaned_replica_promotion_stays_coherent(self):
        """Regression (found by the sentinel's randomized DAG sweep):
        first-touch allocation claiming a region a process already holds
        as a *replica* — possible once a node failure orphans the owner —
        used to leave the stale entry in the replica registry."""
        runtime, sentinel = watched_runtime(nodes=2)
        grid = Grid((GRID_SIDE, GRID_SIDE), name="g")
        runtime.register_item(grid)
        home0 = grid.decompose(2)[0]
        # process 1 owns process 0's home block; 0 replicates a corner
        runtime.process(1).data_manager.allocate(grid, home0)
        replicated = box_region(grid, 0, 0, 2, 2)
        payload = runtime.process(1).data_manager.fragment(grid).extract(
            replicated
        )
        runtime.process(0).data_manager.insert_replica(grid, payload)
        sentinel.verify_all()
        assert sentinel.violations == []
        assert 0 in runtime.replica_holders(grid)
        runtime.fail_process(1)
        # first touch grabs the whole orphaned block — including the
        # corner process 0 still holds as a replica
        runtime.process(0).data_manager.allocate(grid, home0)
        assert runtime.process(0).data_manager.owned_region(grid).covers(
            replicated
        )
        sentinel.verify_all()
        assert sentinel.violations == []
        assert 0 not in runtime.replica_holders(grid)

    @pytest.mark.sentinel_injection
    def test_strict_mode_raises_on_violation(self):
        runtime, sentinel = watched_runtime(nodes=2, strict=True)
        grid = Grid((GRID_SIDE, GRID_SIDE), name="g")
        runtime.register_item(grid)
        runtime.wait(
            runtime.submit(rw_task(grid, "w", writes=grid.full_region))
        )
        table = runtime.process(0).locks
        region = box_region(grid, 0, 0, 4, 4)
        table._holds.append(_Hold("a", grid, region, write=True))
        table._holds.append(_Hold("b", grid, region, write=True))
        with pytest.raises(SentinelViolationError):
            sentinel.verify_all()

    def test_violation_report_structure(self):
        violation = Violation(
            check="exclusive_writes",
            message="overlap",
            sim_time=1.5,
            item="g",
            holders=((0, "a", "W"), (1, "b", "R")),
            task="t",
        )
        text = str(violation)
        assert "exclusive_writes" in text
        assert "t=1.5s" in text
        assert "'g'" in text


# -- property-based: randomized DAGs stay violation-free -----------------------------


boxes = st.tuples(
    st.integers(0, GRID_SIDE - 1),
    st.integers(0, GRID_SIDE - 1),
    st.integers(1, 6),
    st.integers(1, 6),
).map(
    lambda t: (
        (t[0], t[1]),
        (min(GRID_SIDE, t[0] + t[2]), min(GRID_SIDE, t[1] + t[3])),
    )
)

dag_ops = st.lists(
    st.tuples(
        st.sampled_from(["read", "write", "readwrite"]),
        boxes,
        st.integers(0, 7),  # origin selector (forces migrations)
        st.lists(st.integers(0, 30), max_size=2),  # dependency edges
    ),
    min_size=1,
    max_size=10,
)


@given(
    ops=dag_ops,
    nodes=st.integers(1, 4),
    seed=st.integers(0, 1000),
    mid_checkpoint=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_random_dags_have_zero_violations(ops, nodes, seed, mid_checkpoint):
    """Correct runs — whatever the DAG shape — never trip the sentinel.

    Tasks with overlapping read/write regions are submitted from rotating
    origins (forcing migrations and replica invalidation), chained into a
    DAG via ``after`` edges, optionally interrupted by a checkpoint, a
    node failure, and a recovery in the middle.  The sentinel is strict:
    a single false positive fails the test at the violating event.
    """
    runtime, sentinel = watched_runtime(nodes=nodes, seed=seed)
    grid = Grid((GRID_SIDE, GRID_SIDE), name="g")
    runtime.register_item(grid)
    submitted = []
    half = len(ops) // 2
    for index, (kind, (lo, hi), origin, deps) in enumerate(ops):
        region = grid.box(lo, hi)
        if region.is_empty():
            continue
        spec = TaskSpec(
            name=f"{kind[0]}{index}",
            reads={grid: region} if kind in ("read", "readwrite") else {},
            writes={grid: region} if kind in ("write", "readwrite") else {},
            size_hint=region.size(),
        )
        after = [submitted[d % len(submitted)] for d in deps if submitted]
        submitted.append(
            runtime.submit(spec, origin=origin % nodes, after=after)
        )
        if index == half and mid_checkpoint:
            # mid-run barrier: drain, checkpoint, kill a node, recover
            for treeture in submitted:
                runtime.wait(treeture)
            res = ResilienceManager(runtime)
            snapshot = runtime.wait_process(res.checkpoint())
            if nodes > 1:
                runtime.fail_process(nodes - 1)
                runtime.wait_process(res.recover_lost_data(snapshot))
    for treeture in submitted:
        runtime.wait(treeture)
    sentinel.verify_all()
    sentinel.check_terminal()
    assert sentinel.violations == []


# -- fault injection: corrupted state must be caught ----------------------------------


def _filled_runtime(nodes=4):
    runtime, sentinel = watched_runtime(nodes=nodes, strict=False)
    grid = Grid((GRID_SIDE, GRID_SIDE), name="g")
    runtime.register_item(grid)
    for pid in range(nodes):
        runtime.wait(
            runtime.submit(
                rw_task(
                    grid, f"init{pid}", writes=grid.decompose(nodes)[pid]
                ),
                origin=pid,
            )
        )
    assert sentinel.violations == []
    return runtime, sentinel, grid


def _checks(sentinel):
    return {violation.check for violation in sentinel.violations}


@pytest.mark.sentinel_injection
class TestSentinelFaultInjection:
    def test_double_write_lock_grant_is_caught(self):
        """Fault 1: a lock table grants two overlapping write holds."""
        runtime, sentinel, grid = _filled_runtime()
        region = box_region(grid, 0, 0, 5, 5)
        table = runtime.process(0).locks
        table._holds.append(_Hold("task-a", grid, region, write=True))
        table._holds.append(
            _Hold("task-b", grid, box_region(grid, 2, 2, 7, 7), write=True)
        )
        sentinel.verify_all()
        assert "lock_table_race" in _checks(sentinel)
        offending = [
            v for v in sentinel.violations if v.check == "lock_table_race"
        ]
        assert offending[0].item == "g"
        assert len(offending[0].holders) == 2

    def test_cross_process_write_overlap_is_caught(self):
        """Fault 1b: write holds on the same region in two processes."""
        runtime, sentinel, grid = _filled_runtime()
        region = box_region(grid, 0, 0, 5, 5)
        runtime.process(0).locks._holds.append(
            _Hold("task-a", grid, region, write=True)
        )
        runtime.process(1).locks._holds.append(
            _Hold("task-b", grid, region, write=True)
        )
        sentinel.verify_all()
        assert "exclusive_writes" in _checks(sentinel)

    def test_ownership_index_desync_is_caught(self):
        """Fault 2: the ownership map shrinks behind the index's back."""
        runtime, sentinel, grid = _filled_runtime()
        manager = runtime.process(0).data_manager
        owned = manager.owned_region(grid)
        assert not owned.is_empty()
        manager.owned[grid] = owned.difference(
            box_region(grid, 0, 0, 2, 2)
        )
        sentinel.verify_all()
        assert "index_coherence" in _checks(sentinel)

    @given(seed=st.integers(0, 200))
    @settings(max_examples=10, deadline=None)
    def test_random_ownership_corruption_is_caught(self, seed):
        import random

        runtime, sentinel, grid = _filled_runtime()
        rng = random.Random(seed)
        pid = rng.randrange(runtime.num_processes)
        manager = runtime.process(pid).data_manager
        owned = manager.owned_region(grid)
        x = rng.randrange(GRID_SIDE - 1)
        y = rng.randrange(GRID_SIDE - 1)
        bite = box_region(grid, x, y, x + 1, y + 1)
        if owned.covers(bite):
            manager.owned[grid] = owned.difference(bite)  # shrink
        else:
            manager.owned[grid] = owned.union(bite)  # steal
        sentinel.verify_all()
        assert "index_coherence" in _checks(sentinel)

    def test_checkpoint_payload_loss_is_caught(self):
        """Fault 3: a checkpoint payload vanishes before recovery."""
        runtime, sentinel, grid = _filled_runtime()
        res = ResilienceManager(runtime)
        snapshot = runtime.wait_process(res.checkpoint())
        assert sentinel.violations == []
        # lose the victim's checkpoint entry, then lose the victim
        victim = 2
        snapshot.payloads["g"] = [
            (pid, payload)
            for pid, payload in snapshot.payloads["g"]
            if pid != victim
        ]
        runtime.fail_process(victim)
        runtime.wait_process(res.recover_lost_data(snapshot))
        assert "data_preservation" in _checks(sentinel)

    def test_truncated_payload_bytes_are_caught(self):
        """Fault 3b: a payload's byte count disagrees with its region."""
        runtime, sentinel, grid = _filled_runtime(nodes=2)
        payload = runtime.process(0).data_manager.fragment(grid).extract(
            runtime.process(0).data_manager.owned_region(grid)
        )
        payload.nbytes //= 2  # half the bytes went missing in transit
        runtime.process(1).data_manager.import_owned(grid, payload)
        assert "payload_bytes" in _checks(sentinel)

    def test_double_execution_is_caught(self):
        """A task dispatched to leaf execution twice trips the sentinel."""
        runtime, sentinel, grid = _filled_runtime(nodes=2)
        task = rw_task(grid, "dup", reads=box_region(grid, 0, 0, 3, 3))
        runtime.wait(runtime.submit(task, origin=0))
        assert sentinel.violations == []
        sentinel.on_task_start(task, 1)  # second dispatch of the same task
        assert "single_execution" in _checks(sentinel)

    def test_wedged_runtime_fails_terminal_check(self):
        runtime, sentinel, grid = _filled_runtime(nodes=2)
        runtime.process(0).locks._holds.append(
            _Hold("zombie", grid, box_region(grid, 0, 0, 2, 2), write=False)
        )
        sentinel.check_terminal()
        assert "termination" in _checks(sentinel)


class TestBoundsPrefilter:
    """The cheap bounding-corner rejection must never mask a real overlap."""

    def _sentinel(self):
        _runtime, sentinel = watched_runtime(nodes=2, strict=False)
        return sentinel

    def test_box_bounds_classification(self):
        from repro.runtime.sentinel import _NO_BOUNDS, _bounds_disjoint

        sentinel = self._sentinel()
        grid = Grid((8, 8), name="b")
        a = sentinel._bounds(box_region(grid, 0, 0, 4, 4))
        b = sentinel._bounds(box_region(grid, 4, 4, 8, 8))
        c = sentinel._bounds(box_region(grid, 3, 3, 5, 5))
        empty = sentinel._bounds(grid.empty_region())
        assert _bounds_disjoint(a, b)  # half-open boxes: touching corners
        assert not _bounds_disjoint(a, c)
        assert not _bounds_disjoint(b, c)
        assert _bounds_disjoint(a, empty) and _bounds_disjoint(empty, empty)
        # unknown schemes can never be rejected
        assert not _bounds_disjoint(a, _NO_BOUNDS)
        assert not _bounds_disjoint(_NO_BOUNDS, _NO_BOUNDS)

    def test_interval_bounds(self):
        from repro.regions.interval import IntervalRegion
        from repro.runtime.sentinel import _bounds_disjoint

        sentinel = self._sentinel()
        a = sentinel._bounds(IntervalRegion.span(0, 10))
        b = sentinel._bounds(IntervalRegion.span(10, 20))
        c = sentinel._bounds(IntervalRegion.span(5, 15))
        assert _bounds_disjoint(a, b)
        assert not _bounds_disjoint(a, c)

    def test_bounds_are_conservative_for_schemes_without_corners(self):
        from repro.items.tree import BalancedTree
        from repro.runtime.sentinel import _NO_BOUNDS

        sentinel = self._sentinel()
        tree = BalancedTree(3, name="t")
        assert sentinel._bounds(tree.full_region) is _NO_BOUNDS

    def test_bounds_cache_keys_by_identity(self):
        sentinel = self._sentinel()
        grid = Grid((8, 8), name="b2")
        region = box_region(grid, 1, 1, 3, 3)
        first = sentinel._bounds(region)
        assert sentinel._bounds(region) is first


@pytest.mark.sentinel_injection
class TestSampledProfileStillDetects:
    def test_bench_profile_shape(self):
        config = SentinelConfig.bench_profile()
        assert not config.strict
        assert config.task_stride > 1 and config.scan_stride > 4096

    def test_scan_catches_forged_overlap_despite_task_sampling(self):
        """Sampling skips per-dispatch checks; the (unsampled) scan must
        still catch a cross-table overlapping write pair."""
        runtime = make_runtime(2)
        if runtime.sentinel is not None:
            runtime.sentinel.detach()
        sentinel = RuntimeSentinel(
            runtime, SentinelConfig.bench_profile()
        ).attach()
        grid = Grid((GRID_SIDE, GRID_SIDE), name="g")
        runtime.register_item(grid)
        region = box_region(grid, 0, 0, 4, 4)
        runtime.process(0).locks._holds.append(
            _Hold("t0", grid, region, write=True)
        )
        runtime.process(1).locks._holds.append(
            _Hold("t1", grid, box_region(grid, 2, 2, 6, 6), write=True)
        )
        sentinel.verify_all()
        assert "exclusive_writes" in _checks(sentinel)


class TestRandomSweepRegressions:
    """Deterministic pins of schedules the randomized sweep falsified.

    Each was a real latent bug: a reader/writer staging livelock, a
    writer/writer intent deadlock (an ``owner`` variable shadowed by the
    lookup loop), and a replica registered over a region that became
    owned while its payload was in transit.
    """

    def _run_ops(self, ops, nodes):
        runtime, sentinel = watched_runtime(nodes=nodes)
        grid = Grid((GRID_SIDE, GRID_SIDE), name="g")
        runtime.register_item(grid)
        submitted = []
        for index, (kind, (lo, hi), origin) in enumerate(ops):
            region = grid.box(lo, hi)
            spec = TaskSpec(
                name=f"{kind[0]}{index}",
                reads={grid: region} if kind in ("read", "readwrite") else {},
                writes={grid: region} if kind in ("write", "readwrite") else {},
                size_hint=region.size(),
            )
            submitted.append(
                runtime.submit(spec, origin=origin % nodes, after=[])
            )
        for treeture in submitted:
            runtime.wait(treeture)
        sentinel.verify_all()
        sentinel.check_terminal()
        assert sentinel.violations == []

    def test_reader_writer_staging_is_not_a_livelock(self):
        """A writer invalidating the replicas a reader keeps re-fetching
        used to ping-pong until the bounded retries gave up."""
        self._run_ops(
            [('read', ((0, 0), (1, 1)), 0)] * 7
            + [
                ('write', ((4, 0), (5, 1)), 0),
                ('read', ((4, 4), (5, 9)), 0),
                ('write', ((4, 4), (5, 9)), 1),
            ],
            nodes=3,
        )

    def test_concurrent_writer_staging_is_not_a_deadlock(self):
        """Two disjoint writers plus a wide reader once deadlocked on a
        write intent that was never matched against the right owner."""
        self._run_ops(
            [('read', ((0, 0), (1, 1)), 0)] * 7
            + [
                ('read', ((0, 0), (5, 5)), 0),
                ('write', ((4, 4), (5, 9)), 0),
                ('write', ((5, 0), (6, 1)), 0),
            ],
            nodes=3,
        )

    def test_replica_landing_on_freshly_owned_region_stays_coherent(self):
        """A replica payload arriving after part of its region became
        locally owned must not register the owned part as a replica."""
        self._run_ops(
            [('read', ((0, 0), (1, 1)), 0)] * 7
            + [
                ('read', ((0, 4), (1, 9)), 0),
                ('write', ((0, 0), (1, 2)), 0),
                ('write', ((0, 5), (1, 8)), 0),
            ],
            nodes=4,
        )
