"""Tests for Algorithm 2 scheduling tiers, fork-join execution, stealing."""


from repro.items.grid import Grid
from repro.runtime.config import RuntimeConfig
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.tasks import TaskSpec
from repro.sim.cluster import Cluster, ClusterSpec


def make_runtime(nodes=4, cores=2, **cfg):
    cluster = Cluster(
        ClusterSpec(num_nodes=nodes, cores_per_node=cores, flops_per_core=1e9)
    )
    return AllScaleRuntime(
        cluster, RuntimeConfig(functional=False, **cfg)
    )


class TestAlgorithm2Tiers:
    def test_full_coverage_wins(self):
        """Line 4-6: the process covering ALL requirements gets the task."""
        runtime = make_runtime()
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid, placement=grid.decompose(4))
        region = runtime.process(2).data_manager.owned_region(grid)
        task = TaskSpec(
            name="t", reads={grid: region}, writes={grid: region},
            flops=1e3, size_hint=16,
        )
        runtime.wait(runtime.submit(task, origin=0))
        assert runtime.process(2).executed_leaves == 1

    def test_write_coverage_beats_policy(self):
        """Line 7-9: fall back to the process covering the write set."""
        runtime = make_runtime(nodes=2)
        grid = Grid((8, 8), name="g")
        placement = grid.decompose(2)
        runtime.register_item(grid, placement=placement)
        # reads span both processes, writes only process 1
        task = TaskSpec(
            name="t",
            reads={grid: grid.full_region},
            writes={grid: placement[1]},
            flops=1e3,
            size_hint=32,
        )
        runtime.wait(runtime.submit(task, origin=0))
        assert runtime.process(1).executed_leaves == 1

    def test_policy_decides_otherwise(self):
        """Line 10-13: no coverage anywhere → the policy places the task."""
        runtime = make_runtime()
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid)  # nothing allocated yet
        homes = runtime.home_map(grid)
        task = TaskSpec(
            name="t", writes={grid: homes[3]}, flops=1e3, size_hint=16
        )
        runtime.wait(runtime.submit(task, origin=0))
        assert runtime.process(3).executed_leaves == 1

    def test_remote_dispatch_charges_messages(self):
        runtime = make_runtime(nodes=2)
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid, placement=grid.decompose(2))
        region = runtime.process(1).data_manager.owned_region(grid)
        task = TaskSpec(
            name="t", writes={grid: region}, flops=1e3, size_hint=16
        )
        messages_before = runtime.metrics.counter("net.messages")
        runtime.wait(runtime.submit(task, origin=0))
        assert runtime.metrics.counter("sched.remote_dispatch") == 1
        # task closure + completion notification at minimum
        assert runtime.metrics.counter("net.messages") >= messages_before + 2


class TestForkJoin:
    def make_tree_task(self, lo, hi, granularity):
        size = hi - lo

        def splitter():
            mid = (lo + hi) // 2
            return [
                self.make_tree_task(lo, mid, granularity),
                self.make_tree_task(mid, hi, granularity),
            ]

        return TaskSpec(
            name=f"sum[{lo},{hi})",
            flops=100.0 * size,
            size_hint=size,
            splitter=splitter if size > 1 else None,
            body=lambda ctx: hi - lo,
            body_in_virtual=True,
            combiner=sum,
            granularity=granularity,
        )

    def test_recursive_sum(self):
        runtime = make_runtime()
        value = runtime.wait(runtime.submit(self.make_tree_task(0, 1000, 64)))
        assert value == 1000

    def test_sequential_variant_when_small(self):
        runtime = make_runtime()
        runtime.wait(runtime.submit(self.make_tree_task(0, 100, 1000)))
        # never split: one leaf did all the work
        assert runtime.metrics.counter("proc.splits") == 0
        assert runtime.metrics.counter("proc.leaves") == 1

    def test_deep_recursion_does_not_exhaust_slots(self):
        runtime = make_runtime(nodes=1, cores=1)
        value = runtime.wait(runtime.submit(self.make_tree_task(0, 256, 1)))
        assert value == 256


class TestWorkStealing:
    def test_idle_process_steals_queued_tasks(self):
        runtime = make_runtime(nodes=2, cores=1, work_stealing=True, seed=3)
        # pin many independent tasks to process 0 via explicit origin and
        # no data requirements (policy keeps them at origin)
        treetures = [
            runtime.submit(
                TaskSpec(name=f"t{k}", flops=5e6, size_hint=1), origin=0
            )
            for k in range(20)
        ]
        for t in treetures:
            runtime.wait(t)
        assert runtime.metrics.counter("proc.steals") >= 1
        assert runtime.process(1).executed_leaves > 0

    def test_no_stealing_when_disabled(self):
        runtime = make_runtime(nodes=2, cores=1, work_stealing=False)
        treetures = [
            runtime.submit(
                TaskSpec(name=f"t{k}", flops=5e6, size_hint=1), origin=0
            )
            for k in range(20)
        ]
        for t in treetures:
            runtime.wait(t)
        assert runtime.metrics.counter("proc.steals") == 0
        assert runtime.process(1).executed_leaves == 0


class TestLockConflicts:
    def test_conflicting_writers_serialize(self):
        runtime = make_runtime(nodes=1, cores=2)
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid, placement=[grid.full_region])
        tasks = [
            TaskSpec(
                name=f"w{k}",
                writes={grid: grid.full_region},
                flops=1e6,
                size_hint=64,
            )
            for k in range(3)
        ]
        treetures = [runtime.submit(t) for t in tasks]
        for t in treetures:
            runtime.wait(t)
        # all three ran despite conflicts; at least one had to wait
        assert runtime.process(0).executed_leaves == 3
        assert runtime.metrics.counter("proc.lock_waits") >= 1
        # and they serialized: elapsed >= 3 × (1e6 flops / 1e9 flops/s)
        assert runtime.now >= 3e-3
