"""Placement-path coverage for the ablation policies, and the reset contract.

The scheduler ablation benchmark reuses one policy *instance* across many
runtimes; ``reset()`` (invoked at runtime construction) must make those
runs independent.  The round-robin cursor and the random generator were
the two pieces of run-local state that used to leak.
"""

from __future__ import annotations

from repro.apps.stencil import StencilWorkload, stencil_allscale
from repro.items.grid import Grid
from repro.runtime.config import RuntimeConfig
from repro.runtime.policies import (
    DataAwarePolicy,
    PlacementContext,
    RandomPolicy,
    RoundRobinPolicy,
)
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.tasks import TaskSpec
from repro.sim.cluster import Cluster, ClusterSpec


def make_runtime(nodes=4, policy=None, **cfg):
    cluster = Cluster(
        ClusterSpec(num_nodes=nodes, cores_per_node=2, flops_per_core=1e9)
    )
    return AllScaleRuntime(
        cluster, RuntimeConfig(functional=False, **cfg), policy
    )


def _ctx(runtime, origin=0, lookup=None):
    return PlacementContext(
        runtime=runtime, origin=origin, lookup=lookup or {}
    )


def _task(**kwargs):
    defaults = dict(name="t", flops=1.0, size_hint=1.0, body=lambda ctx: None)
    defaults.update(kwargs)
    return TaskSpec(**defaults)


class TestRoundRobinPlacement:
    def test_cycles_through_processes(self):
        policy = RoundRobinPolicy()
        runtime = make_runtime(nodes=3, policy=policy)
        targets = [
            policy.pick_target(_task(), _ctx(runtime)) for _ in range(6)
        ]
        assert targets == [0, 1, 2, 0, 1, 2]

    def test_reset_rewinds_cursor(self):
        policy = RoundRobinPolicy()
        runtime = make_runtime(nodes=4, policy=policy)
        first = [policy.pick_target(_task(), _ctx(runtime)) for _ in range(3)]
        policy.reset()
        second = [policy.pick_target(_task(), _ctx(runtime)) for _ in range(3)]
        assert first == second == [0, 1, 2]


class TestRandomPlacement:
    def test_targets_in_range_and_seeded(self):
        policy = RandomPolicy(seed=7)
        runtime = make_runtime(nodes=4, policy=policy)
        first = [policy.pick_target(_task(), _ctx(runtime)) for _ in range(20)]
        assert all(0 <= t < 4 for t in first)
        policy.reset()
        second = [policy.pick_target(_task(), _ctx(runtime)) for _ in range(20)]
        assert first == second

    def test_distinct_seeds_distinct_streams(self):
        runtime = make_runtime(nodes=8)
        a = RandomPolicy(seed=1)
        b = RandomPolicy(seed=2)
        draws_a = [a.pick_target(_task(), _ctx(runtime)) for _ in range(16)]
        draws_b = [b.pick_target(_task(), _ctx(runtime)) for _ in range(16)]
        assert draws_a != draws_b


class TestDataAwareFallbackTiers:
    def test_home_hint_spreads_first_touch(self):
        """Tier 2: no ownership anywhere → the structural home hint."""
        policy = DataAwarePolicy()
        runtime = make_runtime(nodes=4, policy=policy)
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid)
        homes = runtime.home_map(grid)
        targets = set()
        for pid, home in enumerate(homes):
            task = _task(name=f"w{pid}", writes={grid: home})
            target = policy.pick_target(task, _ctx(runtime, origin=0))
            assert target == pid
            targets.add(target)
        assert targets == {0, 1, 2, 3}

    def test_home_hint_falls_back_to_reads(self):
        policy = DataAwarePolicy()
        runtime = make_runtime(nodes=4, policy=policy)
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid)
        homes = runtime.home_map(grid)
        task = _task(name="r", reads={grid: homes[2]})
        assert policy.pick_target(task, _ctx(runtime, origin=0)) == 2

    def test_no_requirements_stays_at_origin(self):
        """Tier 3: a task touching no data stays where it was submitted."""
        policy = DataAwarePolicy()
        runtime = make_runtime(nodes=4, policy=policy)
        assert policy.pick_target(_task(), _ctx(runtime, origin=3)) == 3


class TestResetContract:
    def test_runtime_construction_resets_policy(self):
        policy = RoundRobinPolicy()
        runtime = make_runtime(nodes=4, policy=policy)
        for _ in range(3):
            policy.pick_target(_task(), _ctx(runtime))
        assert policy._next == 3
        make_runtime(nodes=4, policy=policy)
        assert policy._next == 0

    def test_back_to_back_runs_identical_with_one_instance(self):
        """The determinism the ablation benchmark relies on: racing one
        shared instance over consecutive runs must not let the first
        run's cursor/RNG state leak into the second."""
        workload = StencilWorkload(
            n_per_node=200, timesteps=1, functional=False
        )
        for policy in (RoundRobinPolicy(), RandomPolicy(seed=3)):
            outcomes = []
            for _ in range(2):
                cluster = Cluster(
                    ClusterSpec(
                        num_nodes=3, cores_per_node=2, flops_per_core=1e9
                    )
                )
                result = stencil_allscale(
                    cluster,
                    workload,
                    RuntimeConfig(functional=False),
                    policy,
                )
                runtime = result.extras["runtime"]
                outcomes.append(
                    (
                        result.elapsed,
                        runtime.metrics.counter("net.messages"),
                        runtime.data_bytes_moved(),
                    )
                )
            assert outcomes[0] == outcomes[1], type(policy).__name__
