"""Application tests for iPiC3D and TPC."""

import numpy as np
import pytest

from repro.apps.ipic3d import IPic3DWorkload, ipic3d_allscale, ipic3d_mpi
from repro.apps.tpc import (
    TPCWorkload,
    make_problem,
    tpc_allscale,
    tpc_mpi,
)
from repro.sim.cluster import Cluster, ClusterSpec


def small_cluster(nodes, cores=4):
    return Cluster(
        ClusterSpec(num_nodes=nodes, cores_per_node=cores, flops_per_core=1e9)
    )


SMALL_IPIC = IPic3DWorkload(
    particles_per_node=200_000,
    cells_per_node_side=8,
    timesteps=2,
    flops_per_particle_update=100.0,
)


class TestIPic3D:
    def test_workload_accounting(self):
        wl = IPic3DWorkload(particles_per_node=1000, cells_per_node_side=4, timesteps=3)
        assert wl.field_shape(2) == (8, 4, 4)
        assert wl.particles_per_cell(2) == pytest.approx(1000 / 64)
        assert wl.total_updates(2) == 2000 * 3

    @pytest.mark.parametrize("nodes", [1, 2, 4])
    def test_both_ports_run(self, nodes):
        result_a = ipic3d_allscale(small_cluster(nodes), SMALL_IPIC)
        result_m = ipic3d_mpi(small_cluster(nodes), SMALL_IPIC)
        assert result_a.throughput > 0
        assert result_m.throughput > 0
        assert result_a.work == result_m.work

    def test_comparable_performance(self):
        """§4.2: AllScale and MPI show comparable performance for iPiC3D."""
        result_a = ipic3d_allscale(small_cluster(2), SMALL_IPIC)
        result_m = ipic3d_mpi(small_cluster(2), SMALL_IPIC)
        assert result_a.throughput > 0.4 * result_m.throughput

    def test_three_grids_distributed(self):
        result = ipic3d_allscale(small_cluster(2), SMALL_IPIC)
        runtime = result.extras["runtime"]
        runtime.check_ownership_invariants()
        names = {item.name for item in runtime.items}
        assert {"ipic3d.E", "ipic3d.B", "ipic3d.P", "ipic3d.X"} <= names
        for item in runtime.items:
            owners = sum(
                1
                for pid in range(2)
                if not runtime.process(pid)
                .data_manager.owned_region(item)
                .is_empty()
            )
            assert owners == 2

    def test_particle_grid_dominates_bytes(self):
        result = ipic3d_allscale(small_cluster(1), SMALL_IPIC)
        runtime = result.extras["runtime"]
        by_name = {item.name: item for item in runtime.items}
        assert (
            by_name["ipic3d.P"].bytes_per_element
            > by_name["ipic3d.E"].bytes_per_element
        )
        assert (
            by_name["ipic3d.X"].bytes_per_element
            < by_name["ipic3d.P"].bytes_per_element
        )


SMALL_TPC = TPCWorkload(
    total_points=4096,
    dims=3,
    radius=25.0,
    queries_per_node=6,
    depth=7,
    functional=True,
    visit_flops=10.0,
    point_flops=2.0,
)


class TestTPC:
    def test_problem_construction(self):
        problem = make_problem(SMALL_TPC, 4)
        assert problem.structure.total_points == 4096
        assert len(problem.queries) == 24
        assert len(problem.plans) == 24
        # every task root has an owner
        assert set(problem.owner_of_root.values()) <= set(range(4))
        # placement partitions the tree
        total = problem.item.empty_region()
        for region in problem.placement:
            assert total.intersect(region).is_empty()
            total = total.union(region)
        assert total.same_elements(problem.item.full_region)

    def test_plans_cover_exact_counts(self):
        """Top count + per-root counts must equal the true range count."""
        problem = make_problem(SMALL_TPC, 4)
        for qi, plan in enumerate(problem.plans):
            total = plan.top_count + sum(
                problem.band_work[(qi, root)][1]
                for root in plan.recurse_roots
            )
            exact = problem.structure.brute_force_count(
                problem.queries[qi], SMALL_TPC.radius
            )
            assert total == pytest.approx(exact)

    @pytest.mark.parametrize("nodes", [1, 2, 4])
    def test_allscale_counts_exact(self, nodes):
        problem = make_problem(SMALL_TPC, nodes)
        result = tpc_allscale(small_cluster(nodes), SMALL_TPC, problem=problem)
        counts = sorted(result.extras["counts"])
        exact = sorted(
            problem.structure.brute_force_count(q, SMALL_TPC.radius)
            for q in problem.queries
        )
        assert np.allclose(counts, exact)
        result.extras["runtime"].check_ownership_invariants()

    @pytest.mark.parametrize("nodes", [1, 2, 4])
    def test_mpi_total_matches(self, nodes):
        problem = make_problem(SMALL_TPC, nodes)
        result = tpc_mpi(small_cluster(nodes), SMALL_TPC, problem=problem)
        total = sum(result.extras["totals"].values())
        exact = sum(
            problem.structure.brute_force_count(q, SMALL_TPC.radius)
            for q in problem.queries
        )
        assert total == pytest.approx(exact)

    def test_batching_preserves_counts(self):
        """Query aggregation (the §4.2 mitigation) must not change results."""
        from dataclasses import replace

        batched = replace(SMALL_TPC, task_batch=4)
        problem = make_problem(batched, 2)
        result = tpc_allscale(small_cluster(2), batched, problem=problem)
        total = sum(result.extras["counts"])
        exact = sum(
            problem.structure.brute_force_count(q, batched.radius)
            for q in problem.queries
        )
        assert total == pytest.approx(exact)
        # fewer root tasks than queries
        assert len(result.extras["batches"]) == len(problem.queries) // 4

    def test_band_tasks_run_at_owners(self):
        problem = make_problem(SMALL_TPC, 4)
        result = tpc_allscale(small_cluster(4), SMALL_TPC, problem=problem)
        runtime = result.extras["runtime"]
        # no data was moved: tasks went to the data
        assert runtime.metrics.counter("dm.migrations") == 0
        assert runtime.metrics.counter("dm.replicas_fetched") == 0
        assert runtime.metrics.counter("sched.remote_dispatch") > 0

    def test_queries_total_override(self):
        from dataclasses import replace

        wl = replace(SMALL_TPC, queries_total=10)
        assert wl.total_queries(64) == 10
        assert SMALL_TPC.total_queries(2) == 12
