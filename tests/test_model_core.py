"""Unit tests for the static parts of the formal model (Defs. 2.1–2.8)."""

import pytest

from repro.model.actions import Create, Destroy, End, Spawn, Sync, END
from repro.model.architecture import (
    ArchitectureModel,
    ComputeUnit,
    MemorySpace,
    distributed_cluster,
    shared_memory_system,
)
from repro.model.elements import DataItemDecl
from repro.model.execution import TaskContext, VariantExecution
from repro.model.task import AccessSpec, Program, Task, Variant, simple_task
from repro.regions.interval import IntervalRegion


class TestDataItemDecl:
    def test_elems_and_size(self):
        item = DataItemDecl(IntervalRegion.span(0, 20), name="A")
        assert item.num_elements() == 20
        assert set(item.elems()) == set(range(20))

    def test_check_region(self):
        item = DataItemDecl(IntervalRegion.span(0, 10))
        item.check_region(IntervalRegion.span(2, 5))
        with pytest.raises(ValueError):
            item.check_region(IntervalRegion.span(5, 15))

    def test_identity_by_object(self):
        a = DataItemDecl(IntervalRegion.span(0, 5))
        b = DataItemDecl(IntervalRegion.span(0, 5))
        assert a is not b and a != b or a.name != b.name


class TestAccessSpec:
    def setup_method(self):
        self.item = DataItemDecl(IntervalRegion.span(0, 100), name="d")

    def test_empty_defaults(self):
        spec = AccessSpec()
        assert spec.read(self.item).is_empty()
        assert spec.write(self.item).is_empty()
        assert spec.is_empty()
        assert spec.items() == frozenset()

    def test_read_write_accessed(self):
        spec = AccessSpec(
            reads={self.item: IntervalRegion.span(0, 10)},
            writes={self.item: IntervalRegion.span(5, 15)},
        )
        assert spec.read(self.item).size() == 10
        assert spec.write(self.item).size() == 10
        assert spec.accessed(self.item).size() == 15
        assert spec.items() == {self.item}

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            AccessSpec(reads={self.item: IntervalRegion.span(50, 200)})

    def test_empty_regions_dropped(self):
        spec = AccessSpec(reads={self.item: IntervalRegion.empty()})
        assert spec.is_empty()


class TestTaskAndVariants:
    def test_variant_only_via_task(self):
        task = Task("t")
        with pytest.raises(TypeError):
            Variant(task, lambda ctx: iter(()), AccessSpec())

    def test_variants_bound_to_task(self):
        task = Task("t")
        v = task.add_variant(lambda ctx: iter(()))
        assert v.task is task
        assert task.variants == (v,)

    def test_well_formedness(self):
        with pytest.raises(ValueError):
            Task("empty").check_well_formed()
        assert simple_task(lambda ctx: iter(())).check_well_formed()

    def test_program_requires_variant(self):
        with pytest.raises(ValueError):
            Program(Task("empty"))


class TestVariantExecution:
    def test_trace_ends_with_end(self):
        def body(ctx):
            yield ctx.create(item)

        item = DataItemDecl(IntervalRegion.span(0, 5))
        task = simple_task(body)
        execution = VariantExecution.init(task.variants[0])
        first = execution.step()
        assert isinstance(first, Create)
        second = execution.step()
        assert isinstance(second, End)
        assert execution.finished
        with pytest.raises(RuntimeError):
            execution.step()

    def test_non_action_yield_rejected(self):
        def body(ctx):
            yield 42

        task = simple_task(body)
        execution = VariantExecution.init(task.variants[0])
        with pytest.raises(TypeError):
            execution.step()

    def test_context_builds_actions(self):
        task = simple_task(lambda ctx: iter(()))
        child = simple_task(lambda ctx: iter(()))
        item = DataItemDecl(IntervalRegion.span(0, 1))
        ctx = TaskContext(task.variants[0])
        assert isinstance(ctx.spawn(child), Spawn)
        assert isinstance(ctx.sync(child), Sync)
        assert isinstance(ctx.create(item), Create)
        assert isinstance(ctx.destroy(item), Destroy)
        assert END == End()


class TestArchitecture:
    def test_example_2_4(self):
        arch = distributed_cluster(2, 4)
        assert len(arch.compute_units) == 8
        assert len(arch.memories) == 2
        assert len(arch.links) == 8
        # each unit accesses exactly its node's memory
        for unit in arch.compute_units:
            assert len(arch.accessible_memories(unit)) == 1

    def test_shared_memory(self):
        arch = shared_memory_system(4)
        memory = next(iter(arch.memories))
        assert arch.units_with_access(memory) == arch.compute_units

    def test_link_validation(self):
        c = ComputeUnit("c")
        m = MemorySpace("m")
        with pytest.raises(ValueError):
            ArchitectureModel([c], [], [(c, m)])

    def test_to_networkx_bipartite(self):
        graph = distributed_cluster(2, 2).to_networkx()
        assert graph.number_of_nodes() == 6
        assert graph.number_of_edges() == 4

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            distributed_cluster(0, 1)
