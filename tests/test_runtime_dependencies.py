"""Tests for barrier-free task dependency chaining (``submit(after=...)``)."""


from repro.items.grid import Grid
from repro.regions.box import Box
from repro.runtime.config import RuntimeConfig
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.tasks import TaskSpec
from repro.sim.cluster import Cluster, ClusterSpec

import numpy as np


def make_runtime(nodes=2):
    cluster = Cluster(
        ClusterSpec(num_nodes=nodes, cores_per_node=2, flops_per_core=1e9)
    )
    return AllScaleRuntime(cluster, RuntimeConfig(functional=True))


class TestDependencies:
    def test_chain_orders_execution(self):
        runtime = make_runtime()
        order = []

        def body(tag):
            def run(ctx):
                order.append(tag)

            return run

        first = runtime.submit(
            TaskSpec(name="a", flops=1e6, body=body("a"), size_hint=1)
        )
        second = runtime.submit(
            TaskSpec(name="b", flops=1e3, body=body("b"), size_hint=1),
            after=[first],
        )
        third = runtime.submit(
            TaskSpec(name="c", flops=1e3, body=body("c"), size_hint=1),
            after=[second],
        )
        runtime.wait(third)
        assert order == ["a", "b", "c"]

    def test_fan_in_dependency(self):
        runtime = make_runtime()
        producers = [
            runtime.submit(
                TaskSpec(name=f"p{k}", flops=(k + 1) * 1e5, size_hint=1,
                         body=lambda ctx, k=k: k),
                origin=k % 2,
            )
            for k in range(4)
        ]

        def consume(ctx):
            return sum(t.value for t in producers)

        consumer = runtime.submit(
            TaskSpec(name="consumer", body=consume, size_hint=1),
            after=producers,
        )
        assert runtime.wait(consumer) == 0 + 1 + 2 + 3

    def test_dependent_write_sees_producer_data(self):
        """Write-after-write ordering without an explicit driver barrier."""
        runtime = make_runtime()
        grid = Grid((4, 4), name="g")
        runtime.register_item(grid, placement=[grid.full_region] + [
            grid.empty_region()
        ])

        def fill(value):
            def body(ctx):
                ctx.fragment(grid).scatter(
                    Box.of((0, 0), (4, 4)), np.full((4, 4), value)
                )

            return body

        first = runtime.submit(
            TaskSpec(name="w1", writes={grid: grid.full_region},
                     body=fill(1.0), size_hint=16)
        )
        second = runtime.submit(
            TaskSpec(name="w2", writes={grid: grid.full_region},
                     body=fill(2.0), size_hint=16),
            after=[first],
        )

        def read(ctx):
            return float(ctx.fragment(grid).gather(Box.of((0, 0), (4, 4))).sum())

        total = runtime.wait(
            runtime.submit(
                TaskSpec(name="r", reads={grid: grid.full_region},
                         body=read, size_hint=16),
                after=[second],
            )
        )
        assert total == 32.0

    def test_empty_after_runs_immediately(self):
        runtime = make_runtime()
        treeture = runtime.submit(
            TaskSpec(name="t", body=lambda ctx: 42, size_hint=1), after=[]
        )
        assert runtime.wait(treeture) == 42
