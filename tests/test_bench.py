"""Tests for the benchmark harness, reporting, and Table 1 regeneration."""

import json
import pathlib

import pytest

from repro.apps.common import AppResult
from repro.bench.harness import (
    FIG7_NODE_COUNTS,
    ScalingPoint,
    ScalingSeries,
    parallel_efficiency,
    sweep,
)
from repro.bench.report import (
    render_series,
    render_table,
    render_table1,
    series_to_csv,
)
from repro.bench.tables import TABLE1_ROWS, table1


def make_series(values_as, values_mpi, nodes=(1, 2, 4)):
    series = ScalingSeries(app="x", metric="u/s")
    for n, a, m in zip(nodes, values_as, values_mpi):
        series.points.append(ScalingPoint(n, a, m))
    return series


class TestScalingSeries:
    def test_add_and_accessors(self):
        series = ScalingSeries(app="a", metric="m")
        series.add(
            AppResult("a", "allscale", 2, elapsed=1.0, work=10.0),
            AppResult("a", "mpi", 2, elapsed=1.0, work=20.0),
        )
        point = series.point_at(2)
        assert point.allscale == 10.0 and point.mpi == 20.0
        assert point.ratio == pytest.approx(0.5)
        with pytest.raises(KeyError):
            series.point_at(99)

    def test_mismatched_nodes_rejected(self):
        series = ScalingSeries(app="a", metric="m")
        with pytest.raises(ValueError):
            series.add(
                AppResult("a", "allscale", 2, elapsed=1.0, work=1.0),
                AppResult("a", "mpi", 4, elapsed=1.0, work=1.0),
            )

    def test_linear_reference(self):
        series = make_series([100, 190, 350], [120, 240, 480])
        assert series.linear("allscale") == [100, 200, 400]
        assert series.linear("mpi") == [120, 240, 480]

    def test_efficiency(self):
        series = make_series([100, 190, 350], [120, 240, 480])
        assert parallel_efficiency(series, "allscale") == pytest.approx(0.875)
        assert parallel_efficiency(series, "mpi") == pytest.approx(1.0)

    def test_speedup(self):
        series = make_series([100, 200, 300], [100, 100, 100])
        assert series.speedup("allscale") == [1, 2, 3]

    def test_sweep_runs_both_systems(self):
        calls = []

        def run(system):
            def inner(nodes):
                calls.append((system, nodes))
                return AppResult("a", system, nodes, elapsed=1.0, work=nodes)

            return inner

        series = sweep("a", "m", (1, 2), run("allscale"), run("mpi"))
        assert [p.nodes for p in series.points] == [1, 2]
        assert ("allscale", 1) in calls and ("mpi", 2) in calls

    def test_fig7_axis(self):
        assert FIG7_NODE_COUNTS == (1, 2, 4, 8, 16, 32, 64)


class TestTable1:
    def test_default_rows_match_paper(self):
        rows = {row.name: row for row in TABLE1_ROWS}
        assert rows["stencil"].problem_size == "20,000² elements per node"
        assert rows["stencil"].metric == "FLOPS"
        assert rows["iPiC3D"].problem_size == "48 · 10⁶ particles per node"
        assert rows["iPiC3D"].data_structure == "multiple regular 3D grids"
        assert rows["TPC"].problem_size == "2^29 points in [0, 100)^7 with radius 20"
        assert rows["TPC"].metric == "queries per second"

    def test_customized_workloads(self):
        from repro.apps.stencil import StencilWorkload

        rows = table1(stencil=StencilWorkload(n_per_node=100))
        assert rows[0].problem_size == "100² elements per node"


class TestReports:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "333" in lines[3]

    def test_render_table1(self):
        text = render_table1(TABLE1_ROWS)
        assert "stencil" in text and "kd-tree" in text

    def test_render_series(self):
        series = make_series([100, 190, 350], [120, 240, 480])
        text = render_series(series)
        assert "Fig. 7" in text
        assert "AS/MPI" in text
        assert "400" in text  # linear column

    def test_series_to_csv(self):
        series = make_series([100.0, 190.0], [120.0, 240.0], nodes=(1, 2))
        csv = series_to_csv(series)
        lines = csv.strip().splitlines()
        assert lines[0] == "app,metric,nodes,allscale,mpi,linear"
        assert len(lines) == 3
        assert lines[1].startswith("x,u/s,1,100.0,120.0")


class TestCommsPoint:
    def make_point(self, **overrides):
        from repro.bench.comms import CommsPoint

        values = dict(
            app="x",
            nodes=4,
            messages_off=1000.0,
            messages_on=600.0,
            net_bytes_off=5000.0,
            net_bytes_on=4000.0,
            data_bytes_off=2048.0,
            data_bytes_on=2048.0,
            work_off=10.0,
            work_on=10.0,
            elapsed_off=2.0,
            elapsed_on=1.5,
        )
        values.update(overrides)
        return CommsPoint(**values)

    def test_message_reduction(self):
        assert self.make_point().message_reduction == pytest.approx(0.4)
        zero = self.make_point(messages_off=0.0, messages_on=0.0)
        assert zero.message_reduction == 0.0

    def test_elapsed_delta(self):
        assert self.make_point().elapsed_delta == pytest.approx(-0.25)
        zero = self.make_point(elapsed_off=0.0)
        assert zero.elapsed_delta == 0.0

    def test_outputs_identical(self):
        assert self.make_point().outputs_identical
        assert not self.make_point(work_on=11.0).outputs_identical
        assert not self.make_point(data_bytes_on=1.0).outputs_identical

    def test_to_row_shape(self):
        row = self.make_point().to_row()
        assert row["message_reduction"] == 0.4
        assert row["outputs_identical"] is True
        assert row["counters"] == {}

    def test_render_and_json(self):
        from repro.bench.comms import comms_to_json, render_comms

        points = [self.make_point()]
        text = render_comms(points)
        assert "+40.0%" in text and "yes" in text
        payload = json.loads(comms_to_json(points))
        assert payload["apps"]["x"]["messages_on"] == 600.0


class TestCommsBaseline:
    """The committed comms panel must keep its schema and its promises."""

    ROW_KEYS = {
        "app",
        "nodes",
        "messages_off",
        "messages_on",
        "message_reduction",
        "net_bytes_off",
        "net_bytes_on",
        "data_bytes_off",
        "data_bytes_on",
        "work_off",
        "work_on",
        "elapsed_off",
        "elapsed_on",
        "elapsed_delta",
        "outputs_identical",
        "counters",
    }

    @pytest.fixture
    def baseline(self):
        path = (
            pathlib.Path(__file__).resolve().parent.parent
            / "BENCH_comms_baseline.json"
        )
        return json.loads(path.read_text())

    def test_schema_pinned(self, baseline):
        from repro.bench.comms import COMMS_NODE_COUNT, COMMS_SCHEMA_VERSION

        assert baseline["schema"] == COMMS_SCHEMA_VERSION
        assert baseline["nodes"] == COMMS_NODE_COUNT
        assert set(baseline["apps"]) == {"stencil", "ipic3d", "tpc"}
        for row in baseline["apps"].values():
            assert set(row) == self.ROW_KEYS

    def test_counters_pinned(self, baseline):
        from repro.bench.comms import _ON_COUNTERS

        for row in baseline["apps"].values():
            assert set(row["counters"]) == set(_ON_COUNTERS)

    def test_outputs_identical_everywhere(self, baseline):
        for row in baseline["apps"].values():
            assert row["outputs_identical"] is True
            assert row["data_bytes_off"] == row["data_bytes_on"]
            assert row["work_off"] == row["work_on"]

    def test_message_reduction_targets(self, baseline):
        # the acceptance bar: >= 30% fewer messages on the TPC panel,
        # and every app must see a material reduction
        assert baseline["apps"]["tpc"]["message_reduction"] >= 0.30
        for row in baseline["apps"].values():
            assert row["message_reduction"] >= 0.25

    def test_comms_layer_actually_engaged(self, baseline):
        for row in baseline["apps"].values():
            counters = row["counters"]
            assert counters["net.bulk_messages"] > 0
            if row["data_bytes_off"]:
                # apps that move payload do it through audited plans;
                # TPC's kd-tree is pre-placed, so its win is pure
                # dispatch batching and it never opens a plan
                assert counters["comms.plans"] > 0
                assert (
                    counters["comms.moved_bytes"] == row["data_bytes_on"]
                )
            assert counters["comms.batched_dispatches"] > 0
