"""Tests for the benchmark harness, reporting, and Table 1 regeneration."""

import pytest

from repro.apps.common import AppResult
from repro.bench.harness import (
    FIG7_NODE_COUNTS,
    ScalingPoint,
    ScalingSeries,
    parallel_efficiency,
    sweep,
)
from repro.bench.report import (
    render_series,
    render_table,
    render_table1,
    series_to_csv,
)
from repro.bench.tables import TABLE1_ROWS, table1


def make_series(values_as, values_mpi, nodes=(1, 2, 4)):
    series = ScalingSeries(app="x", metric="u/s")
    for n, a, m in zip(nodes, values_as, values_mpi):
        series.points.append(ScalingPoint(n, a, m))
    return series


class TestScalingSeries:
    def test_add_and_accessors(self):
        series = ScalingSeries(app="a", metric="m")
        series.add(
            AppResult("a", "allscale", 2, elapsed=1.0, work=10.0),
            AppResult("a", "mpi", 2, elapsed=1.0, work=20.0),
        )
        point = series.point_at(2)
        assert point.allscale == 10.0 and point.mpi == 20.0
        assert point.ratio == pytest.approx(0.5)
        with pytest.raises(KeyError):
            series.point_at(99)

    def test_mismatched_nodes_rejected(self):
        series = ScalingSeries(app="a", metric="m")
        with pytest.raises(ValueError):
            series.add(
                AppResult("a", "allscale", 2, elapsed=1.0, work=1.0),
                AppResult("a", "mpi", 4, elapsed=1.0, work=1.0),
            )

    def test_linear_reference(self):
        series = make_series([100, 190, 350], [120, 240, 480])
        assert series.linear("allscale") == [100, 200, 400]
        assert series.linear("mpi") == [120, 240, 480]

    def test_efficiency(self):
        series = make_series([100, 190, 350], [120, 240, 480])
        assert parallel_efficiency(series, "allscale") == pytest.approx(0.875)
        assert parallel_efficiency(series, "mpi") == pytest.approx(1.0)

    def test_speedup(self):
        series = make_series([100, 200, 300], [100, 100, 100])
        assert series.speedup("allscale") == [1, 2, 3]

    def test_sweep_runs_both_systems(self):
        calls = []

        def run(system):
            def inner(nodes):
                calls.append((system, nodes))
                return AppResult("a", system, nodes, elapsed=1.0, work=nodes)

            return inner

        series = sweep("a", "m", (1, 2), run("allscale"), run("mpi"))
        assert [p.nodes for p in series.points] == [1, 2]
        assert ("allscale", 1) in calls and ("mpi", 2) in calls

    def test_fig7_axis(self):
        assert FIG7_NODE_COUNTS == (1, 2, 4, 8, 16, 32, 64)


class TestTable1:
    def test_default_rows_match_paper(self):
        rows = {row.name: row for row in TABLE1_ROWS}
        assert rows["stencil"].problem_size == "20,000² elements per node"
        assert rows["stencil"].metric == "FLOPS"
        assert rows["iPiC3D"].problem_size == "48 · 10⁶ particles per node"
        assert rows["iPiC3D"].data_structure == "multiple regular 3D grids"
        assert rows["TPC"].problem_size == "2^29 points in [0, 100)^7 with radius 20"
        assert rows["TPC"].metric == "queries per second"

    def test_customized_workloads(self):
        from repro.apps.stencil import StencilWorkload

        rows = table1(stencil=StencilWorkload(n_per_node=100))
        assert rows[0].problem_size == "100² elements per node"


class TestReports:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "333" in lines[3]

    def test_render_table1(self):
        text = render_table1(TABLE1_ROWS)
        assert "stencil" in text and "kd-tree" in text

    def test_render_series(self):
        series = make_series([100, 190, 350], [120, 240, 480])
        text = render_series(series)
        assert "Fig. 7" in text
        assert "AS/MPI" in text
        assert "400" in text  # linear column

    def test_series_to_csv(self):
        series = make_series([100.0, 190.0], [120.0, 240.0], nodes=(1, 2))
        csv = series_to_csv(series)
        lines = csv.strip().splitlines()
        assert lines[0] == "app,metric,nodes,allscale,mpi,linear"
        assert len(lines) == 3
        assert lines[1].startswith("x,u/s,1,100.0,120.0")
