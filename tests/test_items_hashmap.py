"""Tests for the distributed hash-map data item."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.items.hashmap import HashMapItem
from repro.regions.interval import IntervalRegion
from repro.runtime.config import RuntimeConfig
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.tasks import TaskSpec
from repro.sim.cluster import Cluster, ClusterSpec


class TestHashMapItem:
    def test_validation(self):
        with pytest.raises(ValueError):
            HashMapItem(num_buckets=0)
        with pytest.raises(ValueError):
            HashMapItem(bytes_per_bucket=0)

    def test_bucket_of_is_stable_and_in_range(self):
        item = HashMapItem(num_buckets=32)
        for key in ("a", "b", 17, (1, 2), "some longer key"):
            bucket = item.bucket_of(key)
            assert 0 <= bucket < 32
            assert item.bucket_of(key) == bucket

    def test_key_region(self):
        item = HashMapItem(num_buckets=64)
        keys = ["x", "y", "z"]
        region = item.key_region(keys)
        for key in keys:
            assert region.contains(item.bucket_of(key))

    def test_decompose(self):
        item = HashMapItem(num_buckets=100)
        parts = item.decompose(7)
        assert len(parts) == 7
        assert sum(p.size() for p in parts) == 100


class TestHashMapFragment:
    def setup_method(self):
        self.item = HashMapItem(num_buckets=16, name="m")
        self.fragment = self.item.new_fragment(self.item.full_region)

    def test_put_get_delete(self):
        self.fragment.put("k", 1)
        assert self.fragment.get("k") == 1
        assert self.fragment.get("missing", "d") == "d"
        assert self.fragment.delete("k")
        assert not self.fragment.delete("k")
        assert self.fragment.get("k") is None

    def test_out_of_region_key_rejected(self):
        key = "hello"
        bucket = self.item.bucket_of(key)
        other = self.item.full_region.difference(
            IntervalRegion.of_points([bucket])
        )
        fragment = self.item.new_fragment(other)
        with pytest.raises(KeyError):
            fragment.put(key, 1)

    def test_extract_insert_moves_entries(self):
        self.fragment.put("a", 1)
        self.fragment.put("b", 2)
        region = self.item.key_region(["a"])
        payload = self.fragment.extract(region)
        other = self.item.new_fragment(self.item.empty_region())
        other.insert(payload)
        assert other.get("a") == 1
        assert other.local_size() >= 1

    def test_resize_drops_out_of_region_entries(self):
        self.fragment.put("a", 1)
        bucket = self.item.bucket_of("a")
        rest = self.item.full_region.difference(
            IntervalRegion.of_points([bucket])
        )
        self.fragment.resize(rest)
        assert self.fragment.local_size() == 0

    def test_virtual_mode(self):
        fragment = self.item.new_fragment(
            self.item.full_region, functional=False
        )
        with pytest.raises(RuntimeError):
            fragment.put("k", 1)
        payload = fragment.extract(self.item.full_region)
        assert payload.data is None
        assert payload.nbytes == 16 * 1024

    @given(
        st.lists(
            st.tuples(st.text(max_size=8), st.integers()),
            max_size=30,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_behaves_like_a_dict(self, pairs):
        fragment = HashMapItem(num_buckets=8).new_fragment(
            IntervalRegion.span(0, 8)
        )
        reference = {}
        for key, value in pairs:
            fragment.put(key, value)
            reference[key] = value
        assert dict(fragment.local_items()) == reference
        assert fragment.local_size() == len(reference)


class TestHashMapOnRuntime:
    def test_runtime_managed_map(self):
        """The map distributes, and keyed tasks route to bucket owners."""
        cluster = Cluster(
            ClusterSpec(num_nodes=4, cores_per_node=2, flops_per_core=1e9)
        )
        runtime = AllScaleRuntime(cluster, RuntimeConfig(functional=True))
        item = HashMapItem(num_buckets=64, name="kv")
        runtime.register_item(item, placement=item.decompose(4))

        keys = [f"key{k}" for k in range(40)]

        def put_task(key):
            region = item.key_region([key])

            def body(ctx):
                ctx.fragment(item).put(key, key.upper())

            return TaskSpec(
                name=f"put.{key}",
                writes={item: region},
                body=body,
                size_hint=1,
            )

        for key in keys:
            runtime.wait(runtime.submit(put_task(key)))
        runtime.check_ownership_invariants()

        # each entry landed on the process owning its bucket
        total = 0
        for pid in range(4):
            manager = runtime.process(pid).data_manager
            fragment = manager.fragment(item)
            for key, value in fragment.local_items():
                assert value == key.upper()
                assert manager.owned_region(item).contains(
                    item.bucket_of(key)
                )
                total += 1
        assert total == len(keys)

        # a read task for one key routes to the owner and sees the value
        key = keys[7]

        def get_body(ctx):
            return ctx.fragment(item).get(key)

        value = runtime.wait(
            runtime.submit(
                TaskSpec(
                    name="get",
                    reads={item: item.key_region([key])},
                    body=get_body,
                    size_hint=1,
                )
            )
        )
        assert value == key.upper()
