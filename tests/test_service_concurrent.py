"""Property sweeps: interleaved multi-tenant submissions under hypothesis.

The ISSUE's pinned properties: quota accounting never goes negative,
rejected jobs consume zero cluster time, and fair-share weights are
respected within tolerance on synthetic arrival traces.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import (
    JobSpec,
    JobState,
    ServiceConfig,
    ServiceCore,
    TenantConfig,
)
from repro.service.trace import Trace, TraceEvent, contended_shares, replay

TENANTS = ("alpha", "beta", "gamma")

# one compute unit = 0.02 node-seconds on the default 2.4e9 flops/core
COMPUTE = {"flops": 4.8e7, "tasks": 4}

#: submissions drawn for the invariant sweep: a kind (racy and broken
#: ones included), a tenant (sometimes unknown), and a priority
submissions = st.lists(
    st.tuples(
        st.sampled_from(TENANTS + ("ghost",)),
        st.sampled_from(
            ("compute", "grid_sum", "bad_overlap", "nope", "queries")
        ),
        st.integers(-2, 2),
    ),
    min_size=1,
    max_size=20,
)


def build_core(budget: float | None) -> ServiceCore:
    return ServiceCore(
        ServiceConfig(
            nodes=2,
            cores_per_node=2,
            tenants=(
                TenantConfig("alpha", weight=3.0, max_concurrent_jobs=2),
                TenantConfig("beta", weight=2.0, max_concurrent_jobs=1),
                TenantConfig(
                    "gamma",
                    weight=1.0,
                    max_concurrent_jobs=2,
                    max_node_seconds=budget,
                ),
            ),
            max_running_jobs=2,
        )
    )


@settings(max_examples=25, deadline=None)
@given(
    subs=submissions,
    budget=st.one_of(st.none(), st.floats(0.0, 0.1)),
    arrivals=st.sampled_from(("burst", "spread")),
)
def test_invariants_hold_for_any_interleaving(subs, budget, arrivals):
    core = build_core(budget)
    records = []
    for index, (tenant, kind, priority) in enumerate(subs):
        params = COMPUTE if kind == "compute" else {}
        spec = JobSpec(
            tenant=tenant, kind=kind, params=params, priority=priority
        )
        if arrivals == "burst":
            records.append(core.submit(spec))
        else:
            core.schedule(spec, at=0.01 * index)
    core.run_until_drained()
    core.check_invariants()  # raises on any negative/oversubscribed count
    records = list(core.jobs.values())
    assert len(records) == len(subs)
    for record in records:
        # every submission reaches a terminal state with a verdict
        assert record.terminal
        assert record.verdict is not None
        if record.state == JobState.REJECTED:
            # rejected jobs consume no cluster time
            assert record.node_seconds == 0.0
            assert record.started_at is None
            assert record.verdict.reason != "ok"
        else:
            assert record.state == JobState.COMPLETED
            assert record.verdict.accepted
    for name, ledger in core.ledgers.items():
        assert ledger.running == 0 and ledger.reserved == 0.0
        assert ledger.used >= 0.0
        assert ledger.admitted + ledger.rejected == ledger.submitted
        assert ledger.completed == ledger.admitted
        cap = ledger.config.max_node_seconds
        if cap is not None:
            assert ledger.used <= cap + 1e-9
    # unknown tenants never acquire a ledger
    assert "ghost" not in core.ledgers


@settings(max_examples=15, deadline=None)
@given(
    weights=st.tuples(
        st.integers(1, 4), st.integers(1, 4), st.integers(1, 4)
    ),
    jobs_per_tenant=st.integers(12, 24),
)
def test_weights_respected_on_synthetic_traces(weights, jobs_per_tenant):
    """Committed shares at a contended horizon track any weight vector."""
    config = ServiceConfig(
        nodes=2,
        cores_per_node=2,
        tenants=tuple(
            TenantConfig(name, weight=float(weight), max_concurrent_jobs=2)
            for name, weight in zip(TENANTS, weights)
        ),
        max_running_jobs=2,
    )
    core = ServiceCore(config)
    for _ in range(jobs_per_tenant):
        for tenant in TENANTS:
            core.submit(
                JobSpec(tenant=tenant, kind="compute", params=COMPUTE)
            )
    # horizon: every tenant still backlogged afterwards, with enough
    # dispatches that one-job quantization stays inside the tolerance
    total_weight = sum(weights)
    rounds = (jobs_per_tenant - 2) // max(weights)
    horizon = max(total_weight, rounds * total_weight // 2)
    while core.fairshare.dispatches < horizon:
        core.step()
    snapshot = contended_shares(core)
    for name, weight in zip(TENANTS, weights):
        share = snapshot["tenants"][name]
        expected = weight / total_weight
        # within one job's worth of the horizon, relative to the share
        slack = 0.022 / (horizon * 0.02 * expected)
        assert share["observed_share"] == pytest.approx(
            expected, rel=max(0.1, slack)
        )
    core.run_until_drained()
    core.check_invariants()


@settings(max_examples=10, deadline=None)
@given(
    data=st.lists(
        st.tuples(
            st.floats(0.0, 0.2),
            st.sampled_from(TENANTS),
            st.sampled_from(("compute", "bad_overlap")),
        ),
        min_size=1,
        max_size=15,
    )
)
def test_trace_replay_is_deterministic(data):
    trace = Trace(
        config=ServiceConfig(
            nodes=2,
            cores_per_node=2,
            tenants=(
                TenantConfig("alpha", weight=3.0),
                TenantConfig("beta", weight=2.0),
                TenantConfig("gamma", weight=1.0),
            ),
        ),
        events=[
            TraceEvent(
                at,
                JobSpec(
                    tenant=tenant,
                    kind=kind,
                    params=COMPUTE if kind == "compute" else {},
                ),
            )
            for at, tenant, kind in sorted(data, key=lambda t: t[0])
        ],
    )
    first = replay(trace)
    second = replay(Trace.from_dict(trace.to_dict()))
    assert first == second
    assert first["false_accepts"] == 0
