"""Tests for the Appendix A vocabulary and the boundedness arguments.

Beyond exercising the accessors, these tests check the *quantitative*
claims of the appendix proofs on concrete executions: the progress-step
bound of Theorem A.3 (``p_steps ≤ u·|V_p|``) and the finiteness of the
reachable task set for terminating programs (Lemma A.1).
"""

import pytest

from repro.model import appendix
from repro.model.architecture import distributed_cluster
from repro.model.elements import DataItemDecl
from repro.model.interpreter import Interpreter, InterpreterConfig
from repro.model.task import AccessSpec, Program, simple_task
from repro.regions.interval import IntervalRegion


def noop(ctx):
    return
    yield  # pragma: no cover


def make_program(width=3):
    item = DataItemDecl(IntervalRegion.span(0, 30), name="d")
    per = 30 // width
    children = [
        simple_task(
            noop,
            AccessSpec(writes={item: IntervalRegion.span(k * per, (k + 1) * per)}),
            name=f"w{k}",
        )
        for k in range(width)
    ]

    def main(ctx):
        yield ctx.create(item)
        for child in children:
            yield ctx.spawn(child)
        for child in children:
            yield ctx.sync(child)
        yield ctx.destroy(item)

    return Program(simple_task(main, name="main")), children


class TestAccessors:
    def test_initial_state_components(self):
        program, _ = make_program()
        state = appendix.start(program, distributed_cluster(2, 1))
        assert appendix.q(state) == {program.entry}
        assert appendix.r(state) == set()
        assert appendix.b(state) == set()
        assert appendix.v(state) == set()
        assert appendix.d(state) == {}
        assert appendix.l(state) == {}
        assert not appendix.is_terminal(state)

    def test_accessors_mid_execution(self):
        program, children = make_program()
        interp = Interpreter(InterpreterConfig(seed=2, record_snapshots=True))
        trace, state = interp.run_to_completion(
            program, distributed_cluster(2, 2)
        )
        # terminal: F membership and empty lock map
        assert appendix.is_terminal(state)
        assert appendix.l(state) == {}
        # D may be non-empty in F — here it is empty because of destroy
        assert appendix.d(state) == {}

    def test_l_unions_read_and_write_locks(self):
        program, _ = make_program(width=1)
        state = appendix.start(program, distributed_cluster(1, 1))
        item = DataItemDecl(IntervalRegion.span(0, 4), name="x")
        variant = program.entry.variants[0]
        memory = next(iter(state.architecture.memories))
        state.read_locks[(variant, memory, item)] = IntervalRegion.span(0, 2)
        state.write_locks[(variant, memory, item)] = IntervalRegion.span(2, 4)
        combined = appendix.l(state)
        assert combined[(variant, memory, item)].size() == 4


class TestTraceUtilities:
    def test_progress_kinds_match_definition_a2(self):
        assert appendix.progress_kinds() == frozenset(
            {"start", "spawn", "sync", "continue", "end", "create", "destroy"}
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_p_steps_bounded_by_variant_count(self, seed):
        """Theorem A.3's bound: p_steps ≤ u · |V_p| for some per-variant
        step bound u.  Here every variant needs at most (its action count
        + start + continue-after-syncs) progress steps; width-3 programs
        have u ≤ 9 and |V_p| = 4."""
        program, children = make_program(width=3)
        interp = Interpreter(
            InterpreterConfig(seed=seed, chaos_data_ops=0.3, max_transitions=10_000)
        )
        trace, state = interp.run_to_completion(
            program, distributed_cluster(2, 2)
        )
        variants = 1 + len(children)
        assert appendix.p_steps(trace) <= 9 * variants
        assert appendix.is_full_trace(trace)

    def test_reachable_tasks_finite_and_exact(self):
        program, children = make_program(width=4)
        interp = Interpreter(InterpreterConfig(seed=0))
        trace, state = interp.run_to_completion(
            program, distributed_cluster(2, 1)
        )
        spawned = appendix.reachable_task_names(trace)
        # Lemma A.1: finite; here exactly the workers' variants appear
        assert len(spawned) == 4

    def test_deadlocked_trace_is_not_full(self):
        a = simple_task(noop, name="a")

        def main(ctx):
            yield ctx.sync(a)  # a is spawned nowhere... but the literal
            # continue-guard treats never-spawned tasks as done, so spawn
            # a real cycle instead
        from repro.model.task import Task

        x = Task("x")
        y = Task("y")
        x.add_variant(lambda ctx: iter([ctx.sync(y)]))
        y.add_variant(lambda ctx: iter([ctx.sync(x)]))

        def main2(ctx):
            yield ctx.spawn(x)
            yield ctx.spawn(y)
            yield ctx.sync(x)

        interp = Interpreter(InterpreterConfig(seed=1, max_transitions=300))
        trace, _state = interp.run(
            Program(simple_task(main2, name="main2")), distributed_cluster(1, 2)
        )
        assert not appendix.is_full_trace(trace)
