"""Failure-injection tests: resource exhaustion and malformed usage.

The runtime's error surfaces must be loud and precise — silent
misbehaviour under resource pressure is how distributed systems corrupt
results.
"""

import pytest

from repro.items.grid import Grid
from repro.runtime.config import RuntimeConfig
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.tasks import TaskExecutionContext, TaskSpec
from repro.sim.cluster import Cluster, ClusterSpec
from repro.sim.node import MemoryExhaustedError


class TestMemoryPressure:
    def test_allocation_beyond_budget_raises(self):
        cluster = Cluster(
            ClusterSpec(
                num_nodes=1,
                cores_per_node=1,
                flops_per_core=1e9,
                memory_per_node=1000.0,  # 1 kB budget
            )
        )
        runtime = AllScaleRuntime(cluster, RuntimeConfig(functional=False))
        grid = Grid((64, 64), name="g")  # 32 kB item
        runtime.register_item(grid)
        task = TaskSpec(
            name="w", writes={grid: grid.full_region}, flops=1.0,
            size_hint=4096,
        )
        runtime.submit(task)
        with pytest.raises(MemoryExhaustedError):
            runtime.run()

    def test_budget_respected_across_items(self):
        cluster = Cluster(
            ClusterSpec(
                num_nodes=2,
                cores_per_node=1,
                flops_per_core=1e9,
                memory_per_node=20_000.0,
            )
        )
        runtime = AllScaleRuntime(cluster, RuntimeConfig(functional=False))
        # two items that fit individually per node but not together on one
        a = Grid((40, 40), name="a")  # 12.8 kB
        b = Grid((40, 40), name="b")  # 12.8 kB
        runtime.register_item(a, placement=a.decompose(2))  # 6.4 kB/node
        runtime.register_item(b, placement=b.decompose(2))
        # within budget: fine
        assert all(
            p.node.memory_used <= p.node.memory_bytes
            for p in runtime.processes
        )

    def test_destroy_frees_budget(self):
        cluster = Cluster(
            ClusterSpec(
                num_nodes=1,
                cores_per_node=1,
                flops_per_core=1e9,
                memory_per_node=40_000.0,
            )
        )
        runtime = AllScaleRuntime(cluster, RuntimeConfig(functional=False))
        for round_no in range(4):
            grid = Grid((64, 64), name=f"g{round_no}")  # 32 kB each
            runtime.register_item(grid, placement=[grid.full_region])
            runtime.destroy_item(grid)
        assert runtime.process(0).node.memory_used == 0


class TestMalformedUsage:
    def make_runtime(self):
        cluster = Cluster(
            ClusterSpec(num_nodes=2, cores_per_node=1, flops_per_core=1e9)
        )
        return AllScaleRuntime(cluster, RuntimeConfig(functional=True))

    def test_body_touching_undeclared_item_raises(self):
        runtime = self.make_runtime()
        declared = Grid((4, 4), name="declared")
        undeclared = Grid((4, 4), name="undeclared")
        runtime.register_item(declared, placement=[declared.full_region,
                                                   declared.empty_region()])
        runtime.register_item(undeclared)

        def body(ctx: TaskExecutionContext):
            ctx.fragment(undeclared)  # not in the requirement set

        task = TaskSpec(
            name="bad",
            reads={declared: declared.full_region},
            body=body,
            size_hint=16,
        )
        runtime.submit(task)
        with pytest.raises(KeyError, match="declared no requirement"):
            runtime.run()

    def test_body_reading_outside_declared_region_raises(self):
        runtime = self.make_runtime()
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid, placement=grid.decompose(2))
        from repro.regions.box import Box

        def body(ctx):
            # declared only the top half; gather the whole grid
            ctx.fragment(grid).gather(Box.of((0, 0), (8, 8)))

        task = TaskSpec(
            name="overreach",
            reads={grid: grid.box((0, 0), (4, 8))},
            body=body,
            size_hint=32,
        )
        runtime.submit(task)
        with pytest.raises(KeyError, match="not covered"):
            runtime.run()

    def test_invalid_policy_target_rejected(self):
        from repro.runtime.policies import SchedulingPolicy

        class BrokenPolicy(SchedulingPolicy):
            def pick_variant(self, task, runtime):
                return "leaf"

            def pick_target(self, task, ctx):
                return 99  # out of range

        cluster = Cluster(
            ClusterSpec(num_nodes=2, cores_per_node=1, flops_per_core=1e9)
        )
        runtime = AllScaleRuntime(
            cluster, RuntimeConfig(functional=False), policy=BrokenPolicy()
        )
        # the assignment process starts eagerly, so submit itself raises
        with pytest.raises(ValueError, match="invalid target"):
            runtime.submit(TaskSpec(name="t", flops=1.0, size_hint=1))
            runtime.run()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RuntimeConfig(oversubscription=0)
        with pytest.raises(ValueError):
            RuntimeConfig(min_task_size=0)
        with pytest.raises(ValueError):
            RuntimeConfig(task_spawn_overhead=-1.0)
