"""Tests for the simulated MPI substrate: p2p, collectives, halo exchange."""

import pytest

from repro.mpi.halo import exchange_step, plan_halo_exchange
from repro.mpi.program import run_spmd
from repro.regions.box import Box, grid_block_decomposition
from repro.sim.cluster import Cluster, ClusterSpec


def make_cluster(nodes, cores=2):
    return Cluster(
        ClusterSpec(num_nodes=nodes, cores_per_node=cores, flops_per_core=1e9)
    )


class TestPointToPoint:
    def test_send_recv_value(self):
        cluster = make_cluster(2)

        def main(comm):
            if comm.rank == 0:
                comm.isend(1, 100, {"a": 7}, tag=5)
                return None
            value = yield comm.recv(0, tag=5)
            return value

        results = run_spmd(cluster, main)
        assert results[1] == {"a": 7}

    def test_messages_matched_in_order(self):
        cluster = make_cluster(2)

        def main(comm):
            if comm.rank == 0:
                for k in range(5):
                    comm.isend(1, 10, k, tag=1)
                return None
            out = []
            for _ in range(5):
                out.append((yield comm.recv(0, tag=1)))
            return out

        results = run_spmd(cluster, main)
        assert results[1] == [0, 1, 2, 3, 4]

    def test_recv_before_send(self):
        cluster = make_cluster(2)

        def main(comm):
            if comm.rank == 1:
                value = yield comm.recv(0, tag=9)
                return value
            yield comm.compute_seconds(0.001)  # recv posted first
            comm.isend(1, 10, "late", tag=9)

        assert run_spmd(cluster, main)[1] == "late"

    def test_tags_do_not_cross_match(self):
        cluster = make_cluster(2)

        def main(comm):
            if comm.rank == 0:
                comm.isend(1, 10, "tagA", tag=1)
                comm.isend(1, 10, "tagB", tag=2)
                return None
            b = yield comm.recv(0, tag=2)
            a = yield comm.recv(0, tag=1)
            return (a, b)

        assert run_spmd(cluster, main)[1] == ("tagA", "tagB")

    def test_sendrecv(self):
        cluster = make_cluster(2)

        def main(comm):
            peer = 1 - comm.rank
            got = yield from comm.sendrecv(peer, 10, f"from{comm.rank}", tag=3)
            return got

        results = run_spmd(cluster, main)
        assert results == ["from1", "from0"]

    def test_deadlock_detection(self):
        cluster = make_cluster(2)

        def main(comm):
            yield comm.recv(1 - comm.rank, tag=0)  # nobody sends

        with pytest.raises(RuntimeError, match="stuck ranks"):
            run_spmd(cluster, main)


class TestCollectives:
    @pytest.mark.parametrize("nodes", [1, 2, 3, 4, 7, 8, 16])
    def test_allreduce(self, nodes):
        cluster = make_cluster(nodes)

        def main(comm):
            total = yield from comm.allreduce(comm.rank + 1, 8)
            return total

        expected = sum(range(1, nodes + 1))
        assert run_spmd(cluster, main) == [expected] * nodes

    @pytest.mark.parametrize("nodes", [1, 2, 5, 8])
    @pytest.mark.parametrize("root", [0, 1])
    def test_bcast(self, nodes, root):
        if root >= nodes:
            pytest.skip("root outside communicator")
        cluster = make_cluster(nodes)

        def main(comm):
            value = "payload" if comm.rank == root else None
            value = yield from comm.bcast(value, 64, root=root)
            return value

        assert run_spmd(cluster, main) == ["payload"] * nodes

    @pytest.mark.parametrize("nodes", [2, 3, 6])
    def test_alltoall(self, nodes):
        cluster = make_cluster(nodes)

        def main(comm):
            payloads = [(8, (comm.rank, dst)) for dst in range(nodes)]
            received = yield from comm.alltoall(payloads)
            return received

        results = run_spmd(cluster, main)
        for rank, received in enumerate(results):
            assert received == [(src, rank) for src in range(nodes)]

    def test_barrier_synchronizes(self):
        cluster = make_cluster(4)
        after = {}

        def main(comm):
            # rank 0 is slow before the barrier
            if comm.rank == 0:
                yield comm.compute_seconds(0.01)
            yield from comm.barrier()
            after[comm.rank] = comm.engine.now

        run_spmd(cluster, main)
        assert all(t >= 0.01 for t in after.values())

    def test_allreduce_custom_op(self):
        cluster = make_cluster(4)

        def main(comm):
            result = yield from comm.allreduce(
                comm.rank, 8, op=max
            )
            return result

        assert run_spmd(cluster, main) == [3, 3, 3, 3]


class TestHaloExchange:
    def test_plan_matches_expanded_overlaps(self):
        blocks = grid_block_decomposition((8, 8), 4)
        plan = plan_halo_exchange(blocks, 1, 8)
        for t in plan.transfers:
            grown = Box(
                tuple(l - 1 for l in blocks[t.dst].lo),
                tuple(h + 1 for h in blocks[t.dst].hi),
            )
            assert grown.intersect(blocks[t.src]) == t.box
            assert t.nbytes == t.box.size() * 8
        # strip decomposition of a square: 4 quadrants → edge + corner pairs
        assert plan.neighbors_of(0)

    def test_zero_radius_empty_plan(self):
        blocks = grid_block_decomposition((8, 8), 4)
        assert plan_halo_exchange(blocks, 0, 8).transfers == []

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            plan_halo_exchange([Box.of((0, 0), (2, 2))], -1, 8)

    def test_exchange_step_runs(self):
        blocks = grid_block_decomposition((16, 16), 4)
        plan = plan_halo_exchange(blocks, 1, 8)
        cluster = make_cluster(4)

        def main(comm):
            for step in range(3):
                yield from exchange_step(comm, plan, tag=100 + step)
            return comm.engine.now

        times = run_spmd(cluster, main)
        assert all(t > 0 for t in times)

    def test_single_rank_no_neighbors(self):
        blocks = grid_block_decomposition((8, 8), 1)
        plan = plan_halo_exchange(blocks, 1, 8)
        assert plan.transfers == []
        assert plan.total_bytes() == 0
