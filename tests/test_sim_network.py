"""Unit tests for the network model and fat-tree topology."""

import pytest

from repro.sim.engine import SimEngine
from repro.sim.metrics import MetricRegistry
from repro.sim.network import Network, NetworkConfig
from repro.sim.topology import FatTreeTopology


class TestFatTreeTopology:
    def test_hops(self):
        topo = FatTreeTopology(64, radix=16)
        assert topo.switch_hops(0, 0) == 0
        assert topo.switch_hops(0, 15) == 1
        assert topo.switch_hops(0, 16) == 3
        assert topo.switch_hops(3, 3) == 0

    def test_symmetry(self):
        topo = FatTreeTopology(64, radix=4)
        for a, b in [(0, 5), (1, 17), (3, 63)]:
            assert topo.switch_hops(a, b) == topo.switch_hops(b, a)

    def test_max_hops(self):
        assert FatTreeTopology(1).max_hops() == 0
        assert FatTreeTopology(16, radix=16).max_hops() == 1
        assert FatTreeTopology(17, radix=16).max_hops() == 3

    def test_bounds(self):
        topo = FatTreeTopology(4)
        with pytest.raises(ValueError):
            topo.switch_hops(0, 4)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FatTreeTopology(0)
        with pytest.raises(ValueError):
            FatTreeTopology(4, radix=1)


class TestNetwork:
    def make(self, nodes=4, **cfg):
        engine = SimEngine()
        network = Network(
            engine,
            FatTreeTopology(nodes),
            NetworkConfig(**cfg),
            MetricRegistry(),
        )
        return engine, network

    def test_loopback_is_cheap(self):
        engine, network = self.make()
        future = network.send(0, 0, 1_000_000)
        engine.run()
        assert future.done
        assert engine.now == pytest.approx(
            network.config.loopback_overhead
        )

    def test_transfer_time_components(self):
        engine, network = self.make()
        cfg = network.config
        nbytes = 1_000_000
        network.send(0, 1, nbytes)
        engine.run()
        expected = (
            cfg.send_overhead
            + nbytes / cfg.bandwidth
            + cfg.base_latency
            + cfg.hop_latency * 1
            + cfg.recv_overhead
        )
        assert engine.now == pytest.approx(expected)
        assert network.transfer_time_estimate(0, 1, nbytes) == pytest.approx(
            expected
        )

    def test_nic_serialization_queues_messages(self):
        engine, network = self.make()
        cfg = network.config
        n = 8
        done = [network.send(0, 1, 1_000_000) for _ in range(n)]
        engine.run()
        assert all(f.done for f in done)
        serial = cfg.send_overhead + 1_000_000 / cfg.bandwidth
        # last message could not leave before (n-1) predecessors serialized
        assert engine.now >= n * serial

    def test_disjoint_senders_run_in_parallel(self):
        engine, network = self.make()
        network.send(0, 1, 10_000_000)
        network.send(2, 3, 10_000_000)
        engine.run()
        single = network.transfer_time_estimate(0, 1, 10_000_000)
        assert engine.now == pytest.approx(single)

    def test_nic_backlog_signal(self):
        engine, network = self.make()
        network.send(0, 1, 50_000_000)
        assert network.nic_backlog(0) > 0
        engine.run()
        assert network.nic_backlog(0) == 0

    def test_metrics_counted(self):
        engine, network = self.make()
        network.send(0, 1, 100)
        network.send(1, 2, 200)
        engine.run()
        assert network.metrics.counter("net.messages") == 2
        assert network.metrics.counter("net.bytes") == 300

    def test_negative_size_rejected(self):
        _, network = self.make()
        with pytest.raises(ValueError):
            network.send(0, 1, -1)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(bandwidth=0)
        with pytest.raises(ValueError):
            NetworkConfig(base_latency=-1)
        with pytest.raises(ValueError):
            NetworkConfig(send_overhead=-1e-9)


class TestSendBulk:
    make = TestNetwork.make

    def test_counts_one_message_many_parts(self):
        engine, network = self.make()
        network.send_bulk(0, 1, [100, 200, 300])
        engine.run()
        assert network.metrics.counter("net.bulk_messages") == 1
        assert network.metrics.counter("net.bulk_parts") == 3
        assert network.metrics.counter("net.messages") == 1
        assert network.metrics.counter("net.bytes") == 600

    def test_costs_sum_of_sizes_once(self):
        engine, network = self.make()
        future = network.send_bulk(0, 1, [250_000, 750_000])
        engine.run()
        assert future.done
        assert engine.now == pytest.approx(
            network.transfer_time_estimate(0, 1, 1_000_000)
        )

    def test_zero_byte_constituents(self):
        engine, network = self.make()
        future = network.send_bulk(0, 1, [0, 0, 0])
        engine.run()
        assert future.done
        assert network.metrics.counter("net.bulk_parts") == 3
        assert network.metrics.counter("net.bytes") == 0
        # still a real message: overhead and latency are charged
        assert engine.now == pytest.approx(
            network.transfer_time_estimate(0, 1, 0)
        )

    def test_loopback_bulk_short_circuits(self):
        engine, network = self.make()
        future = network.send_bulk(0, 0, [1_000_000, 1_000_000])
        engine.run()
        assert future.done
        assert engine.now == pytest.approx(network.config.loopback_overhead)
        assert network.metrics.counter("net.bulk_messages") == 1

    def test_cost_at_least_largest_constituent(self):
        # a bulk message can never beat sending just its largest part ...
        _, network = self.make()
        sizes = [10, 500_000, 3_000, 0]
        bulk = network.transfer_time_estimate(0, 1, sum(sizes))
        largest = network.transfer_time_estimate(0, 1, max(sizes))
        assert bulk >= largest
        # ... but always beats sending the parts as separate messages
        separate = sum(
            network.transfer_time_estimate(0, 1, nbytes) for nbytes in sizes
        )
        assert bulk < separate

    def test_empty_bulk_rejected(self):
        _, network = self.make()
        with pytest.raises(ValueError):
            network.send_bulk(0, 1, [])

    def test_negative_constituent_rejected(self):
        _, network = self.make()
        with pytest.raises(ValueError):
            network.send_bulk(0, 1, [100, -1])
        # the failed validation must not leak metric increments
        assert network.metrics.counter("net.bulk_messages") == 0

    def test_generator_sizes_accepted(self):
        engine, network = self.make()
        network.send_bulk(0, 1, (n for n in (100, 200)))
        engine.run()
        assert network.metrics.counter("net.bulk_parts") == 2
