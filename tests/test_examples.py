"""Every shipped example runs clean end to end.

The examples are the library's living documentation — each verifies its
own output against a reference implementation, so running them doubles as
an integration test of the public API.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize(
    "example", EXAMPLES, ids=lambda p: p.name
)
def test_example_runs(example):
    result = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, (
        f"{example.name} failed:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{example.name} printed nothing"


def test_bench_cli_table1():
    result = subprocess.run(
        [sys.executable, "-m", "repro.bench", "table1"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "stencil" in result.stdout
    assert "kd-tree" in result.stdout


def test_bench_cli_rejects_unknown_artifact():
    result = subprocess.run(
        [sys.executable, "-m", "repro.bench", "nonsense"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode != 0
