"""Regression tests for the balancer's region slicing.

Two historical defects, both pinned here:

* interval slicing clamped every fraction above one half to a 50% cut
  (``max(2, round(1/f))`` split parts), so a balancer asking for 70% of
  an overloaded node's region silently got 50%;
* box-set slicing rounded the cut to whole rows of the widest axis, so
  small fractions of wide boxes overshot the target by up to a full row
  (and the floor-to-zero guard then forced a minimum of one row).
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.items.grid import Grid
from repro.regions.box import Box, BoxSetRegion
from repro.regions.interval import Interval, IntervalRegion
from repro.runtime.balancer import take_slice


class TestIntervalFractions:
    def test_every_fraction_cuts_proportionally(self):
        """Pinned: fractions above 0.5 used to collapse to a 50% cut."""
        size = 1000
        region = IntervalRegion.span(0, size)
        for percent in range(1, 100):
            fraction = percent / 100.0
            piece = take_slice(region, fraction)
            assert piece is not None, fraction
            want = min(size - 1, math.ceil(size * fraction))
            assert piece.size() == want, fraction
            assert region.covers(piece)
            assert not region.difference(piece).is_empty()

    def test_large_fraction_on_fragmented_region(self):
        region = IntervalRegion(
            [Interval(0, 10), Interval(20, 30), Interval(40, 50)]
        )
        piece = take_slice(region, 0.7)
        assert piece is not None
        assert piece.size() == math.ceil(30 * 0.7)
        assert region.covers(piece)

    def test_two_element_region_leaves_remainder(self):
        piece = take_slice(IntervalRegion.span(0, 2), 0.9)
        assert piece is not None
        assert piece.size() == 1


class TestBoxSetFractions:
    @settings(max_examples=60, deadline=None)
    @given(
        rows=st.integers(1, 40),
        cols=st.integers(1, 40),
        percent=st.integers(1, 99),
    )
    def test_slice_size_is_exact(self, rows, cols, percent):
        """Pinned: the carve no longer overshoots by up to a full row."""
        fraction = percent / 100.0
        region = Grid((rows, cols)).full_region
        size = region.size()
        want = min(size - 1, math.ceil(size * fraction))
        piece = take_slice(region, fraction)
        if want < 1:
            assert piece is None
            return
        assert piece is not None
        assert piece.size() == want
        assert region.covers(piece)
        assert region.difference(piece).size() == size - want

    def test_small_fraction_of_wide_box(self):
        """1% of a 4×1000 grid is 40 elements, not a 1000-element row."""
        region = Grid((4, 1000)).full_region
        piece = take_slice(region, 0.01)
        assert piece is not None
        assert piece.size() == 40

    def test_multi_box_region(self):
        region = BoxSetRegion(
            [Box((0, 0), (4, 4)), Box((10, 0), (12, 8))]
        )
        size = region.size()
        piece = take_slice(region, 0.6)
        assert piece is not None
        assert piece.size() == math.ceil(size * 0.6)
        assert region.covers(piece)

    def test_single_element_region_unsliceable(self):
        region = BoxSetRegion([Box((0, 0), (1, 1))])
        assert take_slice(region, 0.5) is None
