"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimEngine


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        engine = SimEngine()
        fired = []
        engine.schedule(3.0, lambda: fired.append("c"))
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(2.0, lambda: fired.append("b"))
        engine.run()
        assert fired == ["a", "b", "c"]
        assert engine.now == 3.0

    def test_simultaneous_events_fire_in_schedule_order(self):
        engine = SimEngine()
        fired = []
        for k in range(5):
            engine.schedule(1.0, lambda k=k: fired.append(k))
        engine.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_cancel(self):
        engine = SimEngine()
        fired = []
        event = engine.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        engine.run()
        assert fired == []

    def test_negative_delay_rejected(self):
        engine = SimEngine()
        with pytest.raises(ValueError):
            engine.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        engine = SimEngine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule_at(1.0, lambda: None)

    def test_run_until(self):
        engine = SimEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(5.0, lambda: fired.append(5))
        engine.run(until=2.0)
        assert fired == [1]
        assert engine.now == 2.0
        engine.run()
        assert fired == [1, 5]

    def test_max_events_bound_does_not_drop_events(self):
        # regression: the event at the bound used to be heappop-ed before
        # the bound check fired, so it was neither executed nor re-queued
        engine = SimEngine()
        fired = []
        for k in range(5):
            engine.schedule(float(k + 1), lambda k=k: fired.append(k))
        assert engine.run(max_events=2) == 2
        assert fired == [0, 1]
        # the bounded call must not have lost the third event
        assert engine.pending_events == 3
        assert engine.run() == 3
        assert fired == [0, 1, 2, 3, 4]

    def test_max_events_zero_leaves_queue_untouched(self):
        engine = SimEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append("x"))
        assert engine.run(max_events=0) == 0
        assert engine.pending_events == 1
        assert engine.run() == 1
        assert fired == ["x"]

    def test_events_scheduled_during_run(self):
        engine = SimEngine()
        fired = []

        def first():
            fired.append("first")
            engine.schedule(1.0, lambda: fired.append("second"))

        engine.schedule(1.0, first)
        engine.run()
        assert fired == ["first", "second"]
        assert engine.now == 2.0


class TestFutures:
    def test_complete_once(self):
        engine = SimEngine()
        future = engine.future()
        future.complete(42)
        assert future.done and future.value == 42
        with pytest.raises(RuntimeError):
            future.complete(43)

    def test_callback_after_completion_runs_immediately(self):
        engine = SimEngine()
        future = engine.future()
        future.complete("v")
        seen = []
        future.add_callback(seen.append)
        assert seen == ["v"]

    def test_all_of(self):
        engine = SimEngine()
        futures = [engine.future() for _ in range(3)]
        combined = engine.all_of(futures)
        futures[1].complete("b")
        futures[0].complete("a")
        assert not combined.done
        futures[2].complete("c")
        assert combined.done
        assert combined.value == ["a", "b", "c"]

    def test_all_of_empty(self):
        engine = SimEngine()
        combined = engine.all_of([])
        assert combined.done and combined.value == []


class TestProcesses:
    def test_delay_yield(self):
        engine = SimEngine()

        def proc():
            yield 2.0
            yield 3.0
            return engine.now

        result = engine.spawn(proc())
        engine.run()
        assert result.done and result.value == 5.0

    def test_future_yield_passes_value(self):
        engine = SimEngine()
        gate = engine.future()

        def proc():
            value = yield gate
            return value * 2

        result = engine.spawn(proc())
        engine.schedule(1.0, lambda: gate.complete(21))
        engine.run()
        assert result.value == 42

    def test_invalid_yield_rejected(self):
        engine = SimEngine()

        def proc():
            yield "nope"

        # the first step runs eagerly inside spawn
        with pytest.raises(TypeError):
            engine.spawn(proc())

    def test_nested_yield_from(self):
        engine = SimEngine()

        def inner():
            yield 1.0
            return "inner-done"

        def outer():
            value = yield from inner()
            yield 1.0
            return value

        result = engine.spawn(outer())
        engine.run()
        assert result.value == "inner-done"
        assert engine.now == 2.0

    def test_determinism_across_runs(self):
        def scenario():
            engine = SimEngine()
            log = []

            def proc(pid):
                yield 0.001 * (pid % 3)
                log.append((pid, engine.now))
                yield 0.002
                log.append((pid, engine.now))

            for pid in range(6):
                engine.spawn(proc(pid))
            engine.run()
            return log

        assert scenario() == scenario()
