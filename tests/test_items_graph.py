"""Tests for the partitioned graph data item."""

import networkx as nx
import pytest

from repro.items.graph import PartitionedGraph
from repro.regions.interval import IntervalRegion
from repro.runtime.config import RuntimeConfig
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.tasks import TaskSpec
from repro.sim.cluster import Cluster, ClusterSpec


class TestPartitionedGraph:
    def test_construction_and_adjacency(self):
        graph = PartitionedGraph(4, [(0, 1), (1, 2), (2, 0)], name="g")
        assert graph.adjacency[0] == (1, 2)
        assert graph.adjacency[1] == (0, 2)
        assert graph.adjacency[3] == ()
        assert graph.num_edges == 3

    def test_directed(self):
        graph = PartitionedGraph(3, [(0, 1), (1, 2)], undirected=False)
        assert graph.adjacency[0] == (1,)
        assert graph.adjacency[1] == (2,)
        assert graph.adjacency[2] == ()

    def test_duplicate_edges_collapse(self):
        graph = PartitionedGraph(2, [(0, 1), (0, 1), (1, 0)])
        assert graph.adjacency[0] == (1,)

    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionedGraph(0)
        with pytest.raises(ValueError):
            PartitionedGraph(2, [(0, 5)])

    def test_vertex_and_range_regions(self):
        graph = PartitionedGraph(10)
        assert set(graph.vertex_region([1, 5]).elements()) == {1, 5}
        assert graph.range_region(8, 20).size() == 2
        with pytest.raises(ValueError):
            graph.vertex_region([99])

    def test_decompose(self):
        graph = PartitionedGraph(10)
        parts = graph.decompose(3)
        assert sum(p.size() for p in parts) == 10

    def test_networkx_roundtrip(self):
        original = nx.cycle_graph(6)
        graph = PartitionedGraph.from_networkx(original)
        back = graph.to_networkx()
        assert nx.is_isomorphic(original, back)
        assert sorted(back.edges) == sorted(original.edges)

    def test_networkx_requires_integer_labels(self):
        named = nx.Graph([("a", "b")])
        with pytest.raises(ValueError):
            PartitionedGraph.from_networkx(named)


class TestGraphFragment:
    def setup_method(self):
        self.graph = PartitionedGraph(
            6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)], name="g"
        )

    def test_neighbors_within_region(self):
        fragment = self.graph.new_fragment(IntervalRegion.span(0, 3))
        assert fragment.neighbors(1) == (0, 2)
        assert fragment.degree(0) == 2
        with pytest.raises(KeyError):
            fragment.neighbors(4)

    def test_resize_loads_new_adjacency(self):
        fragment = self.graph.new_fragment(IntervalRegion.span(0, 2))
        fragment.resize(IntervalRegion.span(1, 4))
        assert fragment.neighbors(3) == (2, 4)
        with pytest.raises(KeyError):
            fragment.neighbors(0)

    def test_extract_insert(self):
        src = self.graph.new_fragment(IntervalRegion.span(0, 4))
        dst = self.graph.new_fragment(IntervalRegion.empty())
        dst.insert(src.extract(IntervalRegion.span(2, 4)))
        assert dst.neighbors(2) == (1, 3)
        assert set(dst.local_vertices()) == {2, 3}

    def test_virtual_mode(self):
        fragment = self.graph.new_fragment(
            self.graph.full_region, functional=False
        )
        with pytest.raises(RuntimeError):
            fragment.neighbors(0)
        payload = fragment.extract(IntervalRegion.span(0, 3))
        assert payload.data is None
        assert payload.nbytes == 3 * self.graph.bytes_per_element


class TestGraphOnRuntime:
    def test_degree_sum_via_tasks(self):
        """Tasks reading vertex ranges run at the range owners."""
        nx_graph = nx.gnm_random_graph(32, 64, seed=3)
        graph = PartitionedGraph.from_networkx(nx_graph, name="g")
        cluster = Cluster(
            ClusterSpec(num_nodes=4, cores_per_node=2, flops_per_core=1e9)
        )
        runtime = AllScaleRuntime(cluster, RuntimeConfig(functional=True))
        runtime.register_item(graph, placement=graph.decompose(4))

        treetures = []
        parts = graph.decompose(4)
        for region in parts:
            def body(ctx, region=region):
                fragment = ctx.fragment(graph)
                return sum(
                    fragment.degree(v) for v in region.elements()
                )

            treetures.append(
                runtime.submit(
                    TaskSpec(
                        name="degrees",
                        reads={graph: region},
                        body=body,
                        size_hint=region.size(),
                    )
                )
            )
        total = sum(runtime.wait(t) for t in treetures)
        assert total == 2 * nx_graph.number_of_edges()
        # no data moved: tasks went to their vertex ranges
        assert runtime.metrics.counter("dm.migrations") == 0
        assert runtime.metrics.counter("dm.replicas_fetched") == 0
