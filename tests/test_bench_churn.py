"""Tests for the churn panel's baseline bookkeeping.

These use hand-built panels (the real sweep is exercised by the
``--churn`` CLI and its committed baseline); what is under test here is
the exact-match checking, the semantic gates a run must clear before it
may be pinned, the merge-per-mode baseline file handling, and the
deterministic schedule shapes — plus one real (tiny) cell driving
:func:`_run_cell` end to end with a churn controller attached.
"""

from __future__ import annotations

import dataclasses

from repro.apps.stencil import StencilWorkload
from repro.bench.churn import (
    CHURN_SCHEMA_VERSION,
    ChurnCell,
    ChurnPanel,
    _grid,
    _run_cell,
    _schedule,
    check_panel,
    load_baseline,
    panel_mode,
    panel_section,
    render_churn_summary,
    semantic_problems,
    write_baseline,
)
from repro.runtime.elastic import ChurnEvent

APPS = ("stencil", "ipic3d", "tpc")
SCENARIOS = ("baseline", "scale_out", "drain", "storm1xr1")


def _metrics(scenario: str) -> dict[str, float]:
    if scenario == "baseline":
        return {"elastic.churn_events": 0.0}
    metrics = {"elastic.churn_events": 2.0}
    if scenario == "scale_out":
        metrics["elastic.joins"] = 2.0
        metrics["elastic.join_migrated_bytes"] = 4096.0
    if scenario == "drain":
        metrics["elastic.drains"] = 1.0
        metrics["elastic.evacuated_bytes"] = 8192.0
    if scenario.startswith("storm"):
        metrics["elastic.failures"] = 1.0
        metrics["elastic.restored_bytes"] = 2048.0
    return metrics


def _panel(mode="smoke"):
    """A sweep that clears every semantic gate, as required for a pin."""
    panel = ChurnPanel(mode=mode, start_nodes=3, sentinel_attached=True)
    for app_index, app in enumerate(APPS):
        for scenario_index, scenario in enumerate(SCENARIOS):
            panel.cells.append(
                ChurnCell(
                    app=app,
                    scenario=scenario,
                    sim_elapsed=0.5 * (1 + app_index) + 0.01 * scenario_index,
                    metrics=_metrics(scenario),
                    membership_changes=0 if scenario == "baseline" else 2,
                    final_processes=3 if scenario == "baseline" else 2,
                    sentinel_violations=0,
                )
            )
        panel.wall_seconds[app] = 1.0
    return panel


def _replace_cell(panel, app, scenario, **changes):
    for index, cell in enumerate(panel.cells):
        if (cell.app, cell.scenario) == (app, scenario):
            panel.cells[index] = dataclasses.replace(cell, **changes)
            return
    raise AssertionError("cell not found")


class TestModeAndSchedule:
    def test_panel_mode(self):
        assert panel_mode(quick=False, smoke=True) == "smoke"
        assert panel_mode(quick=True, smoke=False) == "quick"
        assert panel_mode(quick=False, smoke=False) == "full"
        # smoke wins over quick, matching the CLI's precedence
        assert panel_mode(quick=True, smoke=True) == "smoke"

    def test_grid_grows_with_mode(self):
        smoke_nodes, smoke_grid = _grid("smoke")
        quick_nodes, quick_grid = _grid("quick")
        full_nodes, full_grid = _grid("full")
        assert smoke_nodes < quick_nodes < full_nodes
        assert len(smoke_grid) < len(quick_grid) < len(full_grid)

    def test_baseline_schedule_is_empty(self):
        assert _schedule("baseline", 10.0, 0, 0) == []

    def test_scale_out_schedule_only_joins(self):
        events = _schedule("scale_out", 10.0, 0, 0)
        assert events and all(e.kind == "join" for e in events)
        assert all(0.0 < e.at < 10.0 for e in events)

    def test_drain_schedule(self):
        events = _schedule("drain", 10.0, 0, 0)
        assert [e.kind for e in events] == ["drain"]

    def test_storm_schedule_shape(self):
        rate, storm = 2, 3
        events = _schedule("storm3xr2", 10.0, rate, storm)
        kinds = [e.kind for e in events]
        assert kinds.count("join") == rate
        assert kinds.count("drain") == rate
        storms = [e for e in events if e.kind == "storm"]
        assert len(storms) == 1 and storms[0].count == storm
        # the schedule replays in order: events must already be sorted
        assert [e.at for e in events] == sorted(e.at for e in events)


class TestSemanticProblems:
    def test_clean_panel(self):
        assert semantic_problems(_panel()) == []

    def test_sentinel_violation_rejected(self):
        panel = _panel()
        _replace_cell(panel, "tpc", "drain", sentinel_violations=2)
        problems = semantic_problems(panel)
        assert len(problems) == 1
        assert "tpc/drain" in problems[0]
        assert "sentinel" in problems[0]

    def test_baseline_must_not_churn(self):
        panel = _panel()
        _replace_cell(
            panel, "stencil", "baseline",
            metrics={"elastic.churn_events": 1.0},
        )
        assert any(
            "baseline saw churn" in p for p in semantic_problems(panel)
        )

    def test_churn_scenario_must_apply_events(self):
        panel = _panel()
        _replace_cell(panel, "stencil", "drain", metrics={})
        problems = semantic_problems(panel)
        assert any("no churn events applied" in p for p in problems)
        assert any("no node drained" in p for p in problems)

    def test_scale_out_must_join(self):
        panel = _panel()
        _replace_cell(
            panel, "ipic3d", "scale_out",
            metrics={"elastic.churn_events": 2.0},
        )
        assert any("no node joined" in p for p in semantic_problems(panel))

    def test_drain_must_evacuate(self):
        panel = _panel()
        _replace_cell(
            panel, "ipic3d", "drain",
            metrics={
                "elastic.churn_events": 1.0,
                "elastic.drains": 1.0,
                "elastic.evacuated_bytes": 0.0,
            },
        )
        assert any(
            "evacuated no data" in p for p in semantic_problems(panel)
        )

    def test_storm_must_fail_nodes(self):
        panel = _panel()
        _replace_cell(
            panel, "tpc", "storm1xr1",
            metrics={"elastic.churn_events": 1.0},
        )
        assert any(
            "storm failed no nodes" in p for p in semantic_problems(panel)
        )


class TestCheckPanel:
    def _baseline(self, panel):
        return {
            "schema": CHURN_SCHEMA_VERSION,
            "modes": {panel.mode: panel_section(panel)},
        }

    def test_no_baseline(self):
        problems = check_panel(_panel(), None)
        assert problems and "no baseline" in problems[0]

    def test_missing_mode_section(self):
        panel = _panel()
        problems = check_panel(panel, {"schema": 1, "modes": {}})
        assert problems == [f"baseline has no {panel.mode!r} section"]

    def test_exact_match_passes(self):
        panel = _panel()
        assert check_panel(panel, self._baseline(panel)) == []

    def test_sim_elapsed_drift_is_exact(self):
        panel = _panel()
        baseline = self._baseline(panel)
        _replace_cell(panel, "stencil", "drain", sim_elapsed=99.0)
        problems = check_panel(panel, baseline)
        assert any(
            "stencil/drain" in p and "simulated elapsed changed" in p
            for p in problems
        )

    def test_metric_drift_is_exact(self):
        panel = _panel()
        baseline = self._baseline(panel)
        metrics = dict(_metrics("drain"))
        metrics["elastic.evacuated_bytes"] += 1.0
        _replace_cell(panel, "tpc", "drain", metrics=metrics)
        problems = check_panel(panel, baseline)
        assert any(
            "tpc/drain elastic.evacuated_bytes" in p for p in problems
        )

    def test_membership_and_survivors_pinned(self):
        panel = _panel()
        baseline = self._baseline(panel)
        _replace_cell(
            panel, "ipic3d", "scale_out",
            membership_changes=5, final_processes=9,
        )
        problems = check_panel(panel, baseline)
        assert any("membership_changes" in p for p in problems)
        assert any("final_processes" in p for p in problems)

    def test_cell_set_must_match(self):
        panel = _panel()
        baseline = self._baseline(panel)
        extra = dataclasses.replace(panel.cells[-1], scenario="storm9xr9")
        panel.cells.append(extra)
        del panel.cells[0]
        problems = check_panel(panel, baseline)
        assert any("not in baseline" in p for p in problems)
        assert any("in baseline but not in run" in p for p in problems)

    def test_start_nodes_pinned(self):
        panel = _panel()
        baseline = self._baseline(panel)
        panel.start_nodes = 7
        assert any(
            "start nodes changed" in p
            for p in check_panel(panel, baseline)
        )

    def test_wall_clock_tolerance(self):
        panel = _panel()
        baseline = self._baseline(panel)
        for app in panel.wall_seconds:
            panel.wall_seconds[app] *= 10.0
        assert any(
            "wall clock regressed" in p
            for p in check_panel(panel, baseline)
        )
        # simulated drift is exact, wall drift is tolerated up to 20%
        for app in panel.wall_seconds:
            panel.wall_seconds[app] = 1.1
        assert check_panel(panel, baseline) == []


class TestBaselineFile:
    def test_roundtrip_merges_per_mode(self, tmp_path):
        path = tmp_path / "baseline.json"
        assert load_baseline(path) is None
        smoke = _panel("smoke")
        quick = _panel("quick")
        write_baseline(smoke, path)
        write_baseline(quick, path)
        baseline = load_baseline(path)
        assert baseline["schema"] == CHURN_SCHEMA_VERSION
        assert set(baseline["modes"]) == {"smoke", "quick"}
        assert check_panel(smoke, baseline) == []
        assert check_panel(quick, baseline) == []

    def test_committed_baseline_has_all_modes(self):
        baseline = load_baseline()
        assert baseline is not None
        assert baseline["schema"] == CHURN_SCHEMA_VERSION
        assert set(baseline["modes"]) >= {"smoke", "quick", "full"}


class TestRenderSummary:
    def test_summary_lists_cells_and_wall(self):
        text = render_churn_summary(_panel())
        assert "Churn sweep" in text
        assert "strict sentinel attached" in text
        for app in APPS:
            assert f"{app}/drain" in text
        assert "wall" in text


class TestRunCell:
    def test_tiny_cell_with_churn_completes(self):
        workload = StencilWorkload(
            n_per_node=400, timesteps=2, functional=False
        )
        events = [
            ChurnEvent(at=1e-4, kind="join"),
            ChurnEvent(at=2e-4, kind="drain"),
        ]
        result, runtime, controller, snapshot, _violations = _run_cell(
            "stencil", workload, 3, events
        )
        assert controller is not None and controller.done
        assert snapshot.get("elastic.churn_events") == 2.0
        assert snapshot.get("elastic.joins") == 1.0
        assert snapshot.get("elastic.drains") == 1.0
        assert result.elapsed > 0.0
        assert len(runtime.alive_processes()) == 3
