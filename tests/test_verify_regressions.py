"""Pinned schedule traces as regression tests for the protocol fixes.

The model checker (``repro.verify``) rediscovered both historical
protocol bugs under mechanical fix-reverts and shrank each repro to a
minimal decision trace, pinned under ``traces/``.  These tests keep the
fixes honest in both directions:

* replayed against the **fixed** code, each pinned trace must complete
  cleanly — no uncaught error, no race-sanitizer finding;
* replayed (or explored) with the matching fix **reverted**, the bug
  must still manifest — proving the trace tests what it claims to and
  did not go stale.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.verify.explorer import DEFAULT_BUDGET
from repro.verify.oracle import DecisionTrace
from repro.verify.regressions import (
    KNOWN_BUGS,
    rediscover,
    replay_trace,
)

TRACES = Path(__file__).resolve().parent.parent / "traces"

PINNED = {
    "write_intent_livelock": "verify_write_intent_livelock.json",
    "ownership_thrashing": "verify_ownership_thrashing.json",
    "migration_corpse_splice": "verify_node_failure_during_migration.json",
}


def _load(bug_name: str) -> DecisionTrace:
    path = TRACES / PINNED[bug_name]
    return DecisionTrace.from_json(path.read_text())


@pytest.mark.parametrize("bug_name", sorted(PINNED))
def test_pinned_trace_matches_known_bug(bug_name):
    trace = _load(bug_name)
    bug = KNOWN_BUGS[bug_name]
    assert trace.scenario == bug.scenario
    assert trace.note, "pinned traces must say what they reproduce"


@pytest.mark.parametrize("bug_name", sorted(PINNED))
def test_pinned_trace_replays_clean_on_fixed_code(bug_name):
    run = replay_trace(_load(bug_name))
    assert run.status == "ok", run.error
    assert not run.races, [str(f) for f in run.races]


@pytest.mark.parametrize("bug_name", sorted(PINNED))
def test_pinned_trace_still_exposes_bug_under_revert(bug_name):
    trace = _load(bug_name)
    bug = KNOWN_BUGS[bug_name]
    with bug.revert():
        run = replay_trace(trace)
    assert bug.hits(run), (
        f"pinned trace went stale: replaying under the revert gave "
        f"status={run.status!r} error={run.error!r} "
        f"races={[str(f) for f in run.races]}"
    )


@pytest.mark.parametrize("bug_name", sorted(KNOWN_BUGS))
def test_explorer_rediscovers_bug_within_default_budget(bug_name):
    found = rediscover(bug_name, budget=DEFAULT_BUDGET, minimize=False)
    assert found.found, (
        f"{bug_name} not rediscovered within {DEFAULT_BUDGET} branches"
    )
    assert found.kind in ("failure", "race")
    assert found.evidence


def test_pinned_trace_files_are_valid_json():
    for name in PINNED.values():
        raw = json.loads((TRACES / name).read_text())
        assert "scenario" in raw
        assert isinstance(raw["decisions"], list)
