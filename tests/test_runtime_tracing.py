"""Tests for the per-task execution tracer."""


from repro.api import box_region, pfor
from repro.items.grid import Grid
from repro.runtime.config import RuntimeConfig
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.tasks import TaskSpec
from repro.runtime.tracing import ExecutionTracer, TaskRecord
from repro.sim.cluster import Cluster, ClusterSpec


def traced_runtime(nodes=2):
    cluster = Cluster(
        ClusterSpec(num_nodes=nodes, cores_per_node=2, flops_per_core=1e9)
    )
    runtime = AllScaleRuntime(cluster, RuntimeConfig(functional=False))
    tracer = ExecutionTracer()
    runtime.tracer = tracer
    return runtime, tracer


class TestTaskRecord:
    def test_phase_arithmetic(self):
        record = TaskRecord(
            name="t", pid=0, enqueued=1.0, started=2.0, data_ready=5.0,
            locks_held=6.0, finished=10.0,
        )
        assert record.queue_wait == 1.0
        assert record.staging_time == 3.0
        assert record.lock_wait == 1.0
        assert record.compute_time == 4.0
        assert record.total == 9.0


class TestExecutionTracer:
    def test_records_leaf_lifecycle(self):
        runtime, tracer = traced_runtime()
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid, placement=grid.decompose(2))
        task = TaskSpec(
            name="work",
            reads={grid: grid.full_region},
            flops=1e6,
            size_hint=64,
        )
        runtime.wait(runtime.submit(task))
        assert len(tracer.records) == 1
        record = tracer.records[0]
        assert record.name == "work"
        assert record.finished >= record.locks_held >= record.data_ready
        assert record.data_ready >= record.started >= record.enqueued
        assert record.compute_time > 0
        # the full-grid read had to replicate remote data: staging happened
        assert record.staging_time > 0

    def test_breakdown_over_pfor(self):
        runtime, tracer = traced_runtime()
        grid = Grid((32, 32), name="g")
        runtime.register_item(grid)
        sweep = pfor(
            runtime,
            (0, 0),
            (32, 32),
            body=lambda ctx, box: None,
            writes=lambda box: {grid: box_region(grid, box)},
            flops_per_element=100.0,
        )
        runtime.wait(sweep)
        breakdown = tracer.breakdown()
        assert breakdown.tasks == len(tracer.records) > 1
        fractions = breakdown.fractions()
        assert abs(sum(fractions.values()) - 1.0) < 1e-9
        assert fractions["compute"] > 0

    def test_slowest_sorted(self):
        runtime, tracer = traced_runtime()
        for k, flops in enumerate((1e5, 5e6, 1e6)):
            runtime.wait(
                runtime.submit(
                    TaskSpec(name=f"t{k}", flops=flops, size_hint=1)
                )
            )
        slowest = tracer.slowest(2)
        assert len(slowest) == 2
        assert slowest[0].name == "t1"  # the 5e6-flop task

    def test_render_outputs(self):
        runtime, tracer = traced_runtime()
        for k in range(4):
            runtime.wait(
                runtime.submit(
                    TaskSpec(name=f"t{k}", flops=1e6, size_hint=1),
                    origin=k % 2,
                )
            )
        gantt = tracer.render_gantt(num_processes=2)
        assert "p0" in gantt and "p1" in gantt
        breakdown = tracer.render_breakdown()
        assert "compute" in breakdown and "%" in breakdown

    def test_record_cap(self):
        tracer = ExecutionTracer(max_records=2)
        for k in range(5):
            tracer.on_enqueue(k, f"t{k}", 0, 0.0)
            tracer.on_finish(k, 1.0)
        assert len(tracer.records) <= 2

    def test_empty_tracer_renders(self):
        tracer = ExecutionTracer()
        assert tracer.utilization(2) == [[0.0] * 20, [0.0] * 20]
        assert "0 tasks" in tracer.render_breakdown()
