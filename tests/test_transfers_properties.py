"""Property-based tests for transfer plans under random task DAGs.

Three invariants of the staging/prefetch plans, driven by randomized
read/write task chains over a distributed grid:

* every byte that moved was planned (`moved ⊆ planned` per item — the
  sentinel's planned-versus-moved audit, checked here structurally);
* uncontended DAGs never move the same elements twice within one plan
  (`refetched_bytes == 0`);
* the whole machinery is sentinel-clean: a strict
  :class:`RuntimeSentinel` observes no invariant violation.
"""

from hypothesis import given, settings, strategies as st

from repro.items.grid import Grid
from repro.runtime.config import RuntimeConfig
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.sentinel import RuntimeSentinel, SentinelConfig
from repro.runtime.tasks import TaskSpec
from repro.sim.cluster import Cluster, ClusterSpec

SIDE = 16


def make_runtime(nodes, enabled):
    cluster = Cluster(
        ClusterSpec(num_nodes=nodes, cores_per_node=2, flops_per_core=1e9)
    )
    runtime = AllScaleRuntime(
        cluster,
        RuntimeConfig(
            comm_coalescing=enabled, replica_prefetch=enabled
        ),
    )
    if runtime.sentinel is None:  # REPRO_SENTINEL fixture may have attached
        RuntimeSentinel(runtime, SentinelConfig(strict=True)).attach()
    return runtime


def aligned_boxes(grid):
    """4-aligned sub-boxes of the grid (no first-touch slivers)."""

    def build(t):
        x0, y0, w, h = t
        return grid.box(
            (4 * x0, 4 * y0),
            (min(SIDE, 4 * (x0 + w)), min(SIDE, 4 * (y0 + h))),
        )

    return st.tuples(
        st.integers(0, 3),
        st.integers(0, 3),
        st.integers(1, 4),
        st.integers(1, 4),
    ).map(build)


@st.composite
def task_specs(draw, grid, index):
    reads = draw(aligned_boxes(grid))
    writes = draw(
        st.one_of(st.none(), aligned_boxes(grid))
    )
    spec = {"reads": {grid: reads}}
    if writes is not None:
        spec["writes"] = {grid: writes}
    return TaskSpec(
        name=f"t{index}", body=lambda ctx: None, size_hint=1, **spec
    )


def check_plans(runtime, require_no_refetch, require_exact=False):
    plans = runtime.transfer_plans()
    for plan in plans:
        assert plan.finished
        for item in plan.items():
            moved = plan.moved_region(item)
            planned = plan.planned_region(item)
            # everything that moved was planned first — always
            assert moved.difference(planned).is_empty()
            if require_exact:
                # without contention or prefetch racing the demand path,
                # plans are precise: every planned element materializes
                # (or was a replica hit).  Under contention a writer may
                # claim a planned piece mid-flight, so this only holds
                # for the uncontended, prefetch-free runs.
                leftover = planned.difference(moved).difference(
                    plan.hit_region(item)
                )
                assert leftover.is_empty(), (plan, item, leftover)
        if require_no_refetch:
            assert plan.refetched_bytes() == 0, plan
    return plans


class TestPlanProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        data=st.data(),
        nodes=st.sampled_from([2, 4]),
        enabled=st.booleans(),
        count=st.integers(1, 6),
    )
    def test_sequential_dag_plans_consistent(
        self, data, nodes, enabled, count
    ):
        runtime = make_runtime(nodes, enabled)
        grid = Grid((SIDE, SIDE), name="g")
        runtime.register_item(grid, placement=grid.decompose(nodes))
        for i in range(count):
            task = data.draw(task_specs(grid, i))
            runtime.wait(runtime.submit(task, origin=i % nodes))
        runtime.check_ownership_invariants()
        # uncontended chain: nothing can invalidate a fetch mid-plan
        check_plans(
            runtime, require_no_refetch=True, require_exact=not enabled
        )
        assert not runtime.sentinel.violations

    @settings(max_examples=15, deadline=None)
    @given(
        data=st.data(),
        nodes=st.sampled_from([2, 4]),
        enabled=st.booleans(),
        count=st.integers(2, 6),
    )
    def test_concurrent_dag_is_sentinel_clean(
        self, data, nodes, enabled, count
    ):
        runtime = make_runtime(nodes, enabled)
        grid = Grid((SIDE, SIDE), name="g")
        runtime.register_item(grid, placement=grid.decompose(nodes))
        tasks = [data.draw(task_specs(grid, i)) for i in range(count)]
        treetures = [
            runtime.submit(task, origin=i % nodes)
            for i, task in enumerate(tasks)
        ]
        for treeture in treetures:
            runtime.wait(treeture)
        runtime.check_ownership_invariants()
        # contended: refetches are legal (writers may invalidate replicas
        # mid-staging), but moved-never-planned still must not happen
        check_plans(runtime, require_no_refetch=False)
        assert not runtime.sentinel.violations
