"""Submit-time admission: attachment, metrics, strict rejection, env flag."""

import pytest

from repro.analysis import AdmissionConfig, AdmissionController, AdmissionError
from repro.analysis import admission
from repro.items.grid import Grid
from repro.runtime.runtime import AllScaleRuntime, RuntimeConfig
from repro.runtime.tasks import TaskSpec
from repro.sim.cluster import Cluster, ClusterSpec


@pytest.fixture(autouse=True)
def _isolate_global_admission():
    """Tests here manage process-wide admission themselves."""
    admission.reset_global()
    yield
    admission.drain_created()
    admission.reset_global()


def make_runtime(nodes=2):
    cluster = Cluster(ClusterSpec(num_nodes=nodes, cores_per_node=2))
    return AllScaleRuntime(cluster, RuntimeConfig(functional=False))


GRID = Grid((32,), name="g")


def span(lo, hi):
    return GRID.box((lo,), (hi,))


def clean_task(name="ok"):
    children = [
        TaskSpec(name=f"{name}.0", writes={GRID: span(0, 8)}),
        TaskSpec(name=f"{name}.1", writes={GRID: span(8, 16)}),
    ]
    return TaskSpec(
        name=name,
        writes={GRID: span(0, 16)},
        splitter=lambda: children,
    )


def racy_task(name="bad"):
    children = [
        TaskSpec(name=f"{name}.0", writes={GRID: span(0, 10)}),
        TaskSpec(name=f"{name}.1", writes={GRID: span(8, 16)}),
    ]
    return TaskSpec(
        name=name,
        writes={GRID: span(0, 16)},
        splitter=lambda: children,
    )


class TestController:
    def test_clean_submission_records_metrics(self):
        runtime = make_runtime()
        controller = AdmissionController(runtime).attach()
        runtime.register_item(GRID)
        runtime.wait(runtime.submit(clean_task()))
        assert controller.analyzed == 1
        assert runtime.metrics.counter("analysis.submissions") == 1
        assert runtime.metrics.counter("analysis.findings.error") == 0
        assert runtime.metrics.counter("analysis.tasks_expanded") >= 3
        assert controller.combined_report().clean

    def test_warn_mode_records_but_admits(self):
        runtime = make_runtime()
        controller = AdmissionController(runtime).attach()
        runtime.register_item(GRID)
        runtime.wait(runtime.submit(racy_task()))
        report = controller.combined_report()
        assert not report.clean
        assert runtime.metrics.counter("analysis.findings.error") >= 1

    def test_strict_mode_rejects_before_execution(self):
        runtime = make_runtime()
        AdmissionController(runtime, AdmissionConfig(strict=True)).attach()
        runtime.register_item(GRID)
        with pytest.raises(AdmissionError) as excinfo:
            runtime.submit(racy_task())
        assert "sibling_write_overlap" in str(excinfo.value)
        # nothing was scheduled
        assert runtime.metrics.counter("sched.local_dispatch") == 0
        assert runtime.metrics.counter("sched.remote_dispatch") == 0

    def test_strict_mode_admits_clean_tasks(self):
        runtime = make_runtime()
        AdmissionController(runtime, AdmissionConfig(strict=True)).attach()
        runtime.register_item(GRID)
        runtime.wait(runtime.submit(clean_task()))

    def test_submission_budget(self):
        runtime = make_runtime()
        config = AdmissionConfig(max_submissions=2)
        controller = AdmissionController(runtime, config).attach()
        runtime.register_item(GRID)
        for k in range(4):
            runtime.wait(runtime.submit(clean_task(f"ok{k}")))
        assert controller.analyzed == 2
        assert controller.skipped == 2

    def test_double_attach_rejected(self):
        runtime = make_runtime()
        AdmissionController(runtime).attach()
        with pytest.raises(RuntimeError):
            AdmissionController(runtime).attach()

    def test_detach(self):
        runtime = make_runtime()
        controller = AdmissionController(runtime).attach()
        controller.detach()
        assert runtime.analyzer is None


class TestGlobalEnablement:
    def test_enable_globally_auto_attaches(self):
        admission.enable_globally(AdmissionConfig())
        runtime = make_runtime()
        assert runtime.analyzer is not None
        created = admission.drain_created()
        assert created == [runtime.analyzer]
        assert admission.drain_created() == []

    def test_disable_globally_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYZE", "1")
        admission.disable_globally()
        assert admission.global_config() is None
        runtime = make_runtime()
        assert runtime.analyzer is None

    def test_env_variable_strict(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYZE", "strict")
        config = admission.global_config()
        assert config is not None and config.strict

    def test_env_variable_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYZE", "0")
        assert admission.global_config() is None

    def test_env_variable_warn(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYZE", "1")
        config = admission.global_config()
        assert config is not None and not config.strict
        runtime = make_runtime()
        assert runtime.analyzer is not None
