"""End-to-end stencil application tests: both ports vs the sequential kernel."""

import numpy as np
import pytest

from repro.apps.stencil import (
    StencilWorkload,
    sequential_reference,
    stencil_allscale,
    stencil_mpi,
)
from repro.regions.box import Box
from repro.runtime.config import RuntimeConfig
from repro.runtime.policies import RoundRobinPolicy
from repro.runtime.tasks import TaskSpec
from repro.sim.cluster import Cluster, ClusterSpec


def small_cluster(nodes):
    return Cluster(
        ClusterSpec(num_nodes=nodes, cores_per_node=2, flops_per_core=1e9)
    )


def read_final_grid(result):
    runtime = result.extras["runtime"]
    grid = result.extras["final_grid"]

    def body(ctx):
        return ctx.fragment(grid).gather(Box.of((0, 0), grid.shape)).copy()

    task = TaskSpec(
        name="readback", reads={grid: grid.full_region}, body=body, size_hint=1
    )
    return runtime.wait(runtime.submit(task))


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("nodes", [1, 2, 4])
    def test_allscale_matches_sequential(self, nodes):
        workload = StencilWorkload(n_per_node=12, timesteps=3, functional=True)
        result = stencil_allscale(small_cluster(nodes), workload)
        result.extras["runtime"].check_ownership_invariants()
        values = read_final_grid(result)
        reference = sequential_reference(workload, nodes)
        assert np.allclose(values, reference)

    @pytest.mark.parametrize("nodes", [1, 2, 4])
    def test_mpi_matches_sequential(self, nodes):
        workload = StencilWorkload(n_per_node=12, timesteps=3, functional=True)
        result = stencil_mpi(small_cluster(nodes), workload)
        reference = sequential_reference(workload, nodes)
        shape = workload.global_shape(nodes)
        assembled = np.zeros(shape)
        for rank, block in enumerate(result.extras["blocks"]):
            ghosted = result.extras["ghosts"][rank]
            glo = (max(0, block.lo[0] - 1), max(0, block.lo[1] - 1))
            si = slice(block.lo[0] - glo[0], block.hi[0] - glo[0])
            sj = slice(block.lo[1] - glo[1], block.hi[1] - glo[1])
            assembled[
                block.lo[0] : block.hi[0], block.lo[1] : block.hi[1]
            ] = ghosted[si, sj]
        assert np.allclose(assembled, reference)

    def test_odd_timestep_count_swaps_buffers(self):
        workload = StencilWorkload(n_per_node=10, timesteps=1, functional=True)
        result = stencil_allscale(small_cluster(2), workload)
        # after an odd number of steps the final grid is B
        assert result.extras["final_grid"].name == "stencil.B"
        workload2 = StencilWorkload(n_per_node=10, timesteps=2, functional=True)
        result2 = stencil_allscale(small_cluster(2), workload2)
        assert result2.extras["final_grid"].name == "stencil.A"


class TestWorkloadAccounting:
    def test_total_flops(self):
        workload = StencilWorkload(n_per_node=10, timesteps=3)
        assert workload.global_shape(4) == (40, 10)
        assert workload.interior_cells(4) == 38 * 8
        assert workload.total_flops(4) == 38 * 8 * 3 * 7.0

    def test_throughput_positive(self):
        workload = StencilWorkload(n_per_node=64, timesteps=2, functional=False)
        result = stencil_allscale(small_cluster(2), workload)
        assert result.throughput > 0
        assert result.work == workload.total_flops(2)


class TestDataDistribution:
    def test_grids_spread_across_nodes(self):
        workload = StencilWorkload(n_per_node=32, timesteps=2, functional=False)
        result = stencil_allscale(small_cluster(4), workload)
        runtime = result.extras["runtime"]
        runtime.check_ownership_invariants()
        for item in runtime.items:
            owners = [
                pid
                for pid in range(4)
                if not runtime.process(pid).data_manager.owned_region(item).is_empty()
            ]
            assert len(owners) == 4, f"{item.name} not distributed"

    def test_halo_replication_happened(self):
        workload = StencilWorkload(n_per_node=32, timesteps=2, functional=False)
        result = stencil_allscale(small_cluster(2), workload)
        metrics = result.extras["runtime"].metrics
        assert metrics.counter("dm.replicas_fetched") > 0
        assert metrics.counter("dm.invalidations") > 0  # step-to-step halos

    def test_policy_injection(self):
        workload = StencilWorkload(n_per_node=24, timesteps=1, functional=False)
        result = stencil_allscale(
            small_cluster(2),
            workload,
            RuntimeConfig(functional=False),
            policy=RoundRobinPolicy(),
        )
        # round-robin ignores data: migrations inevitably happen
        assert result.extras["runtime"].metrics.counter("dm.migrations") > 0
