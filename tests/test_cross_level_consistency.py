"""Specification level vs implementation level on the same logical program.

The same fork-join computation — workers writing disjoint slabs of one
data item while reading across slab boundaries — is executed twice:

* through the formal interpreter (`repro.model`) under many random
  schedules, with version tracking attached;
* through the AllScale runtime (`repro.runtime`) on a simulated cluster,
  in functional mode.

Both levels must agree on the observable outcome: every worker runs
exactly once, the item ends fully materialized with single ownership of
every element, and every element carries exactly one completed write
(version 1 at the spec level, the writer's value at the runtime level).
"""

import numpy as np
import pytest

from repro.model.architecture import distributed_cluster
from repro.model.elements import DataItemDecl
from repro.model.interpreter import Interpreter, InterpreterConfig
from repro.model.properties import check_single_execution, check_terminal
from repro.model.task import AccessSpec, Program, simple_task
from repro.model.values import VersionTracker
from repro.items.grid import Grid
from repro.regions.box import Box
from repro.regions.interval import IntervalRegion
from repro.runtime.config import RuntimeConfig
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.tasks import TaskSpec
from repro.sim.cluster import Cluster, ClusterSpec

TOTAL = 48
WORKERS = 4
SLAB = TOTAL // WORKERS


def slab_bounds(worker: int) -> tuple[int, int]:
    return worker * SLAB, (worker + 1) * SLAB


def halo_bounds(worker: int) -> tuple[int, int]:
    lo, hi = slab_bounds(worker)
    return max(0, lo - 1), min(TOTAL, hi + 1)


def noop(ctx):
    return
    yield  # pragma: no cover


@pytest.mark.parametrize("seed", range(6))
def test_both_levels_agree_on_the_outcome(seed):
    # -- specification level ------------------------------------------------
    item = DataItemDecl(IntervalRegion.span(0, TOTAL), name="slabbed")
    workers = []
    for worker in range(WORKERS):
        lo, hi = slab_bounds(worker)
        hlo, hhi = halo_bounds(worker)
        workers.append(
            simple_task(
                noop,
                AccessSpec(
                    reads={item: IntervalRegion.span(hlo, hhi)},
                    writes={item: IntervalRegion.span(lo, hi)},
                ),
                name=f"worker{worker}",
            )
        )

    def main(ctx):
        yield ctx.create(item)
        for task in workers:
            yield ctx.spawn(task)
        for task in workers:
            yield ctx.sync(task)

    program = Program(simple_task(main, name="main"))
    tracker = VersionTracker()
    interp = Interpreter(
        InterpreterConfig(seed=seed, chaos_data_ops=0.25, max_transitions=20_000),
        observer=tracker,
    )
    trace, state = interp.run_to_completion(
        program, distributed_cluster(WORKERS, 1)
    )
    check_terminal(state)
    check_single_execution(trace, state)
    # the item is fully materialized and every element was written once
    assert state.coverage(item).same_elements(item.full_region)
    for element in range(TOTAL):
        assert tracker.newest_version(item, element) == 1

    # -- implementation level ----------------------------------------------
    cluster = Cluster(
        ClusterSpec(num_nodes=WORKERS, cores_per_node=1, flops_per_core=1e9)
    )
    runtime = AllScaleRuntime(
        cluster, RuntimeConfig(functional=True, seed=seed)
    )
    grid = Grid((TOTAL,), name="slabbed")
    runtime.register_item(grid)

    treetures = []
    for worker in range(WORKERS):
        lo, hi = slab_bounds(worker)
        hlo, hhi = halo_bounds(worker)

        def body(ctx, lo=lo, hi=hi, worker=worker):
            ctx.fragment(grid).scatter(
                Box.of((lo,), (hi,)),
                np.full(hi - lo, float(worker)),
            )

        treetures.append(
            runtime.submit(
                TaskSpec(
                    name=f"worker{worker}",
                    reads={grid: grid.box((hlo,), (hhi,))},
                    writes={grid: grid.box((lo,), (hi,))},
                    body=body,
                    size_hint=SLAB,
                ),
                origin=worker % WORKERS,
            )
        )
    for treeture in treetures:
        runtime.wait(treeture)
    runtime.check_ownership_invariants()

    # full single-ownership coverage, as at the spec level
    coverage = grid.empty_region()
    for pid in range(WORKERS):
        owned = runtime.process(pid).data_manager.owned_region(grid)
        assert coverage.intersect(owned).is_empty()
        coverage = coverage.union(owned)
    assert coverage.same_elements(grid.full_region)

    # every element holds exactly its (single) writer's value
    def read_all(ctx):
        return ctx.fragment(grid).gather(Box.of((0,), (TOTAL,))).copy()

    values = runtime.wait(
        runtime.submit(
            TaskSpec(
                name="readback",
                reads={grid: grid.full_region},
                body=read_all,
                size_hint=1,
            )
        )
    )
    expected = np.repeat(np.arange(WORKERS, dtype=float), SLAB)
    assert np.array_equal(values, expected)

    # and the executed-task census matches the model's single execution:
    # each worker leaf ran exactly once somewhere
    total_leaves = sum(p.executed_leaves for p in runtime.processes)
    assert total_leaves == WORKERS + 1  # workers + the readback task
