"""Unit tests for simulated nodes, clusters, and metrics."""

import pytest

from repro.sim.cluster import Cluster, ClusterSpec, meggie_like_spec
from repro.sim.engine import SimEngine
from repro.sim.metrics import MetricRegistry
from repro.sim.node import MemoryExhaustedError, SimNode


class TestSimNode:
    def make(self, cores=2, rate=1e9, memory=float("inf")):
        engine = SimEngine()
        return engine, SimNode(engine, 0, cores, rate, memory)

    def test_work_packs_onto_free_cores(self):
        engine, node = self.make(cores=2)
        node.execute(1.0)
        node.execute(1.0)
        node.execute(1.0)  # queues behind one of the first two
        engine.run()
        assert engine.now == pytest.approx(2.0)

    def test_execute_parallel_uses_all_cores(self):
        engine, node = self.make(cores=4)
        node.execute(1.0)  # one core busy until t=1
        node.execute_parallel(2.0)  # waits for all cores
        engine.run()
        assert engine.now == pytest.approx(3.0)

    def test_flops_conversion(self):
        _, node = self.make(cores=4, rate=2e9)
        assert node.flops_to_seconds(4e9) == pytest.approx(2.0)
        assert node.flops_to_seconds_parallel(4e9) == pytest.approx(0.5)

    def test_backlog_and_busy_fraction(self):
        engine, node = self.make(cores=2)
        node.execute(4.0)
        assert node.backlog() == pytest.approx(2.0)  # 4s over 2 cores
        engine.run()
        assert node.busy_fraction(4.0) == pytest.approx(0.5)

    def test_memory_budget(self):
        _, node = self.make(memory=100.0)
        node.allocate(60)
        with pytest.raises(MemoryExhaustedError):
            node.allocate(50)
        node.free(30)
        node.allocate(50)
        assert node.memory_used == pytest.approx(80)
        node.free(1000)
        assert node.memory_used == 0.0

    def test_validation(self):
        engine = SimEngine()
        with pytest.raises(ValueError):
            SimNode(engine, 0, 0, 1e9)
        with pytest.raises(ValueError):
            SimNode(engine, 0, 1, 0)
        _, node = self.make()
        with pytest.raises(ValueError):
            node.execute(-1.0)


class TestCluster:
    def test_assembly(self):
        cluster = Cluster(ClusterSpec(num_nodes=4, cores_per_node=8))
        assert cluster.num_nodes == 4
        assert cluster.total_cores() == 32
        assert len(cluster.nodes) == 4
        assert cluster.node(2).node_id == 2

    def test_meggie_preset(self):
        spec = meggie_like_spec(64)
        assert spec.num_nodes == 64
        assert spec.cores_per_node == 20
        assert spec.memory_per_node == pytest.approx(64e9)
        # single-node effective rate lands near the paper's ~48 GFLOPS
        assert spec.cores_per_node * spec.flops_per_core == pytest.approx(
            48e9
        )

    def test_spec_with_nodes(self):
        spec = meggie_like_spec(4).with_nodes(16)
        assert spec.num_nodes == 16
        assert spec.cores_per_node == 20

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(num_nodes=0)
        with pytest.raises(ValueError):
            ClusterSpec(num_nodes=1, cores_per_node=0)


class TestMetrics:
    def test_counters(self):
        metrics = MetricRegistry()
        metrics.incr("x")
        metrics.incr("x", 2.5)
        assert metrics.counter("x") == 3.5
        assert metrics.counter("missing") == 0.0

    def test_stats(self):
        metrics = MetricRegistry()
        for v in (1.0, 3.0, 5.0):
            metrics.observe("lat", v)
        stat = metrics.stat("lat")
        assert stat.count == 3
        assert stat.mean == pytest.approx(3.0)
        assert stat.minimum == 1.0 and stat.maximum == 5.0
        assert metrics.stat("missing").count == 0

    def test_merged(self):
        a, b = MetricRegistry(), MetricRegistry()
        a.incr("n", 1)
        b.incr("n", 2)
        a.observe("s", 1.0)
        b.observe("s", 3.0)
        merged = a.merged(b)
        assert merged.counter("n") == 3
        assert merged.stat("s").mean == pytest.approx(2.0)

    def test_snapshot(self):
        metrics = MetricRegistry()
        metrics.incr("c", 2)
        metrics.observe("s", 4.0)
        snap = metrics.snapshot()
        assert snap["c"] == 2
        assert snap["s.mean"] == 4.0
        assert snap["s.count"] == 1.0
