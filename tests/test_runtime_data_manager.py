"""Integration tests for the data item manager and the runtime façade."""

import numpy as np
import pytest

from repro.items.grid import Grid
from repro.regions.box import Box
from repro.runtime.config import RuntimeConfig
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.tasks import TaskSpec
from repro.sim.cluster import Cluster, ClusterSpec


def make_runtime(nodes=4, cores=2, functional=True):
    cluster = Cluster(
        ClusterSpec(num_nodes=nodes, cores_per_node=cores, flops_per_core=1e9)
    )
    return AllScaleRuntime(cluster, RuntimeConfig(functional=functional))


class TestAllocation:
    def test_first_touch_allocates_and_indexes(self):
        runtime = make_runtime(nodes=2)
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid)
        manager = runtime.process(1).data_manager
        region = grid.box((0, 0), (4, 8))
        manager.allocate(grid, region)
        assert manager.owned_region(grid).same_elements(region)
        assert runtime.index.owned_region(grid, 1).same_elements(region)
        assert runtime.process(1).node.memory_used == region.size() * 8
        runtime.check_ownership_invariants()

    def test_registration_with_placement(self):
        runtime = make_runtime(nodes=4)
        grid = Grid((16, 16), name="g")
        placement = grid.decompose(4)
        runtime.register_item(grid, placement=placement)
        runtime.check_ownership_invariants()
        for pid in range(4):
            owned = runtime.process(pid).data_manager.owned_region(grid)
            assert owned.same_elements(placement[pid])

    def test_double_registration_rejected(self):
        runtime = make_runtime()
        grid = Grid((4, 4))
        runtime.register_item(grid)
        with pytest.raises(ValueError):
            runtime.register_item(grid)

    def test_bad_placement_length(self):
        runtime = make_runtime(nodes=2)
        grid = Grid((4, 4))
        with pytest.raises(ValueError):
            runtime.register_item(grid, placement=[grid.full_region])


class TestMigrationAndReplication:
    def run_task(self, runtime, task):
        return runtime.wait(runtime.submit(task))

    def test_write_migrates_ownership(self):
        runtime = make_runtime(nodes=2)
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid, placement=grid.decompose(2))

        def body(ctx):
            ctx.fragment(grid).scatter(
                Box.of((0, 0), (8, 8)), np.ones((8, 8))
            )

        # whole-grid write must consolidate ownership at one process
        task = TaskSpec(
            name="w", writes={grid: grid.full_region}, body=body, size_hint=64
        )
        self.run_task(runtime, task)
        runtime.check_ownership_invariants()
        owners = [
            pid
            for pid in range(2)
            if not runtime.process(pid).data_manager.owned_region(grid).is_empty()
        ]
        assert len(owners) == 1
        assert runtime.metrics.counter("dm.migrations") >= 1

    def test_read_replicates_without_ownership_change(self):
        runtime = make_runtime(nodes=2)
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid, placement=grid.decompose(2))
        owned_before = [
            runtime.process(pid).data_manager.owned_region(grid) for pid in range(2)
        ]

        def body(ctx):
            return float(
                ctx.fragment(grid).gather(Box.of((0, 0), (8, 8))).sum()
            )

        task = TaskSpec(
            name="r", reads={grid: grid.full_region}, body=body, size_hint=64
        )
        value = self.run_task(runtime, task)
        assert value == 0.0  # freshly allocated zeros
        runtime.check_ownership_invariants()
        for pid in range(2):
            assert runtime.process(pid).data_manager.owned_region(grid).same_elements(
                owned_before[pid]
            )
        assert runtime.metrics.counter("dm.replicas_fetched") >= 1
        assert runtime.replica_holders(grid)

    def test_write_invalidates_replicas(self):
        runtime = make_runtime(nodes=2)
        grid = Grid((8, 8), name="g")
        placement = grid.decompose(2)
        runtime.register_item(grid, placement=placement)
        # process 1 fetches a read replica of process 0's half
        manager = runtime.process(1).data_manager
        runtime.engine.spawn(manager._fetch_replicas(grid, placement[0]))
        runtime.run()
        assert 1 in runtime.replica_holders(grid)
        # a write on that region (running at its owner, process 0) must
        # invalidate the remote replica first — exclusive writes
        write = TaskSpec(
            name="w",
            writes={grid: placement[0]},
            body=lambda ctx: None,
            size_hint=32,
        )
        self.run_task(runtime, write)
        assert not runtime.replica_holders(grid)
        assert runtime.metrics.counter("dm.invalidations") >= 1
        # process 1's fragment dropped the replica but kept its own data
        assert manager.present_region(grid).same_elements(placement[1])
        runtime.check_ownership_invariants()

    def test_replica_holder_becoming_owner_is_unregistered(self):
        runtime = make_runtime(nodes=2)
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid, placement=grid.decompose(2))
        read = TaskSpec(
            name="r",
            reads={grid: grid.full_region},
            body=lambda ctx: None,
            size_hint=64,
        )
        self.run_task(runtime, read)
        assert runtime.replica_holders(grid)
        write = TaskSpec(
            name="w",
            writes={grid: grid.full_region},
            body=lambda ctx: None,
            size_hint=64,
        )
        self.run_task(runtime, write)
        # the reader migrated the rest in and became sole owner; its stale
        # replica registration must be cleaned up without invalidations
        assert not runtime.replica_holders(grid)
        runtime.check_ownership_invariants()

    def test_functional_values_survive_migration(self):
        runtime = make_runtime(nodes=2)
        grid = Grid((4, 4), name="g")
        runtime.register_item(grid)
        left = grid.box((0, 0), (2, 4))

        def write_left(ctx):
            ctx.fragment(grid).scatter(Box.of((0, 0), (2, 4)), np.full((2, 4), 5.0))

        self.run_task(
            runtime,
            TaskSpec(name="w1", writes={grid: left}, body=write_left, size_hint=8),
        )

        def read_all(ctx):
            return ctx.fragment(grid).gather(Box.of((0, 0), (4, 4))).sum()

        total = self.run_task(
            runtime,
            TaskSpec(
                name="r", reads={grid: grid.full_region}, body=read_all,
                size_hint=16,
            ),
        )
        assert total == 5.0 * 8

    def test_virtual_mode_moves_bytes_not_values(self):
        runtime = make_runtime(nodes=2, functional=False)
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid, placement=grid.decompose(2))
        task = TaskSpec(
            name="r", reads={grid: grid.full_region}, flops=1e3, size_hint=64
        )
        runtime.wait(runtime.submit(task))
        assert runtime.metrics.counter("dm.replicated_bytes") > 0


class TestDestroy:
    def test_destroy_clears_everything(self):
        runtime = make_runtime(nodes=2)
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid, placement=grid.decompose(2))
        runtime.destroy_item(grid)
        assert grid not in runtime.items
        for pid in range(2):
            assert runtime.process(pid).node.memory_used == 0
            assert runtime.index.owned_region(grid, pid).is_empty()
