"""Unit tests for blocked tree regions (Fig. 4c)."""

import pytest

from repro.regions.base import RegionMismatchError
from repro.regions.blocked_tree import BlockedTreeGeometry, BlockedTreeRegion
from repro.regions.tree import TreeGeometry


class TestBlockedTreeGeometry:
    def test_mask_length_formula(self):
        # "a simple bit-mask of length 2^h + 1"
        g = BlockedTreeGeometry(depth=6, root_height=3)
        assert g.num_blocks == 8
        assert g.mask_length == 9

    def test_sizes(self):
        g = BlockedTreeGeometry(depth=6, root_height=3)
        assert g.root_tree_size == 7
        assert g.block_size == 7
        assert g.root_tree_size + g.num_blocks * g.block_size == (1 << 6) - 1

    def test_block_roots(self):
        g = BlockedTreeGeometry(depth=4, root_height=2)
        assert [g.block_root(b) for b in (1, 2, 3, 4)] == [4, 5, 6, 7]
        with pytest.raises(ValueError):
            g.block_root(5)

    def test_block_of(self):
        g = BlockedTreeGeometry(depth=4, root_height=2)
        assert g.block_of(1) is None
        assert g.block_of(3) is None
        assert g.block_of(4) == 1
        assert g.block_of(9) == 1  # child of 4
        assert g.block_of(15) == 4

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            BlockedTreeGeometry(depth=3, root_height=3)
        with pytest.raises(ValueError):
            BlockedTreeGeometry(depth=3, root_height=0)


class TestBlockedTreeRegion:
    def setup_method(self):
        self.g = BlockedTreeGeometry(depth=5, root_height=2)

    def test_empty_full(self):
        assert BlockedTreeRegion.empty(self.g).is_empty()
        full = BlockedTreeRegion.full(self.g)
        assert full.size() == (1 << 5) - 1

    def test_root_tree_only(self):
        region = BlockedTreeRegion.root_tree(self.g)
        assert set(region.elements()) == {1, 2, 3}

    def test_of_blocks(self):
        region = BlockedTreeRegion.of_blocks(self.g, [2, 4])
        tree = TreeGeometry(5)
        expected = set(tree.subtree_nodes(5)) | set(tree.subtree_nodes(7))
        assert set(region.elements()) == expected
        assert list(region.blocks()) == [2, 4]
        assert not region.has_root_tree()

    def test_bitwise_algebra(self):
        a = BlockedTreeRegion.of_blocks(self.g, [1, 2], include_root_tree=True)
        b = BlockedTreeRegion.of_blocks(self.g, [2, 3])
        assert list((a | b).blocks()) == [1, 2, 3]
        assert list((a & b).blocks()) == [2]
        assert list((a - b).blocks()) == [1]
        assert (a - b).has_root_tree()

    def test_contains(self):
        region = BlockedTreeRegion.of_blocks(self.g, [1])
        assert region.contains(4)
        assert region.contains(16)  # descendant of 4
        assert not region.contains(1)
        assert not region.contains(99)

    def test_conversion_to_flexible(self):
        region = BlockedTreeRegion.of_blocks(
            self.g, [1, 3], include_root_tree=True
        )
        flexible = region.to_tree_region()
        assert set(flexible.elements()) == set(region.elements())

    def test_conversion_full(self):
        full = BlockedTreeRegion.full(self.g)
        assert full.to_tree_region().size() == full.size()

    def test_representation_is_constant_size(self):
        # the blocked scheme's selling point: O(2^h) bits regardless of
        # which blocks are selected
        small = BlockedTreeRegion.of_blocks(self.g, [1])
        large = BlockedTreeRegion.full(self.g)
        assert small.representation_size() == large.representation_size()

    def test_mask_bounds_checked(self):
        with pytest.raises(ValueError):
            BlockedTreeRegion(self.g, 1 << self.g.mask_length)
        with pytest.raises(ValueError):
            BlockedTreeRegion(self.g, -1)

    def test_geometry_mismatch(self):
        other = BlockedTreeRegion.full(BlockedTreeGeometry(depth=6, root_height=2))
        with pytest.raises(RegionMismatchError):
            BlockedTreeRegion.full(self.g).union(other)

    def test_equality_and_hash(self):
        a = BlockedTreeRegion.of_blocks(self.g, [1, 2])
        b = BlockedTreeRegion.of_blocks(self.g, [2, 1])
        assert a == b
        assert hash(a) == hash(b)
