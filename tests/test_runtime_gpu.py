"""Tests for GPU offloading — the variant-selection freedom of Example 2.3
extended to accelerators, enabled by runtime data-distribution control."""

import pytest

from repro.items.grid import Grid
from repro.runtime.config import RuntimeConfig
from repro.runtime.policies import DataAwarePolicy
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.tasks import TaskSpec
from repro.sim.accelerator import AcceleratorSpec, SimAccelerator
from repro.sim.cluster import Cluster, ClusterSpec
from repro.sim.engine import SimEngine


def gpu_cluster(nodes=2, gpus=1, **kwargs):
    return Cluster(
        ClusterSpec(
            num_nodes=nodes,
            cores_per_node=2,
            flops_per_core=1e9,
            gpus_per_node=gpus,
            gpu=AcceleratorSpec(
                flops=1e12, link_bandwidth=10e9, link_latency=5e-6,
                launch_overhead=5e-6,
            ),
            **kwargs,
        )
    )


class TestSimAccelerator:
    def test_transfer_and_launch_timing(self):
        engine = SimEngine()
        spec = AcceleratorSpec(
            flops=1e12, link_bandwidth=10e9, link_latency=1e-6,
            launch_overhead=2e-6,
        )
        device = SimAccelerator(engine, 0, spec)
        device.transfer(10e9)  # 1 s of link time
        device.launch(1e12)  # overhead + 1 s of compute
        engine.run()
        # link and compute overlap: total ≈ max path = transfer then kernel
        assert engine.now >= 1.0
        assert device.kernels_launched == 1
        assert device.bytes_transferred == 10e9

    def test_kernels_serialize(self):
        engine = SimEngine()
        device = SimAccelerator(engine, 0, AcceleratorSpec(flops=1e12))
        device.launch(1e12)
        device.launch(1e12)
        engine.run()
        assert engine.now >= 2.0

    def test_estimate(self):
        engine = SimEngine()
        spec = AcceleratorSpec(
            flops=1e12, link_bandwidth=10e9, link_latency=1e-6,
            launch_overhead=1e-6,
        )
        device = SimAccelerator(engine, 0, spec)
        estimate = device.offload_time_estimate(1e9, 1e6)
        # 2× latency + bytes/bandwidth + launch + flops/rate
        assert estimate == pytest.approx(2e-6 + 1e-4 + 1e-6 + 1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            AcceleratorSpec(flops=0)
        engine = SimEngine()
        device = SimAccelerator(engine, 0, AcceleratorSpec())
        with pytest.raises(ValueError):
            device.transfer(-1)
        with pytest.raises(ValueError):
            device.launch(-1)


class TestOffloadPolicy:
    def make(self, gpus=1):
        runtime = AllScaleRuntime(
            gpu_cluster(gpus=gpus), RuntimeConfig(functional=False)
        )
        return runtime, DataAwarePolicy()

    def test_heavy_task_offloaded(self):
        runtime, policy = self.make()
        task = TaskSpec(name="heavy", flops=1e9, gpu_flops=1e9, size_hint=1)
        assert policy.pick_variant(task, runtime) == "gpu"

    def test_tiny_task_stays_on_cpu(self):
        runtime, policy = self.make()
        # 1 µs of CPU work: transfer/launch overheads dominate
        task = TaskSpec(name="tiny", flops=1e3, gpu_flops=1e3, size_hint=1)
        assert policy.pick_variant(task, runtime) == "leaf"

    def test_no_gpu_variant_without_gpu_flops(self):
        runtime, policy = self.make()
        task = TaskSpec(name="cpu-only", flops=1e9, size_hint=1)
        assert policy.pick_variant(task, runtime) == "leaf"

    def test_no_offload_on_cpu_cluster(self):
        runtime, policy = self.make(gpus=0)
        task = TaskSpec(name="heavy", flops=1e9, gpu_flops=1e9, size_hint=1)
        assert policy.pick_variant(task, runtime) == "leaf"

    def test_transfer_volume_considered(self):
        runtime, policy = self.make()
        grid = Grid((2000, 2000), name="g")
        runtime.register_item(grid)
        # modest compute over a huge data footprint: transfers dominate
        task = TaskSpec(
            name="data-heavy",
            reads={grid: grid.full_region},
            writes={grid: grid.full_region},
            flops=5e6,
            gpu_flops=5e6,
            size_hint=grid.full_region.size(),
        )
        assert policy.pick_variant(task, runtime) == "leaf"


class TestOffloadExecution:
    def test_offloaded_task_runs_on_device(self):
        runtime = AllScaleRuntime(
            gpu_cluster(), RuntimeConfig(functional=False)
        )
        grid = Grid((64, 64), name="g")
        runtime.register_item(grid, placement=grid.decompose(2))
        task = TaskSpec(
            name="kernel",
            writes={grid: runtime.home_map(grid)[0]},
            flops=1e9,
            gpu_flops=1e9,
            size_hint=2048,
        )
        runtime.wait(runtime.submit(task))
        assert runtime.metrics.counter("proc.gpu_offloads") == 1
        device = runtime.cluster.accelerators[0][0]
        assert device.kernels_launched == 1
        assert device.bytes_transferred > 0
        # device time (1 ms) ≪ what a CPU core would need (1 s)
        assert runtime.now < 0.1

    def test_offload_speedup_end_to_end(self):
        def run(gpus):
            runtime = AllScaleRuntime(
                gpu_cluster(gpus=gpus), RuntimeConfig(functional=False)
            )
            treetures = [
                runtime.submit(
                    TaskSpec(
                        name=f"k{k}", flops=5e8, gpu_flops=5e8, size_hint=1
                    ),
                    origin=k % 2,
                )
                for k in range(8)
            ]
            for treeture in treetures:
                runtime.wait(treeture)
            return runtime.now

        assert run(gpus=1) < run(gpus=0) / 10
