"""Property tests: clean random task trees analyze clean; seeded bugs don't.

The generator builds requirement-correct trees by construction — every
split partitions the parent's write range into disjoint child sub-ranges,
and reads go to a *different* item, fully declared at every level.  Such
trees must produce zero findings.  Conversely, inflating any one leaf's
write range by a single element breaks either sibling disjointness or
parent subsumption, so the analyzer must report at least one error.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import AnalysisConfig, analyze_task
from repro.items.grid import Grid
from repro.runtime.tasks import TaskSpec


N = 64
DST = Grid((N + 8,), name="dst")
SRC = Grid((N + 8,), name="src")

CONFIG = AnalysisConfig(max_depth=8, max_nodes=1024)


def span(lo, hi, grid=DST):
    return grid.box((lo,), (hi,))


def build_tree(lo, hi, draw, depth=0):
    """A requirement-correct task over dst[lo, hi), reading src[lo, hi).

    Returns ``(spec, leaves)`` with each leaf as ``(spec, lo, hi)``.
    """
    width = hi - lo
    arity = draw(st.integers(2, 3)) if width >= 4 else 2
    do_split = depth < 4 and width >= arity and draw(st.booleans())
    spec = TaskSpec(
        name=f"t{lo}_{hi}",
        reads={SRC: span(lo, hi, SRC)},
        writes={DST: span(lo, hi)},
    )
    if not do_split:
        return spec, [(spec, lo, hi)]
    cuts = sorted(
        draw(
            st.lists(
                st.integers(lo + 1, hi - 1),
                min_size=arity - 1,
                max_size=arity - 1,
                unique=True,
            )
        )
    )
    edges = [lo, *cuts, hi]
    children, leaves = [], []
    for a, b in zip(edges, edges[1:]):
        child, sub_leaves = build_tree(a, b, draw, depth + 1)
        children.append(child)
        leaves.extend(sub_leaves)
    spec.splitter = lambda kids=children: list(kids)
    return spec, leaves


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_clean_random_trees_have_zero_findings(data):
    root, _ = build_tree(0, N, data.draw)
    report = analyze_task(root, CONFIG)
    assert report.findings == [], "\n".join(map(str, report.findings))
    assert report.tasks_truncated == 0


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_inflated_leaf_write_always_caught(data):
    root, leaves = build_tree(0, N, data.draw)
    victim, lo, hi = leaves[data.draw(st.integers(0, len(leaves) - 1))]
    # one element past the leaf's range: crosses into a sibling's range
    # (overlap + write/write race) or out of the root's (write escape)
    victim.writes[DST] = span(lo, hi + 1)
    if victim is root:
        # no parent to escape and no sibling to collide with: the root's
        # own declaration is the outermost contract
        return
    report = analyze_task(root, CONFIG)
    assert not report.clean, report.summary()
    allowed = {
        "coverage.sibling_write_overlap",
        "coverage.write_escape",
        "race.write_write",
    }
    assert {f.check for f in report.errors} <= allowed


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_shrunken_parent_read_always_caught(data):
    """Dropping part of a split parent's read declaration is a read escape."""
    half = N // 2
    left, _ = build_tree(0, half, data.draw, depth=1)
    right, _ = build_tree(half, N, data.draw, depth=1)
    root = TaskSpec(
        name="root",
        reads={SRC: span(1, N, SRC)},  # children still read src[0, N)
        writes={DST: span(0, N)},
        splitter=lambda: [left, right],
    )
    report = analyze_task(root, CONFIG)
    assert "coverage.read_escape" in {f.check for f in report.errors}
