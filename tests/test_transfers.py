"""Unit tests for transfer plans and the replica cache."""

import numpy as np
import pytest

from repro.items.grid import Grid
from repro.regions.box import Box
from repro.runtime.config import RuntimeConfig
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.tasks import TaskSpec
from repro.runtime.transfers import TransferPlan, plan_for_task
from repro.sim.cluster import Cluster, ClusterSpec


def make_runtime(nodes=2, **config):
    cluster = Cluster(
        ClusterSpec(num_nodes=nodes, cores_per_node=2, flops_per_core=1e9)
    )
    return AllScaleRuntime(cluster, RuntimeConfig(**config))


def run_task(runtime, task):
    return runtime.wait(runtime.submit(task))


class TestTransferPlan:
    def test_plan_dedups_elements(self):
        grid = Grid((8, 8), name="g")
        plan = TransferPlan(dst=0)
        first = plan.plan(grid, grid.box((0, 0), (4, 8)), src=1, kind="replicate")
        assert first.same_elements(grid.box((0, 0), (4, 8)))
        # overlapping second intent only contributes the fresh elements
        second = plan.plan(grid, grid.box((2, 0), (6, 8)), src=1, kind="replicate")
        assert second.same_elements(grid.box((4, 0), (6, 8)))
        assert plan.planned_region(grid).same_elements(
            grid.box((0, 0), (6, 8))
        )
        # fully covered intent plans nothing
        third = plan.plan(grid, grid.box((1, 1), (3, 3)), src=1, kind="replicate")
        assert third.is_empty()
        assert len(plan.planned) == 2

    def test_planned_bytes_skip_allocations(self):
        grid = Grid((8, 8), name="g")
        plan = TransferPlan(dst=0)
        plan.plan(grid, grid.box((0, 0), (4, 8)), src=1, kind="replicate")
        plan.plan(grid, grid.box((4, 0), (8, 8)), src=0, kind="allocate")
        assert plan.planned_bytes() == grid.region_bytes(
            grid.box((0, 0), (4, 8))
        )

    def test_moved_and_refetched_regions(self):
        grid = Grid((8, 8), name="g")
        plan = TransferPlan(dst=0)
        region = grid.box((0, 0), (4, 8))
        nbytes = grid.region_bytes(region)
        plan.record_moved(grid, region, src=1, kind="replicate", nbytes=nbytes)
        assert plan.moved_region(grid).same_elements(region)
        assert plan.refetched_region(grid).is_empty()
        assert plan.refetched_bytes() == 0
        # the same elements travelling again count as refetched ...
        plan.record_moved(grid, region, src=1, kind="replicate", nbytes=nbytes)
        assert plan.refetched_region(grid).same_elements(region)
        assert plan.refetched_bytes() == nbytes
        # ... but allocations never do (they move no payload)
        plan2 = TransferPlan(dst=0)
        plan2.record_moved(grid, region, src=0, kind="allocate", nbytes=0)
        plan2.record_moved(grid, region, src=1, kind="replicate", nbytes=nbytes)
        assert plan2.refetched_region(grid).is_empty()

    def test_empty_records_ignored(self):
        grid = Grid((8, 8), name="g")
        plan = TransferPlan(dst=0)
        plan.record_moved(grid, grid.empty_region(), 1, "replicate", 0)
        plan.record_hit(grid, grid.empty_region())
        assert not plan.moved and not plan.hits
        assert plan.items() == []

    def test_hit_region_accumulates(self):
        grid = Grid((8, 8), name="g")
        plan = TransferPlan(dst=0)
        plan.record_hit(grid, grid.box((0, 0), (2, 8)))
        plan.record_hit(grid, grid.box((2, 0), (4, 8)))
        assert plan.hit_region(grid).same_elements(grid.box((0, 0), (4, 8)))

    def test_finish_publishes_metrics_once(self):
        runtime = make_runtime()
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid)
        plan = TransferPlan(dst=0, purpose="test")
        region = grid.box((0, 0), (4, 8))
        plan.plan(grid, region, src=1, kind="replicate")
        plan.record_moved(
            grid, region, 1, "replicate", grid.region_bytes(region)
        )
        plan.finish(runtime)
        plan.finish(runtime)  # idempotent
        assert runtime.metrics.counter("comms.plans") == 1
        assert runtime.metrics.counter("comms.planned_bytes") == plan.planned_bytes()
        assert runtime.metrics.counter("comms.moved_bytes") == plan.moved_bytes()
        assert runtime.metrics.counter("comms.refetched_bytes") == 0


class TestPlanForTask:
    def test_static_read_plan_replicates_remote_share(self):
        runtime = make_runtime(nodes=2)
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid, placement=grid.decompose(2))
        task = TaskSpec(
            name="r", reads={grid: grid.full_region}, body=lambda ctx: None
        )
        plan = plan_for_task(task, runtime, target=0)
        remote = runtime.index.owned_region(grid, 1)
        assert plan.planned_region(grid).same_elements(remote)
        assert {step.kind for step in plan.planned} == {"replicate"}
        assert all(step.src == 1 for step in plan.planned)

    def test_static_write_plan_migrates(self):
        runtime = make_runtime(nodes=2)
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid, placement=grid.decompose(2))
        task = TaskSpec(
            name="w", writes={grid: grid.full_region}, body=lambda ctx: None
        )
        plan = plan_for_task(task, runtime, target=0)
        kinds = {step.kind for step in plan.planned}
        assert kinds == {"migrate"}

    def test_static_plan_allocates_uninitialized(self):
        runtime = make_runtime(nodes=2)
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid)  # nothing owned anywhere yet
        task = TaskSpec(
            name="w", writes={grid: grid.full_region}, body=lambda ctx: None
        )
        plan = plan_for_task(task, runtime, target=0)
        assert {step.kind for step in plan.planned} == {"allocate"}
        assert plan.planned_bytes() == 0

    def test_static_plan_matches_executed_staging(self):
        runtime = make_runtime(nodes=2)
        grid = Grid((8, 8), name="g")
        placement = grid.decompose(2)
        runtime.register_item(grid, placement=placement)
        # the write pins placement at process 0 (Algorithm 2 line 7), so
        # the static audit and the executed staging share a target
        task = TaskSpec(
            name="r",
            reads={grid: grid.full_region},
            writes={grid: placement[0]},
            body=lambda ctx: None,
            size_hint=1,
        )
        static = plan_for_task(task, runtime, target=0)
        run_task(runtime, task)
        executed = [
            plan for plan in runtime.transfer_plans() if plan.purpose == "r"
        ]
        assert executed
        moved = grid.empty_region()
        for plan in executed:
            moved = moved.union(plan.moved_region(grid))
        assert static.planned_region(grid).difference(moved).is_empty()


class TestReplicaCache:
    def replicate(self, runtime, grid, region, target=0):
        """Fetch a read replica of ``region`` into ``target`` directly."""
        manager = runtime.process(target).data_manager
        runtime.engine.spawn(manager._fetch_replicas(grid, region))
        runtime.run()

    def test_note_fetched_tracks_only_replicas(self):
        runtime = make_runtime(nodes=2)
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid, placement=grid.decompose(2))
        manager = runtime.process(0).data_manager
        cache = manager.replica_cache
        # owned bytes are not replicas: nothing to track
        cache.note_fetched(grid, manager.owned_region(grid))
        assert cache.tracked_bytes() == 0

    def test_fetch_then_drop(self):
        runtime = make_runtime(nodes=2)
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid, placement=grid.decompose(2))
        self.replicate(runtime, grid, grid.full_region, target=0)
        manager = runtime.process(0).data_manager
        cache = manager.replica_cache
        replica = manager.replica_region(grid)
        assert not replica.is_empty()
        assert cache.tracked_bytes(grid) == grid.region_bytes(replica)
        half = cache.entries(grid)[0].region
        manager.drop_replica(grid, half)
        assert cache.tracked_bytes(grid) == grid.region_bytes(
            replica.difference(half)
        )

    def pinned_reader(self, grid, placement, name):
        """A task pinned at process 0 whose read spans the remote half."""
        return TaskSpec(
            name=name,
            reads={grid: grid.full_region},
            writes={grid: placement[0]},
            body=lambda ctx: None,
            size_hint=1,
        )

    def test_hit_and_miss_metrics(self):
        runtime = make_runtime(nodes=2)
        grid = Grid((8, 8), name="g")
        placement = grid.decompose(2)
        runtime.register_item(grid, placement=placement)
        remote = placement[1]
        run_task(runtime, self.pinned_reader(grid, placement, "r1"))
        misses = runtime.metrics.counter("comms.replica_misses")
        assert misses >= 1
        assert runtime.metrics.counter("comms.replica_miss_bytes") >= float(
            grid.region_bytes(remote)
        )
        # second read of the same region is served from the replica
        run_task(runtime, self.pinned_reader(grid, placement, "r2"))
        assert runtime.metrics.counter("comms.replica_hits") >= 1
        assert runtime.metrics.counter("comms.replica_misses") == misses
        assert runtime.metrics.counter("comms.replica_hit_bytes") >= float(
            grid.region_bytes(remote)
        )

    def test_revalidation_after_ownership_change(self):
        runtime = make_runtime(nodes=2)
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid, placement=grid.decompose(2))
        manager = runtime.process(0).data_manager
        cache = manager.replica_cache
        remote = runtime.index.owned_region(grid, 1)
        self.replicate(runtime, grid, remote, target=0)
        assert cache.entries(grid)
        version = cache.entries(grid)[0].version
        # bump the item's ownership epoch with an unrelated-item-safe
        # no-payload change: re-register is not possible, so grow p1's
        # leaf through the index directly
        runtime.index.update_ownership(
            grid, 1, runtime.index.owned_region(grid, 1)
        )  # no-op: same elements, version unchanged
        assert cache.entries(grid)[0].version == version
        cache.record_hit(grid, remote)
        assert runtime.metrics.counter("comms.replica_revalidations") == 0

    def test_lru_eviction_respects_bound(self):
        bound = 8 * 2 * 8  # room for one two-row strip of the grid
        runtime = make_runtime(nodes=2, replica_cache_bytes=bound)
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid, placement=grid.decompose(2))
        manager = runtime.process(0).data_manager
        cache = manager.replica_cache
        assert cache.max_bytes == bound
        # two strip fetches, each exactly at the bound: the second fetch
        # must evict the by-then-cold first strip
        first = grid.box((4, 0), (6, 8))
        second = grid.box((6, 0), (8, 8))
        self.replicate(runtime, grid, first, target=0)
        assert cache.tracked_bytes() == grid.region_bytes(first)
        self.replicate(runtime, grid, second, target=0)
        assert runtime.metrics.counter("comms.replica_evictions") >= 1
        assert runtime.metrics.counter(
            "comms.replica_evicted_bytes"
        ) == grid.region_bytes(first)
        assert cache.tracked_bytes() <= bound
        # the evicted replica bytes actually left the fragment
        assert manager.replica_region(grid).same_elements(second)
        runtime.check_ownership_invariants()

    def test_eviction_skips_pinned_bytes(self):
        bound = 16.0
        runtime = make_runtime(nodes=2, replica_cache_bytes=bound)
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid, placement=grid.decompose(2))
        manager = runtime.process(0).data_manager
        cache = manager.replica_cache
        self.replicate(runtime, grid, runtime.index.owned_region(grid, 1))
        replica = manager.replica_region(grid)
        assert not replica.is_empty()
        # pin everything via the fetch marker; a new over-budget entry
        # must then survive (nothing evictable)
        manager._mark_fetching(grid, replica)
        try:
            before = cache.tracked_bytes()
            cache._evict(grid)
            assert cache.tracked_bytes() == before
        finally:
            manager._clear_fetching(grid, replica)

    def test_unbounded_cache_never_evicts(self):
        runtime = make_runtime(nodes=2)  # replica_cache_bytes=None
        grid = Grid((16, 16), name="g")
        runtime.register_item(grid, placement=grid.decompose(2))
        self.replicate(runtime, grid, grid.full_region, target=0)
        assert runtime.metrics.counter("comms.replica_evictions") == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RuntimeConfig(replica_cache_bytes=0)
        with pytest.raises(ValueError):
            RuntimeConfig(replica_cache_bytes=-5.0)
        RuntimeConfig(replica_cache_bytes=None)
        RuntimeConfig(replica_cache_bytes=1024.0)


class TestPlanLog:
    def test_runtime_collects_plans(self):
        runtime = make_runtime(nodes=2)
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid, placement=grid.decompose(2))
        task = TaskSpec(
            name="w",
            writes={grid: grid.full_region},
            body=lambda ctx: ctx.fragment(grid).scatter(
                Box.of((0, 0), (8, 8)), np.ones((8, 8))
            ),
            size_hint=1,
        )
        run_task(runtime, task)
        plans = runtime.transfer_plans()
        assert plans
        assert all(plan.finished for plan in plans)
        moved = sum(plan.moved_bytes() for plan in plans)
        assert moved == runtime.data_bytes_moved()
