"""Golden-trace determinism harness for the communication layer.

Two pins hold the coalescing + prefetch layer in place:

* **bitwise repeatability** — every application run on a fixed cluster,
  workload and config produces a byte-identical execution trace (per-task
  lifecycle timestamps, in completion order) and metric dump when run
  twice in the same process.  The simulation has no hidden source of
  nondeterminism, so any divergence is a scheduling or staging bug.
* **off/on equivalence** — enabling transfer coalescing and replica
  prefetch must not change *what* is computed or *which payload bytes*
  cross address spaces; only message counts and timing may move.  This is
  the optimisation's contract (`BENCH_comms_baseline.json` pins the same
  property at full workload scale).
"""

import numpy as np
import pytest

from repro.apps.ipic3d import IPic3DWorkload, ipic3d_allscale
from repro.apps.stencil import (
    StencilWorkload,
    sequential_reference,
    stencil_allscale,
)
from repro.apps.tpc import TPCWorkload, make_problem, tpc_allscale
from repro.regions.box import Box
from repro.runtime.config import RuntimeConfig
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.tasks import TaskSpec
from repro.runtime.tracing import ExecutionTracer
from repro.sim.cluster import Cluster, ClusterSpec

NODES = 2

#: power-of-two geometry everywhere so domain decompositions split without
#: remainder slivers whose first-touch owner could depend on task order
STENCIL_WL = StencilWorkload(n_per_node=16, timesteps=2, functional=True)
IPIC_WL = IPic3DWorkload(
    particles_per_node=64_000,
    cells_per_node_side=4,
    timesteps=2,
    flops_per_particle_update=100.0,
)
TPC_WL = TPCWorkload(
    total_points=4096,
    dims=3,
    radius=25.0,
    queries_per_node=8,
    depth=7,
    functional=True,
    visit_flops=10.0,
    point_flops=2.0,
    task_subtree_height=4,  # forces splits, so batching has material
)


def small_cluster():
    return Cluster(
        ClusterSpec(num_nodes=NODES, cores_per_node=2, flops_per_core=1e9)
    )


def comm_config(enabled: bool) -> RuntimeConfig:
    return RuntimeConfig(
        comm_coalescing=enabled, replica_prefetch=enabled
    )


def run_app(app: str, config: RuntimeConfig):
    if app == "stencil":
        return stencil_allscale(small_cluster(), STENCIL_WL, config)
    if app == "ipic3d":
        return ipic3d_allscale(small_cluster(), IPIC_WL, config)
    if app == "tpc":
        problem = make_problem(TPC_WL, NODES)
        return tpc_allscale(small_cluster(), TPC_WL, config, problem=problem)
    raise ValueError(app)


def canonical_trace(result) -> bytes:
    """The run as bytes: every traced task lifecycle (in completion
    order) plus the full metric dump, `repr`-exact floats included."""
    runtime = result.extras["runtime"]
    tracer = runtime.tracer
    lines = [
        f"{r.name} p{r.pid} {r.enqueued!r} {r.started!r} "
        f"{r.data_ready!r} {r.locks_held!r} {r.finished!r}"
        for r in tracer.records
    ]
    snapshot = runtime.metrics.snapshot()
    lines.extend(f"{key}={snapshot[key]!r}" for key in sorted(snapshot))
    lines.append(f"elapsed={result.elapsed!r}")
    lines.append(f"work={result.work!r}")
    return "\n".join(lines).encode()


@pytest.fixture
def traced(monkeypatch):
    """Attach an :class:`ExecutionTracer` to every runtime constructed
    while the fixture is active (the app drivers build their own)."""
    original = AllScaleRuntime.__init__

    def patched(self, *args, **kwargs):
        original(self, *args, **kwargs)
        self.tracer = ExecutionTracer()

    monkeypatch.setattr(AllScaleRuntime, "__init__", patched)


def read_final_grid(result):
    runtime = result.extras["runtime"]
    grid = result.extras["final_grid"]

    def body(ctx):
        return ctx.fragment(grid).gather(Box.of((0, 0), grid.shape)).copy()

    task = TaskSpec(
        name="readback", reads={grid: grid.full_region}, body=body, size_hint=1
    )
    return runtime.wait(runtime.submit(task))


class TestGoldenTraces:
    """Same config, run twice → byte-identical traces and metrics."""

    @pytest.mark.parametrize("app", ["stencil", "ipic3d", "tpc"])
    @pytest.mark.parametrize(
        "enabled", [False, True], ids=["comms-off", "comms-on"]
    )
    def test_trace_repeats_bit_identically(self, traced, app, enabled):
        first = canonical_trace(run_app(app, comm_config(enabled)))
        second = canonical_trace(run_app(app, comm_config(enabled)))
        assert first == second

    def test_trace_captures_tasks(self, traced):
        result = run_app("stencil", comm_config(True))
        assert result.extras["runtime"].tracer.records


class TestOffOnEquivalence:
    """Coalescing + prefetch change messages, never results or payload."""

    def run_pair(self, app):
        off = run_app(app, comm_config(False))
        on = run_app(app, comm_config(True))
        return off, on

    @staticmethod
    def messages(result) -> float:
        return result.extras["runtime"].metrics.counter("net.messages")

    @staticmethod
    def moved(result) -> int:
        return result.extras["runtime"].data_bytes_moved()

    def test_stencil_values_and_bytes_identical(self):
        off, on = self.run_pair("stencil")
        values_off = read_final_grid(off)
        values_on = read_final_grid(on)
        assert np.array_equal(values_off, values_on)
        assert np.allclose(
            values_on, sequential_reference(STENCIL_WL, NODES)
        )
        assert self.moved(off) == self.moved(on)
        assert self.messages(on) < self.messages(off)

    def test_ipic3d_work_and_bytes_identical(self):
        off, on = self.run_pair("ipic3d")
        assert off.work == on.work
        assert self.moved(off) == self.moved(on)
        assert self.messages(on) < self.messages(off)

    def test_tpc_counts_and_bytes_identical(self):
        off, on = self.run_pair("tpc")
        assert off.extras["counts"] == on.extras["counts"]
        assert off.work == on.work
        assert self.moved(off) == self.moved(on)
        assert self.messages(on) < self.messages(off)

    def test_on_runs_violation_free(self):
        """The optimised paths hold every sentinel invariant."""
        from repro.runtime import sentinel as sentinel_mod

        sentinel_mod.enable_globally(
            sentinel_mod.SentinelConfig(strict=True)
        )
        try:
            for app in ("stencil", "ipic3d", "tpc"):
                run_app(app, comm_config(True))
        finally:
            created = sentinel_mod.drain_created()
            sentinel_mod.reset_global()
        assert created
        assert all(not s.violations for s in created)
