"""Unit tests for the hierarchical distributed index (Fig. 5, Algorithm 1)."""

import pytest

from repro.items.grid import Grid
from repro.runtime.index import HierarchicalIndex
from repro.sim.cluster import Cluster, ClusterSpec


def make_index(num_processes):
    cluster = Cluster(ClusterSpec(num_nodes=num_processes, cores_per_node=1))
    index = HierarchicalIndex(cluster.network, num_processes)
    return cluster, index


def run_lookup(cluster, index, item, region, origin):
    result = cluster.engine.spawn(index.lookup(item, region, origin))
    cluster.engine.run()
    assert result.done
    return result.value


class TestHierarchyGeometry:
    def test_levels(self):
        assert make_index(1)[1].levels == 1
        assert make_index(2)[1].levels == 2
        assert make_index(8)[1].levels == 4
        assert make_index(5)[1].levels == 4  # padded to next power of two

    def test_node_roots_match_fig5(self):
        _, index = make_index(8)
        # Fig. 5: process0 hosts levels 2,3,4; process4 hosts level 3 node
        assert index.node_root(2, 1) == 0
        assert index.node_root(2, 2) == 2
        assert index.node_root(3, 5) == 4
        assert index.node_root(4, 7) == 0

    def test_children(self):
        _, index = make_index(8)
        assert index.children_of(4, 0) == (0, 4)
        assert index.children_of(3, 4) == (4, 6)
        assert index.children_of(2, 2) == (2, 3)

    def test_host_is_left_descendant(self):
        _, index = make_index(8)
        assert index.host_of(4, 0) == 0
        assert index.host_of(3, 4) == 4


class TestOwnershipAndLookup:
    def setup_method(self):
        self.cluster, self.index = make_index(8)
        self.grid = Grid((64, 64), name="g")
        self.index.register_item(self.grid)

    def place_blocks(self):
        regions = self.grid.decompose(8)
        for pid, region in enumerate(regions):
            self.index.update_ownership(self.grid, pid, region)
        return regions

    def test_unregistered_item_rejected(self):
        other = Grid((4, 4))
        with pytest.raises(KeyError):
            self.index.update_ownership(other, 0, other.full_region)

    def test_leaf_and_ancestor_covers(self):
        regions = self.place_blocks()
        for pid, region in enumerate(regions):
            assert self.index.owned_region(self.grid, pid).same_elements(region)
        # root covers everything
        root_cover = self.index.covered(self.grid, self.index.levels, 0)
        assert root_cover.same_elements(self.grid.full_region)

    def test_lookup_local_region_resolves_without_hops(self):
        regions = self.place_blocks()
        hops_before = self.index.lookup_hops
        mapping, unresolved = run_lookup(
            self.cluster, self.index, self.grid, regions[3], 3
        )
        assert unresolved.is_empty()
        assert [pid for _r, pid in mapping] == [3]
        assert self.index.lookup_hops == hops_before

    def test_lookup_remote_region_escalates(self):
        regions = self.place_blocks()
        hops_before = self.index.lookup_hops
        mapping, unresolved = run_lookup(
            self.cluster, self.index, self.grid, regions[7], 0
        )
        assert unresolved.is_empty()
        assert {pid for _r, pid in mapping} == {7}
        assert self.index.lookup_hops > hops_before

    def test_lookup_spanning_region(self):
        self.place_blocks()
        mapping, unresolved = run_lookup(
            self.cluster, self.index, self.grid, self.grid.full_region, 2
        )
        assert unresolved.is_empty()
        owners = {pid for _r, pid in mapping}
        assert owners == set(range(8))
        # mapping pieces tile the request
        total = self.grid.empty_region()
        for part, _pid in mapping:
            assert total.intersect(part).is_empty()
            total = total.union(part)
        assert total.same_elements(self.grid.full_region)

    def test_lookup_unresolved_part(self):
        regions = self.place_blocks()
        # remove ownership of block 5
        self.index.update_ownership(self.grid, 5, self.grid.empty_region())
        mapping, unresolved = run_lookup(
            self.cluster, self.index, self.grid, self.grid.full_region, 0
        )
        assert unresolved.same_elements(regions[5])

    def test_lookup_empty_region(self):
        mapping, unresolved = run_lookup(
            self.cluster, self.index, self.grid, self.grid.empty_region(), 0
        )
        assert mapping == [] and unresolved.is_empty()

    def test_ownership_shrink_recomputes_ancestors(self):
        regions = self.place_blocks()
        self.index.update_ownership(self.grid, 0, self.grid.empty_region())
        root_cover = self.index.covered(self.grid, self.index.levels, 0)
        assert root_cover.same_elements(
            self.grid.full_region.difference(regions[0])
        )


class TestSingleProcess:
    def test_trivial_lookup(self):
        cluster, index = make_index(1)
        grid = Grid((8, 8))
        index.register_item(grid)
        index.update_ownership(grid, 0, grid.full_region)
        mapping, unresolved = run_lookup(cluster, index, grid, grid.full_region, 0)
        assert unresolved.is_empty()
        assert [pid for _r, pid in mapping] == [0]
        assert index.lookup_hops == 0


class TestLookupCostScaling:
    def test_hops_grow_logarithmically(self):
        """Algorithm 1's point: remote lookups cost O(log P) hops."""
        worst = {}
        for P in (4, 16, 64):
            cluster, index = make_index(P)
            grid = Grid((P * 8, 8), name=f"g{P}")
            index.register_item(grid)
            for pid, region in enumerate(grid.decompose(P)):
                index.update_ownership(grid, pid, region)
            before = index.lookup_hops
            # worst case: opposite corner of the hierarchy
            run_lookup(cluster, index, grid, grid.decompose(P)[P - 1], 0)
            worst[P] = index.lookup_hops - before
        assert worst[4] <= worst[16] <= worst[64]
        assert worst[64] <= 14  # a handful of hops, not O(P)

    def test_hops_match_charged_messages(self):
        """``lookup_hops`` counts exactly the control messages a lookup
        charges to the network — including the per-step *return* messages
        (regression: those used to be charged but not counted)."""
        for P in (4, 8, 16):
            cluster, index = make_index(P)
            grid = Grid((P * 8, 8), name=f"g{P}")
            index.register_item(grid)
            for pid, region in enumerate(grid.decompose(P)):
                index.update_ownership(grid, pid, region)
            for origin in range(P):
                hops_before = index.lookup_hops
                messages_before = cluster.metrics.counter("net.messages")
                run_lookup(cluster, index, grid, grid.full_region, origin)
                assert (
                    index.lookup_hops - hops_before
                    == cluster.metrics.counter("net.messages")
                    - messages_before
                )
