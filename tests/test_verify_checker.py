"""Unit tests for the schedule-space model checker's three layers.

Engine seam (controlled dispatch + oracle), happens-before monitor
(vector clocks, footprints, race sanitizer), and the DPOR explorer.
Scenario-level end-to-end coverage lives in ``python -m repro.verify
--smoke`` and ``tests/test_verify_regressions.py``; these tests pin the
layer contracts the smoke run builds on.
"""

from __future__ import annotations

import pytest

from repro.regions.interval import IntervalRegion
from repro.sim.engine import SimEngine
from repro.verify.explorer import explore, run_schedule
from repro.verify.monitor import VerifyMonitor, ops_conflict
from repro.verify.oracle import (
    DecisionTrace,
    RecordingOracle,
    ReplayOracle,
    ScheduleDivergence,
)
from repro.verify.scenarios import get_scenario


class _Item:
    """The monitor only ever reads ``item.name``."""

    def __init__(self, name: str) -> None:
        self.name = name


class _PickLast:
    """Oracle that always defers: dispatches the newest live event."""

    def __init__(self) -> None:
        self.calls = 0

    def choose(self, time, candidates, labels):
        self.calls += 1
        return candidates[-1]


# -- engine controlled-dispatch seam ----------------------------------------------


class TestControlledDispatch:
    def test_default_oracle_matches_uncontrolled_order(self):
        def build(engine, log):
            engine.schedule(1.0, lambda: log.append("a"))
            engine.schedule(3.0, lambda: log.append("c"))
            engine.schedule(2.0, lambda: log.append("b"))
            engine.schedule(1.0, lambda: log.append("a2"))

        plain_log: list[str] = []
        plain = SimEngine()
        build(plain, plain_log)
        plain.run()

        ctl_log: list[str] = []
        ctl = SimEngine()
        ctl.set_oracle(RecordingOracle())
        build(ctl, ctl_log)
        ctl.run()

        assert ctl_log == plain_log == ["a", "a2", "b", "c"]
        assert ctl.now == plain.now == 3.0

    def test_oracle_sees_all_live_events_and_may_defer_any(self):
        engine = SimEngine()
        oracle = _PickLast()
        engine.set_oracle(oracle)
        log: list[str] = []
        engine.schedule(1.0, lambda: log.append("early"))
        engine.schedule(5.0, lambda: log.append("late"))
        engine.run()
        # the deferred early event still runs, after the late one, and
        # time never goes backwards (it fires at max(now, its time))
        assert log == ["late", "early"]
        assert engine.now == 5.0
        assert oracle.calls == 1  # second dispatch had a single candidate

    def test_schedule_at_clamps_past_times_only_in_controlled_mode(self):
        engine = SimEngine()
        engine.schedule(2.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule_at(1.0, lambda: None)
        engine.set_oracle(RecordingOracle())
        fired: list[float] = []
        engine.schedule_at(1.0, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [2.0]

    def test_bad_oracle_choice_is_rejected(self):
        engine = SimEngine()

        class Bad:
            def choose(self, time, candidates, labels):
                return -1

        engine.set_oracle(Bad())
        engine.schedule(1.0, lambda: None)
        engine.schedule(1.0, lambda: None)
        with pytest.raises(RuntimeError, match="outside the candidate set"):
            engine.run()

    def test_detach_folds_pending_events_back_into_normal_queue(self):
        engine = SimEngine()
        engine.set_oracle(RecordingOracle())
        log: list[str] = []
        engine.schedule(1.0, lambda: log.append("x"))
        engine.schedule(2.0, lambda: log.append("y"))
        engine.run(max_events=1)
        engine.set_oracle(None)
        engine.run()
        assert log == ["x", "y"]


# -- oracles ----------------------------------------------------------------------


class TestOracles:
    def test_recorded_decisions_replay_identically(self):
        def drive(oracle):
            engine = SimEngine()
            engine.set_oracle(oracle)
            log: list[str] = []
            for name in ("a", "b", "c"):
                engine.schedule(1.0, lambda n=name: log.append(n))
            engine.run()
            return log

        first = RecordingOracle()
        log1 = drive(first)
        log2 = drive(RecordingOracle(dict(first.decisions())))
        assert log1 == log2

    def test_strict_replay_raises_on_divergence(self):
        engine = SimEngine()
        engine.set_oracle(RecordingOracle({0: 999}))
        engine.schedule(1.0, lambda: None)
        engine.schedule(1.0, lambda: None)
        with pytest.raises(ScheduleDivergence):
            engine.run()

    def test_tolerant_replay_skips_stale_decisions(self):
        engine = SimEngine()
        oracle = ReplayOracle({0: 999, 1: 1})
        engine.set_oracle(oracle)
        log: list[int] = []
        engine.schedule(1.0, lambda: log.append(0))
        engine.schedule(1.0, lambda: log.append(1))
        engine.run()
        assert oracle.skipped == 1
        assert log  # the run completed despite the stale decision

    def test_trace_json_roundtrip(self):
        trace = DecisionTrace(
            scenario="s", decisions=[(3, 7), (5, 9)], note="why"
        )
        assert DecisionTrace.from_json(trace.to_json()) == trace

    def test_nondefault_decisions_drop_first_candidate_choices(self):
        oracle = RecordingOracle({1: 5})
        oracle.choose(0.0, [2, 3], None)
        oracle.choose(0.0, [4, 5], None)
        assert oracle.decisions() == [(0, 2), (1, 5)]
        assert oracle.nondefault_decisions() == [(1, 5)]


# -- happens-before monitor --------------------------------------------------------


class TestFootprints:
    def test_conflict_requires_shared_key_and_a_writer(self):
        r = IntervalRegion([(0, 4)])
        assert not ops_conflict([(("k",), False, r)], [(("k",), False, r)])
        assert not ops_conflict([(("k",), True, r)], [(("j",), True, r)])
        assert ops_conflict([(("k",), True, r)], [(("k",), False, r)])

    def test_conflict_respects_region_overlap(self):
        low = IntervalRegion([(0, 4)])
        high = IntervalRegion([(4, 8)])
        assert not ops_conflict([(("k",), True, low)], [(("k",), True, high)])
        assert ops_conflict([(("k",), True, low)], [(("k",), True, None)])


class TestRaceSanitizer:
    def _monitor_with_threads(self, n=2):
        monitor = VerifyMonitor()
        tids = []
        for gid in range(1, n + 1):
            monitor.on_spawn(gid)
            tids.append(monitor._gen_threads[gid])
        return monitor, tids

    def _on(self, monitor, tid, fn):
        # enter the thread and tick its clock component, as the real
        # on_event / on_resume hooks do; the raw stack pop (no merge back
        # into the parent) keeps the two threads concurrent
        monitor._stack.append(tid)
        clock = monitor.clocks[tid]
        clock[tid] = clock.get(tid, 0) + 1
        try:
            fn()
        finally:
            monitor._stack.pop()

    def test_unordered_logical_write_vs_read_is_a_race(self):
        monitor, (t1, t2) = self._monitor_with_threads()
        item = _Item("g")
        region = IntervalRegion([(0, 4)])
        self._on(
            monitor, t1, lambda: monitor.frag_write(0, item, region, "task:w")
        )
        self._on(
            monitor, t2, lambda: monitor.frag_read(1, item, region, "task:r")
        )
        assert len(monitor.races) == 1
        assert "task:w" in monitor.races[0].message

    def test_copy_maintenance_writes_do_not_race_reads(self):
        monitor, (t1, t2) = self._monitor_with_threads()
        item = _Item("g")
        region = IntervalRegion([(0, 4)])
        self._on(
            monitor,
            t1,
            lambda: monitor.frag_write(0, item, region, "replica-in"),
        )
        self._on(
            monitor, t2, lambda: monitor.frag_read(1, item, region, "task:r")
        )
        assert monitor.races == []

    def test_sync_edge_orders_the_pair(self):
        monitor, (t1, t2) = self._monitor_with_threads()
        item = _Item("g")
        region = IntervalRegion([(0, 4)])

        def writer():
            monitor.frag_write(0, item, region, "task:w")
            monitor.sync_release(("locks", item.name))

        def reader():
            monitor.sync_acquire(("locks", item.name))
            monitor.frag_read(1, item, region, "task:r")

        self._on(monitor, t1, writer)
        self._on(monitor, t2, reader)
        assert monitor.races == []

    def test_disjoint_regions_do_not_race(self):
        monitor, (t1, t2) = self._monitor_with_threads()
        item = _Item("g")
        self._on(
            monitor,
            t1,
            lambda: monitor.frag_write(
                0, item, IntervalRegion([(0, 4)]), "task:w"
            ),
        )
        self._on(
            monitor,
            t2,
            lambda: monitor.frag_read(
                1, item, IntervalRegion([(4, 8)]), "task:r"
            ),
        )
        assert monitor.races == []


class TestEventAttribution:
    def test_parents_link_child_events_to_their_scheduler(self):
        engine = SimEngine()
        monitor = VerifyMonitor()
        engine.set_hb(monitor)
        child_seq: list[int] = []

        def parent():
            event = engine.schedule(1.0, lambda: None)
            child_seq.append(event.seq)

        parent_event = engine.schedule(1.0, parent)
        engine.run()
        assert monitor.parents[child_seq[0]] == parent_event.seq
        assert monitor.exec_order == [parent_event.seq, child_seq[0]]
        engine.set_hb(None)


# -- explorer ----------------------------------------------------------------------


class TestExplorer:
    def test_exploration_is_deterministic(self):
        scenario = get_scenario("migration_under_read")
        first = explore(scenario, budget=6)
        second = explore(scenario, budget=6)
        assert first.branches == second.branches
        assert first.choice_points == second.choice_points
        assert first.events == second.events
        assert first.fingerprints == second.fingerprints

    def test_default_schedule_is_clean_on_fixed_code(self):
        scenario = get_scenario("migration_under_read")
        run, _ = run_schedule(scenario, {})
        assert run.status == "ok", run.error
        assert not run.races
        assert run.fingerprint

    def test_explore_branches_past_the_default_schedule(self):
        scenario = get_scenario("migration_under_read")
        result = explore(scenario, budget=6)
        assert result.branches > 1
        assert result.clean
