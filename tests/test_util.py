"""Tests for shared utilities."""

import pytest

from repro.util.ids import IdGenerator, fresh_id
from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_type,
    require,
)


class TestIds:
    def test_generator_monotonic(self):
        gen = IdGenerator("x")
        assert gen() == "x:0"
        assert gen() == "x:1"

    def test_peek_does_not_consume(self):
        gen = IdGenerator("y")
        assert gen.peek() == "y:0"
        assert gen() == "y:0"

    def test_fresh_id_namespaced(self):
        a = fresh_id("testns")
        b = fresh_id("testns")
        assert a != b
        assert a.startswith("testns:")


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")

    def test_check_type(self):
        assert check_type(3, int, "n") == 3
        assert check_type("s", (int, str), "v") == "s"
        with pytest.raises(TypeError, match="must be of type int"):
            check_type("s", int, "n")
        with pytest.raises(TypeError, match="int, str"):
            check_type(3.5, (int, str), "v")

    def test_check_positive(self):
        assert check_positive(1.5, "x") == 1.5
        with pytest.raises(ValueError):
            check_positive(0, "x")

    def test_check_non_negative(self):
        assert check_non_negative(0, "x") == 0
        with pytest.raises(ValueError):
            check_non_negative(-0.1, "x")
