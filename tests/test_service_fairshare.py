"""FairShareScheduler: stride split, priority aging, idle clamping."""

from __future__ import annotations

import pytest

from repro.service.fairshare import FairShareScheduler, jain_fairness
from repro.service.jobs import JobRecord, JobSpec


def record(tenant: str, seq: int, priority: int = 0, at: float = 0.0):
    return JobRecord(
        job_id=f"job-{seq:05d}",
        spec=JobSpec(tenant=tenant, kind="compute", priority=priority),
        submitted_at=at,
        seq=seq,
    )


def make(weights: dict[str, float], aging: float | None = None):
    scheduler = FairShareScheduler(aging_seconds=aging)
    for name, weight in weights.items():
        scheduler.register_tenant(name, weight)
    return scheduler


def drain_order(scheduler, now: float = 0.0, cost: float = 1.0):
    order = []
    while True:
        job = scheduler.select(now, lambda tenant: True)
        if job is None:
            return order
        order.append(job.spec.tenant)
        scheduler.charge(job.spec.tenant, cost)


def test_equal_cost_dispatches_track_weights():
    scheduler = make({"a": 3.0, "b": 2.0, "c": 1.0})
    seq = 0
    for _ in range(24):
        for tenant in ("a", "b", "c"):
            seq += 1
            scheduler.enqueue(record(tenant, seq))
    order = drain_order(scheduler)
    window = order[:24]  # all tenants still backlogged here
    assert window.count("a") == 12
    assert window.count("b") == 8
    assert window.count("c") == 4


def test_unequal_costs_equalize_weighted_node_seconds():
    # tenant b's jobs cost twice as much, so it gets half the dispatches
    scheduler = make({"a": 1.0, "b": 1.0})
    seq = 0
    for _ in range(30):
        for tenant in ("a", "b"):
            seq += 1
            scheduler.enqueue(record(tenant, seq))
    consumed = {"a": 0.0, "b": 0.0}
    for _ in range(30):
        job = scheduler.select(0.0, lambda tenant: True)
        cost = 1.0 if job.spec.tenant == "a" else 2.0
        consumed[job.spec.tenant] += cost
        scheduler.charge(job.spec.tenant, cost)
    assert consumed["a"] == pytest.approx(consumed["b"], rel=0.15)


def test_eligibility_gate_skips_capped_tenant():
    scheduler = make({"a": 3.0, "b": 1.0})
    scheduler.enqueue(record("a", 1))
    scheduler.enqueue(record("b", 2))
    job = scheduler.select(0.0, lambda tenant: tenant != "a")
    assert job.spec.tenant == "b"
    # a remains queued for when it becomes eligible again
    assert scheduler.queue_length("a") == 1


def test_priority_orders_within_tenant():
    scheduler = make({"a": 1.0})
    scheduler.enqueue(record("a", 1, priority=0))
    scheduler.enqueue(record("a", 2, priority=5))
    scheduler.enqueue(record("a", 3, priority=0))
    order = []
    while scheduler.backlog():
        job = scheduler.select(0.0, lambda tenant: True)
        order.append(job.seq)
        scheduler.charge("a", 1.0)
    # urgent job first, then FIFO among equal priorities
    assert order == [2, 1, 3]


def test_aging_lifts_long_waiting_low_priority_job():
    scheduler = make({"a": 1.0}, aging=1.0)
    scheduler.enqueue(record("a", 1, priority=0, at=0.0))
    scheduler.enqueue(record("a", 2, priority=3, at=10.0))
    # at t=10 the old job has aged 10 levels vs priority 3
    job = scheduler.select(10.0, lambda tenant: True)
    assert job.seq == 1
    # without aging the fresh urgent job would win
    scheduler2 = make({"a": 1.0}, aging=None)
    scheduler2.enqueue(record("a", 1, priority=0, at=0.0))
    scheduler2.enqueue(record("a", 2, priority=3, at=10.0))
    assert scheduler2.select(10.0, lambda tenant: True).seq == 2


def test_idle_tenant_pass_is_clamped_on_return():
    scheduler = make({"a": 1.0, "b": 1.0})
    for seq in range(1, 11):
        scheduler.enqueue(record("a", seq))
    # a consumes alone for a while
    for _ in range(6):
        job = scheduler.select(0.0, lambda tenant: True)
        scheduler.charge(job.spec.tenant, 1.0)
    # b arrives late: its pass is clamped up to a's, so it does not get
    # a compensating burst for time it was not even asking to run
    for seq in range(11, 15):
        scheduler.enqueue(record("b", seq))
    assert scheduler.pass_value("b") >= scheduler.pass_value("a") - 1.0
    order = drain_order(scheduler)
    assert order[:4] != ["b", "b", "b", "b"]


def test_enqueue_unknown_tenant_raises():
    scheduler = make({"a": 1.0})
    with pytest.raises(KeyError):
        scheduler.enqueue(record("ghost", 1))
    with pytest.raises(ValueError):
        scheduler.register_tenant("a", 2.0)
    with pytest.raises(ValueError):
        scheduler.register_tenant("bad", 0.0)


def test_remove_drops_queued_job():
    scheduler = make({"a": 1.0})
    job = record("a", 1)
    scheduler.enqueue(job)
    assert scheduler.remove(job)
    assert not scheduler.remove(job)
    assert scheduler.backlog() == 0


def test_jain_fairness_bounds():
    assert jain_fairness([]) == 1.0
    assert jain_fairness([0.0, 0.0]) == 1.0
    assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)
    # one participant takes everything: floor 1/n
    assert jain_fairness([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)
    assert 0.25 < jain_fairness([3.0, 1.0, 1.0, 1.0]) < 1.0
