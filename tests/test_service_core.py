"""ServiceCore: admission gates, lifecycle, quotas, and one-shot inertness."""

from __future__ import annotations

import pytest

from repro.runtime.config import RuntimeConfig
from repro.runtime.jobs import JobContext
from repro.runtime.runtime import AllScaleRuntime
from repro.service import (
    JobSpec,
    JobState,
    ServiceConfig,
    ServiceCore,
    TenantConfig,
)
from repro.service.catalog import (
    build_program,
    job_kinds,
    register_kind,
    unregister_kind,
)
from repro.sim.cluster import Cluster, ClusterSpec

COMPUTE = {"flops": 4.8e7, "tasks": 4}  # 0.02 node-seconds at 2.4e9 flops/core


def small_core(**overrides) -> ServiceCore:
    defaults = dict(
        nodes=2,
        cores_per_node=2,
        tenants=(
            TenantConfig("alpha", weight=2.0),
            TenantConfig("beta", weight=1.0),
        ),
        max_running_jobs=2,
    )
    defaults.update(overrides)
    return ServiceCore(ServiceConfig(**defaults))


# -- admission gates ---------------------------------------------------------------


def test_unknown_tenant_is_structured_rejection():
    core = small_core()
    record = core.submit(JobSpec(tenant="nobody", kind="compute"))
    assert record.state == JobState.REJECTED
    assert record.verdict is not None
    assert record.verdict.reason == "unknown_tenant"
    assert "alpha" in record.verdict.detail
    assert record.terminal


def test_unknown_kind_lists_catalog():
    core = small_core()
    record = core.submit(JobSpec(tenant="alpha", kind="nope"))
    assert record.verdict.reason == "unknown_kind"
    for kind in job_kinds():
        assert kind in record.verdict.detail


def test_build_error_from_bad_params():
    core = small_core()
    record = core.submit(
        JobSpec(tenant="alpha", kind="grid_sum", params={"n": 100000})
    )
    assert record.verdict.reason == "build_error"
    record = core.submit(
        JobSpec(tenant="alpha", kind="compute", params={"bogus": 1})
    )
    assert record.verdict.reason == "build_error"
    assert "bogus" in record.verdict.detail


def test_racy_job_rejected_with_findings():
    core = small_core()
    record = core.submit(JobSpec(tenant="alpha", kind="bad_overlap"))
    assert record.state == JobState.REJECTED
    assert record.verdict.reason == "analysis"
    assert record.verdict.counts.get("error", 0) > 0
    checks = {finding["check"] for finding in record.verdict.findings}
    assert any(check.startswith("race.") for check in checks)
    # rejected before touching the cluster: no simulated time, no cost
    assert record.node_seconds == 0.0
    assert core.engine.now == 0.0


def test_draining_refuses_new_work():
    core = small_core()
    core.drain()
    record = core.submit(JobSpec(tenant="alpha", kind="compute"))
    assert record.verdict.reason == "draining"


def test_clean_job_admitted_with_estimate():
    core = small_core()
    record = core.submit(
        JobSpec(tenant="alpha", kind="compute", params=COMPUTE)
    )
    assert record.state == JobState.QUEUED
    assert record.verdict.accepted and record.verdict.reason == "ok"
    assert record.verdict.estimated_node_seconds == pytest.approx(0.02)


# -- lifecycle ---------------------------------------------------------------------


def test_compute_job_runs_to_exact_estimate():
    core = small_core()
    record = core.submit(
        JobSpec(tenant="alpha", kind="compute", params=COMPUTE)
    )
    core.run_until_drained()
    assert record.state == JobState.COMPLETED
    assert record.node_seconds == pytest.approx(0.02)
    assert record.started_at is not None and record.finished_at is not None
    assert record.queue_wait == pytest.approx(0.0)
    assert not record.over_budget


def test_functional_job_returns_value():
    core = small_core()
    record = core.submit(
        JobSpec(tenant="alpha", kind="grid_sum", params={"n": 8})
    )
    core.run_until_drained()
    assert record.state == JobState.COMPLETED
    # sum over (i+j)^2 for an 8x8 coordinate grid
    expected = float(
        sum((i + j) ** 2 for i in range(8) for j in range(8))
    )
    assert record.result == pytest.approx(expected)


def test_status_and_result_views_are_json_shaped():
    import json

    core = small_core()
    record = core.submit(
        JobSpec(tenant="alpha", kind="queries", params={"queries": 8})
    )
    core.run_until_drained()
    status = core.status(record.job_id)
    result = core.result(record.job_id)
    json.dumps(status)
    json.dumps(result)
    assert "result" not in status and result["result"] == 8.0
    assert core.status("job-99999") is None


def test_stats_block_is_json_shaped():
    import json

    core = small_core()
    for _ in range(3):
        core.submit(JobSpec(tenant="alpha", kind="compute", params=COMPUTE))
    core.submit(JobSpec(tenant="alpha", kind="bad_overlap"))
    core.run_until_drained()
    stats = core.stats()
    json.dumps(stats)
    assert stats["states"] == {"completed": 3, "rejected": 1}
    assert stats["fairness_index"] == pytest.approx(1.0)
    by_name = {row["name"]: row for row in stats["tenants"]}
    assert by_name["alpha"]["completed"] == 3
    assert by_name["beta"]["observed_share"] == 0.0


def test_scheduled_arrivals_advance_simulated_time():
    core = small_core()
    core.schedule(
        JobSpec(tenant="alpha", kind="compute", params=COMPUTE), at=1.5
    )
    core.run_until_drained()
    record = core.jobs["job-00001"]
    assert record.submitted_at == pytest.approx(1.5)
    assert record.state == JobState.COMPLETED
    assert core.engine.now >= 1.5


def test_queue_waits_reflect_contention():
    core = small_core(max_running_jobs=1)
    first = core.submit(
        JobSpec(tenant="alpha", kind="compute", params=COMPUTE)
    )
    second = core.submit(
        JobSpec(tenant="alpha", kind="compute", params=COMPUTE)
    )
    core.run_until_drained()
    assert first.queue_wait == pytest.approx(0.0)
    assert second.queue_wait > 0.0
    assert second.started_at >= first.finished_at


# -- quotas ------------------------------------------------------------------------


def test_concurrency_quota_caps_peak_running():
    core = small_core(
        tenants=(TenantConfig("alpha", weight=1.0, max_concurrent_jobs=1),),
        max_running_jobs=4,
    )
    for _ in range(4):
        core.submit(JobSpec(tenant="alpha", kind="compute", params=COMPUTE))
    core.run_until_drained()
    core.check_invariants()
    assert core.ledgers["alpha"].peak_running == 1
    assert core.ledgers["alpha"].completed == 4


def test_node_seconds_budget_rejects_burst_excess():
    core = small_core(
        tenants=(
            TenantConfig("alpha", weight=1.0, max_node_seconds=0.05),
        ),
    )
    records = [
        core.submit(JobSpec(tenant="alpha", kind="compute", params=COMPUTE))
        for _ in range(4)
    ]
    # reservation happens at admission: only two 0.02 jobs fit in 0.05
    states = [record.state for record in records]
    assert states == [
        JobState.QUEUED,
        JobState.QUEUED,
        JobState.REJECTED,
        JobState.REJECTED,
    ]
    assert records[2].verdict.reason == "quota"
    assert "budget" in records[2].verdict.detail
    core.run_until_drained()
    core.check_invariants()
    ledger = core.ledgers["alpha"]
    assert ledger.used == pytest.approx(0.04)
    assert ledger.reserved == 0.0
    assert [record.node_seconds for record in records[2:]] == [0.0, 0.0]


def test_budget_frees_nothing_on_completion():
    # the budget is cumulative: finished jobs' usage stays charged
    core = small_core(
        tenants=(
            TenantConfig("alpha", weight=1.0, max_node_seconds=0.05),
        ),
    )
    first = core.submit(
        JobSpec(tenant="alpha", kind="compute", params=COMPUTE)
    )
    core.run_until_drained()
    assert first.state == JobState.COMPLETED
    for _ in range(2):
        core.submit(JobSpec(tenant="alpha", kind="compute", params=COMPUTE))
    core.run_until_drained()
    core.check_invariants()
    ledger = core.ledgers["alpha"]
    assert ledger.completed == 2 and ledger.rejected == 1
    assert ledger.used <= 0.05 + 1e-9


# -- catalog extension -------------------------------------------------------------


def test_registered_kind_is_admitted_and_runs():
    def build_noop(params):
        return build_program("compute", {"flops": 2.4e6, "tasks": 1})

    register_kind("noop", build_noop)
    try:
        core = small_core()
        record = core.submit(JobSpec(tenant="alpha", kind="noop"))
        core.run_until_drained()
        assert record.state == JobState.COMPLETED
        assert record.node_seconds == pytest.approx(0.001)
    finally:
        unregister_kind("noop")
    with pytest.raises(ValueError):
        unregister_kind("compute")  # built-ins cannot be removed


# -- runtime-layer job context -----------------------------------------------------


def test_one_shot_runtime_has_no_job_context():
    runtime = AllScaleRuntime(
        Cluster(ClusterSpec(num_nodes=1, cores_per_node=1))
    )
    assert runtime.job_context is None
    assert runtime.config.tenant is None
    assert runtime.config.job_node_seconds_cap is None


def test_job_context_over_budget_is_sticky_not_fatal():
    context = JobContext(
        job_id="j", tenant="alpha", node_seconds_cap=0.05
    )
    context.on_leaf(0.04)
    assert not context.over_budget
    context.on_leaf(0.02)
    assert context.over_budget
    context.on_leaf(0.01)  # no exception: determinism preserved
    assert context.over_budget
    assert context.cpu_seconds == pytest.approx(0.07)
    snap = context.snapshot()
    assert snap["over_budget"] and snap["leaves_executed"] == 3


def test_runtime_config_rejects_negative_cap():
    with pytest.raises(ValueError):
        RuntimeConfig(job_node_seconds_cap=-1.0)
