"""Tests for the model-enabled services: monitoring, resilience, balancing."""

import numpy as np
import pytest

from repro.items.grid import Grid
from repro.regions.box import Box
from repro.regions.interval import IntervalRegion
from repro.runtime.balancer import LoadBalancer, take_slice
from repro.runtime.config import RuntimeConfig
from repro.runtime.monitoring import Monitor
from repro.runtime.resilience import ResilienceManager
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.tasks import TaskSpec
from repro.sim.cluster import Cluster, ClusterSpec


def make_runtime(nodes=2, cores=2, functional=True, **cfg):
    cluster = Cluster(
        ClusterSpec(num_nodes=nodes, cores_per_node=cores, flops_per_core=1e9)
    )
    return AllScaleRuntime(cluster, RuntimeConfig(functional=functional, **cfg))


class TestMonitoring:
    def test_report_contents(self):
        runtime = make_runtime(nodes=2)
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid, placement=grid.decompose(2))
        task = TaskSpec(
            name="r",
            reads={grid: grid.full_region},
            body=lambda ctx: None,
            size_hint=64,
        )
        runtime.wait(runtime.submit(task))
        report = Monitor(runtime).report()
        assert report.total_leaves == 1
        assert report.total_messages > 0
        assert report.replications >= 1
        assert len(report.processes) == 2
        owned = sum(p.owned_bytes for p in report.processes)
        assert owned == 64 * 8
        assert any(p.replica_bytes > 0 for p in report.processes)
        assert report.load_imbalance() >= 1.0
        assert any("leaf tasks" in line for line in report.summary_lines())


class TestResilience:
    def fill_grid(self, runtime, grid, value):
        def body(ctx):
            ctx.fragment(grid).scatter(
                Box.of((0, 0), grid.shape), np.full(grid.shape, value)
            )

        runtime.wait(
            runtime.submit(
                TaskSpec(
                    name="fill",
                    writes={grid: grid.full_region},
                    body=body,
                    size_hint=grid.full_region.size(),
                )
            )
        )

    def read_grid(self, runtime, grid):
        def body(ctx):
            return ctx.fragment(grid).gather(Box.of((0, 0), grid.shape)).copy()

        return runtime.wait(
            runtime.submit(
                TaskSpec(
                    name="read",
                    reads={grid: grid.full_region},
                    body=body,
                    size_hint=grid.full_region.size(),
                )
            )
        )

    def test_checkpoint_restore_roundtrip(self):
        runtime = make_runtime(nodes=2)
        grid = Grid((6, 6), name="g")
        runtime.register_item(grid, placement=grid.decompose(2))
        self.fill_grid(runtime, grid, 3.0)
        manager = ResilienceManager(runtime)
        snapshot_future = runtime.engine.spawn(manager.checkpoint())
        runtime.run()
        snapshot = snapshot_future.value
        assert snapshot.total_bytes() == 36 * 8

        # restore into a fresh runtime with a different process count
        runtime2 = make_runtime(nodes=3)
        grid2 = Grid((6, 6), name="g")
        runtime2.register_item(grid2)
        # rename mapping: restore matches by item name
        manager2 = ResilienceManager(runtime2)
        done = runtime2.engine.spawn(manager2.restore(snapshot))
        runtime2.run()
        assert done.done
        runtime2.check_ownership_invariants()
        values = self.read_grid(runtime2, grid2)
        assert np.all(values == 3.0)

    def test_restore_unknown_item_rejected(self):
        runtime = make_runtime(nodes=1)
        grid = Grid((4, 4), name="g")
        runtime.register_item(grid, placement=[grid.full_region])
        manager = ResilienceManager(runtime)
        snapshot_future = runtime.engine.spawn(manager.checkpoint())
        runtime.run()
        other = make_runtime(nodes=1)
        with pytest.raises(KeyError):
            gen = ResilienceManager(other).restore(snapshot_future.value)
            other.engine.spawn(gen)
            other.run()

    def test_checkpoint_is_nondestructive(self):
        runtime = make_runtime(nodes=2)
        grid = Grid((6, 6), name="g")
        runtime.register_item(grid, placement=grid.decompose(2))
        self.fill_grid(runtime, grid, 7.0)
        manager = ResilienceManager(runtime)
        runtime.engine.spawn(manager.checkpoint())
        runtime.run()
        values = self.read_grid(runtime, grid)
        assert np.all(values == 7.0)
        runtime.check_ownership_invariants()


class TestTakeSlice:
    def test_box_slice(self):
        grid = Grid((16, 8))
        region = grid.full_region
        piece = take_slice(region, 0.25)
        assert piece is not None
        assert 0 < piece.size() < region.size()
        assert region.covers(piece)

    def test_interval_slice(self):
        region = IntervalRegion.span(0, 100)
        piece = take_slice(region, 0.25)
        assert piece is not None
        assert 0 < piece.size() < 100

    def test_unsliceable_returns_none(self):
        from repro.regions.tree import TreeGeometry, TreeRegion

        region = TreeRegion.full(TreeGeometry(3))
        assert take_slice(region, 0.5) is None
        assert take_slice(IntervalRegion.span(0, 1), 0.5) is None

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            take_slice(IntervalRegion.span(0, 10), 1.5)


class TestLoadBalancer:
    def test_rebalance_moves_data_from_busy_to_idle(self):
        runtime = make_runtime(nodes=2, cores=1, functional=False)
        grid = Grid((32, 8), name="g")
        # everything starts at process 0 — maximal imbalance
        runtime.register_item(
            grid, placement=[grid.full_region, grid.empty_region()]
        )
        balancer = LoadBalancer(
            runtime, imbalance_threshold=1.2, slice_fraction=0.5
        )
        # generate load at the owner
        for k in range(6):
            runtime.wait(
                runtime.submit(
                    TaskSpec(
                        name=f"w{k}",
                        writes={grid: grid.full_region},
                        flops=1e6,
                        size_hint=256,
                    )
                )
            )
        balancer.measured_load()  # baseline sample
        for k in range(6):
            runtime.wait(
                runtime.submit(
                    TaskSpec(
                        name=f"x{k}",
                        writes={grid: grid.full_region},
                        flops=1e6,
                        size_hint=256,
                    )
                )
            )
        done = runtime.engine.spawn(balancer.rebalance_once())
        runtime.run()
        assert done.value is True
        assert balancer.rebalances == 1
        moved = runtime.process(1).data_manager.owned_region(grid)
        assert not moved.is_empty()
        runtime.check_ownership_invariants()
        # subsequent tasks writing the moved slice follow the data
        task = TaskSpec(
            name="follow", writes={grid: moved}, flops=1e3,
            size_hint=moved.size(),
        )
        runtime.wait(runtime.submit(task))
        assert runtime.process(1).executed_leaves == 1

    def test_no_rebalance_when_even(self):
        runtime = make_runtime(nodes=2, functional=False)
        balancer = LoadBalancer(runtime)
        done = runtime.engine.spawn(balancer.rebalance_once())
        runtime.run()
        assert done.value is False

    def test_periodic_loop_start_stop(self):
        runtime = make_runtime(nodes=2, functional=False)
        balancer = LoadBalancer(runtime, interval=0.01)
        balancer.start()
        balancer.start()  # idempotent
        runtime.run(until=0.05)
        balancer.stop()
        runtime.run(until=0.2)
        assert not balancer._running

    def test_validation(self):
        runtime = make_runtime(nodes=2)
        with pytest.raises(ValueError):
            LoadBalancer(runtime, interval=0)
        with pytest.raises(ValueError):
            LoadBalancer(runtime, imbalance_threshold=1.0)
