"""Property-based tests: every region type is a faithful set algebra.

Section 3.1 requires region types to be closed under union, intersection
and set-difference.  Each strategy draws arbitrary regions of a type and
checks the three operations element-for-element against the explicit-set
reference, plus the algebraic laws the runtime relies on.
"""

from hypothesis import given, settings

from tests.conftest import (
    as_explicit,
    blocked_tree_regions,
    box_set_regions,
    interval_regions,
    tree_regions,
)


def _check_closure(a, b):
    ea, eb = set(a.elements()), set(b.elements())
    assert set(a.union(b).elements()) == ea | eb
    assert set(a.intersect(b).elements()) == ea & eb
    assert set(a.difference(b).elements()) == ea - eb


def _check_laws(a, b):
    # cardinality consistency
    assert a.size() == len(set(a.elements()))
    # inclusion/exclusion
    assert a.union(b).size() == a.size() + b.size() - a.intersect(b).size()
    # commutativity (semantic)
    assert a.union(b).same_elements(b.union(a))
    assert a.intersect(b).same_elements(b.intersect(a))
    # difference/intersection complementarity: (a−b) ∪ (a∩b) = a
    assert a.difference(b).union(a.intersect(b)).same_elements(a)
    # covers/overlaps consistency
    assert a.covers(a.intersect(b))
    assert a.overlaps(b) == (not a.intersect(b).is_empty())


@given(interval_regions(), interval_regions())
@settings(max_examples=120)
def test_interval_regions_closure(a, b):
    _check_closure(a, b)
    _check_laws(a, b)


@given(box_set_regions(), box_set_regions())
@settings(max_examples=120, deadline=None)
def test_box_set_regions_closure(a, b):
    _check_closure(a, b)
    _check_laws(a, b)


@given(tree_regions(), tree_regions())
@settings(max_examples=120, deadline=None)
def test_tree_regions_closure(a, b):
    _check_closure(a, b)
    _check_laws(a, b)
    # canonical representation: semantic equality == structural equality
    assert (a == b) == a.same_elements(b)


@given(blocked_tree_regions(), blocked_tree_regions())
@settings(max_examples=120)
def test_blocked_tree_regions_closure(a, b):
    _check_closure(a, b)
    _check_laws(a, b)
    assert (a == b) == a.same_elements(b)


@given(blocked_tree_regions())
@settings(max_examples=60)
def test_blocked_to_flexible_conversion_is_lossless(a):
    assert set(a.to_tree_region().elements()) == set(a.elements())


@given(tree_regions(), tree_regions(), tree_regions())
@settings(max_examples=60, deadline=None)
def test_tree_region_associativity(a, b, c):
    assert a.union(b).union(c) == a.union(b.union(c))
    assert a.intersect(b).intersect(c) == a.intersect(b.intersect(c))
    # a − (b ∪ c) = (a − b) − c
    assert a.difference(b.union(c)) == a.difference(b).difference(c)


@given(box_set_regions(), box_set_regions())
@settings(max_examples=80, deadline=None)
def test_box_region_membership_agrees_with_reference(a, b):
    union = a.union(b)
    reference = as_explicit(union)
    for x in range(0, 10):
        for y in range(0, 10):
            assert union.contains((x, y)) == reference.contains((x, y))
