"""Property-based tests: every region type is a faithful set algebra.

Section 3.1 requires region types to be closed under union, intersection
and set-difference.  Each strategy draws arbitrary regions of a type and
checks the three operations element-for-element against the explicit-set
reference, plus the algebraic laws the runtime relies on.
"""

from hypothesis import given, settings

from repro.regions.kernel import get_kernel
from tests.conftest import (
    as_explicit,
    blocked_tree_regions,
    box_set_regions,
    explicit_regions,
    interval_regions,
    tree_regions,
)


def _check_closure(a, b):
    ea, eb = set(a.elements()), set(b.elements())
    assert set(a.union(b).elements()) == ea | eb
    assert set(a.intersect(b).elements()) == ea & eb
    assert set(a.difference(b).elements()) == ea - eb


def _check_laws(a, b):
    # cardinality consistency
    assert a.size() == len(set(a.elements()))
    # inclusion/exclusion
    assert a.union(b).size() == a.size() + b.size() - a.intersect(b).size()
    # commutativity (semantic)
    assert a.union(b).same_elements(b.union(a))
    assert a.intersect(b).same_elements(b.intersect(a))
    # difference/intersection complementarity: (a−b) ∪ (a∩b) = a
    assert a.difference(b).union(a.intersect(b)).same_elements(a)
    # what was removed cannot still intersect the subtrahend
    assert a.difference(b).intersect(b).is_empty()
    # covers/overlaps consistency
    assert a.covers(a.intersect(b))
    assert a.covers(b) == b.difference(a).is_empty()
    assert a.overlaps(b) == (not a.intersect(b).is_empty())


def _check_kernel_consistency(a, b):
    """The memoized kernel path must agree with the raw family operations.

    ``union``/``intersect``/``difference`` on the public API route through
    :class:`RegionKernel` (interning + LRU memoization); ``_union`` etc. are
    the uncached per-family implementations.  Both must produce the same
    element set, and the memoized path must return the *identical* interned
    object on a repeat call.
    """
    kernel = get_kernel()
    for cached_op, raw_op in (
        ("union", "_union"),
        ("intersect", "_intersect"),
        ("difference", "_difference"),
    ):
        cached = getattr(a, cached_op)(b)
        raw = getattr(a, raw_op)(b)
        assert cached.same_elements(raw)
        # memoized + interned: the repeat call is the same object
        assert getattr(a, cached_op)(b) is cached
        assert kernel.intern(cached) is cached
    assert a.covers(b) == b._difference(a)._is_empty()


@given(explicit_regions(), explicit_regions())
@settings(max_examples=120)
def test_explicit_regions_closure(a, b):
    _check_closure(a, b)
    _check_laws(a, b)
    _check_kernel_consistency(a, b)
    assert (a == b) == a.same_elements(b)


@given(interval_regions(), interval_regions())
@settings(max_examples=120)
def test_interval_regions_closure(a, b):
    _check_closure(a, b)
    _check_laws(a, b)
    _check_kernel_consistency(a, b)


@given(box_set_regions(), box_set_regions())
@settings(max_examples=120, deadline=None)
def test_box_set_regions_closure(a, b):
    _check_closure(a, b)
    _check_laws(a, b)
    _check_kernel_consistency(a, b)
    # canonical box decomposition: semantic equality == structural equality
    assert (a == b) == a.same_elements(b)


@given(tree_regions(), tree_regions())
@settings(max_examples=120, deadline=None)
def test_tree_regions_closure(a, b):
    _check_closure(a, b)
    _check_laws(a, b)
    _check_kernel_consistency(a, b)
    # canonical representation: semantic equality == structural equality
    assert (a == b) == a.same_elements(b)


@given(blocked_tree_regions(), blocked_tree_regions())
@settings(max_examples=120)
def test_blocked_tree_regions_closure(a, b):
    _check_closure(a, b)
    _check_laws(a, b)
    _check_kernel_consistency(a, b)
    assert (a == b) == a.same_elements(b)


@given(blocked_tree_regions())
@settings(max_examples=60)
def test_blocked_to_flexible_conversion_is_lossless(a):
    assert set(a.to_tree_region().elements()) == set(a.elements())


def _check_associativity(a, b, c):
    assert a.union(b).union(c).same_elements(a.union(b.union(c)))
    assert a.intersect(b).intersect(c).same_elements(
        a.intersect(b.intersect(c))
    )
    # a − (b ∪ c) = (a − b) − c
    assert a.difference(b.union(c)).same_elements(
        a.difference(b).difference(c)
    )


@given(explicit_regions(), explicit_regions(), explicit_regions())
@settings(max_examples=60)
def test_explicit_region_associativity(a, b, c):
    _check_associativity(a, b, c)


@given(interval_regions(), interval_regions(), interval_regions())
@settings(max_examples=60)
def test_interval_region_associativity(a, b, c):
    _check_associativity(a, b, c)


@given(box_set_regions(), box_set_regions(), box_set_regions())
@settings(max_examples=60, deadline=None)
def test_box_region_associativity(a, b, c):
    _check_associativity(a, b, c)
    # canonical form makes associativity hold structurally, not just
    # semantically — both groupings intern to the same object
    assert a.union(b).union(c) is a.union(b.union(c)).interned()


@given(tree_regions(), tree_regions(), tree_regions())
@settings(max_examples=60, deadline=None)
def test_tree_region_associativity(a, b, c):
    _check_associativity(a, b, c)
    assert a.union(b).union(c) == a.union(b.union(c))
    assert a.intersect(b).intersect(c) == a.intersect(b.intersect(c))
    assert a.difference(b.union(c)) == a.difference(b).difference(c)


@given(blocked_tree_regions(), blocked_tree_regions(), blocked_tree_regions())
@settings(max_examples=60)
def test_blocked_tree_region_associativity(a, b, c):
    _check_associativity(a, b, c)
    assert a.union(b).union(c) == a.union(b.union(c))


@given(box_set_regions(), box_set_regions())
@settings(max_examples=80, deadline=None)
def test_box_region_membership_agrees_with_reference(a, b):
    union = a.union(b)
    reference = as_explicit(union)
    for x in range(0, 10):
        for y in range(0, 10):
            assert union.contains((x, y)) == reference.contains((x, y))
