"""Fault-injection matrix for elastic clusters under churn.

The elastic module (scale-out, drain, failure storms) moves ownership,
replicas, and queued tasks while the application keeps running; every
cell of this matrix injects a node loss at one of the awkward moments —
mid-migration, mid-staging, mid-checkpoint, with a write intent held,
with a replica in flight — and asserts the runtime either recovers
cleanly or fails in a structured, sentinel-visible way: no hangs, no
silent data loss.

A Hypothesis sweep at the bottom replays randomized churn schedules
against a live workload under the strict sentinel; shrunk failures are
pinned as ``@example`` regressions.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.items.grid import Grid
from repro.regions.box import Box
from repro.runtime.config import RuntimeConfig
from repro.runtime.elastic import (
    ChurnController,
    ChurnEvent,
    drain,
    failure_storm,
    scale_out,
)
from repro.runtime.resilience import ResilienceManager
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.sentinel import RuntimeSentinel, SentinelConfig
from repro.runtime.tasks import TaskSpec
from repro.sim.cluster import Cluster, ClusterSpec
from repro.sim.network import FatTreeTopology

# -- harness ------------------------------------------------------------------------


def make_runtime(nodes=4, strict_sentinel=True):
    cluster = Cluster(
        ClusterSpec(num_nodes=nodes, cores_per_node=2, flops_per_core=1e9)
    )
    runtime = AllScaleRuntime(cluster, RuntimeConfig(functional=True))
    if strict_sentinel:
        RuntimeSentinel(runtime, SentinelConfig(strict=True)).attach()
    return runtime


def fill(runtime, grid, region, value, origin=0):
    def body(ctx):
        for box in region.boxes:
            ctx.fragment(grid).scatter(box, np.full(box.widths(), value))

    runtime.wait(
        runtime.submit(
            TaskSpec(
                name=f"fill{value}",
                writes={grid: region},
                body=body,
                size_hint=region.size(),
            ),
            origin=origin,
        )
    )


def fill_distributed(runtime, grid, value):
    """Write each owner's share from its own origin, keeping the
    placement distributed (a single full-region write would pull all
    ownership onto the writing process)."""
    for pid in runtime.alive_processes():
        region = runtime.process(pid).data_manager.owned_region(grid)
        if not region.is_empty():
            fill(runtime, grid, region, value, origin=pid)


def read_all(runtime, grid):
    def body(ctx):
        return ctx.fragment(grid).gather(Box.full(grid.shape)).copy()

    return runtime.wait(
        runtime.submit(
            TaskSpec(
                name="readback",
                reads={grid: grid.full_region},
                body=body,
                size_hint=1,
            )
        )
    )


def run_until(runtime, cond):
    """Drive the engine one event at a time until ``cond()`` holds."""
    while not cond():
        processed = runtime.engine.run(max_events=1)
        if processed == 0 and not cond():
            raise AssertionError(
                "event queue drained before the condition held"
            )
    return runtime.now


def owned_coverage(runtime, grid):
    coverage = grid.empty_region()
    for pid in runtime.alive_processes():
        coverage = coverage.union(
            runtime.process(pid).data_manager.owned_region(grid)
        )
    return coverage


def assert_clean(runtime):
    runtime.check_ownership_invariants()
    if runtime.sentinel is not None:
        runtime.sentinel.verify_all()
        assert runtime.sentinel.violations == []


# -- scale-out ----------------------------------------------------------------------


class TestScaleOut:
    def test_join_seeds_ownership_share(self):
        runtime = make_runtime()
        grid = Grid((16, 16), name="g")
        runtime.register_item(grid, placement=grid.decompose(4))
        fill_distributed(runtime, grid, 3.0)

        pid = runtime.wait_process(scale_out(runtime))
        assert pid == 4
        assert runtime.num_processes == 5
        gained = runtime.process(pid).data_manager.owned_region(grid)
        assert not gained.is_empty()
        assert owned_coverage(runtime, grid).same_elements(grid.full_region)
        assert runtime.metrics.counter("elastic.joins") == 1
        assert runtime.metrics.counter("elastic.join_migrated_bytes") > 0
        assert_clean(runtime)
        # the moved bytes are intact on the newcomer
        assert np.all(read_all(runtime, grid) == 3.0)

    def test_heterogeneous_join(self):
        runtime = make_runtime()
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid, placement=grid.decompose(4))
        pid = runtime.wait_process(
            scale_out(runtime, cores=6, flops_per_core=2.5e9)
        )
        node = runtime.process(pid).node
        assert node.num_cores == 6
        assert node.flops_per_core == 2.5e9
        # home maps were recomputed over the enlarged process count
        assert len(runtime.home_map(grid)) == runtime.num_processes
        assert_clean(runtime)

    def test_join_during_running_tasks(self):
        runtime = make_runtime()
        grid = Grid((16, 16), name="g")
        runtime.register_item(grid, placement=grid.decompose(4))
        fill(runtime, grid, grid.full_region, 1.0)
        treeture = runtime.submit(
            TaskSpec(
                name="work",
                writes={grid: grid.full_region},
                body=lambda ctx: None,
                flops=1e6,
                size_hint=grid.full_region.size(),
            )
        )
        done = runtime.wait_process(scale_out(runtime))
        assert done == 4
        runtime.wait(treeture)
        assert_clean(runtime)


# -- graceful drain -----------------------------------------------------------------


class TestDrain:
    def test_drain_evacuates_data_without_loss(self):
        runtime = make_runtime()
        grid = Grid((16, 16), name="g")
        runtime.register_item(grid, placement=grid.decompose(4))
        fill_distributed(runtime, grid, 7.0)
        victim = 2
        before = runtime.process(victim).data_manager.owned_region(grid)
        assert not before.is_empty()

        evacuated = runtime.wait_process(drain(runtime, victim))
        assert evacuated == grid.region_bytes(before)
        assert runtime.process(victim).failed
        assert runtime.process(victim).data_manager.owned_region(
            grid
        ).is_empty()
        assert owned_coverage(runtime, grid).same_elements(grid.full_region)
        assert np.all(read_all(runtime, grid) == 7.0)
        assert runtime.metrics.counter("elastic.drains") == 1
        assert_clean(runtime)

    def test_drain_forwards_queued_tasks(self):
        runtime = make_runtime()
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid, placement=grid.decompose(4))
        fill_distributed(runtime, grid, 1.0)
        victim = 3
        home = runtime.process(victim).data_manager.owned_region(grid)
        # pile more work onto the victim than its cores can start at once
        treetures = [
            runtime.submit(
                TaskSpec(
                    name=f"w{k}",
                    writes={grid: home},
                    body=lambda ctx: None,
                    flops=1e5,
                    size_hint=home.size(),
                ),
                origin=victim,
            )
            for k in range(6)
        ]
        evacuated_future = runtime.engine.spawn(drain(runtime, victim))
        for treeture in treetures:
            runtime.wait(treeture)
        runtime.run()
        assert evacuated_future.done
        assert runtime.process(victim).failed
        # every submitted task executed despite the departure
        assert sum(p.executed_leaves for p in runtime.processes) >= 6
        assert_clean(runtime)

    def test_drain_drops_replicas_in_place(self):
        runtime = make_runtime()
        grid = Grid((16, 16), name="g")
        runtime.register_item(grid, placement=grid.decompose(4))
        fill_distributed(runtime, grid, 2.0)
        victim = 1
        remote = runtime.process(0).data_manager.owned_region(grid)
        local = runtime.process(victim).data_manager.owned_region(grid)
        # a read of p0's region executed on the victim leaves a replica there
        runtime.wait(
            runtime.submit(
                TaskSpec(
                    name="reader",
                    writes={grid: local},
                    reads={grid: remote},
                    body=lambda ctx: None,
                    size_hint=local.size(),
                ),
                origin=victim,
            )
        )
        assert not runtime.process(victim).data_manager.replica_region(
            grid
        ).is_empty()
        runtime.wait_process(drain(runtime, victim))
        assert runtime.metrics.counter("elastic.dropped_replica_bytes") > 0
        # the owner still holds the bytes; nothing needed re-sending
        assert np.all(read_all(runtime, grid) == 2.0)
        assert_clean(runtime)

    def test_drain_last_survivor_rejected(self):
        runtime = make_runtime(nodes=2)
        runtime.fail_process(1)
        with pytest.raises(RuntimeError, match="last one alive"):
            runtime.wait_process(drain(runtime, 0))

    def test_double_drain_rejected(self):
        runtime = make_runtime()
        runtime.process(2).draining = True
        with pytest.raises(RuntimeError, match="already draining"):
            runtime.wait_process(drain(runtime, 2))


# -- the fault matrix ---------------------------------------------------------------


class TestFaultMatrix:
    """Node loss at every awkward moment; each cell is deterministic."""

    def test_loss_mid_migration_dead_letters_payload(self):
        """The migration *destination* dies while the payload is on the wire.

        Ownership moved at export time, so the failure drops it; the late
        payload must be dead-lettered (splicing it would resurrect bytes
        on a corpse) and the region must read as present nowhere —
        recoverable from the checkpoint, not silently half-alive.
        """
        runtime = make_runtime()
        grid = Grid((16, 16), name="g")
        runtime.register_item(grid, placement=grid.decompose(4))
        fill_distributed(runtime, grid, 4.0)
        resilience = ResilienceManager(runtime)
        snapshot = runtime.wait_process(resilience.checkpoint())

        src, dst = 1, 3
        moving = runtime.process(src).data_manager.owned_region(grid)
        dst_manager = runtime.process(dst).data_manager
        # the crash loses the in-flight region AND dst's own share
        doomed = moving.union(dst_manager.owned_region(grid))
        migration = runtime.engine.spawn(
            dst_manager._migrate_in(grid, moving, src)
        )
        run_until(runtime, lambda: bool(dst_manager._in_flight))
        runtime.fail_process(dst)
        runtime.run()
        assert migration.done
        assert runtime.metrics.counter("dm.dead_letter_payloads") == 1
        # no silent survival: the moving region is present nowhere
        lost = grid.full_region
        for pid in runtime.alive_processes():
            lost = lost.difference(
                runtime.process(pid).data_manager.present_region(grid)
            )
        assert lost.same_elements(doomed)
        assert_clean(runtime)

        runtime.wait_process(resilience.recover_lost_data(snapshot))
        assert owned_coverage(runtime, grid).same_elements(grid.full_region)
        assert np.all(read_all(runtime, grid) == 4.0)
        assert_clean(runtime)

    def test_loss_mid_staging_serving_node_dies(self):
        """The node *serving* a replica fetch dies mid-stage.

        The stager either lands the replica (the payload left before the
        crash) or re-routes through a fresh lookup; either way the task
        completes — no hang — and the invariants hold.
        """
        runtime = make_runtime()
        grid = Grid((16, 16), name="g")
        runtime.register_item(grid, placement=grid.decompose(4))
        fill_distributed(runtime, grid, 5.0)
        reader, victim = 0, 2
        local = runtime.process(reader).data_manager.owned_region(grid)
        remote = runtime.process(victim).data_manager.owned_region(grid)
        manager = runtime.process(reader).data_manager
        leaves_before = sum(p.executed_leaves for p in runtime.processes)
        treeture = runtime.submit(
            TaskSpec(
                name="reader",
                writes={grid: local},
                reads={grid: remote},
                body=lambda ctx: None,
                size_hint=local.size(),
            ),
            origin=reader,
        )
        run_until(runtime, lambda: bool(manager._fetching))
        runtime.fail_process(victim)
        runtime.wait(treeture)  # raises on deadlock — the no-hang assertion
        assert (
            sum(p.executed_leaves for p in runtime.processes)
            == leaves_before + 1
        )
        assert_clean(runtime)

    def test_loss_mid_checkpoint_recovers_from_prior_snapshot(self):
        """A victim dies while the *next* checkpoint is streaming out.

        The interrupted checkpoint must still complete (it skips the
        corpse), and recovery from the last complete snapshot restores
        full coverage.
        """
        runtime = make_runtime()
        grid = Grid((16, 16), name="g")
        runtime.register_item(grid, placement=grid.decompose(4))
        fill_distributed(runtime, grid, 6.0)
        resilience = ResilienceManager(runtime)
        stable = runtime.wait_process(resilience.checkpoint())

        victim = 2
        interrupted = runtime.engine.spawn(resilience.checkpoint())
        runtime.run(until=runtime.now + 1e-6)
        assert not interrupted.done
        runtime.fail_process(victim)
        runtime.run()
        assert interrupted.done  # checkpoint finished despite the loss

        runtime.wait_process(resilience.recover_lost_data(stable))
        assert owned_coverage(runtime, grid).same_elements(grid.full_region)
        assert np.all(read_all(runtime, grid) == 6.0)
        assert_clean(runtime)

    def test_loss_with_write_intent_held(self):
        """A stager's write intent spans the victim's region when it dies.

        Recovery must not deadlock on the intent, and once the intent
        clears, writes over the recovered region proceed normally.
        """
        runtime = make_runtime()
        grid = Grid((16, 16), name="g")
        runtime.register_item(grid, placement=grid.decompose(4))
        fill_distributed(runtime, grid, 1.0)
        resilience = ResilienceManager(runtime)
        snapshot = runtime.wait_process(resilience.checkpoint())

        victim = 2
        doomed = runtime.process(victim).data_manager.owned_region(grid)
        stager = object()
        runtime.register_write_intent(stager, 1, {grid: doomed})
        runtime.fail_process(victim)
        runtime.wait_process(resilience.recover_lost_data(snapshot))
        assert owned_coverage(runtime, grid).same_elements(grid.full_region)
        # the intent survived the failure and still orders younger writers
        assert runtime.write_intent_blocked(grid, doomed, None)
        runtime.clear_write_intent(stager)
        assert not runtime.write_intent_blocked(grid, doomed, None)
        fill(runtime, grid, grid.full_region, 9.0)
        assert np.all(read_all(runtime, grid) == 9.0)
        assert_clean(runtime)

    def test_storm_with_replica_in_flight(self):
        """Correlated loss of two nodes while a replica payload is in flight.

        The storm barrier only watches its victims, so the fetch on the
        survivor keeps running; recovery re-materializes the lost regions
        and the reading task completes with checkpoint-consistent values.
        """
        runtime = make_runtime(nodes=5)
        grid = Grid((20, 16), name="g")
        runtime.register_item(grid, placement=grid.decompose(5))
        fill_distributed(runtime, grid, 8.0)
        resilience = ResilienceManager(runtime)
        snapshot = runtime.wait_process(resilience.checkpoint())

        reader = 0
        local = runtime.process(reader).data_manager.owned_region(grid)
        remote = runtime.process(2).data_manager.owned_region(grid)
        manager = runtime.process(reader).data_manager
        treeture = runtime.submit(
            TaskSpec(
                name="reader",
                writes={grid: local},
                reads={grid: remote},
                body=lambda ctx: None,
                size_hint=local.size(),
            ),
            origin=reader,
        )
        run_until(runtime, lambda: bool(manager._fetching))
        recovery = runtime.engine.spawn(
            failure_storm(
                runtime, [3, 4], snapshot=snapshot, resilience=resilience
            )
        )
        runtime.wait(treeture)
        runtime.run()
        assert recovery.done
        assert runtime.metrics.counter("elastic.failures") == 2
        assert owned_coverage(runtime, grid).same_elements(grid.full_region)
        assert np.all(read_all(runtime, grid) == 8.0)
        assert_clean(runtime)


# -- churn controller ---------------------------------------------------------------


class TestChurnController:
    def _run_schedule(self, events):
        runtime = make_runtime()
        grid = Grid((16, 16), name="g")
        runtime.register_item(grid, placement=grid.decompose(4))
        fill_distributed(runtime, grid, 1.0)
        controller = ChurnController(runtime, events)
        controller.start()
        runtime.run()
        assert controller.done
        controller.stop()
        assert_clean(runtime)
        return runtime, controller

    def test_schedule_replay_is_deterministic(self):
        events = [
            ChurnEvent(at=0.0005, kind="join"),
            ChurnEvent(at=0.001, kind="drain"),
            ChurnEvent(at=0.002, kind="storm", count=1),
        ]
        logs, times = [], []
        for _ in range(2):
            runtime, controller = self._run_schedule(list(events))
            logs.append(list(controller.log))
            times.append(runtime.now)
        assert logs[0] == logs[1]
        assert times[0] == times[1]
        kinds = [kind for _t, kind, _pid in logs[0]]
        assert kinds == ["join", "drain", "storm"]

    def test_protected_pid_never_chosen(self):
        events = [
            ChurnEvent(at=0.0005, kind="storm", count=2),
            ChurnEvent(at=0.001, kind="drain", count=2),
        ]
        runtime, controller = self._run_schedule(events)
        assert not runtime.process(0).failed
        assert all(pid != 0 for _t, _kind, pid in controller.log)
        assert 0 in runtime.alive_processes()

    def test_storm_uses_rolling_checkpoint(self):
        runtime = make_runtime()
        grid = Grid((16, 16), name="g")
        runtime.register_item(grid, placement=grid.decompose(4))
        fill_distributed(runtime, grid, 2.0)
        controller = ChurnController(
            runtime,
            [ChurnEvent(at=0.01, kind="storm", count=1)],
            checkpoint_interval=0.002,
        )
        controller.start()
        runtime.run()
        assert controller.done
        assert controller.snapshot is not None
        assert runtime.metrics.counter("resilience.checkpoints") >= 2
        assert runtime.metrics.counter("elastic.restored_bytes") > 0
        assert owned_coverage(runtime, grid).same_elements(grid.full_region)
        assert_clean(runtime)


# -- capacity-change-safe accessors (static-count assumption audit) -----------------


class TestCapacityChangeSafety:
    def test_cluster_add_node_heterogeneous(self):
        cluster = Cluster(
            ClusterSpec(num_nodes=3, cores_per_node=2, flops_per_core=1e9)
        )
        node_id = cluster.add_node(cores=8, flops_per_core=3e9, gpus=0)
        assert node_id == 3
        assert cluster.num_nodes == 4  # live list, not the frozen spec
        assert cluster.node(3).num_cores == 8
        assert cluster.topology.num_nodes == 4
        # the new node has a NIC pair: a send involving it prices finitely
        estimate = cluster.network.transfer_time_estimate(0, 3, 1024)
        assert 0 < estimate < float("inf")

    def test_network_rejects_topology_shrink(self):
        cluster = Cluster(
            ClusterSpec(num_nodes=4, cores_per_node=2, flops_per_core=1e9)
        )
        with pytest.raises(ValueError, match="shrank"):
            cluster.network.attach_node(
                FatTreeTopology(2, cluster.spec.switch_radix)
            )

    def test_index_grow_preserves_covers_and_caches(self):
        runtime = make_runtime(nodes=4, strict_sentinel=False)
        grid = Grid((16, 16), name="g")
        runtime.register_item(grid, placement=grid.decompose(4))
        index = runtime.index
        root_before = index.covered(grid, index.levels, 0)
        owned_before = [index.owned_region(grid, pid) for pid in range(4)]
        index.grow(6)
        assert index.num_processes == 6
        # every old leaf kept its cover; the new root covers what the old did
        for pid in range(4):
            assert index.owned_region(grid, pid).same_elements(
                owned_before[pid]
            )
        assert index.covered(grid, index.levels, 0).same_elements(root_before)
        with pytest.raises(ValueError, match="shrink"):
            index.grow(3)

    def test_add_process_refreshes_home_maps_and_balancer(self):
        runtime = make_runtime(strict_sentinel=False)
        grid = Grid((16, 16), name="g")
        runtime.register_item(grid, placement=grid.decompose(4))
        assert len(runtime.home_map(grid)) == 4
        pid = runtime.add_process()
        assert pid == 4
        assert len(runtime.home_map(grid)) == 5
        if runtime.balancer is not None:
            assert len(runtime.balancer.measured_load()) == 5

    def test_balancer_on_capacity_change_extends_sample_vector(self):
        cluster = Cluster(
            ClusterSpec(num_nodes=4, cores_per_node=2, flops_per_core=1e9)
        )
        runtime = AllScaleRuntime(
            cluster, RuntimeConfig(functional=True, load_balancing=True)
        )
        balancer = runtime.balancer
        assert balancer is not None
        assert len(balancer._last_busy) == 4
        runtime.add_process()
        assert len(balancer._last_busy) == 5
        assert len(balancer.measured_load()) == 5

    def test_service_quotas_rescale_on_capacity_change(self):
        from repro.service.core import ServiceConfig, ServiceCore, TenantConfig

        config = ServiceConfig(
            nodes=4,
            cores_per_node=2,
            tenants=[
                TenantConfig(name="a", max_node_seconds=100.0),
                TenantConfig(name="b", max_node_seconds=None),
            ],
        )
        core = ServiceCore(config)
        before = core.ledgers["a"].config.max_node_seconds
        core.add_node(cores=2)
        after = core.ledgers["a"].config.max_node_seconds
        assert after == pytest.approx(before * 10 / 8)
        assert core.ledgers["b"].config.max_node_seconds is None
        # rescaling is computed from the *configured* cap: repeating the
        # notification at unchanged capacity is idempotent
        core.on_capacity_change()
        assert core.ledgers["a"].config.max_node_seconds == pytest.approx(
            after
        )
        assert core.metrics.counter("service.capacity_changes") == 2


# -- randomized churn sweep ---------------------------------------------------------


def churn_schedules():
    event = st.builds(
        ChurnEvent,
        at=st.floats(min_value=0.0, max_value=0.004, allow_nan=False),
        kind=st.sampled_from(["join", "drain", "storm"]),
        count=st.integers(min_value=1, max_value=2),
    )
    return st.lists(event, min_size=1, max_size=3)


class TestChurnHypothesis:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(events=churn_schedules(), rounds=st.integers(1, 3))
    # regressions shrunk from development runs of this sweep:
    # a storm before any checkpoint exists exercises checkpoint-on-demand
    @example(events=[ChurnEvent(at=0.0, kind="storm", count=2)], rounds=1)
    # drain immediately followed by a storm — the storm's victim set must
    # re-resolve after the drain shrank the membership
    @example(
        events=[
            ChurnEvent(at=0.0, kind="drain"),
            ChurnEvent(at=0.0001, kind="storm", count=2),
        ],
        rounds=2,
    )
    # join then immediate storm: the newcomer is the storm's first victim
    # while its seed migration may still be landing
    @example(
        events=[
            ChurnEvent(at=0.0, kind="join"),
            ChurnEvent(at=0.00005, kind="storm", count=1),
        ],
        rounds=1,
    )
    # everyone drains at once (count exceeds the unprotected pool)
    @example(events=[ChurnEvent(at=0.0, kind="drain", count=4)], rounds=1)
    # shrunk by hypothesis: back-to-back storms while a full-grid write
    # stages — recovery must treat regions in flight to a live owner as
    # present, not lost (restoring them would double-own)
    @example(
        events=[
            ChurnEvent(at=0.0, kind="storm", count=1),
            ChurnEvent(at=0.0, kind="storm", count=1),
        ],
        rounds=1,
    )
    def test_randomized_churn_keeps_invariants(self, events, rounds):
        runtime = make_runtime()
        grid = Grid((16, 16), name="g")
        runtime.register_item(grid, placement=grid.decompose(4))

        def writer(k):
            def body(ctx):
                for box in grid.full_region.boxes:
                    ctx.fragment(grid).scatter(
                        box, np.full(box.widths(), float(k))
                    )

            return TaskSpec(
                name=f"sweep{k}",
                writes={grid: grid.full_region},
                body=body,
                flops=1e5,
                size_hint=grid.full_region.size(),
            )

        def app():
            for k in range(rounds):
                treeture = runtime.submit(writer(k), origin=0)
                yield treeture.future

        controller = ChurnController(runtime, events)
        controller.start()
        driver = runtime.engine.spawn(app())
        runtime.run()
        assert driver.done, "application hung under churn"
        assert controller.done, "churn schedule never completed"
        controller.stop()
        runtime.run()
        # strict sentinel would have raised at the violation site; the
        # closing sweep re-verifies everything end-to-end
        assert_clean(runtime)
        assert owned_coverage(runtime, grid).same_elements(grid.full_region)
        # the final sweep's values survived every membership change
        assert np.all(read_all(runtime, grid) == float(rounds - 1))
