"""Regression: the paper apps and examples analyze clean; model bridge; CLI."""

import pytest

from repro.analysis import AnalysisConfig, analyze_model_program, analyze_task
from repro.analysis.targets import (
    EXAMPLE_SCRIPTS,
    analyze_app,
    analyze_example,
)
from repro.model.elements import DataItemDecl
from repro.model.task import AccessSpec, Program, simple_task
from repro.regions.interval import IntervalRegion


QUICK = AnalysisConfig(max_depth=3, max_nodes=128)


class TestAppsAnalyzeClean:
    """Acceptance: zero error findings on the three paper apps."""

    @pytest.mark.parametrize("app", ["stencil", "ipic3d", "tpc"])
    def test_app_clean(self, app):
        report = analyze_app(app, QUICK)
        assert report.tasks_expanded > 0
        assert report.findings == [], "\n".join(map(str, report.findings))


class TestExamplesAnalyzeClean:
    @pytest.mark.parametrize("script", EXAMPLE_SCRIPTS)
    def test_example_clean(self, script):
        if script == "graph_bfs.py":
            pytest.importorskip("networkx")
        report = analyze_example(script, QUICK)
        assert report.tasks_expanded > 0
        assert report.errors == [], "\n".join(map(str, report.errors))


class TestTPCRootRequirement:
    """Pin the pre-fix TPC defect: band reads escaping an undeclared root.

    The batch root originally declared no requirements while its band
    children read whole kd-subtrees; the coverage check exists precisely
    to catch that shape, and the fix (the batch root declaring the union
    of its children's sub-tree reads) must keep the graph clean.
    """

    def make_batch_root(self):
        from repro.apps.tpc import TPCWorkload, _query_batches, make_problem
        from repro.runtime.tasks import TaskSpec

        workload = TPCWorkload(
            total_points=2**10,
            depth=6,
            queries_per_node=4,
            task_subtree_height=3,
            task_batch=2,
        )
        problem = make_problem(workload, 2)
        batch = _query_batches(problem, workload.task_batch)[0]
        roots = sorted(
            {r for qi in batch for r in problem.plans[qi].recurse_roots}
        )
        reads = problem.item.empty_region()
        for root in roots:
            reads = reads.union(problem.item.subtree_region(root))

        def splitter():
            return [
                TaskSpec(
                    name=f"tpc.band{root}",
                    reads={problem.item: problem.item.subtree_region(root)},
                    body_in_virtual=True,
                )
                for root in roots
            ]

        fixed = TaskSpec(
            name="tpc.query",
            reads={problem.item: reads},
            splitter=splitter,
        )
        broken = TaskSpec(name="tpc.query", splitter=splitter)
        return fixed, broken

    def test_old_shape_caught_and_fix_clean(self):
        fixed, broken = self.make_batch_root()
        bad = analyze_task(broken, QUICK)
        assert {f.check for f in bad.errors} == {"coverage.read_escape"}
        good = analyze_task(fixed, QUICK)
        assert good.findings == []


ITEM = DataItemDecl(IntervalRegion.span(0, 40), name="data")


def model_child(name, lo, hi, read_lo=None, read_hi=None):
    reqs = AccessSpec(
        reads={
            ITEM: IntervalRegion.span(
                lo if read_lo is None else read_lo,
                hi if read_hi is None else read_hi,
            )
        },
        writes={ITEM: IntervalRegion.span(lo, hi)},
    )

    def body(ctx):
        return
        yield  # pragma: no cover

    return simple_task(body, reqs, name=name)


def fork_join(children, *, sync_between=False, parent_reqs=None):
    def main(ctx):
        yield ctx.create(ITEM)
        for child in children:
            yield ctx.spawn(child)
            if sync_between:
                yield ctx.sync(child)
        if not sync_between:
            for child in children:
                yield ctx.sync(child)
        yield ctx.destroy(ITEM)

    return Program(simple_task(main, parent_reqs, name="main"))


class TestModelBridge:
    def test_clean_fork_join(self):
        children = [model_child(f"c{k}", 10 * k, 10 * (k + 1)) for k in range(4)]
        report = analyze_model_program(fork_join(children))
        assert report.errors == [], "\n".join(map(str, report.errors))
        assert report.tasks_expanded == 5
        assert report.pairs_checked == 6

    def test_unordered_write_overlap_is_error(self):
        children = [model_child("a", 0, 20), model_child("b", 10, 30)]
        report = analyze_model_program(fork_join(children))
        assert "race.write_write" in {f.check for f in report.errors}

    def test_sync_orders_out_the_race(self):
        children = [model_child("a", 0, 20), model_child("b", 10, 30)]
        report = analyze_model_program(fork_join(children, sync_between=True))
        assert report.findings == []

    def test_read_write_overlap_is_warning(self):
        children = [
            model_child("a", 0, 20, read_lo=0, read_hi=25),
            model_child("b", 20, 40),
        ]
        report = analyze_model_program(fork_join(children))
        assert report.errors == []
        assert "race.read_write" in {f.check for f in report.warnings}

    def test_created_items_exempt_from_escape(self):
        # the parent creates ITEM inside its body, so children's
        # requirements on it cannot escape anything
        children = [model_child("a", 0, 20), model_child("b", 20, 40)]
        report = analyze_model_program(fork_join(children))
        assert not any(f.check.startswith("model.") for f in report.findings)

    def test_escape_without_create_is_warning(self):
        other = DataItemDecl(IntervalRegion.span(0, 40), name="other")
        reqs = AccessSpec(writes={other: IntervalRegion.span(0, 10)})

        def body(ctx):
            return
            yield  # pragma: no cover

        child = simple_task(body, reqs, name="child")

        def main(ctx):
            yield ctx.spawn(child)
            yield ctx.sync(child)

        report = analyze_model_program(Program(simple_task(main, name="main")))
        assert "model.write_escape" in {f.check for f in report.warnings}


class TestCommandLine:
    def test_cli_reports_clean_target(self, capsys):
        from repro.analysis.__main__ import main

        assert main(["stencil", "--quiet", "--max-depth", "3"]) == 0
        out = capsys.readouterr().out
        assert "app:stencil" in out
        assert "0 error(s)" in out

    def test_bench_analyze_smoke(self, capsys):
        from repro.bench.__main__ import main

        assert main(["stencil", "--smoke", "--analyze"]) == 0
        out = capsys.readouterr().out
        assert "analysis:" in out
