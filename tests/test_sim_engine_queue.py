"""Differential tests of the array-backed calendar queue.

The flat queue in :mod:`repro.sim.engine` must be observationally
identical to the textbook implementation it replaced: a single heapq of
``(time, seq)`` pairs popped in order.  The hypothesis sweep drives both
through random interleavings of scheduling, cancellation, rescheduling
and partial runs — with times drawn from a small grid so equal-timestamp
sequence tiebreaks are exercised constantly — and requires the exact
same firing order.  A seeded large-scale stress run pushes the queue
through its merge and compaction machinery, which small examples never
reach (the merge floor is 1024 events).
"""

from __future__ import annotations

import heapq
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimEngine


class HeapReference:
    """The replaced implementation: one heap, popped in (time, seq) order."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int]] = []
        self._live: set[int] = set()
        self._next_seq = 0

    def schedule_at(self, time: float) -> int:
        seq = self._next_seq
        self._next_seq = seq + 1
        heapq.heappush(self._heap, (time, seq))
        self._live.add(seq)
        return seq

    def cancel(self, seq: int) -> None:
        self._live.discard(seq)

    def run(self, until: float | None = None) -> list[int]:
        fired = []
        while self._heap and (until is None or self._heap[0][0] <= until):
            time, seq = heapq.heappop(self._heap)
            if seq in self._live:
                self._live.discard(seq)
                self.now = time
                fired.append(seq)
        if until is not None:
            self.now = max(self.now, until)
        return fired

    @property
    def pending(self) -> int:
        return len(self._live)


#: offsets from the current watermark; a tiny pool guarantees collisions
_DELTAS = (0.0, 0.5, 1.0, 1.5, 3.0)

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("sched"), st.sampled_from(_DELTAS)),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=63)),
        st.tuples(
            st.just("resched"),
            st.integers(min_value=0, max_value=63),
            st.sampled_from(_DELTAS),
        ),
        st.tuples(st.just("run"), st.sampled_from(_DELTAS)),
    ),
    min_size=1,
    max_size=80,
)


def _drive(ops) -> None:
    engine = SimEngine()
    model = HeapReference()
    fired_engine: list[int] = []
    fired_model: list[int] = []
    events = []  # (engine Event handle, model seq), in scheduling order

    def _schedule(delta: float) -> None:
        time = engine.now + delta
        seq_holder = []
        handle = engine.schedule_at(
            time, lambda: fired_engine.append(seq_holder[0])
        )
        seq_holder.append(handle.seq)
        model_seq = model.schedule_at(time)
        assert handle.seq == model_seq  # both count schedules identically
        events.append((handle, model_seq))

    for op in ops:
        if op[0] == "sched":
            _schedule(op[1])
        elif op[0] == "cancel":
            if events:
                handle, model_seq = events[op[1] % len(events)]
                handle.cancel()
                model.cancel(model_seq)
        elif op[0] == "resched":
            if events:
                handle, model_seq = events[op[1] % len(events)]
                handle.cancel()
                model.cancel(model_seq)
                _schedule(op[2])
        else:  # run
            until = engine.now + op[1]
            engine.run(until=until)
            fired_model.extend(model.run(until=until))
            assert engine.now == model.now
            assert fired_engine == fired_model
    engine.run()
    fired_model.extend(model.run())
    assert fired_engine == fired_model
    assert engine.pending_events == model.pending == 0


@settings(max_examples=200, deadline=None)
@given(_OPS)
def test_matches_reference_heapq(ops) -> None:
    _drive(ops)


def test_equal_timestamps_fire_in_scheduling_order() -> None:
    engine = SimEngine()
    fired: list[int] = []
    for index in range(100):
        engine.schedule_at(1.0, lambda i=index: fired.append(i))
    engine.run()
    assert fired == list(range(100))


def test_merge_and_compaction_stress() -> None:
    """Seeded large run: overflow merges and tombstone compaction."""
    rng = random.Random(20260809)
    engine = SimEngine()
    model = HeapReference()
    fired_engine: list[int] = []
    fired_model: list[int] = []
    handles = []
    for _ in range(5000):
        time = rng.choice((0.5, 1.0, 2.0, 4.0)) * rng.randint(1, 50)
        handle = engine.schedule_at(
            time, lambda s=len(handles): fired_engine.append(s)
        )
        model_seq = model.schedule_at(time)
        assert handle.seq == model_seq
        handles.append(handle)
    # force merges: drain in many small horizon slices
    for until in range(0, 60, 3):
        # cancel a random slice between runs to stress tombstoning
        for _ in range(220):
            victim = rng.randrange(len(handles))
            handles[victim].cancel()
            model.cancel(victim)
        engine.run(until=float(until))
        fired_model.extend(model.run(until=float(until)))
        assert fired_engine == fired_model
    engine.run()
    fired_model.extend(model.run())
    assert fired_engine == fired_model
    assert engine.pending_events == 0
    assert engine.compactions > 0  # the cancel storms must have tripped it


def test_compaction_counter_and_correct_survivors() -> None:
    engine = SimEngine()
    fired: list[int] = []
    handles = [
        engine.schedule_at(float(i), lambda i=i: fired.append(i))
        for i in range(100)
    ]
    for handle in handles[:60]:
        handle.cancel()
    assert engine.compactions >= 1  # >50% tombstones triggers a pass
    engine.run()
    assert fired == list(range(60, 100))


def test_cancel_after_fire_is_a_noop() -> None:
    engine = SimEngine()
    fired: list[int] = []
    handle = engine.schedule_at(1.0, lambda: fired.append(0))
    engine.run()
    handle.cancel()  # already executed; must not disturb anything
    engine.schedule_at(2.0, lambda: fired.append(1))
    engine.run()
    assert fired == [0, 1]


def test_schedule_in_the_past_rejected() -> None:
    engine = SimEngine()
    engine.schedule_at(5.0, lambda: None)
    engine.run()
    assert engine.now == 5.0
    try:
        engine.schedule_at(4.0, lambda: None)
    except ValueError:
        pass
    else:  # pragma: no cover
        raise AssertionError("expected ValueError for past schedule")
