"""Tests for the monitoring component, including periodic sampling."""

import pytest

from repro.runtime.config import RuntimeConfig
from repro.runtime.monitoring import Monitor
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.tasks import TaskSpec
from repro.sim.cluster import Cluster, ClusterSpec


def make_runtime(nodes=2):
    cluster = Cluster(
        ClusterSpec(num_nodes=nodes, cores_per_node=2, flops_per_core=1e9)
    )
    return AllScaleRuntime(cluster, RuntimeConfig(functional=False))


class TestPeriodicSampling:
    def test_samples_accumulate_while_work_runs(self):
        runtime = make_runtime()
        monitor = Monitor(runtime)
        monitor.start_sampling(interval=1e-3)
        treetures = [
            runtime.submit(
                TaskSpec(name=f"t{k}", flops=2e6, size_hint=1),
                origin=k % 2,
            )
            for k in range(16)
        ]
        for treeture in treetures:
            runtime.wait(treeture)
        monitor.stop_sampling()
        runtime.run(until=runtime.now + 0.01)  # let the loop notice the stop
        assert len(monitor.samples) >= 2
        times = [s.sim_time for s in monitor.samples]
        assert times == sorted(times)
        # leaf counts are monotone across samples
        leaves = [s.total_leaves for s in monitor.samples]
        assert leaves == sorted(leaves)
        assert leaves[-1] <= 16

    def test_throughput_series(self):
        runtime = make_runtime()
        monitor = Monitor(runtime)
        monitor.start_sampling(interval=1e-3)
        for k in range(8):
            runtime.wait(
                runtime.submit(TaskSpec(name=f"t{k}", flops=2e6, size_hint=1))
            )
        monitor.stop_sampling()
        runtime.run(until=runtime.now + 0.01)
        series = monitor.throughput_series()
        assert len(series) == len(monitor.samples)
        assert any(rate > 0 for _t, rate in series)

    def test_utilization_series_shape(self):
        runtime = make_runtime()
        monitor = Monitor(runtime)
        monitor.start_sampling(interval=1e-3)
        runtime.wait(
            runtime.submit(TaskSpec(name="t", flops=5e6, size_hint=1))
        )
        monitor.stop_sampling()
        runtime.run(until=runtime.now + 0.01)
        for time, backlog in monitor.utilization_series():
            assert time >= 0 and backlog >= 0

    def test_invalid_interval(self):
        monitor = Monitor(make_runtime())
        with pytest.raises(ValueError):
            monitor.start_sampling(0)

    def test_start_is_idempotent(self):
        runtime = make_runtime()
        monitor = Monitor(runtime)
        monitor.start_sampling(1e-3)
        monitor.start_sampling(1e-3)
        runtime.run(until=5e-3)
        monitor.stop_sampling()
        runtime.run(until=runtime.now + 5e-3)
        # a second start must not double the sampling rate
        assert len(monitor.samples) <= 6
