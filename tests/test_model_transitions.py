"""Unit tests for the ten transition rules (Figs. 2 and 3)."""

import pytest

from repro.model import transitions as rules
from repro.model.actions import Create, End, Spawn, Sync
from repro.model.architecture import distributed_cluster
from repro.model.elements import DataItemDecl
from repro.model.state import initial_state
from repro.model.task import AccessSpec, simple_task
from repro.regions.interval import IntervalRegion


def make_world(nodes=2, cores=1):
    arch = distributed_cluster(nodes, cores)
    memories = sorted(arch.memories, key=lambda m: m.name)
    units = sorted(arch.compute_units, key=lambda c: c.name)
    return arch, memories, units


def noop_body(ctx):
    return
    yield  # pragma: no cover


class TestStartRule:
    def test_start_without_requirements(self):
        arch, _, units = make_world()
        task = simple_task(noop_body, name="t")
        state = initial_state(arch, task)
        candidates = list(rules.enabled_starts(state))
        # any compute unit may take it
        assert len(candidates) == len(units)
        entry = rules.apply_start(state, candidates[0])
        assert task not in state.queued
        assert entry in state.running

    def test_start_blocked_until_data_present(self):
        arch, memories, units = make_world()
        item = DataItemDecl(IntervalRegion.span(0, 10), name="d")
        reqs = AccessSpec(reads={item: IntervalRegion.span(0, 5)})
        task = simple_task(noop_body, reqs)
        state = initial_state(arch, task)
        state.items.add(item)
        assert list(rules.enabled_starts(state)) == []
        rules.apply_init(state, memories[0], item, IntervalRegion.span(0, 5))
        candidates = list(rules.enabled_starts(state))
        assert candidates
        # only units linked to memories[0] qualify
        for c in candidates:
            assert state.architecture.can_access(c.unit, memories[0])

    def test_start_installs_locks(self):
        arch, memories, _ = make_world()
        item = DataItemDecl(IntervalRegion.span(0, 10), name="d")
        reqs = AccessSpec(
            reads={item: IntervalRegion.span(0, 4)},
            writes={item: IntervalRegion.span(4, 8)},
        )
        task = simple_task(noop_body, reqs)
        state = initial_state(arch, task)
        state.items.add(item)
        rules.apply_init(state, memories[0], item, IntervalRegion.span(0, 10))
        candidate = next(rules.enabled_starts(state))
        rules.apply_start(state, candidate)
        variant = task.variants[0]
        memory = candidate.binding[item]
        assert state.read_locks[(variant, memory, item)].size() == 4
        assert state.write_locks[(variant, memory, item)].size() == 4

    def test_write_replica_blocks_start(self):
        # D ∩ Dw ≠ ∅: a replica of the write region elsewhere disables start
        arch, memories, _ = make_world()
        item = DataItemDecl(IntervalRegion.span(0, 10), name="d")
        reqs = AccessSpec(writes={item: IntervalRegion.span(0, 5)})
        task = simple_task(noop_body, reqs)
        state = initial_state(arch, task)
        state.items.add(item)
        rules.apply_init(state, memories[0], item, IntervalRegion.span(0, 10))
        rules.apply_replicate(
            state, memories[0], memories[1], item, IntervalRegion.span(0, 5)
        )
        assert list(rules.enabled_starts(state)) == []

    def test_apply_start_guard_enforced(self):
        arch, memories, units = make_world()
        item = DataItemDecl(IntervalRegion.span(0, 10), name="d")
        reqs = AccessSpec(reads={item: IntervalRegion.span(0, 5)})
        task = simple_task(noop_body, reqs)
        state = initial_state(arch, task)
        bad = rules.StartCandidate(
            task, task.variants[0], units[0], {item: memories[0]}
        )
        with pytest.raises(rules.TransitionError):
            rules.apply_start(state, bad)


class TestProgressRules:
    def test_spawn_sync_continue_end(self):
        arch, _, _ = make_world()
        child = simple_task(noop_body, name="child")

        def parent_body(ctx):
            yield ctx.spawn(child)
            yield ctx.sync(child)

        parent = simple_task(parent_body, name="parent")
        state = initial_state(arch, parent)
        entry = rules.apply_start(state, next(rules.enabled_starts(state)))
        # spawn
        action = rules.apply_progress(state, entry)
        assert isinstance(action, Spawn)
        assert child in state.queued
        # sync: parent blocks
        action = rules.apply_progress(state, entry)
        assert isinstance(action, Sync)
        assert not state.running and len(state.blocked) == 1
        blocked = state.blocked[0]
        # continue disabled while child is queued
        assert not rules.continue_guard(state, blocked)
        child_entry = rules.apply_start(state, next(rules.enabled_starts(state)))
        assert not rules.continue_guard(state, blocked)
        # child ends
        action = rules.apply_progress(state, child_entry)
        assert isinstance(action, End)
        assert rules.continue_guard(state, blocked)
        resumed = rules.apply_continue(state, blocked)
        # parent ends
        action = rules.apply_progress(state, resumed)
        assert isinstance(action, End)
        assert state.is_terminal()

    def test_double_spawn_rejected(self):
        arch, _, _ = make_world()
        child = simple_task(noop_body, name="child")

        def body(ctx):
            yield ctx.spawn(child)
            yield ctx.spawn(child)

        state = initial_state(arch, simple_task(body))
        entry = rules.apply_start(state, next(rules.enabled_starts(state)))
        rules.apply_progress(state, entry)
        with pytest.raises(rules.TransitionError):
            rules.apply_progress(state, entry)

    def test_create_and_destroy(self):
        arch, memories, _ = make_world()
        item = DataItemDecl(IntervalRegion.span(0, 10), name="d")

        def body(ctx):
            yield ctx.create(item)
            yield ctx.destroy(item)

        state = initial_state(arch, simple_task(body))
        entry = rules.apply_start(state, next(rules.enabled_starts(state)))
        action = rules.apply_progress(state, entry)
        assert isinstance(action, Create)
        assert item in state.items
        rules.apply_init(state, memories[0], item, IntervalRegion.span(0, 10))
        rules.apply_progress(state, entry)  # destroy
        assert item not in state.items
        assert state.present_region(memories[0], item).is_empty()

    def test_end_releases_locks(self):
        arch, memories, _ = make_world()
        item = DataItemDecl(IntervalRegion.span(0, 10), name="d")
        reqs = AccessSpec(writes={item: IntervalRegion.span(0, 5)})
        task = simple_task(noop_body, reqs)
        state = initial_state(arch, task)
        state.items.add(item)
        rules.apply_init(state, memories[0], item, IntervalRegion.span(0, 10))
        entry = rules.apply_start(state, next(rules.enabled_starts(state)))
        assert state.write_locks
        rules.apply_progress(state, entry)  # end
        assert not state.write_locks


class TestDataRules:
    def setup_method(self):
        self.arch, self.memories, _ = make_world()
        self.item = DataItemDecl(IntervalRegion.span(0, 100), name="d")
        self.state = initial_state(self.arch, simple_task(noop_body))
        self.state.items.add(self.item)

    def test_init_requires_absence(self):
        m0, m1 = self.memories
        region = IntervalRegion.span(0, 50)
        assert rules.init_guard(self.state, m0, self.item, region)
        rules.apply_init(self.state, m0, self.item, region)
        # overlapping init anywhere is now disabled
        assert not rules.init_guard(
            self.state, m1, self.item, IntervalRegion.span(40, 60)
        )
        assert rules.init_guard(
            self.state, m1, self.item, IntervalRegion.span(50, 60)
        )

    def test_init_empty_region_disabled(self):
        assert not rules.init_guard(
            self.state, self.memories[0], self.item, IntervalRegion.empty()
        )

    def test_migrate_moves_data(self):
        m0, m1 = self.memories
        rules.apply_init(self.state, m0, self.item, IntervalRegion.span(0, 50))
        rules.apply_migrate(
            self.state, m0, m1, self.item, IntervalRegion.span(10, 20)
        )
        assert self.state.present_region(m0, self.item).size() == 40
        assert self.state.present_region(m1, self.item).size() == 10

    def test_migrate_requires_presence_at_source(self):
        m0, m1 = self.memories
        assert not rules.migrate_guard(
            self.state, m0, m1, self.item, IntervalRegion.span(0, 5)
        )

    def test_replicate_copies_data(self):
        m0, m1 = self.memories
        rules.apply_init(self.state, m0, self.item, IntervalRegion.span(0, 50))
        rules.apply_replicate(
            self.state, m0, m1, self.item, IntervalRegion.span(0, 10)
        )
        assert self.state.present_region(m0, self.item).size() == 50
        assert self.state.present_region(m1, self.item).size() == 10

    def test_locks_block_migration_and_replication(self):
        m0, m1 = self.memories
        region = IntervalRegion.span(0, 10)
        rules.apply_init(self.state, m0, self.item, IntervalRegion.span(0, 50))
        variant = simple_task(noop_body).variants[0]
        self.state.write_locks[(variant, m0, self.item)] = region
        assert not rules.migrate_guard(self.state, m0, m1, self.item, region)
        assert not rules.replicate_guard(self.state, m0, m1, self.item, region)
        # read locks block migration but not replication
        del self.state.write_locks[(variant, m0, self.item)]
        self.state.read_locks[(variant, m0, self.item)] = region
        assert not rules.migrate_guard(self.state, m0, m1, self.item, region)
        assert rules.replicate_guard(self.state, m0, m1, self.item, region)

    def test_replica_removal_via_migrate(self):
        # Appendix A.2.5: eliminating a replica by migrating onto a copy
        m0, m1 = self.memories
        region = IntervalRegion.span(0, 10)
        rules.apply_init(self.state, m0, self.item, region)
        rules.apply_replicate(self.state, m0, m1, self.item, region)
        rules.apply_migrate(self.state, m0, m1, self.item, region)
        assert self.state.present_region(m0, self.item).is_empty()
        assert self.state.present_region(m1, self.item).size() == 10
