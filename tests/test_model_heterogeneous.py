"""GPU offloading expressed purely through the formal model (Def. 2.8).

The architecture model's generality claim: GPUs are just compute units
linked to device address spaces.  These tests show the transition rules —
unchanged — force the offload protocol: data must be replicated/migrated
into device memory before the start rule admits a GPU placement, and
exclusive writes hold across host and device copies.
"""

import pytest

from repro.model import transitions as rules
from repro.model.architecture import heterogeneous_cluster
from repro.model.elements import DataItemDecl
from repro.model.interpreter import Interpreter, InterpreterConfig
from repro.model.properties import check_exclusive_writes, check_terminal
from repro.model.state import initial_state
from repro.model.task import AccessSpec, Program, simple_task
from repro.regions.interval import IntervalRegion


def noop(ctx):
    return
    yield  # pragma: no cover


def find(arch, name):
    for unit in arch.compute_units:
        if unit.name == name:
            return unit
    for memory in arch.memories:
        if memory.name == name:
            return memory
    raise KeyError(name)


class TestHeterogeneousArchitecture:
    def test_shape(self):
        arch = heterogeneous_cluster(2, cores_per_node=2, gpus_per_node=1)
        assert len(arch.compute_units) == 2 * 3
        assert len(arch.memories) == 2 * 2
        gpu = find(arch, "g0.0")
        assert arch.accessible_memories(gpu) == {find(arch, "m0.gpu0")}

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            heterogeneous_cluster(0)


class TestModelLevelOffload:
    def setup_method(self):
        self.arch = heterogeneous_cluster(1, cores_per_node=1, gpus_per_node=1)
        self.host = find(self.arch, "m0")
        self.device = find(self.arch, "m0.gpu0")
        self.cpu = find(self.arch, "c0.0")
        self.gpu = find(self.arch, "g0.0")
        self.item = DataItemDecl(IntervalRegion.span(0, 16), name="d")

    def test_gpu_start_requires_device_data(self):
        reqs = AccessSpec(reads={self.item: IntervalRegion.span(0, 8)})
        task = simple_task(noop, reqs, name="kernel")
        state = initial_state(self.arch, task)
        state.items.add(self.item)
        # data on the host only: the CPU can start the task, the GPU cannot
        rules.apply_init(state, self.host, self.item, IntervalRegion.span(0, 16))
        units = {c.unit for c in rules.enabled_starts(state)}
        assert units == {self.cpu}
        # replicate into device memory: now the GPU qualifies too
        rules.apply_replicate(
            state, self.host, self.device, self.item, IntervalRegion.span(0, 8)
        )
        units = {c.unit for c in rules.enabled_starts(state)}
        assert units == {self.cpu, self.gpu}

    def test_device_write_requires_exclusive_device_copy(self):
        reqs = AccessSpec(writes={self.item: IntervalRegion.span(0, 4)})
        task = simple_task(noop, reqs, name="kernel")
        state = initial_state(self.arch, task)
        state.items.add(self.item)
        rules.apply_init(state, self.host, self.item, IntervalRegion.span(0, 16))
        rules.apply_replicate(
            state, self.host, self.device, self.item, IntervalRegion.span(0, 4)
        )
        # both copies exist: neither CPU nor GPU may start a writer
        assert list(rules.enabled_starts(state)) == []
        # migrate the host copy away (drop the replica): GPU-exclusive now
        rules.apply_migrate(
            state, self.host, self.device, self.item, IntervalRegion.span(0, 4)
        )
        units = {c.unit for c in rules.enabled_starts(state)}
        assert units == {self.gpu}
        candidate = next(
            c for c in rules.enabled_starts(state) if c.unit == self.gpu
        )
        entry = rules.apply_start(state, candidate)
        check_exclusive_writes(state)
        assert entry.binding[self.item] == self.device

    def test_offload_program_terminates_end_to_end(self):
        """A full program whose worker must run somewhere data can follow."""
        reqs = AccessSpec(
            reads={self.item: IntervalRegion.span(0, 16)},
            writes={self.item: IntervalRegion.span(0, 16)},
        )
        worker = simple_task(noop, reqs, name="kernel")

        def main(ctx):
            yield ctx.create(self.item)
            yield ctx.spawn(worker)
            yield ctx.sync(worker)
            yield ctx.destroy(self.item)

        program = Program(simple_task(main, name="main"))
        for seed in range(10):
            interp = Interpreter(
                InterpreterConfig(seed=seed, chaos_data_ops=0.3,
                                  max_transitions=5000)
            )
            trace, state = interp.run_to_completion(program, self.arch)
            check_terminal(state)
