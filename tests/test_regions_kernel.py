"""Unit tests for the canonical region kernel (interning + memoization)."""

import pytest

from repro.items.grid import Grid
from repro.regions.box import Box, BoxSetRegion
from repro.regions.explicit import ExplicitSetRegion
from repro.regions.interval import IntervalRegion
from repro.regions.kernel import RegionKernel, get_kernel
from repro.regions.tree import TreeGeometry, TreeRegion
from repro.runtime.config import RuntimeConfig
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.tasks import TaskSpec
from repro.sim.cluster import Cluster, ClusterSpec


class TestInterning:
    def test_equal_regions_collapse_to_one_object(self):
        kernel = RegionKernel()
        a = ExplicitSetRegion([1, 2, 3])
        b = ExplicitSetRegion([3, 2, 1])
        assert a is not b
        assert kernel.intern(a) is kernel.intern(b)

    def test_first_instance_becomes_representative(self):
        kernel = RegionKernel()
        a = IntervalRegion([(0, 5)])
        assert kernel.intern(a) is a
        assert kernel.intern(IntervalRegion([(0, 5)])) is a

    def test_canonical_box_forms_intern_together(self):
        kernel = RegionKernel()
        # two different box decompositions of the same element set
        a = BoxSetRegion([Box.of((0, 0), (2, 4))])
        b = BoxSetRegion([Box.of((0, 0), (2, 2)), Box.of((0, 2), (2, 4))])
        assert kernel.intern(a) is kernel.intern(b)

    def test_different_families_never_collide(self):
        kernel = RegionKernel()
        a = ExplicitSetRegion([1, 2])
        b = IntervalRegion([(1, 3)])  # same element set {1, 2}
        assert kernel.intern(a) is not kernel.intern(b)

    def test_intern_table_is_bounded(self):
        kernel = RegionKernel(intern_capacity=4)
        for k in range(10):
            kernel.intern(ExplicitSetRegion([k]))
        assert kernel.live_interned == 4
        assert kernel.interned == 10  # monotone counter keeps the total

    def test_interned_method_on_region(self):
        a = ExplicitSetRegion([7])
        assert a.interned() is get_kernel().intern(a)


class TestMemoization:
    def test_repeat_op_hits_cache_and_returns_same_object(self):
        kernel = RegionKernel()
        a = IntervalRegion([(0, 4)])
        b = IntervalRegion([(2, 8)])
        first = kernel.union(a, b)
        hits = kernel.cache_hits
        assert kernel.union(a, b) is first
        assert kernel.cache_hits == hits + 1

    def test_symmetric_ops_share_cache_entries(self):
        kernel = RegionKernel()
        a = IntervalRegion([(0, 4)])
        b = IntervalRegion([(2, 8)])
        first = kernel.union(a, b)
        misses = kernel.cache_misses
        assert kernel.union(b, a) is first  # operand order normalized away
        assert kernel.cache_misses == misses

    def test_difference_is_order_sensitive(self):
        kernel = RegionKernel()
        a = IntervalRegion([(0, 4)])
        b = IntervalRegion([(2, 8)])
        assert not kernel.difference(a, b).same_elements(
            kernel.difference(b, a)
        )

    def test_predicates_memoized(self):
        kernel = RegionKernel()
        a = IntervalRegion([(0, 8)])
        b = IntervalRegion([(2, 4)])
        assert kernel.covers(a, b)
        hits = kernel.cache_hits
        assert kernel.covers(a, b)
        assert kernel.cache_hits == hits + 1
        assert kernel.overlaps(a, b)
        assert kernel.overlaps(b, a)

    def test_op_cache_is_bounded(self):
        kernel = RegionKernel(op_capacity=4)
        regions = [IntervalRegion([(k, k + 2)]) for k in range(12)]
        for k in range(11):
            kernel.union(regions[k], regions[k + 1])
        # oldest entry evicted: recomputing it is a miss, not a hit
        misses = kernel.cache_misses
        kernel.union(regions[0], regions[1])
        assert kernel.cache_misses == misses + 1

    def test_failed_ops_propagate_and_are_not_cached(self):
        kernel = RegionKernel()
        geometry = TreeGeometry(3)
        other_geometry = TreeGeometry(4)
        a = TreeRegion.of_nodes(geometry, [1])
        b = TreeRegion.of_nodes(other_geometry, [1])
        from repro.regions.base import RegionMismatchError

        with pytest.raises(RegionMismatchError):
            kernel.union(a, b)
        with pytest.raises(RegionMismatchError):
            kernel.union(a, b)  # still raises on the second attempt

    def test_stats_shape(self):
        kernel = RegionKernel()
        a = IntervalRegion([(0, 4)])
        b = IntervalRegion([(2, 8)])
        kernel.union(a, b)
        kernel.union(a, b)
        kernel.is_empty(a)
        stats = kernel.stats()
        assert stats["region.cache_hits"] == 1
        assert stats["region.cache_misses"] == 1
        assert stats["region.interned"] >= 3  # a, b, a∪b
        assert stats["region.union.hits"] == 1
        assert stats["region.union.misses"] == 1
        assert stats["region.is_empty.calls"] == 1

    def test_reset(self):
        kernel = RegionKernel()
        kernel.union(IntervalRegion([(0, 4)]), IntervalRegion([(2, 8)]))
        kernel.reset()
        assert kernel.cache_hits == 0
        assert kernel.cache_misses == 0
        assert kernel.interned == 0
        assert kernel.live_interned == 0


class TestPublicApiRouting:
    """Region.union/intersect/difference/covers route through the kernel."""

    def test_union_routes_through_singleton(self):
        kernel = get_kernel()
        a = ExplicitSetRegion([1, 2])
        b = ExplicitSetRegion([2, 3])
        before = kernel.cache_hits + kernel.cache_misses
        a.union(b)
        after = kernel.cache_hits + kernel.cache_misses
        assert after == before + 1

    def test_all_five_families_return_interned_results(self):
        kernel = get_kernel()
        from repro.regions.blocked_tree import (
            BlockedTreeGeometry,
            BlockedTreeRegion,
        )

        geometry = TreeGeometry(4)
        blocked = BlockedTreeGeometry(depth=4, root_height=2)
        pairs = [
            (ExplicitSetRegion([1, 2]), ExplicitSetRegion([2, 3])),
            (IntervalRegion([(0, 4)]), IntervalRegion([(2, 6)])),
            (
                BoxSetRegion([Box.of((0, 0), (3, 3))]),
                BoxSetRegion([Box.of((1, 1), (4, 4))]),
            ),
            (
                TreeRegion.of_nodes(geometry, [1, 2]),
                TreeRegion.of_nodes(geometry, [2, 3]),
            ),
            (
                BlockedTreeRegion.of_blocks(blocked, [1]),
                BlockedTreeRegion.of_blocks(blocked, [2]),
            ),
        ]
        for a, b in pairs:
            for op in ("union", "intersect", "difference"):
                result = getattr(a, op)(b)
                assert kernel.intern(result) is result


class TestRuntimeMetrics:
    def test_kernel_counters_published_to_runtime_metrics(self):
        cluster = Cluster(
            ClusterSpec(num_nodes=2, cores_per_node=2, flops_per_core=1e9)
        )
        runtime = AllScaleRuntime(cluster, RuntimeConfig(functional=False))
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid, placement=grid.decompose(2))
        region = runtime.process(0).data_manager.owned_region(grid)
        task = TaskSpec(
            name="t",
            reads={grid: region},
            writes={grid: region},
            flops=1e3,
            size_hint=16,
        )
        runtime.wait(runtime.submit(task, origin=0))
        snapshot = runtime.metrics.snapshot()
        for name in (
            "region.cache_hits",
            "region.cache_misses",
            "region.interned",
        ):
            assert name in snapshot
        # scheduling + registration exercise the region algebra
        total = (
            snapshot["region.cache_hits"] + snapshot["region.cache_misses"]
        )
        assert total > 0

    def test_metrics_are_deltas_per_runtime(self):
        # churn the process-wide kernel before creating the runtime; the
        # runtime's published counters must not include that history
        for k in range(50):
            ExplicitSetRegion([k]).union(ExplicitSetRegion([k + 1]))
        kernel_total = get_kernel().cache_hits + get_kernel().cache_misses
        cluster = Cluster(
            ClusterSpec(num_nodes=1, cores_per_node=1, flops_per_core=1e9)
        )
        runtime = AllScaleRuntime(cluster, RuntimeConfig(functional=False))
        runtime.sync_region_metrics()
        snapshot = runtime.metrics.snapshot()
        published = (
            snapshot["region.cache_hits"] + snapshot["region.cache_misses"]
        )
        assert published < kernel_total
