"""Interpreter tests: programs run to terminal states under many schedules."""

import pytest

from repro.model.architecture import distributed_cluster, shared_memory_system
from repro.model.elements import DataItemDecl
from repro.model.interpreter import (
    DeadlockError,
    Interpreter,
    InterpreterConfig,
)
from repro.model.properties import (
    check_exclusive_writes,
    check_single_execution,
    check_terminal,
)
from repro.model.task import AccessSpec, Program, Task, simple_task
from repro.regions.interval import IntervalRegion


def noop(ctx):
    return
    yield  # pragma: no cover


def fork_join_program(width=3, item=None):
    """Entry task creates an item, spawns `width` children, syncs, destroys."""
    item = item or DataItemDecl(IntervalRegion.span(0, 60), name="data")
    children = []
    per = 60 // width
    for k in range(width):
        reqs = AccessSpec(
            reads={item: IntervalRegion.span(max(0, k * per - 1), min(60, (k + 1) * per + 1))},
            writes={item: IntervalRegion.span(k * per, (k + 1) * per)},
        )
        children.append(simple_task(noop, reqs, name=f"child{k}"))

    def main(ctx):
        yield ctx.create(item)
        for child in children:
            yield ctx.spawn(child)
        for child in children:
            yield ctx.sync(child)
        yield ctx.destroy(item)

    return Program(simple_task(main, name="main")), item, children


class TestTermination:
    @pytest.mark.parametrize("seed", range(8))
    def test_fork_join_terminates(self, seed):
        program, _, _ = fork_join_program()
        interp = Interpreter(InterpreterConfig(seed=seed, max_transitions=3000))
        trace, state = interp.run_to_completion(
            program, distributed_cluster(2, 2)
        )
        assert trace.terminated
        check_terminal(state)
        check_single_execution(trace, state)

    @pytest.mark.parametrize("seed", range(6))
    def test_terminates_under_chaos(self, seed):
        program, _, _ = fork_join_program()
        interp = Interpreter(
            InterpreterConfig(seed=seed, chaos_data_ops=0.4, max_transitions=6000)
        )
        trace, state = interp.run_to_completion(
            program, distributed_cluster(3, 1)
        )
        check_terminal(state)
        check_exclusive_writes(state)

    def test_shared_memory_architecture(self):
        program, _, _ = fork_join_program()
        interp = Interpreter(InterpreterConfig(seed=0))
        trace, state = interp.run_to_completion(
            program, shared_memory_system(4)
        )
        check_terminal(state)

    def test_single_unit_architecture(self):
        program, _, _ = fork_join_program(width=2)
        interp = Interpreter(InterpreterConfig(seed=0))
        trace, state = interp.run_to_completion(
            program, distributed_cluster(1, 1)
        )
        check_terminal(state)


class TestDeadlocks:
    def test_sync_on_never_spawned_task_deadlocks(self):
        orphan = simple_task(noop, name="orphan-variant-holder")
        # a task that syncs on a task nobody ever spawns... but the guard
        # `t ∉ Q ∧ no variant running/blocked` is then TRUE, so `continue`
        # fires — the model treats never-spawned tasks as trivially done.
        def main(ctx):
            yield ctx.sync(orphan)

        interp = Interpreter(InterpreterConfig(seed=0))
        trace, state = interp.run(
            Program(simple_task(main)), distributed_cluster(1, 1)
        )
        assert trace.terminated  # documents the model's literal reading

    def test_mutual_sync_deadlocks(self):
        a = Task("a")
        b = Task("b")
        a.add_variant(lambda ctx: iter([ctx.sync(b)]))
        b.add_variant(lambda ctx: iter([ctx.sync(a)]))

        def main(ctx):
            yield ctx.spawn(a)
            yield ctx.spawn(b)
            yield ctx.sync(a)

        interp = Interpreter(InterpreterConfig(seed=3, max_transitions=500))
        trace, state = interp.run(
            Program(simple_task(main)), distributed_cluster(1, 2)
        )
        assert trace.deadlocked
        with pytest.raises(DeadlockError):
            interp.run_to_completion(
                Program(simple_task(main, name="main2")),
                distributed_cluster(1, 2),
            )


class TestTraces:
    def test_trace_event_kinds(self):
        program, _, _ = fork_join_program(width=2)
        interp = Interpreter(InterpreterConfig(seed=1, record_snapshots=True))
        trace, state = interp.run_to_completion(
            program, distributed_cluster(2, 1)
        )
        kinds = {e.kind for e in trace.events}
        assert {"start", "spawn", "sync", "end", "create", "destroy"} <= kinds
        # data had to be initialized for children to run
        assert trace.events_of_kind("init")
        # snapshots recorded and final snapshot terminal
        assert trace.events[-1].snapshot is not None
        assert trace.events[-1].snapshot.is_terminal()

    def test_progress_step_count(self):
        program, _, children = fork_join_program(width=2)
        interp = Interpreter(InterpreterConfig(seed=1))
        trace, _ = interp.run_to_completion(program, distributed_cluster(2, 1))
        # progress steps: 3 starts + main's 7 actions (2 spawn, 2 sync,
        # create, destroy, end) + 2 child ends + 2 continues after syncs
        assert trace.progress_steps() == 3 + 7 + 2 + 2

    def test_data_ends_where_last_written(self):
        program, item, _ = fork_join_program(width=2)
        interp = Interpreter(InterpreterConfig(seed=2))
        trace, state = interp.run_to_completion(program, distributed_cluster(2, 1))
        # item destroyed: nothing remains
        assert not state.distribution
