"""Unit tests for boxes and box-set regions (Fig. 4a)."""

import pytest

from repro.regions.box import (
    Box,
    BoxSetRegion,
    grid_block_decomposition,
)
from repro.regions.base import RegionMismatchError


class TestBox:
    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Box((0, 0), (1,))

    def test_emptiness_and_size(self):
        assert Box.of((0, 0), (0, 5)).is_empty()
        assert Box.of((0, 0), (2, 3)).size() == 6
        assert Box.of((2, 2), (1, 5)).size() == 0

    def test_contains(self):
        box = Box.of((1, 1), (4, 4))
        assert box.contains((1, 1))
        assert box.contains((3, 3))
        assert not box.contains((4, 3))
        assert not box.contains((0, 2))
        assert not box.contains((1,))

    def test_intersect_and_overlaps(self):
        a = Box.of((0, 0), (4, 4))
        b = Box.of((2, 2), (6, 6))
        assert a.intersect(b) == Box.of((2, 2), (4, 4))
        assert a.overlaps(b)
        assert not a.overlaps(Box.of((4, 0), (6, 4)))
        assert not a.overlaps(Box.of((2, 2), (2, 6)))  # empty operand

    def test_encloses(self):
        outer = Box.of((0, 0), (10, 10))
        assert outer.encloses(Box.of((2, 3), (4, 5)))
        assert outer.encloses(outer)
        assert not Box.of((2, 3), (4, 5)).encloses(outer)

    def test_subtract_disjoint_returns_self(self):
        a = Box.of((0, 0), (2, 2))
        assert a.subtract(Box.of((5, 5), (6, 6))) == [a]

    def test_subtract_full_returns_empty(self):
        a = Box.of((1, 1), (3, 3))
        assert a.subtract(Box.of((0, 0), (5, 5))) == []

    def test_subtract_partial_is_partition(self):
        a = Box.of((0, 0), (4, 4))
        b = Box.of((1, 1), (3, 3))
        pieces = a.subtract(b)
        covered = set()
        for piece in pieces:
            pts = set(piece.points())
            assert not covered & pts, "pieces overlap"
            covered |= pts
        assert covered == set(a.points()) - set(b.points())

    def test_split(self):
        left, right = Box.of((0, 0), (4, 6)).split(1, 2)
        assert left == Box.of((0, 0), (4, 2))
        assert right == Box.of((0, 2), (4, 6))

    def test_surface(self):
        assert Box.of((0, 0), (4, 4)).surface() == 12
        assert Box.of((0, 0), (1, 5)).surface() == 5

    def test_value_semantics(self):
        assert Box.of((0, 0), (1, 1)) == Box.of((0, 0), (1, 1))
        assert hash(Box.of((0, 0), (1, 1))) == hash(Box.of((0, 0), (1, 1)))


class TestBoxSetRegion:
    def test_disjointification(self):
        region = BoxSetRegion(
            [Box.of((0, 0), (4, 4)), Box.of((2, 2), (6, 6))]
        )
        assert region.size() == 16 + 16 - 4

    def test_coalescing_of_abutting_boxes(self):
        region = BoxSetRegion(
            [Box.of((0, 0), (2, 4)), Box.of((2, 0), (4, 4))]
        )
        assert region.boxes == (Box.of((0, 0), (4, 4)),)

    def test_rank_mixing_rejected(self):
        with pytest.raises(RegionMismatchError):
            BoxSetRegion([Box.of((0,), (2,)), Box.of((0, 0), (2, 2))])

    def test_union_intersect_difference(self):
        a = BoxSetRegion.single((0, 0), (4, 4))
        b = BoxSetRegion.single((2, 2), (6, 6))
        assert (a | b).size() == 28
        assert (a & b).size() == 4
        assert (a - b).size() == 12
        assert (b - a).size() == 12

    def test_difference_fast_path_disjoint(self):
        a = BoxSetRegion.single((0, 0), (2, 2))
        b = BoxSetRegion.single((10, 10), (12, 12))
        # the no-overlap fast path returns the (interned) left operand
        # unchanged rather than rebuilding it
        assert (a - b) is a.interned()
        assert (a - b) == a

    def test_covers_fast_and_slow_path(self):
        big = BoxSetRegion.single((0, 0), (10, 10))
        assert big.covers(BoxSetRegion.single((2, 2), (5, 5)))
        # spanning two stored boxes (slow path)
        two = BoxSetRegion(
            [Box.of((0, 0), (5, 10)), Box.of((5, 0), (10, 10))]
        )
        assert two.covers(BoxSetRegion.single((3, 3), (7, 7)))
        assert not BoxSetRegion.single((0, 0), (4, 4)).covers(big)

    def test_semantic_equality(self):
        a = BoxSetRegion([Box.of((0, 0), (2, 4))])
        b = BoxSetRegion(
            [Box.of((0, 0), (2, 2)), Box.of((0, 2), (2, 4))]
        )
        assert a == b

    def test_contains(self):
        region = BoxSetRegion.single((0, 0), (3, 3))
        assert region.contains((2, 2))
        assert not region.contains((3, 3))
        assert not region.contains("nope")

    def test_bounding_box(self):
        region = BoxSetRegion(
            [Box.of((0, 0), (1, 1)), Box.of((5, 7), (6, 9))]
        )
        assert region.bounding_box() == Box.of((0, 0), (6, 9))
        assert BoxSetRegion.empty(2).bounding_box() is None

    def test_full_grid(self):
        region = BoxSetRegion.full_grid((3, 4, 5))
        assert region.size() == 60

    def test_surface(self):
        region = BoxSetRegion.single((0, 0), (4, 4))
        assert region.surface() == 12


class TestGridBlockDecomposition:
    @pytest.mark.parametrize("parts", [1, 2, 3, 4, 7, 8, 16])
    def test_partition_is_complete_and_disjoint(self, parts):
        boxes = grid_block_decomposition((20, 30), parts)
        assert len(boxes) == parts
        assert sum(b.size() for b in boxes) == 600
        region = BoxSetRegion(boxes)
        assert region.size() == 600  # disjointness: no double counting

    def test_near_equal_sizes(self):
        boxes = grid_block_decomposition((100, 100), 8)
        sizes = [b.size() for b in boxes]
        assert max(sizes) - min(sizes) <= 100  # within one row/col strip

    def test_splits_widest_axis_first(self):
        boxes = grid_block_decomposition((100, 10), 2)
        assert {b.widths() for b in boxes} == {(50, 10)}

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            grid_block_decomposition((4, 4), 0)
