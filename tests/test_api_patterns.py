"""Tests for the higher-level parallel patterns (preduce, pstencil)."""

import numpy as np
import pytest

from repro.api import box_region, pfor
from repro.api.patterns import preduce, pstencil
from repro.items.grid import Grid
from repro.regions.box import Box
from repro.runtime.config import RuntimeConfig
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.tasks import TaskSpec
from repro.sim.cluster import Cluster, ClusterSpec


def make_runtime(nodes=4):
    cluster = Cluster(
        ClusterSpec(num_nodes=nodes, cores_per_node=2, flops_per_core=1e9)
    )
    return AllScaleRuntime(cluster, RuntimeConfig(functional=True))


def init_grid(runtime, grid, fn):
    def body(ctx, box):
        rows = np.arange(box.lo[0], box.hi[0])
        cols = np.arange(box.lo[1], box.hi[1])
        ctx.fragment(grid).scatter(box, fn(rows[:, None], cols[None, :]))

    runtime.wait(
        pfor(
            runtime,
            (0, 0),
            grid.shape,
            body=body,
            writes=lambda box: {grid: box_region(grid, box)},
            name=f"init.{grid.name}",
        )
    )


class TestPreduce:
    def test_sum_over_whole_grid(self):
        runtime = make_runtime()
        grid = Grid((20, 20), name="g")
        runtime.register_item(grid)
        init_grid(runtime, grid, lambda r, c: (r + c).astype(float))
        total = runtime.wait(
            preduce(runtime, grid, lambda a: float(a.sum()))
        )
        expected = float(
            np.add.outer(np.arange(20), np.arange(20)).sum()
        )
        assert total == expected

    def test_custom_combine_max(self):
        runtime = make_runtime()
        grid = Grid((16, 16), name="g")
        runtime.register_item(grid)
        init_grid(runtime, grid, lambda r, c: (r * 100 + c).astype(float))
        maximum = runtime.wait(
            preduce(
                runtime,
                grid,
                lambda a: float(a.max()),
                combine=max,
            )
        )
        assert maximum == 15 * 100 + 15

    def test_sub_range_reduction(self):
        runtime = make_runtime(nodes=2)
        grid = Grid((10, 10), name="g")
        runtime.register_item(grid)
        init_grid(runtime, grid, lambda r, c: np.ones((len(r), len(c[0]))))
        count = runtime.wait(
            preduce(
                runtime, grid, lambda a: float(a.sum()), lo=(2, 2), hi=(5, 7)
            )
        )
        assert count == 3 * 5


class TestPstencil:
    def test_matches_manual_stencil(self):
        runtime = make_runtime()
        shape = (24, 24)
        a = Grid(shape, name="A")
        b = Grid(shape, name="B")
        runtime.register_item(a)
        runtime.register_item(b)
        # both buffers share the initial values so the never-updated
        # borders agree step to step (exactly as in Fig. 6b's program)
        init_grid(runtime, a, lambda r, c: (r + c).astype(float))
        init_grid(runtime, b, lambda r, c: (r + c).astype(float))

        coeff = 0.1

        def kernel(window, box, halo):
            i0 = box.lo[0] - halo.lo[0]
            j0 = box.lo[1] - halo.lo[1]
            h, w = box.widths()
            core = window[i0 : i0 + h, j0 : j0 + w]
            up = window[i0 - 1 : i0 - 1 + h, j0 : j0 + w]
            down = window[i0 + 1 : i0 + 1 + h, j0 : j0 + w]
            left = window[i0 : i0 + h, j0 - 1 : j0 - 1 + w]
            right = window[i0 : i0 + h, j0 + 1 : j0 + 1 + w]
            return core + coeff * (up + down + left + right - 4 * core)

        steps = 4
        final = runtime.wait_process(
            pstencil(runtime, (a, b), kernel, steps=steps, flops_per_element=7)
        )
        assert final is a  # even step count ends back in A

        # NumPy reference
        ref = np.add.outer(
            np.arange(24, dtype=float), np.arange(24, dtype=float)
        )
        for _ in range(steps):
            nxt = ref.copy()
            nxt[1:-1, 1:-1] = ref[1:-1, 1:-1] + coeff * (
                ref[:-2, 1:-1]
                + ref[2:, 1:-1]
                + ref[1:-1, :-2]
                + ref[1:-1, 2:]
                - 4 * ref[1:-1, 1:-1]
            )
            # pstencil writes only the interior; borders of the destination
            # buffer keep whatever was there (zeros then stale values) —
            # compare interiors
            ref = nxt

        def read(ctx):
            return ctx.fragment(final).gather(Box.of((1, 1), (23, 23)))

        values = runtime.wait(
            runtime.submit(
                TaskSpec(
                    name="rd",
                    reads={final: final.full_region},
                    body=read,
                    size_hint=1,
                )
            )
        )
        assert np.allclose(values, ref[1:-1, 1:-1])

    def test_shape_mismatch_rejected(self):
        runtime = make_runtime(nodes=1)
        a, b = Grid((4, 4)), Grid((5, 5))
        with pytest.raises(ValueError):
            runtime.wait_process(
                pstencil(runtime, (a, b), lambda w, bx, h: w, steps=1)
            )

    def test_odd_steps_end_in_second_buffer(self):
        runtime = make_runtime(nodes=1)
        a = Grid((8, 8), name="A")
        b = Grid((8, 8), name="B")
        runtime.register_item(a)
        runtime.register_item(b)
        init_grid(runtime, a, lambda r, c: np.ones((len(r), len(c[0]))))

        def copy_kernel(window, box, halo):
            i0 = box.lo[0] - halo.lo[0]
            j0 = box.lo[1] - halo.lo[1]
            h, w = box.widths()
            return window[i0 : i0 + h, j0 : j0 + w]

        final = runtime.wait_process(
            pstencil(runtime, (a, b), copy_kernel, steps=3)
        )
        assert final is b
