"""AST lint tests: declared requirements vs. actual ``ctx`` accesses."""

from repro.analysis import AnalysisConfig, analyze_task
from repro.analysis.lint import lint_key, lint_spec
from repro.api.pfor import pfor_task
from repro.items.grid import Grid
from repro.runtime.tasks import TaskSpec


GRID = Grid((16,), name="g")
OTHER = Grid((16,), name="h")


def span(lo, hi, grid=GRID):
    return grid.box((lo,), (hi,))


def checks(findings):
    return [f.check for f in findings]


class TestUnderDeclaration:
    def test_undeclared_item_is_error(self):
        def body(ctx):
            return ctx.fragment(OTHER).gather(span(0, 4, OTHER))

        spec = TaskSpec(name="t", writes={GRID: span(0, 8)}, body=body)
        findings = lint_spec(spec)
        by_check = {f.check: f for f in findings}
        assert by_check["lint.undeclared_item"].severity == "error"
        assert by_check["lint.undeclared_item"].item == "h"

    def test_undeclared_write_is_error(self):
        def body(ctx):
            ctx.fragment(GRID).scatter(span(0, 4), 1.0)

        spec = TaskSpec(name="t", reads={GRID: span(0, 8)}, body=body)
        assert checks(lint_spec(spec)) == ["lint.undeclared_write"]

    def test_read_of_write_only_is_warning(self):
        def body(ctx):
            return ctx.fragment(GRID).gather(span(0, 4))

        spec = TaskSpec(name="t", writes={GRID: span(0, 8)}, body=body)
        findings = lint_spec(spec)
        assert checks(findings) == ["lint.undeclared_read"]
        assert findings[0].severity == "warning"

    def test_matching_declaration_is_clean(self):
        def body(ctx):
            values = ctx.fragment(GRID).gather(span(0, 4))
            ctx.fragment(GRID).scatter(span(0, 4), values)

        spec = TaskSpec(
            name="t",
            reads={GRID: span(0, 4)},
            writes={GRID: span(0, 4)},
            body=body,
        )
        assert lint_spec(spec) == []


class TestOverDeclaration:
    def test_unused_requirement_is_warning(self):
        def body(ctx):
            return ctx.fragment(GRID).gather(span(0, 4))

        spec = TaskSpec(
            name="t",
            reads={GRID: span(0, 4), OTHER: span(0, 4, OTHER)},
            body=body,
        )
        findings = lint_spec(spec)
        assert checks(findings) == ["lint.unused_requirement"]
        assert findings[0].item == "h"

    def test_empty_declared_region_not_flagged(self):
        def body(ctx):
            return ctx.fragment(GRID).gather(span(0, 4))

        spec = TaskSpec(
            name="t",
            reads={GRID: span(0, 4), OTHER: OTHER.empty_region()},
            body=body,
        )
        assert lint_spec(spec) == []

    def test_opaque_ctx_suppresses_over_declaration(self):
        def helper(ctx):
            return ctx.fragment(GRID).gather(span(0, 4))

        def body(ctx):
            return helper(ctx)

        spec = TaskSpec(name="t", reads={GRID: span(0, 4)}, body=body)
        # ctx escapes into helper(); the lint cannot see inside, so it
        # must not claim the requirement is unused
        assert lint_spec(spec) == []


class TestResolution:
    def test_alias_tracking(self):
        def body(ctx):
            fragment = ctx.fragment(GRID)
            fragment.scatter(span(0, 4), 0.0)

        spec = TaskSpec(name="t", reads={GRID: span(0, 4)}, body=body)
        assert checks(lint_spec(spec)) == ["lint.undeclared_write"]

    def test_lambda_in_call_expression(self):
        spec = TaskSpec(
            name="t",
            writes={GRID: span(0, 8)},
            body=(lambda ctx: ctx.fragment(GRID).scatter(span(0, 8), 1.0)),
        )
        assert lint_spec(spec) == []

    def test_default_argument_resolution(self):
        spec = TaskSpec(
            name="t",
            writes={GRID: span(0, 8)},
            body=(lambda ctx, g=GRID: ctx.fragment(g).scatter(span(0, 8), 1)),
        )
        assert lint_spec(spec) == []

    def test_cost_stub_skipped(self):
        # bodies never touching ctx (virtual-mode cost stubs) are exempt,
        # whatever they declare
        spec = TaskSpec(
            name="t",
            reads={GRID: span(0, 8)},
            body=(lambda ctx, v=3: v),
        )
        assert lint_spec(spec) == []

    def test_builtin_body_reports_no_source(self):
        spec = TaskSpec(name="t", body=len, writes={GRID: span(0, 4)})
        findings = lint_spec(spec)
        assert checks(findings) == ["lint.no_source"]
        assert findings[0].severity == "info"

    def test_unresolvable_argument_reports_info(self):
        def body(ctx):
            return ctx.fragment(pick_item()).gather(span(0, 4))

        def pick_item():
            return GRID

        spec = TaskSpec(name="t", reads={GRID: span(0, 4)}, body=body)
        findings = lint_spec(spec)
        assert checks(findings) == ["lint.unresolvable"]
        assert "pick_item()" in findings[0].message

    def test_origin_body_preferred_over_wrapper(self):
        def kernel(ctx, box):
            ctx.fragment(OTHER).scatter(span(0, 2, OTHER), 0.0)

        def wrapper(ctx):
            return kernel(ctx, None)

        spec = TaskSpec(
            name="t",
            writes={GRID: span(0, 8)},
            body=wrapper,
            origin_body=kernel,
        )
        found = checks(lint_spec(spec))
        assert "lint.undeclared_item" in found


class TestLintKey:
    def test_same_kernel_same_items_share_key(self):
        def kernel(ctx, box):
            return ctx.fragment(GRID).gather(box)

        a = TaskSpec(name="a", reads={GRID: span(0, 4)}, origin_body=kernel)
        b = TaskSpec(name="b", reads={GRID: span(4, 8)}, origin_body=kernel)
        assert lint_key(a) == lint_key(b)

    def test_different_items_differ(self):
        def kernel(ctx, box):
            return ctx.fragment(GRID).gather(box)

        a = TaskSpec(name="a", reads={GRID: span(0, 4)}, origin_body=kernel)
        b = TaskSpec(name="b", reads={OTHER: span(0, 4, OTHER)}, origin_body=kernel)
        assert lint_key(a) != lint_key(b)

    def test_unlintable_is_none(self):
        assert lint_key(TaskSpec(name="t")) is None


class TestPforIntegration:
    def test_undeclared_access_in_point_kernel_caught(self):
        task = pfor_task(
            (0,),
            (16,),
            point_kernel=lambda ctx, coord: ctx.fragment(GRID).get(coord),
            writes=lambda box: {OTHER: OTHER.box(box.lo, box.hi)},
            granularity=4.0,
        )
        report = analyze_task(task, AnalysisConfig(max_depth=2))
        assert "lint.undeclared_item" in {f.check for f in report.errors}

    def test_declared_point_kernel_clean(self):
        task = pfor_task(
            (0,),
            (16,),
            point_kernel=lambda ctx, coord: ctx.fragment(GRID).get(coord),
            reads=lambda box: {GRID: GRID.box(box.lo, box.hi)},
            granularity=4.0,
        )
        report = analyze_task(task, AnalysisConfig(max_depth=2))
        assert report.clean
        # one shared kernel: linted once despite several leaves
        assert report.bodies_linted >= 1
