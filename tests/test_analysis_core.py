"""Unit tests for the static analyzer: findings, expansion, coverage, races."""

import pytest

from repro.analysis import (
    AnalysisConfig,
    AnalysisReport,
    ERROR,
    Finding,
    WARNING,
    analyze_task,
    expand_task,
)
from repro.analysis.coverage import check_coverage
from repro.analysis.races import (
    check_concurrent_roots,
    check_tree_races,
    effective_requirements,
)
from repro.items.grid import Grid
from repro.runtime.tasks import TaskSpec


GRID = Grid((64,), name="dst")
SRC = Grid((64,), name="src")


def span(lo, hi, grid=GRID):
    return grid.box((lo,), (hi,))


def leaf(name, lo, hi, reads=None, grid=GRID):
    """A leaf writing [lo, hi) of ``grid``, optionally reading ``reads``."""
    spec = TaskSpec(name=name, writes={grid: span(lo, hi, grid)})
    if reads is not None:
        spec.reads = dict(reads)
    return spec


def split(name, children, reads=None, writes=None):
    return TaskSpec(
        name=name,
        reads=dict(reads or {}),
        writes=dict(writes or {}),
        splitter=lambda: list(children),
    )


def clean_tree():
    """Root writing [0, 32), split twice into disjoint quarters."""
    leaves_l = [leaf("ll", 0, 8), leaf("lr", 8, 16)]
    leaves_r = [leaf("rl", 16, 24), leaf("rr", 24, 32)]
    left = split("left", leaves_l, writes={GRID: span(0, 16)})
    right = split("right", leaves_r, writes={GRID: span(16, 32)})
    return split("root", [left, right], writes={GRID: span(0, 32)})


class TestFindings:
    def test_severity_validated(self):
        with pytest.raises(ValueError):
            Finding(check="x", severity="fatal", message="boom")

    def test_report_counts_and_clean(self):
        report = AnalysisReport(subject="s")
        assert report.clean
        report.add(Finding(check="a", severity=ERROR, message="m"))
        report.add(Finding(check="b", severity=WARNING, message="m"))
        assert not report.clean
        assert report.counts() == {"error": 1, "warning": 1, "info": 0}
        assert len(report.errors) == 1 and len(report.warnings) == 1

    def test_merge_deduplicates(self):
        a = AnalysisReport(subject="a")
        b = AnalysisReport(subject="b")
        finding = Finding(check="c", severity=ERROR, message="m", task="t")
        a.add(finding)
        b.add(Finding(check="c", severity=ERROR, message="m", task="t"))
        b.add(Finding(check="c", severity=ERROR, message="m", task="u"))
        a.merge(b)
        assert len(a.findings) == 2

    def test_render_lines_truncates(self):
        report = AnalysisReport(subject="s")
        for k in range(10):
            report.add(Finding(check="c", severity=ERROR, message=f"m{k}"))
        lines = report.render_lines(max_findings=3)
        assert any("7 more" in line for line in lines)


class TestExpansion:
    def test_full_expansion_counts(self):
        root, expanded, truncated = expand_task(clean_tree())
        assert expanded == 7
        assert truncated == 0
        assert len(root.children) == 2
        paths = sorted(n.path for n in root.walk())
        assert "root[0][1]" in paths

    def test_depth_bound_truncates(self):
        config = AnalysisConfig(max_depth=1)
        root, expanded, truncated = expand_task(clean_tree(), config)
        assert expanded == 3
        # both depth-1 children are splittable but unexpanded
        assert truncated == 2
        assert all(child.truncated for child in root.children)

    def test_node_budget_truncates(self):
        config = AnalysisConfig(max_nodes=3)
        root, expanded, truncated = expand_task(clean_tree(), config)
        assert expanded == 3
        assert truncated >= 1

    def test_failing_splitter_becomes_warning(self):
        def bad():
            raise RuntimeError("boom")

        spec = TaskSpec(name="bad", splitter=bad)
        findings = []
        root, expanded, truncated = expand_task(spec, findings=findings)
        assert truncated == 1
        assert [f.check for f in findings] == ["expansion.splitter_failed"]
        assert findings[0].severity == WARNING

    def test_leaf_only_expand_children_raises(self):
        with pytest.raises(ValueError):
            leaf("l", 0, 4).expand_children()


class TestCoverage:
    def test_clean_tree_has_no_findings(self):
        root, _, _ = expand_task(clean_tree())
        assert check_coverage(root) == []

    def test_write_escape_caught(self):
        # child writes [0, 20) but the parent only declared [0, 16)
        child = leaf("child", 0, 20)
        parent = split("parent", [child], writes={GRID: span(0, 16)})
        root, _, _ = expand_task(parent)
        findings = check_coverage(root)
        assert [f.check for f in findings] == ["coverage.write_escape"]
        assert findings[0].severity == ERROR
        assert findings[0].task == "parent[0]"
        assert findings[0].region.size() == 4

    def test_read_escape_caught(self):
        # child reads the whole source; parent declared nothing on it
        child = leaf("child", 0, 8, reads={SRC: span(0, 64, SRC)})
        parent = split("parent", [child], writes={GRID: span(0, 8)})
        root, _, _ = expand_task(parent)
        findings = check_coverage(root)
        assert [f.check for f in findings] == ["coverage.read_escape"]
        assert findings[0].item == "src"

    def test_read_covered_by_parent_write_is_fine(self):
        # reads within the parent's *accessed* (read ∪ write) region
        child = leaf("child", 0, 8, reads={GRID: span(0, 12)})
        parent = split("parent", [child], writes={GRID: span(0, 16)})
        root, _, _ = expand_task(parent)
        assert check_coverage(root) == []

    def test_sibling_write_overlap_caught(self):
        a = leaf("a", 0, 10)
        b = leaf("b", 8, 16)
        parent = split("parent", [a, b], writes={GRID: span(0, 16)})
        root, _, _ = expand_task(parent)
        findings = check_coverage(root)
        assert [f.check for f in findings] == ["coverage.sibling_write_overlap"]
        assert findings[0].region.size() == 2
        assert "parent[0]" in findings[0].message

    def test_defect_at_depth_two_caught(self):
        # the defect sits below the first split level
        bad = split(
            "bad",
            [leaf("x", 0, 6), leaf("y", 4, 8)],
            writes={GRID: span(0, 8)},
        )
        top = split("top", [bad], writes={GRID: span(0, 8)})
        report = analyze_task(top, AnalysisConfig(lint=False))
        assert {f.check for f in report.errors} == {
            "coverage.sibling_write_overlap",
            "race.write_write",
        }


class TestRaces:
    def test_effective_regions_union_descendants(self):
        root, _, _ = expand_task(clean_tree())
        effective = effective_requirements(root)
        eff_root = effective[id(root)]
        assert eff_root.writes[GRID].same_elements(span(0, 32))
        left = root.children[0]
        assert effective[id(left)].writes[GRID].same_elements(span(0, 16))

    def test_clean_tree_no_races(self):
        root, _, _ = expand_task(clean_tree())
        findings, pairs = check_tree_races(root)
        assert findings == []
        assert pairs == 3  # one pair at the root, one per inner node

    def test_escaped_write_surfaces_as_race(self):
        # declarations look disjoint at level 1, but a grandchild of the
        # right subtree escapes into the left's range: the effective
        # union keeps the escape visible to the sibling check
        left = split("left", [leaf("ll", 0, 10)], writes={GRID: span(0, 10)})
        right = split(
            "right", [leaf("rl", 5, 20)], writes={GRID: span(10, 20)}
        )
        tree = split("root", [left, right], writes={GRID: span(0, 20)})
        root, _, _ = expand_task(tree)
        findings, _ = check_tree_races(root)
        races = [f for f in findings if f.check == "race.write_write"]
        assert len(races) == 1
        assert races[0].severity == ERROR
        assert races[0].region.size() == 5

    def test_read_write_overlap_is_warning(self):
        a = leaf("a", 0, 8, reads={GRID: span(0, 12)})
        b = leaf("b", 8, 16)
        tree = split(
            "root",
            [a, b],
            reads={GRID: span(0, 12)},
            writes={GRID: span(0, 16)},
        )
        root, _, _ = expand_task(tree)
        findings, _ = check_tree_races(root)
        assert [f.check for f in findings] == ["race.read_write"]
        assert findings[0].severity == WARNING
        assert findings[0].region.size() == 4

    def test_disjoint_items_never_race(self):
        a = leaf("a", 0, 8, reads={SRC: span(0, 16, SRC)})
        b = leaf("b", 8, 16, reads={SRC: span(0, 16, SRC)})
        tree = split(
            "root",
            [a, b],
            reads={SRC: span(0, 16, SRC)},
            writes={GRID: span(0, 16)},
        )
        root, _, _ = expand_task(tree)
        findings, _ = check_tree_races(root)
        assert findings == []

    def test_pair_budget_respected(self):
        leaves = [leaf(f"l{k}", 4 * k, 4 * k + 4) for k in range(8)]
        tree = split("root", leaves, writes={GRID: span(0, 32)})
        root, _, _ = expand_task(tree)
        findings, pairs = check_tree_races(root, AnalysisConfig(max_pairs=5))
        assert pairs == 5

    def test_concurrent_roots_checked(self):
        a, _, _ = expand_task(leaf("a", 0, 10))
        b, _, _ = expand_task(leaf("b", 5, 15))
        efforts = [
            effective_requirements(a)[id(a)],
            effective_requirements(b)[id(b)],
        ]
        findings, pairs = check_concurrent_roots(efforts)
        assert pairs == 1
        assert [f.check for f in findings] == ["race.write_write"]


class TestAnalyzeTask:
    def test_clean_tree_report(self):
        report = analyze_task(clean_tree())
        assert report.clean
        assert report.tasks_expanded == 7
        assert report.pairs_checked == 3
        assert report.elapsed > 0

    def test_seeded_defects_all_caught(self):
        """The acceptance trio: overlap, escape, and a race in one tree."""
        a = leaf("a", 0, 10)
        b = leaf("b", 8, 16)  # overlaps a
        c = leaf("c", 16, 40)  # escapes the parent's write region
        tree = split("root", [a, b, c], writes={GRID: span(0, 32)})
        report = analyze_task(tree, AnalysisConfig(lint=False))
        checks = {f.check for f in report.errors}
        assert "coverage.sibling_write_overlap" in checks
        assert "coverage.write_escape" in checks
        assert "race.write_write" in checks

    def test_toggles_disable_checks(self):
        a = leaf("a", 0, 10)
        b = leaf("b", 8, 16)
        tree = split("root", [a, b], writes={GRID: span(0, 16)})
        config = AnalysisConfig(coverage=False, races=False, lint=False)
        report = analyze_task(tree, config)
        assert report.clean
        assert report.pairs_checked == 0
