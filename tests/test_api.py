"""Tests for the user-facing API: access derivation, prec, pfor."""

import pytest

from repro.api.access import (
    box_region,
    expand_box,
    shifted_union,
    stencil_requirements,
)
from repro.api.pfor import pfor, pfor_task
from repro.api.prec import default_granularity, prec
from repro.items.grid import Grid
from repro.regions.box import Box
from repro.runtime.config import RuntimeConfig
from repro.runtime.runtime import AllScaleRuntime
from repro.sim.cluster import Cluster, ClusterSpec


def make_runtime(nodes=2, cores=2, functional=True):
    cluster = Cluster(
        ClusterSpec(num_nodes=nodes, cores_per_node=cores, flops_per_core=1e9)
    )
    return AllScaleRuntime(cluster, RuntimeConfig(functional=functional))


class TestAccessDerivation:
    def setup_method(self):
        self.grid = Grid((10, 10), name="g")

    def test_box_region_clipped(self):
        region = box_region(self.grid, Box.of((8, 8), (15, 15)))
        assert region.size() == 4

    def test_expand_box(self):
        region = expand_box(self.grid, Box.of((2, 2), (4, 4)), 1)
        assert region.same_elements(box_region(self.grid, Box.of((1, 1), (5, 5))))
        # clipping at the border
        region = expand_box(self.grid, Box.of((0, 0), (2, 2)), 1)
        assert region.same_elements(box_region(self.grid, Box.of((0, 0), (3, 3))))
        with pytest.raises(ValueError):
            expand_box(self.grid, Box.of((0, 0), (2, 2)), -1)

    def test_shifted_union_is_exact_stencil_footprint(self):
        offsets = [(0, 0), (0, -1), (0, 1), (-1, 0), (1, 0)]
        box = Box.of((2, 2), (4, 4))
        region = shifted_union(self.grid, box, offsets)
        expected = set()
        for x in range(2, 4):
            for y in range(2, 4):
                for dx, dy in offsets:
                    expected.add((x + dx, y + dy))
        assert set(region.elements()) == expected
        # the cross footprint excludes corners — smaller than the square
        assert region.size() < expand_box(self.grid, box, 1).size()

    def test_shifted_union_rank_check(self):
        with pytest.raises(ValueError):
            shifted_union(self.grid, Box.of((0, 0), (1, 1)), [(0, 0, 0)])

    def test_stencil_requirements(self):
        a, b = Grid((10, 10), name="a"), Grid((10, 10), name="b")
        reads_fn, writes_fn = stencil_requirements(
            a, b, [(0, 0), (1, 0), (-1, 0)]
        )
        box = Box.of((3, 3), (5, 5))
        reads = reads_fn(box)
        writes = writes_fn(box)
        assert set(reads) == {a}
        assert set(writes) == {b}
        assert writes[b].same_elements(box_region(b, box))
        assert reads[a].covers(box_region(a, box))


class TestPrec:
    def test_fibonacci(self):
        runtime = make_runtime()

        def fib_seq(n):
            return n if n < 2 else fib_seq(n - 1) + fib_seq(n - 2)

        fib = prec(
            base_test=lambda n: n < 8,
            base=lambda ctx, n: fib_seq(n),
            split=lambda n: [n - 1, n - 2],
            combine=sum,
            size=lambda n: float(2**n),
        )
        treeture = fib.submit(runtime, 15, granularity=1)
        assert runtime.wait(treeture) == fib_seq(15)
        assert runtime.metrics.counter("proc.splits") > 0

    def test_callable_protocol(self):
        runtime = make_runtime()
        double = prec(
            base_test=lambda n: True,
            base=lambda ctx, n: n * 2,
            split=lambda n: [n],
        )
        assert runtime.wait(double(runtime, 21)) == 42

    def test_default_granularity(self):
        runtime = make_runtime(nodes=2, cores=2)
        g = default_granularity(runtime, 1600.0)
        # 2 nodes × 2 cores × oversubscription(4) = 16 slots
        assert g == pytest.approx(100.0)
        assert default_granularity(runtime, 1.0) == pytest.approx(
            float(runtime.config.min_task_size)
        )


class TestPfor:
    def test_point_kernel_touches_every_point(self):
        runtime = make_runtime(nodes=1)
        grid = Grid((6, 6), name="g")
        runtime.register_item(grid, placement=[grid.full_region])

        def kernel(ctx, coord):
            ctx.fragment(grid).set(coord, coord[0] * 10 + coord[1])

        treeture = pfor(
            runtime,
            (0, 0),
            (6, 6),
            point_kernel=kernel,
            writes=lambda box: {grid: box_region(grid, box)},
            granularity=9,
        )
        runtime.wait(treeture)
        fragment = runtime.process(0).data_manager.fragment(grid)
        assert fragment.get((3, 4)) == 34
        assert fragment.get((5, 5)) == 55

    def test_bulk_body_and_combiner(self):
        runtime = make_runtime(nodes=2)
        treeture = pfor(
            runtime,
            (0,),
            (100,),
            body=lambda ctx, box: box.size(),
            combiner=sum,
            granularity=10,
        )
        assert runtime.wait(treeture) == 100

    def test_requirement_functions_evaluated_per_subrange(self):
        runtime = make_runtime(nodes=2, functional=False)
        grid = Grid((32, 8), name="g")
        runtime.register_item(grid, placement=grid.decompose(2))
        seen_boxes = []

        def writes(box):
            seen_boxes.append(box)
            return {grid: box_region(grid, box)}

        treeture = pfor(
            runtime, (0, 0), (32, 8), body=lambda ctx, box: None,
            writes=writes, granularity=64,
        )
        runtime.wait(treeture)
        # requirements were computed for sub-ranges, not just the root
        assert len(seen_boxes) > 2
        assert runtime.process(0).executed_leaves > 0
        assert runtime.process(1).executed_leaves > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            pfor_task((0, 0), (2, 2))
        with pytest.raises(ValueError):
            pfor_task(
                (0, 0), (2, 2),
                body=lambda ctx, box: None,
                point_kernel=lambda ctx, c: None,
            )
        with pytest.raises(ValueError):
            pfor_task((2, 2), (2, 2), body=lambda ctx, box: None)

    def test_pfor_task_structure(self):
        task = pfor_task(
            (0, 0), (8, 8), body=lambda ctx, box: None, granularity=16
        )
        assert task.splittable
        children = task.splitter()
        assert len(children) == 2
        assert sum(c.size_hint for c in children) == 64
