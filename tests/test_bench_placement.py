"""Tests for the placement tournament's baseline bookkeeping.

These use hand-built panels (the real tournament is exercised by the
``--placement`` CLI and its committed baseline); what is under test here
is the exact-match checking, the semantic planner guarantees, and the
merge-per-mode baseline file handling.
"""

from __future__ import annotations

import dataclasses

from repro.bench.placement import (
    POLICIES,
    TOPOLOGIES,
    PlacementPanel,
    RaceResult,
    check_panel,
    load_baseline,
    panel_section,
    render_placement_leaderboard,
    semantic_problems,
    write_baseline,
)

APPS = ("stencil", "ipic3d", "tpc")


def _panel(mode="smoke"):
    """A tournament where planned wins bytes everywhere, as required."""
    panel = PlacementPanel(mode=mode)
    for app_index, app in enumerate(APPS):
        for topo_index, topo in enumerate(TOPOLOGIES):
            base = 1000.0 * (1 + app_index) * (1 + topo_index)
            for pol_index, policy in enumerate(POLICIES):
                panel.results.append(
                    RaceResult(
                        app=app,
                        topology=topo,
                        policy=policy,
                        elapsed=0.01 * (1 + pol_index),
                        messages=100.0 + 10 * pol_index,
                        # planned (index 0) strictly lowest
                        bytes_moved=base * (1 + pol_index),
                        migrations=float(pol_index),
                        preplaced=2.0 if policy == "planned" else 0.0,
                    )
                )
            panel.plans[f"{app}/{topo}"] = {"processes": 4, "pins": 7}
    panel.wall_seconds = 10.0
    return panel


def _replace_race(panel, app, topo, policy, **changes):
    for index, result in enumerate(panel.results):
        if (result.app, result.topology, result.policy) == (app, topo, policy):
            panel.results[index] = dataclasses.replace(result, **changes)
            return
    raise AssertionError("race not found")


class TestSemanticProblems:
    def test_clean_panel(self):
        assert semantic_problems(_panel()) == []

    def test_planned_not_strictly_fewer_bytes(self):
        panel = _panel()
        rival = panel.race("ipic3d", "deep8", "round-robin")
        _replace_race(
            panel, "ipic3d", "deep8", "planned",
            bytes_moved=rival.bytes_moved,
        )
        problems = semantic_problems(panel)
        assert len(problems) == 1
        assert "ipic3d/deep8" in problems[0]
        assert "not fewer" in problems[0]

    def test_plan_that_preplaced_nothing(self):
        panel = _panel()
        _replace_race(panel, "tpc", "edge4", "planned", preplaced=0.0)
        problems = semantic_problems(panel)
        assert problems == ["tpc/edge4: plan pre-placed no items"]

    def test_missing_planned_race(self):
        panel = _panel()
        panel.results = [
            r
            for r in panel.results
            if (r.app, r.topology, r.policy)
            != ("stencil", "wide16", "planned")
        ]
        problems = semantic_problems(panel)
        assert problems == ["stencil/wide16: planned race missing"]


class TestBaselineRoundtrip:
    def test_write_then_check_is_clean(self, tmp_path):
        panel = _panel()
        path = tmp_path / "baseline.json"
        write_baseline(panel, path)
        assert check_panel(panel, load_baseline(path)) == []

    def test_modes_merge_not_overwrite(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(_panel(mode="smoke"), path)
        write_baseline(_panel(mode="quick"), path)
        baseline = load_baseline(path)
        assert set(baseline["modes"]) == {"smoke", "quick"}
        assert check_panel(_panel(mode="smoke"), baseline) == []

    def test_missing_file_and_missing_mode(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") is None
        problems = check_panel(_panel(), None)
        assert problems and "no baseline" in problems[0]
        path = tmp_path / "baseline.json"
        write_baseline(_panel(mode="quick"), path)
        problems = check_panel(_panel(mode="smoke"), load_baseline(path))
        assert problems == ["baseline has no 'smoke' section"]


class TestCheckPanel:
    def test_detects_changed_metric(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(_panel(), path)
        panel = _panel()
        _replace_race(panel, "stencil", "edge4", "random", messages=999.0)
        problems = check_panel(panel, load_baseline(path))
        assert len(problems) == 1
        assert "stencil/edge4/random messages" in problems[0]

    def test_detects_race_missing_from_baseline(self, tmp_path):
        path = tmp_path / "baseline.json"
        baseline_panel = _panel()
        baseline_panel.results = [
            r for r in baseline_panel.results if r.policy != "random"
        ]
        write_baseline(baseline_panel, path)
        problems = check_panel(_panel(), load_baseline(path))
        assert any("random: not in baseline" in p for p in problems)

    def test_detects_baseline_race_not_run(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(_panel(), path)
        panel = _panel()
        panel.results = [r for r in panel.results if r.app != "tpc"]
        problems = check_panel(panel, load_baseline(path))
        assert any("in baseline but not run" in p for p in problems)
        # the semantic layer flags the dropped planned races too
        assert any("planned race missing" in p for p in problems)

    def test_wall_clock_tolerance(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(_panel(), path)
        panel = _panel()
        panel.wall_seconds = 11.9  # +19%: inside the 20% band
        assert check_panel(panel, load_baseline(path)) == []
        panel.wall_seconds = 12.5  # +25%: regression
        problems = check_panel(panel, load_baseline(path))
        assert problems == [
            "wall clock regressed: 12.5s vs baseline 10.0s (>20% over)"
        ]


class TestRendering:
    def test_leaderboard_lists_every_race_best_first(self):
        panel = _panel()
        text = render_placement_leaderboard(panel)
        for app in APPS:
            for topo in TOPOLOGIES:
                assert f"{app} @ {topo}" in text
        # planned has the lowest synthetic wall clock → first row everywhere
        for block in text.split("\n\n"):
            lines = [line for line in block.splitlines() if line]
            if lines and "@" in lines[0]:
                assert lines[2].split()[0] == "planned"

    def test_section_shape(self):
        section = panel_section(_panel())
        assert len(section["races"]) == len(APPS) * len(TOPOLOGIES) * len(
            POLICIES
        )
        assert section["topologies"]["deep8"] == {"nodes": 8, "radix": 2}
        assert section["wall_seconds"] == 10.0
