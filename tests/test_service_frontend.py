"""Socket frontend: protocol, concurrent clients, drain and shutdown.

All tests drive a real TCP server on an ephemeral loopback port via
``asyncio.run`` (no asyncio test plugin needed).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service import (
    JobSpec,
    ServiceConfig,
    ServiceCore,
    TenantConfig,
)
from repro.service.frontend import (
    ServiceClient,
    ServiceError,
    ServiceFrontend,
)

COMPUTE = {"flops": 4.8e7, "tasks": 4}


def small_core() -> ServiceCore:
    return ServiceCore(
        ServiceConfig(
            nodes=2,
            cores_per_node=2,
            tenants=(
                TenantConfig("alpha", weight=2.0),
                TenantConfig("beta", weight=1.0, max_concurrent_jobs=1),
            ),
            max_running_jobs=2,
        )
    )


def run_with_frontend(scenario):
    """Start a frontend, run the async scenario against it, stop cleanly."""

    async def _main():
        core = small_core()
        frontend = ServiceFrontend(core)
        host, port = await frontend.start()
        try:
            return await scenario(core, host, port)
        finally:
            await frontend.stop()

    return asyncio.run(_main())


def test_submit_result_roundtrip():
    async def scenario(core, host, port):
        async with ServiceClient(host, port) as client:
            job = await client.submit(
                JobSpec(tenant="alpha", kind="grid_sum", params={"n": 8})
            )
            assert job["state"] == "queued"
            assert job["verdict"]["accepted"]
            result = await client.result(job["job_id"], wait=True)
            assert result["state"] == "completed"
            expected = float(
                sum((i + j) ** 2 for i in range(8) for j in range(8))
            )
            assert result["result"] == pytest.approx(expected)
            status = await client.status(job["job_id"])
            assert "result" not in status
        return core

    core = run_with_frontend(scenario)
    assert core.jobs["job-00001"].state == "completed"


def test_rejection_is_structured_response_not_error():
    async def scenario(core, host, port):
        async with ServiceClient(host, port) as client:
            job = await client.submit(
                JobSpec(tenant="alpha", kind="bad_overlap")
            )
            assert job["state"] == "rejected"
            assert job["verdict"]["reason"] == "analysis"
            assert job["verdict"]["counts"]["error"] > 0
            # result is immediately available for terminal jobs
            result = await client.result(job["job_id"], wait=True)
            assert result["node_seconds"] == 0.0

    run_with_frontend(scenario)


def test_concurrent_clients_share_one_cluster():
    async def scenario(core, host, port):
        results = []

        async def tenant_client(tenant, count):
            async with ServiceClient(host, port) as client:
                jobs = []
                for _ in range(count):
                    jobs.append(
                        await client.submit(
                            JobSpec(
                                tenant=tenant,
                                kind="compute",
                                params=COMPUTE,
                            )
                        )
                    )
                    await asyncio.sleep(0)
                for job in jobs:
                    results.append(
                        await client.result(job["job_id"], wait=True)
                    )

        await asyncio.gather(
            tenant_client("alpha", 5), tenant_client("beta", 5)
        )
        return results

    results = run_with_frontend(scenario)
    assert len(results) == 10
    assert all(job["state"] == "completed" for job in results)
    # both tenants' jobs interleaved on the same simulated clock
    finish_times = sorted(job["finished_at"] for job in results)
    assert finish_times[0] < finish_times[-1]


def test_stats_kinds_ping_ops():
    async def scenario(core, host, port):
        async with ServiceClient(host, port) as client:
            assert "compute" in await client.kinds()
            assert await client.ping() == 0.0
            await client.submit(
                JobSpec(tenant="alpha", kind="compute", params=COMPUTE)
            )
            stats = await client.stats()
            assert stats["jobs"] == 1

    run_with_frontend(scenario)


def test_unknown_job_and_bad_requests():
    async def scenario(core, host, port):
        async with ServiceClient(host, port) as client:
            with pytest.raises(ServiceError, match="unknown job"):
                await client.status("job-99999")
            with pytest.raises(ServiceError, match="unknown op"):
                await client.request("frobnicate")
        # raw garbage gets a structured error, not a dropped connection
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b"this is not json\n")
        await writer.drain()
        response = json.loads(await reader.readline())
        assert response["ok"] is False and "bad request" in response["error"]
        writer.close()
        await writer.wait_closed()

    run_with_frontend(scenario)


def test_drain_refuses_but_finishes_queued():
    async def scenario(core, host, port):
        async with ServiceClient(host, port) as client:
            first = await client.submit(
                JobSpec(tenant="alpha", kind="compute", params=COMPUTE)
            )
            await client.drain()
            second = await client.submit(
                JobSpec(tenant="alpha", kind="compute", params=COMPUTE)
            )
            assert second["state"] == "rejected"
            assert second["verdict"]["reason"] == "draining"
            result = await client.result(first["job_id"], wait=True)
            assert result["state"] == "completed"

    run_with_frontend(scenario)


def test_shutdown_stops_server_after_drain():
    async def _main():
        core = small_core()
        frontend = ServiceFrontend(core)
        host, port = await frontend.start()
        async with ServiceClient(host, port) as client:
            job = await client.submit(
                JobSpec(tenant="alpha", kind="compute", params=COMPUTE)
            )
            response = await client.shutdown()
            assert response["bye"]
        # serve() returns once the already-queued job has finished
        await asyncio.wait_for(frontend.serve(), timeout=30)
        assert core.jobs[job["job_id"]].terminal
        assert core.idle

    asyncio.run(_main())
