"""Node failure and checkpoint-based recovery (paper §2.4/§6 outlook).

The model's data preservation property makes partial restart safe at task
barriers: a checkpoint captures every item's contents and distribution;
after a node crash, only the lost regions roll back to checkpoint state
while survivors keep theirs.
"""

import numpy as np
import pytest

from repro.items.grid import Grid
from repro.regions.box import Box
from repro.runtime.config import RuntimeConfig
from repro.runtime.resilience import ResilienceManager
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.tasks import TaskSpec
from repro.sim.cluster import Cluster, ClusterSpec


def make_runtime(nodes=4):
    cluster = Cluster(
        ClusterSpec(num_nodes=nodes, cores_per_node=2, flops_per_core=1e9)
    )
    return AllScaleRuntime(cluster, RuntimeConfig(functional=True))


def fill(runtime, grid, region, value):
    def body(ctx):
        for box in region.boxes:
            ctx.fragment(grid).scatter(box, np.full(box.widths(), value))

    runtime.wait(
        runtime.submit(
            TaskSpec(
                name=f"fill{value}",
                writes={grid: region},
                body=body,
                size_hint=region.size(),
            )
        )
    )


def read_all(runtime, grid):
    def body(ctx):
        return ctx.fragment(grid).gather(Box.full(grid.shape)).copy()

    return runtime.wait(
        runtime.submit(
            TaskSpec(
                name="readback",
                reads={grid: grid.full_region},
                body=body,
                size_hint=1,
            )
        )
    )


class TestFailProcess:
    def test_failure_drops_data_and_index_entries(self):
        runtime = make_runtime()
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid, placement=grid.decompose(4))
        lost_region = runtime.process(2).data_manager.owned_region(grid)
        runtime.fail_process(2)
        assert runtime.process(2).failed
        assert runtime.index.owned_region(grid, 2).is_empty()
        coverage = grid.empty_region()
        for pid in runtime.alive_processes():
            coverage = coverage.union(
                runtime.process(pid).data_manager.present_region(grid)
            )
        assert coverage.intersect(lost_region).is_empty()

    def test_enqueue_to_failed_process_rejected(self):
        runtime = make_runtime()
        runtime.fail_process(1)
        from repro.runtime.tasks import Treeture

        with pytest.raises(RuntimeError, match="failed process"):
            runtime.process(1).enqueue(
                TaskSpec(name="t"), Treeture(runtime.engine, "t"), "leaf"
            )

    def test_failure_requires_barrier(self):
        runtime = make_runtime()
        runtime.process(1).queue.append(("fake", None, "leaf"))
        with pytest.raises(RuntimeError, match="barrier"):
            runtime.fail_process(1)

    def test_scheduler_routes_around_failed_nodes(self):
        runtime = make_runtime()
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid)
        runtime.fail_process(3)
        # the home hint for this region points at the failed process 3
        homes = runtime.home_map(grid)
        task = TaskSpec(
            name="t", writes={grid: homes[3]}, flops=1e3,
            size_hint=homes[3].size(), body=lambda ctx: None,
        )
        runtime.wait(runtime.submit(task, origin=0))
        assert runtime.process(3).executed_leaves == 0
        assert sum(p.executed_leaves for p in runtime.processes) == 1


class TestRecovery:
    def test_lost_regions_recover_from_checkpoint(self):
        runtime = make_runtime()
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid, placement=grid.decompose(4))
        fill(runtime, grid, grid.full_region, 1.0)

        manager = ResilienceManager(runtime)
        snapshot_future = runtime.engine.spawn(manager.checkpoint())
        runtime.run()
        snapshot = snapshot_future.value

        # survivors advance past the checkpoint on their own region
        survivor_region = runtime.process(0).data_manager.owned_region(grid)
        fill(runtime, grid, survivor_region, 2.0)

        victim = 2
        lost_region = runtime.process(victim).data_manager.owned_region(grid)
        runtime.fail_process(victim)
        done = runtime.engine.spawn(manager.recover_lost_data(snapshot))
        runtime.run()
        assert done.done
        runtime.check_ownership_invariants()

        values = read_all(runtime, grid)
        # survivor kept its post-checkpoint state ...
        for coord in survivor_region.elements():
            assert values[coord] == 2.0
        # ... the lost region rolled back to checkpoint values
        for coord in lost_region.elements():
            assert values[coord] == 1.0
        # nothing in elems(d) is missing
        coverage = grid.empty_region()
        for pid in runtime.alive_processes():
            coverage = coverage.union(
                runtime.process(pid).data_manager.owned_region(grid)
            )
        assert coverage.same_elements(grid.full_region)

    def test_recovery_spreads_over_survivors(self):
        runtime = make_runtime()
        grid = Grid((16, 8), name="g")
        runtime.register_item(grid, placement=grid.decompose(4))
        fill(runtime, grid, grid.full_region, 5.0)
        manager = ResilienceManager(runtime)
        snapshot_future = runtime.engine.spawn(manager.checkpoint())
        runtime.run()
        runtime.fail_process(1)
        done = runtime.engine.spawn(
            manager.recover_lost_data(snapshot_future.value)
        )
        runtime.run()
        assert done.done
        assert runtime.metrics.counter("resilience.recoveries") == 1
        # work continues across the whole grid afterwards
        fill(runtime, grid, grid.full_region, 6.0)
        assert np.all(read_all(runtime, grid) == 6.0)

    def test_recovery_noop_when_nothing_lost(self):
        runtime = make_runtime()
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid, placement=grid.decompose(4))
        fill(runtime, grid, grid.full_region, 1.0)
        manager = ResilienceManager(runtime)
        snapshot_future = runtime.engine.spawn(manager.checkpoint())
        runtime.run()
        before = runtime.metrics.counter("dm.imports")
        done = runtime.engine.spawn(
            manager.recover_lost_data(snapshot_future.value)
        )
        runtime.run()
        assert done.done
        assert runtime.metrics.counter("dm.imports") == before
