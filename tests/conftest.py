"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.regions.box import Box, BoxSetRegion
from repro.regions.explicit import ExplicitSetRegion
from repro.regions.interval import IntervalRegion
from repro.regions.tree import TreeGeometry, TreeRegion
from repro.regions.blocked_tree import BlockedTreeGeometry, BlockedTreeRegion


# -- hypothesis strategies for regions --------------------------------------------


def interval_regions(max_coord: int = 24, max_intervals: int = 4):
    return st.lists(
        st.tuples(
            st.integers(0, max_coord), st.integers(0, max_coord)
        ),
        max_size=max_intervals,
    ).map(IntervalRegion)


def boxes_2d(max_coord: int = 8):
    return st.tuples(
        st.integers(0, max_coord),
        st.integers(0, max_coord),
        st.integers(0, max_coord),
        st.integers(0, max_coord),
    ).map(lambda t: Box.of((t[0], t[1]), (t[2], t[3])))


def box_set_regions(max_coord: int = 8, max_boxes: int = 3):
    return st.lists(boxes_2d(max_coord), max_size=max_boxes).map(
        lambda bs: BoxSetRegion(bs, dims=2)
    )


TREE_GEOMETRY = TreeGeometry(5)


def tree_regions(geometry: TreeGeometry = TREE_GEOMETRY):
    return st.lists(
        st.integers(1, geometry.num_nodes), max_size=8
    ).map(lambda nodes: TreeRegion.of_nodes(geometry, nodes))


BLOCKED_GEOMETRY = BlockedTreeGeometry(depth=6, root_height=3)


def blocked_tree_regions(geometry: BlockedTreeGeometry = BLOCKED_GEOMETRY):
    return st.integers(0, (1 << geometry.mask_length) - 1).map(
        lambda mask: BlockedTreeRegion(geometry, mask)
    )


def explicit_regions(max_coord: int = 12, max_elements: int = 8):
    return st.lists(
        st.integers(0, max_coord), max_size=max_elements
    ).map(ExplicitSetRegion)


def as_explicit(region) -> ExplicitSetRegion:
    return ExplicitSetRegion(region.elements())


@pytest.fixture
def rng():
    return random.Random(1234)


# -- runtime invariant sentinel (REPRO_SENTINEL=1) ---------------------------------


@pytest.fixture(autouse=True)
def _runtime_sentinel(request):
    """With ``REPRO_SENTINEL=1``, validate every runtime the test creates.

    A strict :class:`~repro.runtime.sentinel.RuntimeSentinel` auto-attaches
    to each :class:`AllScaleRuntime`, checking the §2.5 invariants online;
    teardown runs one final full scan and fails the test on any violation.
    Tests marked ``sentinel_injection`` corrupt runtime state on purpose
    and manage their own (non-strict) sentinels, so auto-attachment is
    suppressed for them.
    """
    from repro.runtime import sentinel as sentinel_mod

    if sentinel_mod.global_config() is None:
        yield
        return
    if request.node.get_closest_marker("sentinel_injection"):
        sentinel_mod.disable_globally()
        try:
            yield
        finally:
            sentinel_mod.reset_global()
        return
    sentinel_mod.enable_globally(sentinel_mod.SentinelConfig(strict=True))
    try:
        yield
    finally:
        created = sentinel_mod.drain_created()
        sentinel_mod.reset_global()
    for sentinel in created:
        sentinel.verify_all()
        assert not sentinel.violations, "\n".join(sentinel.report_lines())
