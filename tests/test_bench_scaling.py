"""Schema and check-logic tests for the pinned weak-scaling baseline."""

from __future__ import annotations

import json
import pathlib

from repro.bench.harness import ScalingPoint, ScalingSeries
from repro.bench.scaling import (
    BASELINE_PATH,
    SCALING_SCHEMA_VERSION,
    ScalingPanel,
    check_panel,
    panel_mode,
    panel_section,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def _panel(allscale: float = 10.0, wall: float = 1.0) -> ScalingPanel:
    series = {
        app: ScalingSeries(
            app=app,
            metric="u/s",
            points=[
                ScalingPoint(nodes=1, allscale=allscale, mpi=12.0),
                ScalingPoint(nodes=4, allscale=allscale * 4, mpi=48.0),
            ],
        )
        for app in ("stencil", "ipic3d", "tpc")
    }
    return ScalingPanel(
        mode="smoke",
        node_counts=(1, 4),
        series=series,
        wall_seconds={app: wall for app in series},
    )


def _baseline(panel: ScalingPanel) -> dict:
    return {
        "schema": SCALING_SCHEMA_VERSION,
        "modes": {panel.mode: panel_section(panel)},
    }


class TestCheckPanel:
    def test_identical_run_passes(self) -> None:
        panel = _panel()
        assert check_panel(panel, _baseline(panel)) == []

    def test_missing_baseline_reported(self) -> None:
        assert check_panel(_panel(), None)

    def test_missing_mode_section_reported(self) -> None:
        baseline = _baseline(_panel())
        baseline["modes"] = {}
        problems = check_panel(_panel(), baseline)
        assert any("no 'smoke' section" in p for p in problems)

    def test_changed_output_detected(self) -> None:
        baseline = _baseline(_panel(allscale=10.0))
        problems = check_panel(_panel(allscale=10.0001), baseline)
        assert any("output changed" in p for p in problems)

    def test_tiny_drift_is_still_a_failure(self) -> None:
        # determinism means exact equality — no epsilon
        baseline = _baseline(_panel(allscale=10.0))
        problems = check_panel(
            _panel(allscale=10.0 + 1e-9), baseline
        )
        assert any("output changed" in p for p in problems)

    def test_wall_clock_regression_detected(self) -> None:
        baseline = _baseline(_panel(wall=1.0))
        problems = check_panel(_panel(wall=1.5), baseline)
        assert any("wall clock regressed" in p for p in problems)

    def test_wall_clock_within_tolerance_passes(self) -> None:
        baseline = _baseline(_panel(wall=1.0))
        assert check_panel(_panel(wall=1.1), baseline) == []


class TestPanelMode:
    def test_modes(self) -> None:
        assert panel_mode(False, False) == "full"
        assert panel_mode(True, False) == "quick"
        assert panel_mode(False, True) == "smoke"
        assert panel_mode(True, True) == "smoke"


class TestCommittedBaseline:
    """The committed artifact itself: shape, coverage, and the headline."""

    def _load(self) -> dict:
        assert BASELINE_PATH.exists(), "BENCH_scaling_baseline.json missing"
        return json.loads(BASELINE_PATH.read_text())

    def test_location_and_schema(self) -> None:
        assert BASELINE_PATH == REPO_ROOT / "BENCH_scaling_baseline.json"
        assert self._load()["schema"] == SCALING_SCHEMA_VERSION

    def test_full_sweep_covers_the_paper_axis(self) -> None:
        section = self._load()["modes"]["full"]
        assert section["node_counts"] == [1, 2, 4, 8, 16, 32, 64]
        for app in ("stencil", "ipic3d", "tpc"):
            points = section["apps"][app]["points"]
            assert [p["nodes"] for p in points] == [1, 2, 4, 8, 16, 32, 64]
            for point in points:
                assert point["allscale"] > 0.0
                assert point["mpi"] > 0.0

    def test_quick_section_records_speedup(self) -> None:
        section = self._load()["modes"]["quick"]
        assert section["node_counts"] == [1, 4, 16]
        assert section["pr5_seconds"] == 86.4
        # the flat-core refactor's acceptance bar
        assert section["speedup_vs_pr5"] >= 3.0
