"""Unit tests for flexible tree regions (Fig. 4b) and their geometry."""

import pytest

from repro.regions.base import RegionMismatchError
from repro.regions.tree import TreeGeometry, TreeRegion


class TestTreeGeometry:
    def test_node_count(self):
        assert TreeGeometry(1).num_nodes == 1
        assert TreeGeometry(4).num_nodes == 15

    def test_levels(self):
        g = TreeGeometry(4)
        assert g.level_of(1) == 1
        assert g.level_of(2) == 2
        assert g.level_of(15) == 4

    def test_parent_children(self):
        g = TreeGeometry(4)
        assert g.parent(1) is None
        assert g.parent(7) == 3
        assert g.children(3) == (6, 7)
        assert g.children(8) == ()  # leaf

    def test_subtree_size(self):
        g = TreeGeometry(4)
        assert g.subtree_size(1) == 15
        assert g.subtree_size(2) == 7
        assert g.subtree_size(8) == 1

    def test_subtree_nodes(self):
        g = TreeGeometry(3)
        assert set(g.subtree_nodes(2)) == {2, 4, 5}

    def test_leaves(self):
        g = TreeGeometry(3)
        assert list(g.leaves()) == [4, 5, 6, 7]

    def test_bounds_checked(self):
        g = TreeGeometry(3)
        with pytest.raises(ValueError):
            g.check_node(0)
        with pytest.raises(ValueError):
            g.check_node(8)

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            TreeGeometry(0)


class TestTreeRegion:
    def setup_method(self):
        self.g = TreeGeometry(4)

    def test_empty_and_full(self):
        assert TreeRegion.empty(self.g).is_empty()
        full = TreeRegion.full(self.g)
        assert full.size() == 15
        assert set(full.elements()) == set(range(1, 16))

    def test_example_2_1_tree(self):
        # the paper's balanced binary tree of height 4 with 15 nodes
        assert TreeRegion.full(TreeGeometry(4)).size() == 15

    def test_of_subtrees_include_exclude(self):
        # Fig. 4b style: include subtree of 2, carve out subtree of 4
        region = TreeRegion.of_subtrees(self.g, includes=[2], excludes=[4])
        expected = set(self.g.subtree_nodes(2)) - set(self.g.subtree_nodes(4))
        assert set(region.elements()) == expected

    def test_exclude_wins_on_same_node(self):
        region = TreeRegion.of_subtrees(self.g, includes=[2], excludes=[2])
        assert region.is_empty()

    def test_of_nodes_single(self):
        region = TreeRegion.of_nodes(self.g, [1])
        assert set(region.elements()) == {1}

    def test_of_nodes_arbitrary(self):
        nodes = {1, 5, 9, 14}
        region = TreeRegion.of_nodes(self.g, nodes)
        assert set(region.elements()) == nodes

    def test_canonical_equality(self):
        # whole subtree of 2 expressed two ways
        a = TreeRegion.of_subtrees(self.g, [2])
        b = TreeRegion.of_nodes(self.g, self.g.subtree_nodes(2))
        assert a == b
        assert hash(a) == hash(b)

    def test_include_exclude_views(self):
        region = TreeRegion.of_subtrees(self.g, includes=[2], excludes=[5])
        assert region.include_roots() == {2}
        assert region.exclude_roots() == {5}

    def test_representation_size_is_small(self):
        # "at most three nodes to characterize the regions" (Fig. 4b text)
        region = TreeRegion.of_subtrees(self.g, includes=[1], excludes=[5])
        assert region.representation_size() <= 3

    def test_algebra(self):
        a = TreeRegion.of_subtrees(self.g, [2])
        b = TreeRegion.of_subtrees(self.g, [5])
        assert set((a - b).elements()) == set(self.g.subtree_nodes(2)) - set(
            self.g.subtree_nodes(5)
        )
        assert (a & b) == b  # 5 is inside subtree of 2
        assert (a | b) == a

    def test_contains(self):
        region = TreeRegion.of_subtrees(self.g, [3])
        assert region.contains(6)
        assert region.contains(13)
        assert not region.contains(2)
        assert not region.contains(99)
        assert not region.contains("x")

    def test_geometry_mismatch_rejected(self):
        other = TreeRegion.full(TreeGeometry(3))
        with pytest.raises(RegionMismatchError):
            TreeRegion.full(self.g).union(other)

    def test_size_matches_enumeration(self):
        region = TreeRegion.of_subtrees(self.g, includes=[1], excludes=[4, 6])
        assert region.size() == len(set(region.elements()))
