"""Service bench panel, committed trace/baseline artifacts, and the CLI."""

from __future__ import annotations

import json
import pathlib

from repro.bench.service import (
    BASELINE_PATH,
    SERVICE_SCHEMA_VERSION,
    SHARE_TOLERANCE,
    SMOKE_TRACE_PATH,
    ServicePanel,
    check_panel,
    load_baseline,
    semantic_problems,
    service_panel,
    write_baseline,
)
from repro.service.__main__ import main as service_main
from repro.service.trace import (
    DEMO_HORIZON_DISPATCHES,
    Trace,
    demo_trace,
    replay,
    smoke_trace,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


# -- committed artifacts -----------------------------------------------------------


def test_committed_trace_matches_builder():
    """The committed trace file is exactly what smoke_trace() produces."""
    assert SMOKE_TRACE_PATH.exists(), "traces/multi_tenant_smoke.json missing"
    committed = Trace.load(str(SMOKE_TRACE_PATH))
    assert committed.to_dict() == smoke_trace().to_dict()


def test_committed_baseline_matches_fresh_run():
    """A fresh panel reproduces the committed baseline bit for bit."""
    panel = service_panel()
    problems = check_panel(panel, load_baseline())
    assert problems == [], "\n".join(problems)


def test_baseline_schema_shape():
    baseline = load_baseline()
    assert baseline is not None and baseline["schema"] == (
        SERVICE_SCHEMA_VERSION
    )
    pins = baseline["service"]["pins"]
    assert pins["smoke"]["false_accepts"] == 0
    assert pins["smoke"]["rejected_by_reason"] == {
        "analysis": 3,
        "quota": 3,
    }
    assert set(pins["contended"]["contended"]["tenants"]) == {
        "alpha",
        "beta",
        "gamma",
    }


# -- check logic -------------------------------------------------------------------


def _panel() -> ServicePanel:
    return service_panel()


def test_check_detects_drifted_pin(tmp_path):
    panel = _panel()
    path = tmp_path / "baseline.json"
    write_baseline(panel, path)
    baseline = json.loads(path.read_text())
    baseline["service"]["pins"]["smoke"]["fairness_index"] = 0.5
    problems = check_panel(panel, baseline)
    assert any("fairness_index" in problem for problem in problems)


def test_check_detects_wall_regression(tmp_path):
    panel = _panel()
    path = tmp_path / "baseline.json"
    write_baseline(panel, path)
    baseline = json.loads(path.read_text())
    baseline["service"]["wall_seconds"] = 1e-6
    panel.wall_seconds = 10.0
    problems = check_panel(panel, baseline)
    assert any("wall clock" in problem for problem in problems)


def test_check_rejects_schema_mismatch():
    panel = _panel()
    problems = check_panel(panel, {"schema": 999})
    assert any("schema" in problem for problem in problems)


def test_semantic_problems_flag_false_accepts():
    panel = _panel()
    assert semantic_problems(panel) == []
    panel.smoke["false_accepts"] = 2
    assert any("racy" in p for p in semantic_problems(panel))


# -- the acceptance demo -----------------------------------------------------------


def test_demo_meets_acceptance_criteria():
    """>= 3 tenants, >= 20 concurrent jobs, every job terminal with a
    structured verdict, shares within 10% of weights when contended."""
    trace = demo_trace()
    tenants = {event.spec.tenant for event in trace.events}
    assert len(tenants) >= 3
    at_zero = sum(1 for event in trace.events if event.at == 0.0)
    assert at_zero >= 20
    report = replay(trace, horizon_dispatches=DEMO_HORIZON_DISPATCHES)
    assert report["false_accepts"] == 0
    terminal = sum(
        row["completed"] + row["rejected"]
        for row in report["tenants"].values()
    )
    assert terminal == report["jobs"]
    for share in report["contended"]["tenants"].values():
        observed, configured = (
            share["observed_share"],
            share["configured_share"],
        )
        assert abs(observed - configured) / configured <= SHARE_TOLERANCE


# -- the CLI -----------------------------------------------------------------------


def test_cli_write_trace_and_replay(tmp_path, capsys):
    path = tmp_path / "trace.json"
    assert service_main(["write-trace", str(path)]) == 0
    capsys.readouterr()
    assert service_main(["replay", str(path), "--horizon", "10"]) == 0
    out = capsys.readouterr().out
    report = json.loads(out[out.index("{"):])
    assert report["false_accepts"] == 0
    assert report["contended"]["dispatches"] >= 10


def test_cli_smoke_over_socket(capsys):
    code = service_main(["smoke", "--trace", str(SMOKE_TRACE_PATH)])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "smoke ok" in out


def test_cli_demo(capsys):
    assert service_main(["demo"]) == 0
    assert "demo ok" in capsys.readouterr().out


def test_bench_cli_service_check():
    from repro.bench.__main__ import main as bench_main

    assert bench_main(["--service", "--check"]) == 0


def test_committed_baseline_fresh(tmp_path):
    """write_baseline output equals the committed file (regen safety)."""
    panel = _panel()
    path = tmp_path / "baseline.json"
    write_baseline(panel, path)
    fresh = json.loads(path.read_text())
    committed = json.loads(BASELINE_PATH.read_text())
    fresh["service"]["wall_seconds"] = committed["service"]["wall_seconds"]
    assert fresh == committed
