"""Unit tests for lock tables, task specs, treetures, and policies."""

import pytest

from repro.items.grid import Grid
from repro.runtime.config import RuntimeConfig
from repro.runtime.locks import LockTable
from repro.runtime.policies import (
    DataAwarePolicy,
    PlacementContext,
    RandomPolicy,
    RoundRobinPolicy,
)
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.tasks import TaskSpec, Treeture, constant_task
from repro.sim.cluster import Cluster, ClusterSpec
from repro.sim.engine import SimEngine


class TestLockTable:
    def setup_method(self):
        self.engine = SimEngine()
        self.table = LockTable(self.engine)
        self.grid = Grid((10, 10), name="g")
        self.a = self.grid.box((0, 0), (5, 10))
        self.b = self.grid.box((5, 0), (10, 10))
        self.mid = self.grid.box((3, 0), (7, 10))

    def test_readers_share(self):
        assert self.table.try_acquire("t1", {self.grid: self.a}, {})
        assert self.table.try_acquire("t2", {self.grid: self.a}, {})
        assert self.table.active_holds == 2

    def test_writer_excludes_overlapping_writer(self):
        assert self.table.try_acquire("t1", {}, {self.grid: self.a})
        assert not self.table.try_acquire("t2", {}, {self.grid: self.mid})
        assert self.table.try_acquire("t3", {}, {self.grid: self.b})

    def test_writer_excludes_overlapping_reader(self):
        assert self.table.try_acquire("t1", {self.grid: self.a}, {})
        assert not self.table.try_acquire("t2", {}, {self.grid: self.mid})

    def test_reader_excluded_by_writer(self):
        assert self.table.try_acquire("t1", {}, {self.grid: self.a})
        assert not self.table.try_acquire("t2", {self.grid: self.mid}, {})
        assert self.table.try_acquire("t3", {self.grid: self.b}, {})

    def test_own_read_write_overlap_allowed(self):
        # a task reading and writing the same region holds one write lock
        assert self.table.try_acquire(
            "t1", {self.grid: self.mid}, {self.grid: self.mid}
        )
        assert self.table.active_holds == 1

    def test_release_wakes_waiters(self):
        self.table.try_acquire("t1", {}, {self.grid: self.a})
        waiter = self.table.wait_for_change()
        assert not waiter.done
        self.table.release("t1")
        assert waiter.done

    def test_reacquire_by_same_owner_is_not_a_conflict(self):
        # regression: an owner's own holds used to count as conflicting,
        # so re-acquiring (e.g. after a requirement restage kept a hold
        # alive) would self-deadlock
        assert self.table.try_acquire("t1", {}, {self.grid: self.a})
        assert not self.table.conflicts({}, {self.grid: self.a}, owner="t1")
        assert self.table.conflicts({}, {self.grid: self.a}, owner="t2")
        assert self.table.try_acquire("t1", {self.grid: self.mid}, {})
        assert self.table.active_holds == 2

    def test_reacquire_still_blocked_by_foreign_overlap(self):
        assert self.table.try_acquire("t1", {}, {self.grid: self.a})
        assert not self.table.try_acquire("t2", {}, {self.grid: self.mid})
        assert self.table.try_acquire("t2", {}, {self.grid: self.b})

    def test_release_unknown_owner_is_noop(self):
        self.table.release("ghost")
        assert self.table.active_holds == 0

    def test_query_helpers(self):
        self.table.try_acquire("t1", {self.grid: self.a}, {self.grid: self.b})
        assert self.table.any_locked(self.grid, self.a)
        assert not self.table.write_locked(self.grid, self.a)
        assert self.table.write_locked(self.grid, self.b)


class TestTaskSpec:
    def test_defaults_and_validation(self):
        task = TaskSpec(name="t")
        assert not task.splittable
        assert task.accessed_items() == frozenset()
        with pytest.raises(ValueError):
            TaskSpec(name="bad", flops=-1)
        with pytest.raises(ValueError):
            TaskSpec(name="bad", size_hint=0)

    def test_region_accessors(self):
        grid = Grid((4, 4))
        region = grid.box((0, 0), (2, 4))
        task = TaskSpec(name="t", writes={grid: region})
        assert task.write_region(grid).same_elements(region)
        assert task.read_region(grid).is_empty()
        assert task.accessed_region(grid).same_elements(region)

    def test_constant_task(self):
        task = constant_task(99)
        assert task.body(None) == 99


class TestTreeture:
    def test_value_lifecycle(self):
        engine = SimEngine()
        treeture = Treeture(engine, "t")
        assert not treeture.done
        with pytest.raises(RuntimeError):
            _ = treeture.value
        seen = []
        treeture.then(seen.append)
        treeture.complete(7)
        assert treeture.done and treeture.value == 7
        assert seen == [7]


class TestPolicies:
    def make_runtime(self, nodes=4):
        cluster = Cluster(ClusterSpec(num_nodes=nodes, cores_per_node=2))
        return AllScaleRuntime(cluster, RuntimeConfig(functional=False))

    def test_round_robin_cycles(self):
        runtime = self.make_runtime()
        policy = RoundRobinPolicy()
        ctx = PlacementContext(runtime, origin=0)
        task = TaskSpec(name="t")
        targets = [policy.pick_target(task, ctx) for _ in range(8)]
        assert targets == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_random_policy_in_range_and_seeded(self):
        runtime = self.make_runtime()
        task = TaskSpec(name="t")
        ctx = PlacementContext(runtime, origin=0)
        a = [RandomPolicy(7).pick_target(task, ctx) for _ in range(10)]
        b = [RandomPolicy(7).pick_target(task, ctx) for _ in range(10)]
        assert a == b
        assert all(0 <= t < 4 for t in a)

    def test_data_aware_follows_ownership(self):
        runtime = self.make_runtime()
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid)
        region = grid.box((0, 0), (4, 8))
        task = TaskSpec(name="t", writes={grid: region})
        ctx = PlacementContext(
            runtime, origin=0, lookup={grid: [(region, 2)]}
        )
        assert DataAwarePolicy().pick_target(task, ctx) == 2

    def test_data_aware_home_hint_for_untouched_data(self):
        runtime = self.make_runtime()
        grid = Grid((8, 8), name="g")
        runtime.register_item(grid)
        homes = runtime.home_map(grid)
        task = TaskSpec(name="t", writes={grid: homes[3]})
        ctx = PlacementContext(runtime, origin=0, lookup={})
        assert DataAwarePolicy().pick_target(task, ctx) == 3

    def test_data_aware_falls_back_to_origin(self):
        runtime = self.make_runtime()
        task = TaskSpec(name="t")
        ctx = PlacementContext(runtime, origin=1, lookup={})
        assert DataAwarePolicy().pick_target(task, ctx) == 1

    def test_variant_selection_by_granularity(self):
        runtime = self.make_runtime()
        policy = DataAwarePolicy()
        leafish = TaskSpec(name="l", size_hint=4, granularity=8,
                           splitter=lambda: [])
        biggish = TaskSpec(name="b", size_hint=16, granularity=8,
                           splitter=lambda: [])
        unsplittable = TaskSpec(name="u", size_hint=1e9)
        assert policy.pick_variant(leafish, runtime) == "leaf"
        assert policy.pick_variant(biggish, runtime) == "split"
        assert policy.pick_variant(unsplittable, runtime) == "leaf"
