#!/usr/bin/env python
"""Load balancing through data migration — recovery from a bad distribution.

"Inter-node load balancing is achieved through actively managing the
distribution of data" (paper §3.2): because Algorithm 2 sends tasks to
the data, *moving data moves load*.  This example starts a 1-D diffusion
field in the worst possible distribution — everything owned by node 0, as
happens when a sequential loader ran first — and sweeps it repeatedly.

Phase 1 sweeps with the degenerate distribution: everything executes on
node 0's two cores while three nodes idle.  Then the balancer runs a few
rounds — each samples per-node busy time and migrates owned slices of
*both* buffers from the busiest to the idlest node — after which phase 2
runs the identical sweeps, now spread across the machine.

The field values are verified against NumPy across both phases.

Run:  python examples/adaptive_load.py
"""

import numpy as np

from repro.api import box_region, pfor
from repro.items import Grid
from repro.regions.box import Box
from repro.runtime import AllScaleRuntime, RuntimeConfig, TaskSpec
from repro.runtime.balancer import LoadBalancer
from repro.sim import Cluster, ClusterSpec

N = 4096
NODES = 4
STEPS = 24
ALPHA = 0.2
FLOPS_PER_CELL = 600.0


def run():
    cluster = Cluster(
        ClusterSpec(num_nodes=NODES, cores_per_node=2, flops_per_core=1e9)
    )
    runtime = AllScaleRuntime(
        cluster, RuntimeConfig(functional=True, oversubscription=2)
    )
    a = Grid((N,), name="field.A")
    b = Grid((N,), name="field.B")
    # the pathological initial distribution: node 0 owns everything
    degenerate = [a.full_region] + [a.empty_region()] * (NODES - 1)
    runtime.register_item(a, placement=degenerate)
    runtime.register_item(b, placement=list(degenerate))
    balancer = LoadBalancer(runtime, imbalance_threshold=1.2)

    initial = np.sin(np.arange(N) * 0.01)

    def load(item):
        def body(ctx):
            ctx.fragment(item).scatter(Box.of((0,), (N,)), initial)

        runtime.wait(
            runtime.submit(
                TaskSpec(
                    name=f"load.{item.name}",
                    writes={item: item.full_region},
                    body=body,
                    size_hint=N,
                )
            )
        )

    load(a)
    load(b)

    def sweep_body(src, dst):
        def body(ctx, box: Box) -> None:
            lo = max(0, box.lo[0] - 1)
            hi = min(N, box.hi[0] + 1)
            window = ctx.fragment(src).gather(Box.of((lo,), (hi,)))
            i0 = box.lo[0] - lo
            w = box.widths()[0]
            core = window[i0 : i0 + w]
            left = np.empty_like(core)
            if box.lo[0] > 0:
                left[:] = window[i0 - 1 : i0 - 1 + w]
            else:  # domain edge mirrors itself
                left[0] = core[0]
                left[1:] = window[i0 : i0 + w - 1]
            right = np.empty_like(core)
            if box.hi[0] < N:
                right[:] = window[i0 + 1 : i0 + 1 + w]
            else:
                right[-1] = core[-1]
                right[:-1] = window[i0 + 1 : i0 + w]
            ctx.fragment(dst).scatter(
                box, core + ALPHA * (left + right - 2 * core)
            )

        return body

    src, dst = a, b
    step_counter = [0]

    def run_phase(steps):
        nonlocal src, dst
        t0 = runtime.now
        for _ in range(steps):
            step = step_counter[0]
            step_counter[0] += 1
            sweep = pfor(
                runtime,
                (0,),
                (N,),
                body=sweep_body(src, dst),
                reads=lambda box, g=src: {
                    g: box_region(
                        g,
                        Box.of(
                            (max(0, box.lo[0] - 1),),
                            (min(N, box.hi[0] + 1),),
                        ),
                    )
                },
                writes=lambda box, g=dst: {g: box_region(g, box)},
                flops_per_element=FLOPS_PER_CELL,
                name=f"sweep{step}",
            )
            runtime.wait(sweep)
            src, dst = dst, src
        return (runtime.now - t0) / steps

    # phase 1: the degenerate distribution
    phase1 = run_phase(STEPS // 2)

    # balancing rounds at the barrier: sample load, migrate, repeat
    rounds = 0
    balancer.measured_load()  # baseline sample
    run_phase(1)  # one sweep to expose the imbalance
    while rounds < 12:
        done = runtime.engine.spawn(balancer.rebalance_once())
        runtime.run()
        if not done.value:
            break
        rounds += 1
        run_phase(1)  # generate a fresh load sample under the new layout

    # phase 2: same sweeps on the balanced layout
    phase2 = run_phase(STEPS // 2)
    runtime.check_ownership_invariants()

    def read_all(ctx):
        return ctx.fragment(src).gather(Box.of((0,), (N,))).copy()

    values = runtime.wait(
        runtime.submit(
            TaskSpec(
                name="readback",
                reads={src: src.full_region},
                body=read_all,
                size_hint=1,
            )
        )
    )
    spread = [
        runtime.process(p).data_manager.owned_region(src).size()
        for p in range(NODES)
    ]
    return phase1, phase2, values, spread, rounds


# NumPy reference (mirror boundaries); total sweeps = STEPS + rebalancing
# interleaves — computed after the run below so the count matches
def evolve(reference, steps):
    for _ in range(steps):
        left = np.empty_like(reference)
        right = np.empty_like(reference)
        left[1:] = reference[:-1]
        left[0] = reference[0]
        right[:-1] = reference[1:]
        right[-1] = reference[-1]
        reference = reference + ALPHA * (left + right - 2 * reference)
    return reference


phase1, phase2, values, spread, rounds = run()
total_sweeps = STEPS + 1 + rounds  # phases + load-sampling interleaves
reference = evolve(np.sin(np.arange(N) * 0.01), total_sweeps)
assert np.allclose(values, reference)

print(f"field of {N} cells × {total_sweeps} sweeps verified against NumPy ✓")
print(f"per-sweep time, degenerate layout (node 0 owns all): {phase1 * 1e3:7.3f} ms")
print(f"per-sweep time after {rounds:2d} balancing rounds       : {phase2 * 1e3:7.3f} ms")
print(f"final ownership: {spread}")
print(f"speedup from data migration: {phase1 / phase2:.2f}×")
assert phase2 < phase1 * 0.75, "balancing should pay off"
assert sum(1 for s in spread if s > 0) >= 3, "data should have spread out"
