#!/usr/bin/env python
"""Heat diffusion — the paper's running example (Fig. 6), end to end.

Runs the 2-D stencil application in three ways on the same simulated
cluster and compares them:

1. the sequential kernel (Fig. 6a) — ground truth;
2. the AllScale port (Fig. 6b) — `pfor` sweeps over runtime-managed grids,
   halos fetched as read replicas, buffers swapped each step;
3. the MPI reference port — static blocks and ghost-cell exchange.

Run:  python examples/heat_diffusion.py
"""

import numpy as np

from repro.apps.stencil import (
    StencilWorkload,
    sequential_reference,
    stencil_allscale,
    stencil_mpi,
)
from repro.regions.box import Box
from repro.runtime import TaskSpec
from repro.runtime.monitoring import Monitor
from repro.sim import Cluster, ClusterSpec

NODES = 4
workload = StencilWorkload(n_per_node=24, timesteps=5, functional=True)


def make_cluster():
    return Cluster(
        ClusterSpec(num_nodes=NODES, cores_per_node=2, flops_per_core=1e9)
    )


print(f"grid: {workload.global_shape(NODES)}, {workload.timesteps} timesteps")
print()

# 1. sequential ground truth
reference = sequential_reference(workload, NODES)

# 2. AllScale port
result = stencil_allscale(make_cluster(), workload)
runtime = result.extras["runtime"]
final_grid = result.extras["final_grid"]


def read_back(ctx):
    return ctx.fragment(final_grid).gather(Box.of((0, 0), final_grid.shape))


values = runtime.wait(
    runtime.submit(
        TaskSpec(
            name="readback",
            reads={final_grid: final_grid.full_region},
            body=read_back,
            size_hint=1,
        )
    )
)
assert np.allclose(values, reference)
print("AllScale port matches the sequential kernel ✓")
report = Monitor(runtime).report()
print(
    f"  simulated {result.elapsed * 1e3:.3f} ms for the time loop; "
    f"{report.migrations:.0f} migrations, {report.replications:.0f} halo "
    f"replications, {report.invalidations:.0f} invalidations"
)

# 3. MPI reference port
mpi_result = stencil_mpi(make_cluster(), workload)
assembled = np.zeros(workload.global_shape(NODES))
for rank, block in enumerate(mpi_result.extras["blocks"]):
    ghosted = mpi_result.extras["ghosts"][rank]
    glo = (max(0, block.lo[0] - 1), max(0, block.lo[1] - 1))
    si = slice(block.lo[0] - glo[0], block.hi[0] - glo[0])
    sj = slice(block.lo[1] - glo[1], block.hi[1] - glo[1])
    assembled[block.lo[0]:block.hi[0], block.lo[1]:block.hi[1]] = ghosted[si, sj]
assert np.allclose(assembled, reference)
print("MPI reference port matches the sequential kernel ✓")
print()
print(
    f"throughput (simulated): AllScale {result.throughput / 1e9:.3f} GFLOPS, "
    f"MPI {mpi_result.throughput / 1e9:.3f} GFLOPS"
)
print(
    "note: at this toy size per-task overheads dominate; the benchmark\n"
    "suite (benchmarks/test_fig7_stencil.py) runs the paper-scale problem."
)
