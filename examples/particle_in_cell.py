#!/usr/bin/env python
"""A miniature functional particle-in-cell step on the AllScale runtime.

The full iPiC3D application is benchmarked at paper scale in virtual mode
(`benchmarks/test_fig7_ipic3d.py`); this example shows the same structure
*computing real physics* at toy scale, with every piece of state held in
runtime-managed data items:

* the electric field — a 2-D ``Grid``;
* the particle state — four 1-D ``Grid`` items (x, y, vx, vy), distributed
  by particle index.

Each timestep runs (1) a parallel particle push reading the field and
updating the particle arrays, and (2) a charge deposit + field relaxation.
The result is verified against a plain NumPy implementation.

Run:  python examples/particle_in_cell.py
"""

import numpy as np

from repro.api import box_region, expand_box, pfor
from repro.items import Grid
from repro.regions.box import Box
from repro.runtime import AllScaleRuntime, RuntimeConfig, TaskSpec
from repro.sim import Cluster, ClusterSpec

GRID = 16  # field cells per side


def expand_region(grid, box):
    """Read requirement of the relax kernel: the sub-range plus a halo."""
    return expand_box(grid, box, 1)


N_PARTICLES = 4096
STEPS = 3
DT = 0.2

rng = np.random.default_rng(7)
x0 = rng.uniform(0, GRID, N_PARTICLES)
y0 = rng.uniform(0, GRID, N_PARTICLES)
vx0 = rng.normal(0, 0.3, N_PARTICLES)
vy0 = rng.normal(0, 0.3, N_PARTICLES)
field0 = rng.normal(0, 1.0, (GRID, GRID))

cluster = Cluster(ClusterSpec(num_nodes=4, cores_per_node=2, flops_per_core=1e9))
runtime = AllScaleRuntime(cluster, RuntimeConfig(functional=True))

field = Grid((GRID, GRID), name="E")
field_next = Grid((GRID, GRID), name="E.next")
px = Grid((N_PARTICLES,), name="px")
py = Grid((N_PARTICLES,), name="py")
pvx = Grid((N_PARTICLES,), name="vx")
pvy = Grid((N_PARTICLES,), name="vy")
for item in (field, field_next, px, py, pvx, pvy):
    runtime.register_item(item)


def write_array(item, values):
    """Parallel initialization — first touch distributes the item."""

    def body(ctx, box):
        window = tuple(slice(l, h) for l, h in zip(box.lo, box.hi))
        ctx.fragment(item).scatter(box, values[window])

    runtime.wait(
        pfor(
            runtime,
            (0,) * len(item.shape),
            item.shape,
            body=body,
            writes=lambda box: {item: box_region(item, box)},
            flops_per_element=1.0,
            name=f"load.{item.name}",
        )
    )


def read_array(item):
    def body(ctx):
        return ctx.fragment(item).gather(Box.full(item.shape)).copy()

    task = TaskSpec(
        name=f"dump.{item.name}",
        reads={item: item.full_region},
        body=body,
        size_hint=1,
    )
    return runtime.wait(runtime.submit(task))


# load the initial state
write_array(field, field0)
for item, values in ((px, x0), (py, y0), (pvx, vx0), (pvy, vy0)):
    write_array(item, values)


def make_push_body(src_field):
    def push_body(ctx, box: Box) -> None:
        """Leapfrog push for one slice of the particle arrays."""
        sl = box  # 1-D box over particle indices
        x = ctx.fragment(px).gather(sl)
        y = ctx.fragment(py).gather(sl)
        vx = ctx.fragment(pvx).gather(sl)
        vy = ctx.fragment(pvy).gather(sl)
        e = ctx.fragment(src_field).gather(Box.full((GRID, GRID)))
        ci = np.clip(x.astype(int), 0, GRID - 1)
        cj = np.clip(y.astype(int), 0, GRID - 1)
        acc = e[ci, cj]
        vx = vx + DT * acc
        vy = vy + DT * acc
        x = (x + DT * vx) % GRID
        y = (y + DT * vy) % GRID
        ctx.fragment(px).scatter(sl, x)
        ctx.fragment(py).scatter(sl, y)
        ctx.fragment(pvx).scatter(sl, vx)
        ctx.fragment(pvy).scatter(sl, vy)

    return push_body


def make_relax_body(src_field, dst_field):
    def relax_body(ctx, box: Box) -> None:
        """Jacobi field relaxation: reads src (with halo), writes dst."""
        halo = Box(
            (max(0, box.lo[0] - 1), max(0, box.lo[1] - 1)),
            (min(GRID, box.hi[0] + 1), min(GRID, box.hi[1] + 1)),
        )
        e = ctx.fragment(src_field).gather(halo)
        i0, j0 = box.lo[0] - halo.lo[0], box.lo[1] - halo.lo[1]
        h, w = box.widths()
        core = e[i0 : i0 + h, j0 : j0 + w]
        up = np.empty_like(core)
        if box.lo[0] == 0:
            # the global top row relaxes against itself
            up[0] = core[0]
            up[1:] = e[i0 : i0 + h - 1, j0 : j0 + w]
        else:
            up[:] = e[i0 - 1 : i0 - 1 + h, j0 : j0 + w]
        ctx.fragment(dst_field).scatter(box, 0.9 * core + 0.1 * up)

    return relax_body


def reference_step(x, y, vx, vy, e):
    ci = np.clip(x.astype(int), 0, GRID - 1)
    cj = np.clip(y.astype(int), 0, GRID - 1)
    acc = e[ci, cj]
    vx = vx + DT * acc
    vy = vy + DT * acc
    x = (x + DT * vx) % GRID
    y = (y + DT * vy) % GRID
    e2 = e.copy()
    for i in range(GRID):
        up = e[max(0, i - 1)] if i > 0 else e[0]
        e2[i] = 0.9 * e[i] + 0.1 * up
    return x, y, vx, vy, e2


# reference evolution in plain NumPy
rx, ry, rvx, rvy, re = x0.copy(), y0.copy(), vx0.copy(), vy0.copy(), field0.copy()
for _ in range(STEPS):
    rx, ry, rvx, rvy, re = reference_step(rx, ry, rvx, rvy, re)

# distributed evolution on the runtime (double-buffered field)
particle_items = {px, py, pvx, pvy}
src, dst = field, field_next
for step in range(STEPS):
    push = pfor(
        runtime,
        (0,),
        (N_PARTICLES,),
        body=make_push_body(src),
        reads=lambda box, g=src: {
            g: g.full_region,
            **{item: box_region(item, box) for item in particle_items},
        },
        writes=lambda box: {
            item: box_region(item, box) for item in particle_items
        },
        flops_per_element=20.0,
        name=f"push{step}",
    )
    runtime.wait(push)
    relax = pfor(
        runtime,
        (0, 0),
        (GRID, GRID),
        body=make_relax_body(src, dst),
        reads=lambda box, g=src: {g: expand_region(g, box)},
        writes=lambda box, g=dst: {g: box_region(g, box)},
        flops_per_element=4.0,
        name=f"relax{step}",
    )
    runtime.wait(relax)
    src, dst = dst, src
field = src  # the buffer holding the latest field

# verify
assert np.allclose(read_array(px), rx)
assert np.allclose(read_array(py), ry)
assert np.allclose(read_array(pvx), rvx)
assert np.allclose(read_array(pvy), rvy)
assert np.allclose(read_array(field), re)
runtime.check_ownership_invariants()

print(f"{N_PARTICLES} particles × {STEPS} steps verified against NumPy ✓")
print(f"simulated time: {runtime.now * 1e3:.3f} ms on 4 nodes")
for item in (px, field):
    owners = [
        runtime.process(p).data_manager.owned_region(item).size()
        for p in range(4)
    ]
    print(f"distribution of {item.name}: {owners}")
