#!/usr/bin/env python
"""Executing the formal application model (paper §2) step by step.

Builds a small program — an entry task that creates a data item, spawns
two workers with overlapping read / disjoint write requirements, syncs,
and destroys the item — and executes it against the transition rules of
Figs. 2–3 under several random schedules, printing one trace and checking
the §2.5 model properties on every run.

Run:  python examples/model_trace_demo.py
"""

from repro.model import (
    DataItemDecl,
    Interpreter,
    InterpreterConfig,
    Program,
    check_exclusive_writes,
    check_single_execution,
    check_terminal,
)
from repro.model.architecture import distributed_cluster
from repro.model.task import AccessSpec, simple_task
from repro.regions.interval import IntervalRegion

# the data item: a 1-D array of 40 elements (Definition 2.1 / Example 2.1)
item = DataItemDecl(IntervalRegion.span(0, 40), name="array")


def worker_body(ctx):
    return
    yield  # no actions: the variant just computes and implicitly ends


# two workers, each writing one half and reading one element across the
# boundary (Definition 2.7 data requirements)
workers = [
    simple_task(
        worker_body,
        AccessSpec(
            reads={item: IntervalRegion.span(max(0, lo - 1), min(40, hi + 1))},
            writes={item: IntervalRegion.span(lo, hi)},
        ),
        name=f"worker[{lo},{hi})",
    )
    for lo, hi in ((0, 20), (20, 40))
]


def main_body(ctx):
    yield ctx.create(item)
    for worker in workers:
        yield ctx.spawn(worker)
    for worker in workers:
        yield ctx.sync(worker)
    yield ctx.destroy(item)


program = Program(simple_task(main_body, name="main"))

# Example 2.4's architecture: 2 nodes × 4 cores, one memory each
architecture = distributed_cluster(2, 4)

print("one concrete trace (seed 7, chaotic data management enabled):")
interpreter = Interpreter(
    InterpreterConfig(seed=7, chaos_data_ops=0.35, record_snapshots=True)
)
trace, state = interpreter.run_to_completion(program, architecture)
for step, event in enumerate(trace.events):
    print(f"  {step:3d}  {event.kind:<10} {event.detail}")
print(f"terminal: {state.is_terminal()}, progress steps: {trace.progress_steps()}")
print()

print("checking §2.5 properties over 50 random schedules...")
for seed in range(50):
    interpreter = Interpreter(
        InterpreterConfig(seed=seed, chaos_data_ops=0.3)
    )
    trace, state = interpreter.run_to_completion(program, architecture)
    check_terminal(state)  # termination
    check_single_execution(trace, state)  # single execution
    check_exclusive_writes(state)  # exclusive writes
print("all invariants hold under every schedule ✓")
