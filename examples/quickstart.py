#!/usr/bin/env python
"""Quickstart: a distributed parallel loop over a runtime-managed grid.

Mirrors the paper's Fig. 6b in ~40 lines: create `Grid` data items, run a
`pfor`-parallelized computation, and let the AllScale runtime decide where
data lives and where tasks run — on a simulated 4-node cluster.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.api import box_region, pfor
from repro.items import Grid
from repro.regions.box import Box
from repro.runtime import AllScaleRuntime, RuntimeConfig
from repro.runtime.monitoring import Monitor
from repro.sim import Cluster, ClusterSpec

N = 64

# a 4-node cluster, 4 cores per node, modelled after a small commodity setup
cluster = Cluster(ClusterSpec(num_nodes=4, cores_per_node=4, flops_per_core=1e9))
runtime = AllScaleRuntime(cluster, RuntimeConfig(functional=True))

# one N×N grid data item — the runtime will distribute it
grid = Grid((N, N), name="values")
runtime.register_item(grid)


# initialize in parallel: each sub-range task writes its own block;
# first touch spreads the grid evenly across the 4 nodes
def init_block(ctx, box: Box) -> None:
    rows = np.arange(box.lo[0], box.hi[0], dtype=np.float64)
    cols = np.arange(box.lo[1], box.hi[1], dtype=np.float64)
    ctx.fragment(grid).scatter(box, np.add.outer(rows, cols))


init = pfor(
    runtime,
    (0, 0),
    (N, N),
    body=init_block,
    writes=lambda box: {grid: box_region(grid, box)},
    flops_per_element=2.0,
    name="init",
)
runtime.wait(init)  # barrier

# a parallel reduction: sum of squares, combined up the task tree
square_sum = pfor(
    runtime,
    (0, 0),
    (N, N),
    body=lambda ctx, box: float((ctx.fragment(grid).gather(box) ** 2).sum()),
    reads=lambda box: {grid: box_region(grid, box)},
    combiner=sum,
    flops_per_element=2.0,
    name="square-sum",
)
total = runtime.wait(square_sum)

expected = float((np.add.outer(np.arange(N), np.arange(N)) ** 2.0).sum())
assert total == expected, (total, expected)

print(f"sum of squares = {total:.6g}  (verified against NumPy)")
print(f"simulated time = {runtime.now * 1e3:.3f} ms")
print()
print("how the runtime distributed the grid:")
for pid in range(runtime.num_processes):
    owned = runtime.process(pid).data_manager.owned_region(grid)
    print(f"  node {pid}: owns {owned.size():4d} of {N * N} elements")
print()
print("runtime monitoring summary:")
for line in Monitor(runtime).report().summary_lines():
    print(" ", line)
