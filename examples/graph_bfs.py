#!/usr/bin/env python
"""Distributed breadth-first search over a runtime-managed graph.

The paper lists graphs among the data structures the data item interface
covers.  This example partitions a random graph across a simulated
cluster by vertex ranges, runs a level-synchronous BFS — each level is a
``pfor`` whose tasks expand the frontier vertices *they own* and whose
distance updates are routed to the owners of the discovered vertices —
and verifies every distance against networkx.

Run:  python examples/graph_bfs.py
"""

import networkx as nx

from repro.api import pfor
from repro.items import Grid, PartitionedGraph
from repro.regions.box import Box, BoxSetRegion
from repro.runtime import AllScaleRuntime, RuntimeConfig, TaskSpec
from repro.sim import Cluster, ClusterSpec

NODES = 4
N_VERTICES = 400
SOURCE = 0

# a connected random graph with integer vertices 0..n-1
nx_graph = nx.connected_watts_strogatz_graph(N_VERTICES, k=6, p=0.2, seed=11)
graph = PartitionedGraph.from_networkx(nx_graph, name="g")

cluster = Cluster(ClusterSpec(num_nodes=NODES, cores_per_node=2, flops_per_core=1e9))
runtime = AllScaleRuntime(cluster, RuntimeConfig(functional=True))

# distribute the graph by vertex ranges; distances live in a 1-D grid
runtime.register_item(graph, placement=graph.decompose(NODES))
dist = Grid((N_VERTICES,), name="dist")
runtime.register_item(dist, placement=dist.decompose(NODES))


def write_distances(vertices, level):
    """Route distance updates to the owners of the discovered vertices."""
    region = BoxSetRegion([Box.of((v,), (v + 1,)) for v in vertices])

    def body(ctx):
        fragment = ctx.fragment(dist)
        for vertex in vertices:
            fragment.set((vertex,), float(level))

    return runtime.wait(
        runtime.submit(
            TaskSpec(
                name=f"mark.L{level}",
                writes={dist: region},
                body=body,
                size_hint=len(vertices),
            )
        )
    )


def expand_level(frontier):
    """Owners of frontier vertices expand them in parallel."""

    def body(ctx, box):
        fragment = ctx.fragment(graph)
        mine = [v for v in frontier if box.lo[0] <= v < box.hi[0]]
        out = set()
        for vertex in mine:
            out.update(fragment.neighbors(vertex))
        return out

    sweep = pfor(
        runtime,
        (0,),
        (N_VERTICES,),
        body=body,
        reads=lambda box: {graph: graph.range_region(box.lo[0], box.hi[0])},
        combiner=lambda sets: set().union(*sets) if sets else set(),
        flops_per_element=1.0,
        name="expand",
    )
    return runtime.wait(sweep)


# level-synchronous BFS
visited = {SOURCE}
frontier = {SOURCE}
write_distances([SOURCE], 0)
level = 0
while frontier:
    level += 1
    discovered = expand_level(frontier) - visited
    if not discovered:
        break
    write_distances(sorted(discovered), level)
    visited |= discovered
    frontier = discovered

# read all distances back and verify against networkx
def read_all(ctx):
    return ctx.fragment(dist).gather(Box.of((0,), (N_VERTICES,))).copy()


distances = runtime.wait(
    runtime.submit(
        TaskSpec(
            name="readback",
            reads={dist: dist.full_region},
            body=read_all,
            size_hint=1,
        )
    )
)
reference = nx.single_source_shortest_path_length(nx_graph, SOURCE)
assert len(reference) == N_VERTICES  # connected
for vertex, expected in reference.items():
    assert distances[vertex] == expected, (vertex, distances[vertex], expected)
runtime.check_ownership_invariants()

print(f"BFS over {N_VERTICES} vertices / {nx_graph.number_of_edges()} edges "
      f"verified against networkx ✓")
print(f"eccentricity of vertex {SOURCE}: {int(distances.max())} levels")
print(f"simulated time: {runtime.now * 1e3:.3f} ms on {NODES} nodes")
owners = [
    runtime.process(p).data_manager.owned_region(graph).size()
    for p in range(NODES)
]
print(f"vertex distribution: {owners}")
