"""The ``prec`` operator — context-aware nested recursive parallelism.

``prec`` (ref. [10] of the paper) captures a recursion scheme over a
parameter type ``P``:

* ``base_test(p)`` — is ``p`` small enough to handle directly?
* ``base(ctx, p)`` — the sequential base-case implementation;
* ``split(p)`` — decompose ``p`` into sub-parameters;
* ``combine(values)`` — fold sub-results.

The AllScale compiler turns each ``prec`` call into a task with a
sequential and a parallel variant; here :meth:`PrecFunction.task` builds
the same thing as a :class:`~repro.runtime.tasks.TaskSpec` whose leaf
variant runs ``base`` over the *whole* parameter (the sequential variant
of Example 2.3) and whose split variant spawns one child per
sub-parameter.  Requirement functions (``reads``/``writes`` of the
parameter) are evaluated per task, mirroring the compiler-attached
requirement closures.
"""

from __future__ import annotations

from typing import Any, Callable, Generic, TypeVar

from repro.items.base import DataItem
from repro.regions.base import Region
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.tasks import TaskExecutionContext, TaskSpec, Treeture
from repro.util.ids import fresh_id

P = TypeVar("P")

RequirementFn = Callable[[P], dict[DataItem, Region]]


class PrecFunction(Generic[P]):
    """A parallelizable recursive function produced by :func:`prec`."""

    def __init__(
        self,
        base_test: Callable[[P], bool],
        base: Callable[[TaskExecutionContext, P], Any],
        split: Callable[[P], list[P]],
        combine: Callable[[list[Any]], Any] | None = None,
        reads: RequirementFn | None = None,
        writes: RequirementFn | None = None,
        cost: Callable[[P], float] | None = None,
        size: Callable[[P], float] | None = None,
        name: str | None = None,
        body_in_virtual: bool = False,
        gpu_cost: Callable[[P], float] | None = None,
        origin_body: Callable[..., Any] | None = None,
    ) -> None:
        self.base_test = base_test
        self.base = base
        self.split = split
        self.combine = combine
        self.reads = reads or (lambda p: {})
        self.writes = writes or (lambda p: {})
        self.cost = cost or (lambda p: 0.0)
        self.size = size or (lambda p: 1.0)
        self.name = name or fresh_id("prec")
        self.body_in_virtual = body_in_virtual
        #: optional device cost of the base case — enables the GPU variant
        self.gpu_cost = gpu_cost
        #: user kernel for the static analyzer's lint pass; ``base`` when
        #: it is itself the user-authored kernel (pfor overrides this with
        #: the point kernel its bulk wrapper hides)
        self.origin_body = origin_body or base

    def task(self, param: P, granularity: float | None = None) -> TaskSpec:
        """Build the task (with both variants) for one recursion parameter."""
        is_base = self.base_test(param)

        def splitter() -> list[TaskSpec]:
            return [
                self.task(sub, granularity) for sub in self.split(param)
            ]

        def body(ctx: TaskExecutionContext) -> Any:
            return self.base(ctx, param)

        return TaskSpec(
            name=f"{self.name}({param!r})"[:96],
            reads=dict(self.reads(param)),
            writes=dict(self.writes(param)),
            flops=float(self.cost(param)),
            size_hint=max(1.0, float(self.size(param))),
            body=body,
            splitter=None if is_base else splitter,
            combiner=self.combine,
            granularity=granularity,
            body_in_virtual=self.body_in_virtual,
            gpu_flops=(
                float(self.gpu_cost(param)) if self.gpu_cost is not None else None
            ),
            origin_body=self.origin_body,
        )

    def submit(
        self,
        runtime: AllScaleRuntime,
        param: P,
        origin: int = 0,
        granularity: float | None = None,
    ) -> Treeture:
        """Schedule the recursion on a runtime; returns the root treeture."""
        if granularity is None:
            granularity = default_granularity(runtime, self.size(param))
        return runtime.submit(self.task(param, granularity), origin=origin)

    def __call__(
        self, runtime: AllScaleRuntime, param: P, origin: int = 0
    ) -> Treeture:
        return self.submit(runtime, param, origin=origin)


def prec(
    base_test: Callable[[P], bool],
    base: Callable[[TaskExecutionContext, P], Any],
    split: Callable[[P], list[P]],
    combine: Callable[[list[Any]], Any] | None = None,
    **kwargs: Any,
) -> PrecFunction[P]:
    """Build a :class:`PrecFunction` from the recursion scheme's pieces.

    >>> fib = prec(
    ...     base_test=lambda n: n < 2,
    ...     base=lambda ctx, n: fib_seq(n),
    ...     split=lambda n: [n - 1, n - 2],
    ...     combine=sum,
    ... )
    """
    return PrecFunction(base_test, base, split, combine, **kwargs)


def loop_granularity(
    total_size: float,
    processes: int,
    cores_per_node: int,
    min_task_size: float,
    oversubscription: int,
) -> float:
    """Leaf size targeting ``total/(processes × cores × oversub)``.

    The runtime-free form of :func:`default_granularity`: static program
    builders (``repro.placement``) use it to construct the *same* task
    trees the drivers submit, so offline plans pin real task names.
    """
    workers = max(1, processes * cores_per_node)
    return max(
        float(min_task_size),
        total_size / (workers * oversubscription),
    )


def default_granularity(runtime: AllScaleRuntime, total_size: float) -> float:
    """Split until leaves are ~``total/(processes × cores × oversub)``.

    The default the scheduling policy uses to balance task overhead against
    parallelism and load-balancing slack — the compiler/runtime analog of
    choosing a sensible OpenMP chunk size.
    """
    return loop_granularity(
        total_size,
        runtime.num_processes,
        runtime.cluster.spec.cores_per_node,
        runtime.config.min_task_size,
        runtime.config.oversubscription,
    )
