"""Higher-level parallel patterns built on ``pfor``/``prec``.

The AllScale API ships a small library of parallel algorithms over data
items; these are the ones the paper's applications rely on:

``preduce``
    parallel reduction of a function of grid elements over a box range;
``pstencil``
    the double-buffered iterative stencil pattern of Fig. 6b — the time
    loop, the halo-read/interior-write requirement derivation, and the
    buffer swap, packaged so an application only supplies the kernel.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Sequence

import numpy as np

from repro.api.access import box_region, expand_box
from repro.api.pfor import pfor
from repro.items.grid import Grid, GridFragment
from repro.regions.box import Box
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.tasks import TaskExecutionContext, Treeture


def preduce(
    runtime: AllScaleRuntime,
    grid: Grid,
    fn: Callable[[np.ndarray], Any],
    combine: Callable[[list[Any]], Any] = sum,
    lo: Sequence[int] | None = None,
    hi: Sequence[int] | None = None,
    flops_per_element: float = 1.0,
    name: str = "preduce",
) -> Treeture:
    """Reduce ``fn`` over sub-arrays of ``grid``, combining up the task tree.

    ``fn`` receives the gathered NumPy window of each leaf sub-range and
    returns a partial value; ``combine`` folds the partials.

    >>> total = runtime.wait(preduce(runtime, grid, lambda a: float(a.sum())))
    """
    lo = tuple(lo) if lo is not None else (0,) * grid.dims
    hi = tuple(hi) if hi is not None else grid.shape

    def body(ctx: TaskExecutionContext, box: Box) -> Any:
        fragment = ctx.fragment(grid)
        assert isinstance(fragment, GridFragment)
        return fn(fragment.gather(box))

    return pfor(
        runtime,
        lo,
        hi,
        body=body,
        reads=lambda box: {grid: box_region(grid, box)},
        combiner=combine,
        flops_per_element=flops_per_element,
        name=name,
    )


StencilKernel = Callable[[np.ndarray, Box, Box], np.ndarray]


def pstencil(
    runtime: AllScaleRuntime,
    buffers: tuple[Grid, Grid],
    kernel: StencilKernel,
    steps: int,
    radius: int = 1,
    interior_only: bool = True,
    flops_per_element: float = 1.0,
    name: str = "pstencil",
) -> Generator:
    """Iterative double-buffered stencil — drive with ``runtime.spawn``.

    Each step sweeps the (interior of the) grid in parallel: every leaf
    task reads its sub-range of the source buffer expanded by ``radius``
    and writes its sub-range of the destination buffer, then the buffers
    swap (Fig. 6b line 18).  ``kernel(window, box, halo)`` receives the
    gathered source window covering ``halo`` and must return the updated
    values for ``box``.

    Returns (via the simulation process result) the grid holding the final
    values.

    >>> final = runtime.wait_process(pstencil(runtime, (A, B), kern, steps=10))
    """
    src, dst = buffers
    if src.shape != dst.shape:
        raise ValueError("stencil buffers must have identical shapes")
    shape = src.shape
    if interior_only:
        lo = tuple(radius for _ in shape)
        hi = tuple(s - radius for s in shape)
    else:
        lo = tuple(0 for _ in shape)
        hi = shape

    def make_body(source: Grid, dest: Grid):
        def body(ctx: TaskExecutionContext, box: Box) -> None:
            halo = Box(
                tuple(max(0, l - radius) for l in box.lo),
                tuple(min(s, h + radius) for s, h in zip(shape, box.hi)),
            )
            window = ctx.fragment(source).gather(halo)  # type: ignore[attr-defined]
            ctx.fragment(dest).scatter(box, kernel(window, box, halo))  # type: ignore[attr-defined]

        return body

    for step in range(steps):
        sweep = pfor(
            runtime,
            lo,
            hi,
            body=make_body(src, dst),
            reads=lambda box, g=src: {g: expand_box(g, box, radius)},
            writes=lambda box, g=dst: {g: box_region(g, box)},
            flops_per_element=flops_per_element,
            name=f"{name}.step{step}",
        )
        yield sweep.future
        src, dst = dst, src
    return src
