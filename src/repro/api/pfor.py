"""``pfor`` — N-dimensional parallel loops over box ranges.

The workhorse of the paper's example codes (Fig. 6b): iterate a kernel
over every point of an N-dimensional range, in parallel, with data
requirements derived per sub-range.  Implemented on top of :func:`prec`
(just like the AllScale API implements its ``pfor`` with the ``prec``
operator): the recursion parameter is the iteration :class:`Box`, split by
bisecting the widest axis, and requirement functions are evaluated on each
sub-box.

Two kernel styles are supported:

* ``body(ctx, box)`` — bulk kernel over the whole sub-range; the natural
  fit for vectorized NumPy kernels (and the only style that scales);
* ``point_kernel(ctx, coord)`` — per-point kernel, convenient in examples
  and tests; wrapped into a loop over the sub-range.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.api.prec import PrecFunction, default_granularity
from repro.items.base import DataItem
from repro.regions.base import Region
from repro.regions.box import Box
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.tasks import TaskExecutionContext, TaskSpec, Treeture
from repro.util.ids import fresh_id

RequirementFn = Callable[[Box], dict[DataItem, Region]]


def _split_box(box: Box) -> list[Box]:
    widths = box.widths()
    axis = max(range(len(widths)), key=widths.__getitem__)
    at = box.lo[axis] + widths[axis] // 2
    left, right = box.split(axis, at)
    return [b for b in (left, right) if not b.is_empty()]


def pfor_task(
    lo: Sequence[int],
    hi: Sequence[int],
    *,
    body: Callable[[TaskExecutionContext, Box], Any] | None = None,
    point_kernel: Callable[[TaskExecutionContext, tuple[int, ...]], None]
    | None = None,
    reads: RequirementFn | None = None,
    writes: RequirementFn | None = None,
    flops_per_element: float = 1.0,
    combiner: Callable[[list[Any]], Any] | None = None,
    granularity: float | None = None,
    name: str | None = None,
    body_in_virtual: bool = False,
    gpu_flops_per_element: float | None = None,
) -> TaskSpec:
    """Build the splittable task tree for a parallel loop (no submission)."""
    if (body is None) == (point_kernel is None):
        if body is None:
            raise ValueError("pfor needs exactly one of body/point_kernel")
        raise ValueError("pass either body or point_kernel, not both")
    root = Box.of(lo, hi)
    if root.is_empty():
        raise ValueError(f"empty pfor range {lo!r}..{hi!r}")
    task_name = name or fresh_id("pfor")
    user_kernel = body if body is not None else point_kernel

    if point_kernel is not None:
        def bulk_body(ctx: TaskExecutionContext, box: Box) -> Any:
            for coord in box.points():
                point_kernel(ctx, coord)
            return None

        body = bulk_body

    recursion = PrecFunction(
        base_test=lambda box: box.size() <= max(1.0, granularity or 1.0),
        base=body,
        split=_split_box,
        combine=combiner,
        reads=reads,
        writes=writes,
        cost=lambda box: flops_per_element * box.size(),
        size=lambda box: float(box.size()),
        name=task_name,
        body_in_virtual=body_in_virtual,
        gpu_cost=(
            (lambda box: gpu_flops_per_element * box.size())
            if gpu_flops_per_element is not None
            else None
        ),
        origin_body=user_kernel,
    )
    return recursion.task(root, granularity)


def pfor(
    runtime: AllScaleRuntime,
    lo: Sequence[int],
    hi: Sequence[int],
    *,
    origin: int = 0,
    granularity: float | None = None,
    **kwargs: Any,
) -> Treeture:
    """Schedule a parallel loop over ``[lo, hi)``; returns its treeture.

    ``yield treeture.future`` (from a simulation process) or
    ``runtime.wait(treeture)`` (from test code) acts as the loop barrier.
    """
    root = Box.of(lo, hi)
    if granularity is None:
        granularity = default_granularity(runtime, float(root.size()))
    task = pfor_task(lo, hi, granularity=granularity, **kwargs)
    return runtime.submit(task, origin=origin)
