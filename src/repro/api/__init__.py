"""User-facing parallel API (the AllScale API + compiler analog, paper §3.3).

The AllScale source-to-source compiler turns high-level ``prec``/``pfor``
calls into what the runtime needs: tasks with (a) a sequential and a
parallel variant each and (b) a function computing data requirements per
variant.  In Python no source transformation is needed — this package
*constructs* those artifacts directly:

``prec``
    the context-aware recursive-parallelism primitive (ref. [10] of the
    paper): a recursion scheme with a base-case test, a base implementation
    and a parameter splitter, compiled into splittable
    :class:`~repro.runtime.tasks.TaskSpec` trees;
``pfor``
    N-dimensional parallel loops over box ranges, built on ``prec`` exactly
    as in the AllScale API, with per-sub-range requirement functions;
``access``
    requirement derivation helpers — the static-analysis analog that turns
    stencil access offsets into read/write region functions.
"""

from repro.api.access import box_region, expand_box, shifted_union, stencil_requirements
from repro.api.prec import PrecFunction, prec
from repro.api.pfor import pfor, pfor_task
from repro.api.patterns import preduce, pstencil

__all__ = [
    "box_region",
    "expand_box",
    "shifted_union",
    "stencil_requirements",
    "PrecFunction",
    "prec",
    "pfor",
    "pfor_task",
    "preduce",
    "pstencil",
]
