"""Data requirement derivation (the compiler's static analysis, §3.3).

The AllScale compiler obtains data requirements "through high-level static
program analysis".  For the regular access patterns of the evaluated
applications that analysis reduces to interval arithmetic on access
offsets: a kernel writing ``B[p]`` and reading ``A[p + o]`` for offsets
``o`` needs, for an iteration sub-range ``R``, write region ``R`` and read
region ``∪_o (R + o)``.  These helpers perform exactly that derivation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.items.grid import Grid
from repro.regions.box import Box, BoxSetRegion


def box_region(grid: Grid, box: Box) -> BoxSetRegion:
    """Region for ``box`` clipped to the grid."""
    return BoxSetRegion((box,)).intersect(grid.full_region)


def expand_box(grid: Grid, box: Box, radius: int) -> BoxSetRegion:
    """Region for ``box`` grown by ``radius`` on every side, clipped.

    The read requirement of a radius-``radius`` stencil over iteration
    range ``box``.
    """
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    grown = Box(
        tuple(l - radius for l in box.lo),
        tuple(h + radius for h in box.hi),
    )
    return box_region(grid, grown)


def shifted_union(
    grid: Grid, box: Box, offsets: Iterable[Sequence[int]]
) -> BoxSetRegion:
    """Region ``∪_o (box + o)`` clipped to the grid.

    The exact read set of a kernel whose accesses are ``A[p + o]`` for
    ``o ∈ offsets`` over the iteration range ``box``.
    """
    region = BoxSetRegion.empty(grid.dims)
    for offset in offsets:
        if len(offset) != grid.dims:
            raise ValueError(
                f"offset {offset!r} has wrong rank for {grid.dims}-D grid"
            )
        shifted = Box(
            tuple(l + o for l, o in zip(box.lo, offset)),
            tuple(h + o for h, o in zip(box.hi, offset)),
        )
        region = region.union(box_region(grid, shifted))
    return region


def stencil_requirements(
    read_grid: Grid,
    write_grid: Grid,
    offsets: Iterable[Sequence[int]],
):
    """Requirement functions for a gather stencil ``B[p] = f(A[p + o]...)``.

    Returns ``(reads_fn, writes_fn)`` mapping an iteration sub-range box to
    the requirement dictionaries the runtime consumes — the artifact the
    AllScale compiler attaches to every generated task variant.
    """
    offsets = [tuple(o) for o in offsets]

    def reads_fn(box: Box) -> dict:
        return {read_grid: shifted_union(read_grid, box, offsets)}

    def writes_fn(box: Box) -> dict:
        return {write_grid: box_region(write_grid, box)}

    return reads_fn, writes_fn
