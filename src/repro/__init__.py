"""repro — a reproduction of "The AllScale Runtime Application Model".

Jordan et al., *The AllScale Runtime Application Model*, IEEE CLUSTER 2018.

The library provides, in Python:

* :mod:`repro.model` — an executable formalization of the application
  model (data items, regions, tasks/variants, architecture, the ten state
  transition rules, traces, and checkable §2.5 properties);
* :mod:`repro.regions` — the region algebras of §3.1 (box sets, interval
  sets, flexible and blocked tree schemes) with full closure under
  union/intersection/difference;
* :mod:`repro.items` — data item implementations following the
  façade/fragment/region pattern (grids, trees, kd-trees, scalars), each
  in functional (value-carrying) and virtual (cost-only) mode;
* :mod:`repro.sim` — a deterministic discrete-event cluster simulator
  (nodes, cores, fat-tree network with NIC serialization) standing in for
  the paper's 64-node testbed;
* :mod:`repro.runtime` — the AllScale runtime system of §3.2: data item
  manager, region lock tables, hierarchical distributed index
  (Algorithm 1), data-aware scheduler (Algorithm 2), monitoring,
  checkpoint/restart, and data-migration load balancing;
* :mod:`repro.api` — the user-facing ``prec``/``pfor`` API with
  compiler-style requirement derivation (§3.3);
* :mod:`repro.mpi` — the simulated MPI substrate used by the reference
  baselines;
* :mod:`repro.apps` — the three evaluation applications (stencil, iPiC3D,
  TPC) in AllScale and MPI ports;
* :mod:`repro.bench` — regeneration of Table 1 and the Fig. 7 panels plus
  ablation studies.

Start with ``examples/quickstart.py`` or the README.
"""

__version__ = "1.0.0"

from repro.runtime import AllScaleRuntime, RuntimeConfig, TaskSpec, Treeture
from repro.sim import Cluster, ClusterSpec, meggie_like_spec
from repro.items import Grid, BalancedTree, KDTreeItem, ScalarItem
from repro.api import pfor, prec

__all__ = [
    "__version__",
    "AllScaleRuntime",
    "RuntimeConfig",
    "TaskSpec",
    "Treeture",
    "Cluster",
    "ClusterSpec",
    "meggie_like_spec",
    "Grid",
    "BalancedTree",
    "KDTreeItem",
    "ScalarItem",
    "pfor",
    "prec",
]
