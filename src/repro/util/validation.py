"""Argument validation helpers used across the library.

Guard clauses keep error messages close to the API surface the user touched
instead of surfacing as obscure failures deep inside the scheduler or the
simulator event loop.
"""

from __future__ import annotations

from typing import Any


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError`` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_type(value: Any, expected: type | tuple[type, ...], name: str) -> Any:
    """Raise ``TypeError`` unless ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        if isinstance(expected, tuple):
            names = ", ".join(t.__name__ for t in expected)
        else:
            names = expected.__name__
        raise TypeError(
            f"{name} must be of type {names}, got {type(value).__name__}"
        )
    return value


def check_positive(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value
