"""Small shared utilities: id generation, validation, lightweight logging.

These helpers are deliberately dependency-free so every other subpackage can
use them without import cycles.
"""

from repro.util.ids import IdGenerator, fresh_id
from repro.util.validation import check_type, require

__all__ = ["IdGenerator", "fresh_id", "check_type", "require"]
