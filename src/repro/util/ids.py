"""Monotonic identifier generation.

The formal model (Definitions 2.1 and 2.3 of the paper) works with abstract
sets of data items and tasks.  Concrete instances need stable, hashable,
human-readable identities; this module provides them.  Identifiers are
namespaced (``task:17``, ``item:3``) so that traces and log lines remain
readable when several entity kinds are interleaved.
"""

from __future__ import annotations

import itertools
import threading


class IdGenerator:
    """Thread-safe monotonic id generator for a single namespace.

    >>> gen = IdGenerator("task")
    >>> gen()
    'task:0'
    >>> gen()
    'task:1'
    """

    def __init__(self, namespace: str) -> None:
        self.namespace = namespace
        self._counter = itertools.count()
        self._lock = threading.Lock()

    def __call__(self) -> str:
        with self._lock:
            return f"{self.namespace}:{next(self._counter)}"

    def peek(self) -> str:
        """Return the identifier the next call would produce (racy; debug only)."""
        with self._lock:
            value = next(self._counter)
            # re-create the counter so peek does not consume an id
            self._counter = itertools.count(value)
            return f"{self.namespace}:{value}"


_GLOBAL_GENERATORS: dict[str, IdGenerator] = {}
_GLOBAL_LOCK = threading.Lock()


def fresh_id(namespace: str) -> str:
    """Return a fresh identifier in ``namespace`` from a process-global pool."""
    with _GLOBAL_LOCK:
        gen = _GLOBAL_GENERATORS.get(namespace)
        if gen is None:
            gen = _GLOBAL_GENERATORS[namespace] = IdGenerator(namespace)
    return gen()
