"""The ``--comms`` panel: what the communication layer buys per app.

Each application's AllScale port runs twice on the same cluster and
workload — once with the paper-prototype per-piece messaging (the
default) and once with transfer coalescing plus replica prefetch enabled
— and the panel reports message counts, bytes moved, and simulated
wall-clock for both, plus the ``comms.*`` counters of the optimised run.

The two runs must agree on *what* was computed and moved: identical
work, identical data payload bytes.  Only message counts and timing may
differ — that is the optimisation's contract, and
``tests/test_determinism.py`` pins it per app while
``BENCH_comms_baseline.json`` pins the panel's measured shape.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.apps.common import AppResult
from repro.apps.ipic3d import IPic3DWorkload, ipic3d_allscale
from repro.apps.stencil import StencilWorkload, stencil_allscale
from repro.apps.tpc import TPCWorkload, make_problem, tpc_allscale
from repro.runtime.config import RuntimeConfig
from repro.sim.cluster import Cluster, meggie_like_spec

#: fixed cluster size of the comms comparison (message effects are
#: already fully visible at a handful of nodes; the panel is about
#: counts and deltas, not scaling curves)
COMMS_NODE_COUNT = 4

#: schema version of the JSON baseline; bump on any row-shape change
COMMS_SCHEMA_VERSION = 1

#: metric keys copied verbatim from the optimised run into each row
_ON_COUNTERS = (
    "net.bulk_messages",
    "net.bulk_parts",
    "comms.coalesced_fetches",
    "comms.coalesced_parts",
    "comms.batched_dispatches",
    "comms.batched_tasks",
    "comms.prefetches",
    "comms.prefetched_bytes",
    "comms.replica_hits",
    "comms.replica_misses",
    "comms.plans",
    "comms.planned_bytes",
    "comms.moved_bytes",
    "comms.refetched_bytes",
)


@dataclass
class CommsPoint:
    """One app's off-versus-on communication comparison."""

    app: str
    nodes: int
    messages_off: float
    messages_on: float
    net_bytes_off: float
    net_bytes_on: float
    #: payload bytes that crossed address spaces (migrations + replications);
    #: the optimisation must not change these
    data_bytes_off: float
    data_bytes_on: float
    work_off: float
    work_on: float
    elapsed_off: float
    elapsed_on: float
    counters: dict = field(default_factory=dict)

    @property
    def message_reduction(self) -> float:
        """Fraction of network messages the comm layer removed."""
        if not self.messages_off:
            return 0.0
        return 1.0 - self.messages_on / self.messages_off

    @property
    def elapsed_delta(self) -> float:
        """Relative simulated wall-clock change (negative = faster)."""
        if not self.elapsed_off:
            return 0.0
        return self.elapsed_on / self.elapsed_off - 1.0

    @property
    def outputs_identical(self) -> bool:
        """Same work completed, same payload bytes moved."""
        return (
            self.work_off == self.work_on
            and self.data_bytes_off == self.data_bytes_on
        )

    def to_row(self) -> dict:
        return {
            "app": self.app,
            "nodes": self.nodes,
            "messages_off": self.messages_off,
            "messages_on": self.messages_on,
            "message_reduction": round(self.message_reduction, 4),
            "net_bytes_off": self.net_bytes_off,
            "net_bytes_on": self.net_bytes_on,
            "data_bytes_off": self.data_bytes_off,
            "data_bytes_on": self.data_bytes_on,
            "work_off": self.work_off,
            "work_on": self.work_on,
            "elapsed_off": self.elapsed_off,
            "elapsed_on": self.elapsed_on,
            "elapsed_delta": round(self.elapsed_delta, 4),
            "outputs_identical": self.outputs_identical,
            "counters": dict(self.counters),
        }


def _config(enabled: bool) -> RuntimeConfig:
    # mirror the Fig. 7 harness knobs so the panel measures the same runs
    return RuntimeConfig(
        functional=False,
        oversubscription=2,
        comm_coalescing=enabled,
        replica_prefetch=enabled,
    )


def _measure(app: str, run, nodes: int) -> CommsPoint:
    """Run ``run(config)`` with the comm layer off then on; diff them."""
    off: AppResult = run(_config(False))
    on: AppResult = run(_config(True))
    m_off = off.extras["runtime"].metrics.snapshot()
    m_on = on.extras["runtime"].metrics.snapshot()
    counters = {key: m_on.get(key, 0.0) for key in _ON_COUNTERS}
    return CommsPoint(
        app=app,
        nodes=nodes,
        messages_off=m_off.get("net.messages", 0.0),
        messages_on=m_on.get("net.messages", 0.0),
        net_bytes_off=m_off.get("net.bytes", 0.0),
        net_bytes_on=m_on.get("net.bytes", 0.0),
        data_bytes_off=float(off.extras["runtime"].data_bytes_moved()),
        data_bytes_on=float(on.extras["runtime"].data_bytes_moved()),
        work_off=off.work,
        work_on=on.work,
        elapsed_off=off.elapsed,
        elapsed_on=on.elapsed,
        counters=counters,
    )


def comms_panel(quick: bool = False, smoke: bool = False) -> list[CommsPoint]:
    """Off-versus-on comparison for all three applications."""
    reduced = quick or smoke
    nodes = COMMS_NODE_COUNT
    cluster = lambda: Cluster(meggie_like_spec(nodes))  # noqa: E731

    stencil_wl = StencilWorkload(
        n_per_node=4_000 if not reduced else 1_000,
        timesteps=2,
        functional=False,
    )
    ipic3d_wl = IPic3DWorkload(
        particles_per_node=48_000_000 if not reduced else 12_000_000,
        cells_per_node_side=8 if not reduced else 4,
        timesteps=2,
    )
    tpc_wl = TPCWorkload(
        total_points=2**29 if not reduced else 2**25,
        depth=16 if not reduced else 12,
        queries_total=128 if not reduced else 64,
        functional=False,
        visit_flops=150.0,
        point_flops=30.0,
        task_subtree_height=9 if not reduced else 7,
    )
    tpc_problem = make_problem(tpc_wl, nodes)

    return [
        _measure(
            "stencil",
            lambda cfg: stencil_allscale(cluster(), stencil_wl, cfg),
            nodes,
        ),
        _measure(
            "ipic3d",
            lambda cfg: ipic3d_allscale(cluster(), ipic3d_wl, cfg),
            nodes,
        ),
        _measure(
            "tpc",
            lambda cfg: tpc_allscale(
                cluster(), tpc_wl, cfg, problem=tpc_problem
            ),
            nodes,
        ),
    ]


def render_comms(points: list[CommsPoint]) -> str:
    """The panel as a fixed-width table."""
    from repro.bench.report import render_table

    rows = []
    for p in points:
        rows.append(
            (
                p.app,
                str(p.nodes),
                f"{p.messages_off:.0f}",
                f"{p.messages_on:.0f}",
                f"{p.message_reduction * 100.0:+.1f}%",
                f"{p.data_bytes_off:.0f}",
                f"{p.elapsed_delta * 100.0:+.1f}%",
                "yes" if p.outputs_identical else "NO",
            )
        )
    title = (
        "Communication layer — per-app deltas "
        "(coalescing + prefetch vs. prototype messaging)"
    )
    body = render_table(
        [
            "app",
            "nodes",
            "msgs off",
            "msgs on",
            "msg delta",
            "data bytes",
            "time delta",
            "outputs ==",
        ],
        rows,
    )
    return f"{title}\n{body}"


def comms_to_json(points: list[CommsPoint]) -> str:
    """Serialize the panel for ``BENCH_comms_baseline.json``."""
    payload = {
        "schema": COMMS_SCHEMA_VERSION,
        "nodes": COMMS_NODE_COUNT,
        "apps": {p.app: p.to_row() for p in points},
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
