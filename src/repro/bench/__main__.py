"""Command-line regeneration of the paper's evaluation artifacts.

Usage::

    python -m repro.bench table1
    python -m repro.bench stencil ipic3d tpc          # Fig. 7 panels
    python -m repro.bench all --quick --out results/  # CSV per panel

Each panel prints the regenerated table; with ``--out`` the raw numbers
are additionally written as CSV files.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.bench.figures import fig7_ipic3d, fig7_stencil, fig7_tpc
from repro.bench.report import (
    region_cache_csv,
    region_cache_stats,
    render_region_cache,
    render_series,
    render_table1,
    series_to_csv,
)
from repro.bench.tables import table1

PANELS = {
    "stencil": fig7_stencil,
    "ipic3d": fig7_ipic3d,
    "tpc": fig7_tpc,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation tables and figures.",
    )
    choices = ["table1", *PANELS, "all"]
    parser.add_argument(
        "artifacts",
        nargs="*",
        metavar=f"{{{','.join(choices)}}}",
        help="which artifact(s) to regenerate (default: all)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller sweeps (1/4/16 nodes, reduced workloads)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="minimal CI smoke run (1/4 nodes, reduced workloads)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="directory to write CSV files into",
    )
    parser.add_argument(
        "--comms",
        action="store_true",
        help="run the communication-layer panel: each app with transfer "
        "coalescing + replica prefetch off vs. on, reporting message "
        "counts, bytes, and wall-clock deltas (non-zero exit if the "
        "optimised run changes computed outputs or moved bytes)",
    )
    parser.add_argument(
        "--scaling",
        action="store_true",
        help="run the Fig. 7 weak-scaling sweep for all three apps "
        "(full 1-64 nodes by default; --quick/--smoke shrink it) and "
        "print per-app host timing",
    )
    parser.add_argument(
        "--placement",
        action="store_true",
        help="run the placement policy tournament: the offline planner "
        "vs. data-aware/round-robin/random across all three apps and "
        "three fat-tree topologies, reporting wall clock, messages, "
        "bytes moved, and balancer migrations",
    )
    parser.add_argument(
        "--churn",
        action="store_true",
        help="run the elasticity panel: each app under node churn "
        "(scale-out, graceful drain, failure storms with checkpoint "
        "recovery) sweeping churn rate x storm size; simulated values "
        "are pinned exactly in BENCH_churn_baseline.json",
    )
    parser.add_argument(
        "--service",
        action="store_true",
        help="run the multi-tenant service panel: replay the committed "
        "arrival trace plus the contended fair-share demo, reporting "
        "per-tenant latency/throughput and the fairness index",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="with --scaling/--service: merge this run's section into "
        "the matching BENCH_*_baseline.json",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="with --scaling/--service: compare against the committed "
        "baseline; non-zero exit if any simulated value differs or "
        "wall clock regresses >20%%",
    )
    parser.add_argument(
        "--profile",
        metavar="APP",
        choices=sorted(PANELS),
        default=None,
        help="profile one panel under cProfile and print the top-20 "
        "functions by cumulative time (quick mode unless --smoke)",
    )
    parser.add_argument(
        "--sentinel",
        action="store_true",
        help="re-run each panel with the runtime invariant sentinel "
        "attached; report checking overhead and any violations "
        "(non-zero exit if an invariant fails)",
    )
    parser.add_argument(
        "--analyze",
        action="store_true",
        help="re-run each panel with static admission analysis attached; "
        "report per-panel analysis wall time and finding counts "
        "(non-zero exit if any error finding surfaces)",
    )
    args = parser.parse_args(argv)

    for artifact in args.artifacts:
        if artifact not in choices:
            parser.error(
                f"argument artifacts: invalid choice: {artifact!r} "
                f"(choose from {', '.join(map(repr, choices))})"
            )

    wanted = set(args.artifacts or ["all"])
    if "all" in wanted:
        wanted = {"table1", *PANELS}
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)

    if args.profile is not None:
        import cProfile
        import pstats

        build = PANELS[args.profile]
        quick = args.quick or not args.smoke
        profiler = cProfile.Profile()
        profiler.enable()
        build(quick=quick, smoke=args.smoke)
        profiler.disable()
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)
        return 0

    if args.scaling:
        from repro.bench.scaling import (
            check_panel,
            load_baseline,
            render_scaling_summary,
            scaling_panel,
            write_baseline,
        )

        panel = scaling_panel(quick=args.quick, smoke=args.smoke)
        for series in panel.series.values():
            print(render_series(series))
            print()
        print(render_scaling_summary(panel))
        print()
        if args.write_baseline:
            path = write_baseline(panel)
            print(f"wrote {path}")
            print()
        if args.check:
            problems = check_panel(panel, load_baseline())
            if problems:
                for problem in problems:
                    print(f"scaling check: {problem}")
                return 1
            print("scaling check: matches committed baseline")
            print()
        if not (args.artifacts or args.sentinel or args.analyze):
            return 0

    if args.placement:
        from repro.bench.placement import (
            check_panel as check_placement,
            load_baseline as load_placement_baseline,
            placement_panel,
            render_placement_leaderboard,
            semantic_problems as placement_semantic_problems,
            write_baseline as write_placement_baseline,
        )

        panel = placement_panel(quick=args.quick, smoke=args.smoke)
        print(render_placement_leaderboard(panel))
        print()
        if args.write_baseline:
            problems = placement_semantic_problems(panel)
            if problems:
                for problem in problems:
                    print(f"placement panel: {problem}")
                return 1
            path = write_placement_baseline(panel)
            print(f"wrote {path}")
            print()
        if args.check:
            problems = check_placement(panel, load_placement_baseline())
            if problems:
                for problem in problems:
                    print(f"placement check: {problem}")
                return 1
            print("placement check: matches committed baseline")
            print()
        if not (args.artifacts or args.sentinel or args.analyze):
            return 0

    if args.churn:
        from repro.bench.churn import (
            check_panel as check_churn,
            churn_panel,
            load_baseline as load_churn_baseline,
            render_churn_summary,
            semantic_problems as churn_semantic_problems,
            write_baseline as write_churn_baseline,
        )

        panel = churn_panel(quick=args.quick, smoke=args.smoke)
        print(render_churn_summary(panel))
        print()
        if args.write_baseline:
            problems = churn_semantic_problems(panel)
            if problems:
                for problem in problems:
                    print(f"churn panel: {problem}")
                return 1
            path = write_churn_baseline(panel)
            print(f"wrote {path}")
            print()
        if args.check:
            problems = check_churn(panel, load_churn_baseline())
            if problems:
                for problem in problems:
                    print(f"churn check: {problem}")
                return 1
            print("churn check: matches committed baseline")
            print()
        if not (args.artifacts or args.sentinel or args.analyze):
            return 0

    if args.service:
        from repro.bench.service import (
            check_panel as check_service,
            load_baseline as load_service_baseline,
            render_service_summary,
            semantic_problems,
            service_panel,
            write_baseline as write_service_baseline,
        )

        panel = service_panel()
        print(render_service_summary(panel))
        print()
        if args.write_baseline:
            problems = semantic_problems(panel)
            if problems:
                for problem in problems:
                    print(f"service panel: {problem}")
                return 1
            path = write_service_baseline(panel)
            print(f"wrote {path}")
            print()
        if args.check:
            problems = check_service(panel, load_service_baseline())
            if problems:
                for problem in problems:
                    print(f"service check: {problem}")
                return 1
            print("service check: matches committed baseline")
            print()
        if not (args.artifacts or args.sentinel or args.analyze):
            return 0

    if args.comms:
        from repro.bench.comms import comms_panel, comms_to_json, render_comms

        started = time.perf_counter()
        points = comms_panel(quick=args.quick, smoke=args.smoke)
        elapsed = time.perf_counter() - started
        print(render_comms(points))
        print(f"(regenerated in {elapsed:.1f}s wall time)")
        print()
        if args.out is not None:
            path = args.out / "comms.json"
            path.write_text(comms_to_json(points))
            print(f"wrote {path}")
            print()
        if not all(p.outputs_identical for p in points):
            print("comms: optimised run changed outputs or moved bytes")
            return 1
        if not (args.artifacts or args.sentinel or args.analyze):
            return 0

    if "table1" in wanted:
        print(render_table1(table1()))
        print()

    ran_panels = False
    total_violations = 0
    total_analysis_errors = 0
    for name, build in PANELS.items():
        if name not in wanted:
            continue
        ran_panels = True
        if args.sentinel:
            # cold-start every timed segment (see the matching reset
            # before the checked run below)
            from repro.regions.kernel import get_kernel

            get_kernel().reset()
        started = time.perf_counter()
        series = build(quick=args.quick, smoke=args.smoke)
        elapsed = time.perf_counter() - started
        print(render_series(series))
        print(f"(regenerated in {elapsed:.1f}s wall time)")
        print()
        if args.sentinel:
            import gc

            from repro.regions.kernel import get_kernel
            from repro.runtime import sentinel as sentinel_mod

            # the baseline run above started with cold region-kernel
            # caches; a second run in the same process inherits its
            # interned regions and op-LRU entries plus their GC
            # pressure, which alone inflates wall time by >10% on the
            # stencil panel.  Reset to the baseline's cold-start state
            # so the delta measures the sentinel, not cache history.
            get_kernel().reset()
            gc.collect()
            sentinel_mod.enable_globally(
                sentinel_mod.SentinelConfig.bench_profile()
            )
            try:
                checked_started = time.perf_counter()
                build(quick=args.quick, smoke=args.smoke)
                checked_elapsed = time.perf_counter() - checked_started
            finally:
                sentinels = sentinel_mod.drain_created()
                sentinel_mod.reset_global()
            checks = sum(s.checks for s in sentinels)
            scans = sum(s.scans for s in sentinels)
            violations = sum(len(s.violations) for s in sentinels)
            total_violations += violations
            overhead = (
                (checked_elapsed / elapsed - 1.0) * 100.0 if elapsed else 0.0
            )
            print(
                f"(sentinel: {checked_elapsed:.1f}s wall time, "
                f"{overhead:+.1f}% overhead, {checks} checks, "
                f"{scans} scans, {violations} violation(s))"
            )
            for sentinel in sentinels:
                for line in sentinel.report_lines()[1:]:
                    print(line)
            print()
        if args.analyze:
            from repro.analysis import admission

            admission.enable_globally(admission.AdmissionConfig(strict=False))
            try:
                analyzed_started = time.perf_counter()
                build(quick=args.quick, smoke=args.smoke)
                analyzed_elapsed = time.perf_counter() - analyzed_started
            finally:
                controllers = admission.drain_created()
                admission.reset_global()
            reports = [
                report
                for controller in controllers
                for report in controller.reports
            ]
            analysis_time = sum(report.elapsed for report in reports)
            counts = {"error": 0, "warning": 0, "info": 0}
            for report in reports:
                for severity, count in report.counts().items():
                    counts[severity] += count
            total_analysis_errors += counts["error"]
            share = (
                analysis_time / analyzed_elapsed * 100.0
                if analyzed_elapsed
                else 0.0
            )
            print(
                f"(analysis: {analysis_time * 1000.0:.1f} ms over "
                f"{len(reports)} submission(s) ({share:.1f}% of "
                f"{analyzed_elapsed:.1f}s wall time), "
                f"{counts['error']} error(s), {counts['warning']} "
                f"warning(s), {counts['info']} info(s))"
            )
            for report in reports:
                if not report.clean:
                    for line in report.render_lines(max_findings=10):
                        print(f"  {line}")
            print()
        if args.out is not None:
            path = args.out / f"fig7_{name}.csv"
            path.write_text(series_to_csv(series))
            print(f"wrote {path}")
            print()

    if ran_panels:
        stats = region_cache_stats()
        print(render_region_cache(stats))
        print()
        if args.out is not None:
            path = args.out / "region_cache.csv"
            path.write_text(region_cache_csv(stats))
            print(f"wrote {path}")
            print()
    if total_violations:
        print(f"sentinel: {total_violations} invariant violation(s) detected")
        return 1
    if total_analysis_errors:
        print(f"analysis: {total_analysis_errors} error finding(s) detected")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
