"""Command-line regeneration of the paper's evaluation artifacts.

Usage::

    python -m repro.bench table1
    python -m repro.bench stencil ipic3d tpc          # Fig. 7 panels
    python -m repro.bench all --quick --out results/  # CSV per panel

Each panel prints the regenerated table; with ``--out`` the raw numbers
are additionally written as CSV files.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.bench.figures import fig7_ipic3d, fig7_stencil, fig7_tpc
from repro.bench.report import (
    region_cache_csv,
    region_cache_stats,
    render_region_cache,
    render_series,
    render_table1,
    series_to_csv,
)
from repro.bench.tables import table1

PANELS = {
    "stencil": fig7_stencil,
    "ipic3d": fig7_ipic3d,
    "tpc": fig7_tpc,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation tables and figures.",
    )
    choices = ["table1", *PANELS, "all"]
    parser.add_argument(
        "artifacts",
        nargs="*",
        metavar=f"{{{','.join(choices)}}}",
        help="which artifact(s) to regenerate (default: all)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller sweeps (1/4/16 nodes, reduced workloads)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="minimal CI smoke run (1/4 nodes, reduced workloads)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="directory to write CSV files into",
    )
    args = parser.parse_args(argv)

    for artifact in args.artifacts:
        if artifact not in choices:
            parser.error(
                f"argument artifacts: invalid choice: {artifact!r} "
                f"(choose from {', '.join(map(repr, choices))})"
            )

    wanted = set(args.artifacts or ["all"])
    if "all" in wanted:
        wanted = {"table1", *PANELS}
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)

    if "table1" in wanted:
        print(render_table1(table1()))
        print()

    ran_panels = False
    for name, build in PANELS.items():
        if name not in wanted:
            continue
        ran_panels = True
        started = time.perf_counter()
        series = build(quick=args.quick, smoke=args.smoke)
        elapsed = time.perf_counter() - started
        print(render_series(series))
        print(f"(regenerated in {elapsed:.1f}s wall time)")
        print()
        if args.out is not None:
            path = args.out / f"fig7_{name}.csv"
            path.write_text(series_to_csv(series))
            print(f"wrote {path}")
            print()

    if ran_panels:
        stats = region_cache_stats()
        print(render_region_cache(stats))
        print()
        if args.out is not None:
            path = args.out / "region_cache.csv"
            path.write_text(region_cache_csv(stats))
            print(f"wrote {path}")
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
