"""The ``--churn`` panel: elasticity under node churn as a pinned artifact.

Each cell runs one application (stencil / iPiC3D / TPC) on a cluster
whose membership changes *mid-run* through
:class:`~repro.runtime.elastic.ChurnController`:

* ``baseline`` — no churn (the static reference the others perturb);
* ``scale_out`` — nodes join mid-run, ownership shares migrate to them;
* ``drain`` — a node leaves gracefully, evacuating tasks and data;
* ``storm<S>xr<R>`` — the churn-rate × storm-size grid: ``R``
  join/drain cycles spread over the run plus one correlated failure of
  ``S`` nodes recovered from a checkpoint.

Every simulated quantity a cell reports (elapsed seconds, churn event
counts, evacuated/restored bytes, forwarded tasks, recovery time) is
deterministic, so ``--check`` demands exact equality against the
committed ``BENCH_churn_baseline.json`` — any drift is a behaviour
change.  Host wall clock gets the usual :data:`ELAPSED_TOLERANCE`.

The panel is sentinel-aware: run under ``REPRO_SENTINEL=1`` the runtimes
attach strict invariant sentinels, the panel records their violation
counts, and :func:`semantic_problems` rejects a baseline write with any
violation — the CI job pins "zero sentinel violations across the whole
churn sweep" as a hard gate.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass, field

from repro.apps.ipic3d import IPic3DWorkload, ipic3d_allscale
from repro.apps.stencil import StencilWorkload, stencil_allscale
from repro.apps.tpc import TPCWorkload, tpc_allscale
from repro.runtime.config import RuntimeConfig
from repro.runtime.elastic import ChurnController, ChurnEvent
from repro.sim.cluster import Cluster, meggie_like_spec

#: schema version of the JSON baseline; bump on any section-shape change
CHURN_SCHEMA_VERSION = 1

#: committed location of the pinned sweep
BASELINE_PATH = (
    pathlib.Path(__file__).resolve().parents[3] / "BENCH_churn_baseline.json"
)

#: relative wall-clock regression ``--check`` tolerates
ELAPSED_TOLERANCE = 0.20

#: metrics every cell snapshots (exact simulated values)
_PINNED_METRICS = (
    "elastic.churn_events",
    "elastic.joins",
    "elastic.drains",
    "elastic.failures",
    "elastic.evacuated_bytes",
    "elastic.evacuated_tasks",
    "elastic.forwarded_tasks",
    "elastic.join_migrated_bytes",
    "elastic.restored_bytes",
    "elastic.recovery_time.mean",
    "dm.dead_letter_payloads",
)


def panel_mode(quick: bool, smoke: bool) -> str:
    if smoke:
        return "smoke"
    return "quick" if quick else "full"


def _grid(mode: str) -> tuple[int, list[tuple[int, int]]]:
    """(start nodes, [(churn rate, storm size), ...]) per mode."""
    if mode == "smoke":
        return 3, [(1, 1)]
    if mode == "quick":
        return 4, [(1, 1), (2, 1)]
    return 6, [(1, 1), (1, 2), (2, 1), (2, 2)]


def _workloads(mode: str) -> dict:
    reduced = mode != "full"
    return {
        "stencil": StencilWorkload(
            n_per_node=2_000 if reduced else 3_000,
            timesteps=4 if reduced else 6,
            functional=False,
        ),
        "ipic3d": IPic3DWorkload(
            particles_per_node=48_000_000,
            cells_per_node_side=6 if reduced else 8,
            timesteps=3 if reduced else 4,
        ),
        "tpc": TPCWorkload(
            total_points=2**24,
            depth=12,
            queries_total=64 if reduced else 128,
            functional=False,
            visit_flops=150.0,
            point_flops=30.0,
            task_subtree_height=7,
            submission_waves=4,
        ),
    }


_RUNNERS = {
    "stencil": stencil_allscale,
    "ipic3d": ipic3d_allscale,
    "tpc": tpc_allscale,
}


def _runtime_config() -> RuntimeConfig:
    return RuntimeConfig(functional=False, oversubscription=2)


@dataclass
class ChurnCell:
    """One (app, scenario) run with its pinned simulated outcomes."""

    app: str
    scenario: str
    sim_elapsed: float
    metrics: dict[str, float]
    #: membership log length (joins+drains+storm victims applied)
    membership_changes: int
    final_processes: int
    sentinel_violations: int | None


@dataclass
class ChurnPanel:
    mode: str
    start_nodes: int
    cells: list[ChurnCell] = field(default_factory=list)
    wall_seconds: dict[str, float] = field(default_factory=dict)
    #: whether the strict sentinel was attached during this sweep
    sentinel_attached: bool = False

    @property
    def wall_total(self) -> float:
        return sum(self.wall_seconds.values())


def _schedule(
    scenario: str, total: float, rate: int, storm: int
) -> list[ChurnEvent]:
    """Deterministic event schedule for one scenario, sized to a
    baseline run's total simulated duration ``total``."""
    if scenario == "baseline":
        return []
    if scenario == "scale_out":
        return [
            ChurnEvent(at=total * 0.30, kind="join"),
            ChurnEvent(at=total * 0.55, kind="join", flops_per_core=4.8e9),
        ]
    if scenario == "drain":
        return [ChurnEvent(at=total * 0.35, kind="drain")]
    # storm grid: `rate` join/drain cycles spread over the run plus one
    # correlated loss of `storm` nodes recovered mid-run
    events: list[ChurnEvent] = []
    for k in range(rate):
        base = total * (0.2 + 0.5 * k / max(1, rate))
        events.append(ChurnEvent(at=base, kind="join"))
        events.append(ChurnEvent(at=base + total * 0.1, kind="drain"))
    events.append(ChurnEvent(at=total * 0.75, kind="storm", count=storm))
    return events


def _run_cell(app: str, workload, nodes: int, events: list[ChurnEvent]):
    """One app run with a churn schedule attached; returns (cell data)."""
    captured: dict = {}

    def on_runtime(runtime) -> None:
        captured["runtime"] = runtime
        if events:
            controller = ChurnController(runtime, events=list(events))
            captured["controller"] = controller
            controller.start()

    result = _RUNNERS[app](
        Cluster(meggie_like_spec(nodes)),
        workload,
        _runtime_config(),
        on_runtime=on_runtime,
    )
    runtime = captured["runtime"]
    controller = captured.get("controller")
    if controller is not None and not controller.done:
        raise RuntimeError(
            f"{app}: churn schedule did not complete within the run"
        )
    snapshot = runtime.metrics.snapshot()
    runtime.check_ownership_invariants()
    violations = None
    if runtime.sentinel is not None:
        runtime.sentinel.verify_all()
        violations = len(runtime.sentinel.violations)
    return result, runtime, controller, snapshot, violations


def churn_panel(quick: bool = False, smoke: bool = False) -> ChurnPanel:
    """Run the full churn sweep: every app × every scenario."""
    mode = panel_mode(quick, smoke)
    nodes, grid = _grid(mode)
    workloads = _workloads(mode)
    panel = ChurnPanel(mode=mode, start_nodes=nodes)
    for app, workload in workloads.items():
        started = time.perf_counter()
        # the baseline run calibrates the schedule clock for the rest
        result, runtime, _ctrl, snapshot, violations = _run_cell(
            app, workload, nodes, []
        )
        panel.sentinel_attached = (
            panel.sentinel_attached or runtime.sentinel is not None
        )
        total = runtime.now
        scenarios: list[tuple[str, int, int]] = [
            ("baseline", 0, 0),
            ("scale_out", 0, 0),
            ("drain", 0, 0),
        ] + [(f"storm{s}xr{r}", r, s) for r, s in grid]
        for scenario, rate, storm in scenarios:
            if scenario == "baseline":
                cell_result = result
                cell_snapshot = snapshot
                cell_runtime = runtime
                controller = None
                cell_violations = violations
            else:
                schedule = _schedule(scenario, total, rate, storm)
                (
                    cell_result,
                    cell_runtime,
                    controller,
                    cell_snapshot,
                    cell_violations,
                ) = _run_cell(app, workload, nodes, schedule)
            panel.cells.append(
                ChurnCell(
                    app=app,
                    scenario=scenario,
                    sim_elapsed=cell_result.elapsed,
                    metrics={
                        name: cell_snapshot.get(name, 0.0)
                        for name in _PINNED_METRICS
                    },
                    membership_changes=(
                        len(controller.log) if controller is not None else 0
                    ),
                    final_processes=len(cell_runtime.alive_processes()),
                    sentinel_violations=cell_violations,
                )
            )
        panel.wall_seconds[app] = time.perf_counter() - started
    return panel


# -- baseline pin -----------------------------------------------------------------


def panel_section(panel: ChurnPanel) -> dict:
    cells = {}
    for cell in panel.cells:
        cells[f"{cell.app}/{cell.scenario}"] = {
            "sim_elapsed": cell.sim_elapsed,
            "metrics": cell.metrics,
            "membership_changes": cell.membership_changes,
            "final_processes": cell.final_processes,
        }
    return {
        "start_nodes": panel.start_nodes,
        "cells": cells,
        "wall_seconds_total": round(panel.wall_total, 2),
    }


def load_baseline(path: pathlib.Path | None = None) -> dict | None:
    path = path or BASELINE_PATH
    if not path.exists():
        return None
    return json.loads(path.read_text())


def write_baseline(
    panel: ChurnPanel, path: pathlib.Path | None = None
) -> pathlib.Path:
    """Merge this run's mode section into the baseline file."""
    path = path or BASELINE_PATH
    baseline = load_baseline(path) or {
        "schema": CHURN_SCHEMA_VERSION,
        "modes": {},
    }
    baseline["schema"] = CHURN_SCHEMA_VERSION
    baseline["modes"][panel.mode] = panel_section(panel)
    path.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    return path


def semantic_problems(panel: ChurnPanel) -> list[str]:
    """Model-level sanity gates a run must clear to be pinned."""
    problems: list[str] = []
    for cell in panel.cells:
        key = f"{cell.app}/{cell.scenario}"
        if cell.sentinel_violations:
            problems.append(
                f"{key}: {cell.sentinel_violations} sentinel violation(s)"
            )
        if cell.scenario == "baseline":
            if cell.metrics.get("elastic.churn_events"):
                problems.append(f"{key}: baseline saw churn events")
            continue
        if not cell.metrics.get("elastic.churn_events"):
            problems.append(f"{key}: no churn events applied")
        if cell.scenario == "scale_out" and not cell.metrics.get(
            "elastic.joins"
        ):
            problems.append(f"{key}: no node joined")
        if cell.scenario == "drain":
            if not cell.metrics.get("elastic.drains"):
                problems.append(f"{key}: no node drained")
            if cell.metrics.get("elastic.evacuated_bytes", 0.0) <= 0.0:
                problems.append(f"{key}: drain evacuated no data")
        if cell.scenario.startswith("storm") and not cell.metrics.get(
            "elastic.failures"
        ):
            problems.append(f"{key}: storm failed no nodes")
    return problems


def check_panel(panel: ChurnPanel, baseline: dict | None) -> list[str]:
    """Exact comparison of simulated values against the committed pin."""
    if baseline is None:
        return [f"no baseline file at {BASELINE_PATH}"]
    section = baseline.get("modes", {}).get(panel.mode)
    if section is None:
        return [f"baseline has no {panel.mode!r} section"]
    problems = list(semantic_problems(panel))
    if section.get("start_nodes") != panel.start_nodes:
        problems.append(
            f"start nodes changed: baseline {section.get('start_nodes')}, "
            f"run {panel.start_nodes}"
        )
    pinned = section.get("cells", {})
    for cell in panel.cells:
        key = f"{cell.app}/{cell.scenario}"
        row = pinned.get(key)
        if row is None:
            problems.append(f"{key}: not in baseline")
            continue
        if cell.sim_elapsed != row.get("sim_elapsed"):
            problems.append(
                f"{key}: simulated elapsed changed "
                f"(baseline {row.get('sim_elapsed')!r}, "
                f"run {cell.sim_elapsed!r})"
            )
        for name, got in cell.metrics.items():
            want = row.get("metrics", {}).get(name, 0.0)
            if got != want:
                problems.append(
                    f"{key} {name}: changed (baseline {want!r}, run {got!r})"
                )
        for attr in ("membership_changes", "final_processes"):
            if getattr(cell, attr) != row.get(attr):
                problems.append(
                    f"{key} {attr}: changed (baseline {row.get(attr)!r}, "
                    f"run {getattr(cell, attr)!r})"
                )
    have = {f"{c.app}/{c.scenario}" for c in panel.cells}
    for key in pinned:
        if key not in have:
            problems.append(f"{key}: in baseline but not in run")
    pinned_total = section.get("wall_seconds_total")
    if pinned_total:
        limit = pinned_total * (1.0 + ELAPSED_TOLERANCE)
        if panel.wall_total > limit:
            problems.append(
                f"wall clock regressed: {panel.wall_total:.1f}s vs "
                f"baseline {pinned_total:.1f}s "
                f"(>{ELAPSED_TOLERANCE * 100.0:.0f}% over)"
            )
    return problems


def render_churn_summary(panel: ChurnPanel) -> str:
    lines = [
        f"Churn sweep ({panel.mode}: {panel.start_nodes} starting nodes"
        + (", strict sentinel attached" if panel.sentinel_attached else "")
        + ")"
    ]
    header = (
        f"  {'app/scenario':<22} {'sim s':>10} {'events':>7} "
        f"{'evac B':>10} {'restored B':>11} {'alive':>6}"
    )
    lines.append(header)
    for cell in panel.cells:
        lines.append(
            f"  {cell.app + '/' + cell.scenario:<22} "
            f"{cell.sim_elapsed:>10.5f} "
            f"{cell.metrics.get('elastic.churn_events', 0.0):>7.0f} "
            f"{cell.metrics.get('elastic.evacuated_bytes', 0.0):>10.0f} "
            f"{cell.metrics.get('elastic.restored_bytes', 0.0):>11.0f} "
            f"{cell.final_processes:>6}"
        )
    for app, wall in panel.wall_seconds.items():
        lines.append(f"  {app:<8} {wall:7.1f}s wall")
    lines.append(f"  {'total':<8} {panel.wall_total:7.1f}s wall")
    return "\n".join(lines)
