"""The ``--placement`` panel: offline planner vs. online policies.

A policy *tournament*: every application × topology × policy combination
runs the same workload, and the leaderboard reports simulated wall
clock, message count, bytes moved (wire payload plus migrated/replicated
fragment bytes), and load-balancer migrations.  The contenders:

* ``planned`` — :class:`~repro.placement.policy.PlannedPolicy` carrying
  a fresh offline :class:`~repro.placement.plan.PlacementPlan` solved
  per app × topology;
* ``data-aware`` — the runtime's default online policy;
* ``round-robin`` / ``random`` — the scheduler-ablation baselines.

The online policies are deliberately *shared instances* across all
races: the ``reset()`` contract (invoked at runtime construction) must
make back-to-back runs identical, and this panel's exact-match baseline
is the standing proof.

Results are pinned in ``BENCH_placement_baseline.json``.  ``--check``
demands exact simulated values (the simulator is deterministic) and
enforces the planner's headline guarantee: ``planned`` moves strictly
fewer bytes than both ablation baselines for every application.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass, field, replace

from repro.apps.common import AppResult
from repro.apps.ipic3d import IPic3DWorkload, ipic3d_allscale, ipic3d_program
from repro.apps.stencil import StencilWorkload, stencil_allscale, stencil_program
from repro.apps.tpc import (
    TPCProblem,
    TPCWorkload,
    make_problem,
    tpc_allscale,
    tpc_program,
)
from repro.bench.scaling import panel_mode
from repro.placement import PlannedPolicy, plan_placement
from repro.runtime.config import RuntimeConfig
from repro.runtime.policies import (
    DataAwarePolicy,
    RandomPolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
)
from repro.sim.cluster import Cluster, ClusterSpec, meggie_like_spec

#: schema version of the JSON baseline; bump on any section-shape change
PLACEMENT_SCHEMA_VERSION = 1

#: committed location of the pinned tournament
BASELINE_PATH = (
    pathlib.Path(__file__).resolve().parents[3]
    / "BENCH_placement_baseline.json"
)

#: relative host wall-clock regression ``--check`` tolerates
ELAPSED_TOLERANCE = 0.20

#: name → (node count, fat-tree switch radix).  Three shapes: a single
#: edge-switch group, a deep skinny tree (every hop counts), and a wide
#: two-level machine.
TOPOLOGIES: dict[str, tuple[int, int]] = {
    "edge4": (4, 16),
    "deep8": (8, 2),
    "wide16": (16, 4),
}

POLICIES = ("planned", "data-aware", "round-robin", "random")

#: cores per node for every tournament cluster.  Placement quality is a
#: cross-*node* story; meggie's 20 cores only multiply the leaf-task and
#: message counts (the worst 16-node races get ~10x slower to simulate)
#: without changing who wins.
TOURNAMENT_CORES = 4


@dataclass
class RaceResult:
    """One policy's metrics on one app × topology race."""

    app: str
    topology: str
    policy: str
    #: simulated seconds (exact, deterministic)
    elapsed: float
    messages: float
    bytes_moved: float
    migrations: float
    preplaced: float

    def values(self) -> dict[str, float]:
        return {
            "elapsed": self.elapsed,
            "messages": self.messages,
            "bytes_moved": self.bytes_moved,
            "migrations": self.migrations,
            "preplaced": self.preplaced,
        }


@dataclass
class PlacementPanel:
    """One complete tournament at one mode."""

    mode: str
    results: list[RaceResult] = field(default_factory=list)
    #: (app, topology) → planner digest
    plans: dict[str, dict] = field(default_factory=dict)
    wall_seconds: float = 0.0

    def race(self, app: str, topology: str, policy: str) -> RaceResult:
        for result in self.results:
            if (result.app, result.topology, result.policy) == (
                app,
                topology,
                policy,
            ):
                return result
        raise KeyError(f"no race {app}/{topology}/{policy}")


def _spec(nodes: int, radix: int) -> ClusterSpec:
    return replace(
        meggie_like_spec(nodes),
        switch_radix=radix,
        cores_per_node=TOURNAMENT_CORES,
    )


def _config(balancer_interval: float) -> RuntimeConfig:
    return RuntimeConfig(
        functional=False,
        oversubscription=2,
        load_balancing=True,
        balancer_interval=balancer_interval,
    )


@dataclass
class _AppSetup:
    """One app's workload, program builder, and driver at one mode."""

    name: str
    #: balancer period, scaled to the app's simulated duration
    balancer_interval: float
    program: object  # Callable[[int], TaskProgram]
    run: object  # Callable[[ClusterSpec, SchedulingPolicy], AppResult]


def _apps(mode: str) -> list[_AppSetup]:
    if mode == "full":
        stencil_wl = StencilWorkload(
            n_per_node=2_000, timesteps=3, functional=False
        )
        ipic3d_wl = IPic3DWorkload(
            particles_per_node=24_000_000, cells_per_node_side=6, timesteps=2
        )
        tpc_wl = TPCWorkload(
            total_points=2**27,
            depth=14,
            queries_total=96,
            functional=False,
            visit_flops=150.0,
            point_flops=30.0,
            task_subtree_height=8,
        )
    elif mode == "quick":
        stencil_wl = StencilWorkload(
            n_per_node=1_000, timesteps=2, functional=False
        )
        ipic3d_wl = IPic3DWorkload(
            particles_per_node=12_000_000, cells_per_node_side=4, timesteps=2
        )
        tpc_wl = TPCWorkload(
            total_points=2**25,
            depth=12,
            queries_total=64,
            functional=False,
            visit_flops=150.0,
            point_flops=30.0,
            task_subtree_height=7,
        )
    else:  # smoke
        stencil_wl = StencilWorkload(
            n_per_node=500, timesteps=2, functional=False
        )
        ipic3d_wl = IPic3DWorkload(
            particles_per_node=6_000_000, cells_per_node_side=4, timesteps=1
        )
        tpc_wl = TPCWorkload(
            total_points=2**23,
            depth=10,
            queries_total=32,
            functional=False,
            visit_flops=150.0,
            point_flops=30.0,
            task_subtree_height=6,
        )

    problems: dict[int, TPCProblem] = {}

    def tpc_problem(nodes: int) -> TPCProblem:
        if nodes not in problems:
            problems[nodes] = make_problem(tpc_wl, nodes)
        return problems[nodes]

    def run_stencil(spec: ClusterSpec, policy: SchedulingPolicy) -> AppResult:
        return stencil_allscale(
            Cluster(spec), stencil_wl, _config(2e-4), policy
        )

    def run_ipic3d(spec: ClusterSpec, policy: SchedulingPolicy) -> AppResult:
        return ipic3d_allscale(
            Cluster(spec), ipic3d_wl, _config(20.0), policy
        )

    def run_tpc(spec: ClusterSpec, policy: SchedulingPolicy) -> AppResult:
        return tpc_allscale(
            Cluster(spec),
            tpc_wl,
            _config(2e-3),
            policy,
            problem=tpc_problem(spec.num_nodes),
        )

    return [
        _AppSetup(
            "stencil",
            2e-4,
            lambda nodes: stencil_program(
                stencil_wl, nodes, cores_per_node=TOURNAMENT_CORES
            ),
            run_stencil,
        ),
        _AppSetup(
            "ipic3d",
            20.0,
            lambda nodes: ipic3d_program(
                ipic3d_wl, nodes, cores_per_node=TOURNAMENT_CORES
            ),
            run_ipic3d,
        ),
        _AppSetup(
            "tpc",
            2e-3,
            lambda nodes: tpc_program(tpc_problem(nodes)),
            run_tpc,
        ),
    ]


def _measure(
    app: str, topology: str, policy_name: str, result: AppResult
) -> RaceResult:
    runtime = result.extras["runtime"]
    counters = runtime.metrics
    return RaceResult(
        app=app,
        topology=topology,
        policy=policy_name,
        elapsed=result.elapsed,
        messages=counters.counter("net.messages"),
        bytes_moved=(
            counters.counter("net.bytes") + runtime.data_bytes_moved()
        ),
        migrations=counters.counter("balancer.migrations"),
        preplaced=counters.counter("placement.preplaced_items"),
    )


def placement_panel(
    quick: bool = False, smoke: bool = False
) -> PlacementPanel:
    """Run the full tournament: apps × topologies × policies."""
    mode = panel_mode(quick, smoke)
    panel = PlacementPanel(mode=mode)
    started = time.perf_counter()
    # shared across every race on purpose: reset() must isolate runs
    online: dict[str, SchedulingPolicy] = {
        "data-aware": DataAwarePolicy(),
        "round-robin": RoundRobinPolicy(),
        "random": RandomPolicy(seed=0),
    }
    for setup in _apps(mode):
        for topo_name, (nodes, radix) in TOPOLOGIES.items():
            spec = _spec(nodes, radix)
            plan = plan_placement(setup.program(nodes), Cluster(spec))
            panel.plans[f"{setup.name}/{topo_name}"] = plan.summary()
            for policy_name in POLICIES:
                policy: SchedulingPolicy
                if policy_name == "planned":
                    policy = PlannedPolicy(plan)
                else:
                    policy = online[policy_name]
                panel.results.append(
                    _measure(
                        setup.name,
                        topo_name,
                        policy_name,
                        setup.run(spec, policy),
                    )
                )
    panel.wall_seconds = time.perf_counter() - started
    return panel


def semantic_problems(panel: PlacementPanel) -> list[str]:
    """The planner's headline claims, independent of any baseline.

    ``planned`` must move strictly fewer bytes than *both* ablation
    baselines on every app × topology, and must pre-distribute at least
    one item everywhere (proof the plan actually engaged).
    """
    problems: list[str] = []
    for setup_app in ("stencil", "ipic3d", "tpc"):
        for topo_name in TOPOLOGIES:
            try:
                planned = panel.race(setup_app, topo_name, "planned")
            except KeyError:
                problems.append(f"{setup_app}/{topo_name}: planned race missing")
                continue
            if planned.preplaced < 1:
                problems.append(
                    f"{setup_app}/{topo_name}: plan pre-placed no items"
                )
            for rival_name in ("round-robin", "random"):
                rival = panel.race(setup_app, topo_name, rival_name)
                if not planned.bytes_moved < rival.bytes_moved:
                    problems.append(
                        f"{setup_app}/{topo_name}: planned moved "
                        f"{planned.bytes_moved:.0f} bytes, not fewer than "
                        f"{rival_name}'s {rival.bytes_moved:.0f}"
                    )
    return problems


# -- baseline ------------------------------------------------------------------


def panel_section(panel: PlacementPanel) -> dict:
    races = [
        {
            "app": result.app,
            "topology": result.topology,
            "policy": result.policy,
            **result.values(),
        }
        for result in panel.results
    ]
    return {
        "topologies": {
            name: {"nodes": nodes, "radix": radix}
            for name, (nodes, radix) in TOPOLOGIES.items()
        },
        "races": races,
        "plans": panel.plans,
        "wall_seconds": round(panel.wall_seconds, 2),
    }


def load_baseline(path: pathlib.Path | None = None) -> dict | None:
    path = path or BASELINE_PATH
    if not path.exists():
        return None
    return json.loads(path.read_text())


def write_baseline(
    panel: PlacementPanel, path: pathlib.Path | None = None
) -> pathlib.Path:
    """Merge this run's section into the baseline file (kept per mode)."""
    path = path or BASELINE_PATH
    baseline = load_baseline(path) or {
        "schema": PLACEMENT_SCHEMA_VERSION,
        "modes": {},
    }
    baseline["schema"] = PLACEMENT_SCHEMA_VERSION
    baseline["modes"][panel.mode] = panel_section(panel)
    path.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    return path


def check_panel(panel: PlacementPanel, baseline: dict | None) -> list[str]:
    """Exact-match the committed baseline, then the semantic claims."""
    if baseline is None:
        return [f"no baseline file at {BASELINE_PATH}"]
    section = baseline.get("modes", {}).get(panel.mode)
    if section is None:
        return [f"baseline has no {panel.mode!r} section"]
    problems: list[str] = []
    pinned = {
        (row["app"], row["topology"], row["policy"]): row
        for row in section.get("races", ())
    }
    for result in panel.results:
        key = (result.app, result.topology, result.policy)
        row = pinned.get(key)
        if row is None:
            problems.append(f"{'/'.join(key)}: not in baseline")
            continue
        for metric, got in result.values().items():
            want = row.get(metric)
            if got != want:
                problems.append(
                    f"{'/'.join(key)} {metric}: output changed "
                    f"(baseline {want!r}, run {got!r})"
                )
    for key in pinned:
        if key not in {
            (r.app, r.topology, r.policy) for r in panel.results
        }:
            problems.append(f"{'/'.join(key)}: in baseline but not run")
    pinned_wall = section.get("wall_seconds")
    if pinned_wall:
        limit = pinned_wall * (1.0 + ELAPSED_TOLERANCE)
        if panel.wall_seconds > limit:
            problems.append(
                f"wall clock regressed: {panel.wall_seconds:.1f}s vs "
                f"baseline {pinned_wall:.1f}s "
                f"(>{ELAPSED_TOLERANCE * 100.0:.0f}% over)"
            )
    problems.extend(semantic_problems(panel))
    return problems


def render_placement_leaderboard(panel: PlacementPanel) -> str:
    """Per app × topology leaderboard, best simulated wall clock first."""
    lines = [f"Placement tournament ({panel.mode})"]
    header = (
        f"  {'policy':<12} {'wall(sim)':>12} {'messages':>10} "
        f"{'bytes moved':>14} {'migrations':>10}"
    )
    for setup_app in ("stencil", "ipic3d", "tpc"):
        for topo_name, (nodes, radix) in TOPOLOGIES.items():
            rows = sorted(
                (
                    r
                    for r in panel.results
                    if r.app == setup_app and r.topology == topo_name
                ),
                key=lambda r: (r.elapsed, r.policy),
            )
            if not rows:
                continue
            lines.append(
                f"{setup_app} @ {topo_name} "
                f"({nodes} nodes, radix {radix})"
            )
            lines.append(header)
            for row in rows:
                lines.append(
                    f"  {row.policy:<12} {row.elapsed:>12.6f} "
                    f"{row.messages:>10.0f} {row.bytes_moved:>14.0f} "
                    f"{row.migrations:>10.0f}"
                )
            lines.append("")
    lines.append(f"(tournament ran in {panel.wall_seconds:.1f}s wall time)")
    return "\n".join(lines)
