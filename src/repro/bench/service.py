"""The ``--service`` panel: multi-tenant replay pinned as an artifact.

Two deterministic sub-panels, both pure simulation (exact goldens, not
estimates):

* **smoke** — replays the committed arrival trace
  (``traces/multi_tenant_smoke.json``) through the in-process service
  and pins per-tenant latency (mean queue wait, mean turnaround),
  throughput, node-second totals, rejection counts by reason, and the
  fairness index.
* **contended** — replays the acceptance demo (3 tenants, 3:2:1
  weights, 126 jobs arriving at once) and pins per-tenant committed
  node-second shares at the 72-dispatch contended horizon, where the
  stride scheduler's split must match the configured weights exactly.

``--check`` compares a fresh run against
``BENCH_service_baseline.json``: every simulated value must be
*identical* (any drift is a scheduler behaviour change, not noise), the
contended shares must sit within :data:`SHARE_TOLERANCE` of the
configured weights, no racy job may ever be admitted, and host wall
clock must not regress by more than :data:`ELAPSED_TOLERANCE`.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass

from repro.service.trace import (
    DEMO_HORIZON_DISPATCHES,
    Trace,
    demo_trace,
    replay,
)

#: schema version of the JSON baseline; bump on any section-shape change
SERVICE_SCHEMA_VERSION = 1

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]

#: committed location of the pinned replay numbers
BASELINE_PATH = _REPO_ROOT / "BENCH_service_baseline.json"

#: the committed arrival trace the smoke sub-panel replays
SMOKE_TRACE_PATH = _REPO_ROOT / "traces" / "multi_tenant_smoke.json"

#: relative wall-clock regression ``--check`` tolerates
ELAPSED_TOLERANCE = 0.20

#: maximum relative deviation of an observed contended share from the
#: configured weight share (the ISSUE's 10% acceptance bound)
SHARE_TOLERANCE = 0.10


@dataclass
class ServicePanel:
    """Both sub-panel reports plus host timing."""

    smoke: dict
    contended: dict
    wall_seconds: float


def service_panel() -> ServicePanel:
    """Run both replays; everything but ``wall_seconds`` is exact."""
    started = time.perf_counter()
    smoke_report = replay(Trace.load(str(SMOKE_TRACE_PATH)))
    demo_report = replay(
        demo_trace(), horizon_dispatches=DEMO_HORIZON_DISPATCHES
    )
    return ServicePanel(
        smoke=smoke_report,
        contended=demo_report,
        wall_seconds=time.perf_counter() - started,
    )


def panel_section(panel: ServicePanel) -> dict:
    """The baseline section: exact simulated pins plus host timing."""
    return {
        "pins": {
            "smoke": panel.smoke,
            "contended": panel.contended,
        },
        "wall_seconds": round(panel.wall_seconds, 2),
    }


def load_baseline(path: pathlib.Path | None = None) -> dict | None:
    path = path or BASELINE_PATH
    if not path.exists():
        return None
    return json.loads(path.read_text())


def write_baseline(
    panel: ServicePanel, path: pathlib.Path | None = None
) -> pathlib.Path:
    path = path or BASELINE_PATH
    baseline = {
        "schema": SERVICE_SCHEMA_VERSION,
        "service": panel_section(panel),
    }
    path.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    return path


def _diff(path: str, want, got, problems: list[str]) -> None:
    """Recursive exact comparison with dotted-path problem reports."""
    if isinstance(want, dict) and isinstance(got, dict):
        for key in sorted(set(want) | set(got)):
            if key not in want:
                problems.append(f"{path}.{key}: not in baseline")
            elif key not in got:
                problems.append(f"{path}.{key}: missing from run")
            else:
                _diff(f"{path}.{key}", want[key], got[key], problems)
        return
    if want != got:
        problems.append(f"{path}: baseline {want!r}, run {got!r}")


def semantic_problems(panel: ServicePanel) -> list[str]:
    """Baseline-independent acceptance checks on a fresh run."""
    problems: list[str] = []
    for name, report in (("smoke", panel.smoke), ("contended", panel.contended)):
        if report["false_accepts"]:
            problems.append(
                f"{name}: {report['false_accepts']} racy job(s) admitted"
            )
    for name, share in panel.contended["contended"]["tenants"].items():
        observed = share["observed_share"]
        configured = share["configured_share"]
        if configured <= 0:
            continue
        error = abs(observed - configured) / configured
        if error > SHARE_TOLERANCE:
            problems.append(
                f"contended: tenant {name} share {observed:.4f} deviates "
                f"{error:.1%} from configured {configured:.4f} "
                f"(tolerance {SHARE_TOLERANCE:.0%})"
            )
    return problems


def check_panel(panel: ServicePanel, baseline: dict | None) -> list[str]:
    """Compare a fresh run against the committed baseline.

    Simulated values must match exactly; wall clock may drift within
    the tolerance; the semantic share/false-accept bounds apply on top
    (they would catch a baseline that was itself regenerated broken).
    """
    problems = semantic_problems(panel)
    if baseline is None:
        problems.append(f"no baseline file at {BASELINE_PATH}")
        return problems
    if baseline.get("schema") != SERVICE_SCHEMA_VERSION:
        problems.append(
            f"baseline schema {baseline.get('schema')!r} != "
            f"{SERVICE_SCHEMA_VERSION}"
        )
        return problems
    section = baseline.get("service", {})
    _diff("pins", section.get("pins"), panel_section(panel)["pins"], problems)
    pinned_wall = section.get("wall_seconds")
    if pinned_wall:
        # the replay takes well under a second, where relative tolerance
        # is all noise — allow one absolute second of host jitter on top
        limit = pinned_wall * (1.0 + ELAPSED_TOLERANCE) + 1.0
        if panel.wall_seconds > limit:
            problems.append(
                f"wall clock regressed: {panel.wall_seconds:.1f}s vs "
                f"baseline {pinned_wall:.1f}s "
                f"(>{ELAPSED_TOLERANCE * 100.0:.0f}% over)"
            )
    return problems


def render_service_summary(panel: ServicePanel) -> str:
    """Human-readable per-tenant latency/throughput/fairness tables."""
    lines = ["Service replay (committed smoke trace)"]
    lines.append(
        f"  {panel.smoke['jobs']} jobs, makespan "
        f"{panel.smoke['makespan']:.4f}s sim, fairness "
        f"{panel.smoke['fairness_index']:.4f}, rejected "
        f"{panel.smoke['rejected_by_reason']}"
    )
    header = (
        f"  {'tenant':<8} {'w':>3} {'done':>5} {'rej':>4} "
        f"{'node-sec':>9} {'share':>6} {'conf':>6} {'wait':>8} "
        f"{'turn':>8} {'jobs/s':>8}"
    )
    lines.append(header)
    for name, row in panel.smoke["tenants"].items():
        lines.append(
            f"  {name:<8} {row['weight']:>3.0f} {row['completed']:>5} "
            f"{row['rejected']:>4} {row['node_seconds']:>9.4f} "
            f"{row['observed_share']:>6.3f} {row['configured_share']:>6.3f} "
            f"{row['mean_queue_wait']:>8.4f} {row['mean_turnaround']:>8.4f} "
            f"{row['throughput_jobs_per_second']:>8.1f}"
        )
    contended = panel.contended["contended"]
    lines.append(
        f"Contended shares at {contended['dispatches']} dispatches "
        f"(fairness {contended['fairness_index']:.4f})"
    )
    for name, share in contended["tenants"].items():
        lines.append(
            f"  {name:<8} committed {share['committed_node_seconds']:.4f} "
            f"observed {share['observed_share']:.4f} configured "
            f"{share['configured_share']:.4f}"
        )
    lines.append(f"  total {panel.wall_seconds:.1f}s wall")
    return "\n".join(lines)
