"""The ``--scaling`` panel: Fig. 7's weak-scaling sweep as a pinned artifact.

The paper's evaluation (§4, Fig. 7) sweeps all three applications from 1
to 64 nodes.  Before the flat-core refactor (array-backed event queue,
slotted hot classes, interned region ids) the full sweep was impractical
to regenerate routinely; this panel runs it end to end, times each
application, and pins the result in ``BENCH_scaling_baseline.json`` at
the repository root.

The baseline file holds one section per sweep *mode* (``full``,
``quick``, ``smoke``) because the reduced modes shrink the workloads,
not just the x-axis — their throughput values legitimately differ from
the full sweep's.  ``--check`` compares a fresh run against the matching
section: every throughput value must be *identical* (the simulator is
deterministic; any drift is a behaviour change, not noise) and the wall
clock must not regress by more than :data:`ELAPSED_TOLERANCE`.

The ``quick`` section additionally records the speedup against the
pre-refactor quick-bench wall clock (:data:`PR5_QUICK_SECONDS`), which
is the flat-core work's headline number.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass

from repro.bench.figures import (
    fig7_ipic3d,
    fig7_stencil,
    fig7_tpc,
    quick_node_counts,
)
from repro.bench.harness import ScalingSeries

#: schema version of the JSON baseline; bump on any section-shape change
SCALING_SCHEMA_VERSION = 1

#: committed location of the pinned sweep
BASELINE_PATH = (
    pathlib.Path(__file__).resolve().parents[3] / "BENCH_scaling_baseline.json"
)

#: quick-bench wall clock (stencil + ipic3d + tpc, 1/4/16 nodes) measured
#: at the PR-5 state, immediately before the flat-core refactor; the
#: ``quick`` section's ``speedup_vs_pr5`` is anchored against it
PR5_QUICK_SECONDS = 86.4

#: relative wall-clock regression ``--check`` tolerates (CI machines are
#: noisy; simulated outputs are exact, host timing is not)
ELAPSED_TOLERANCE = 0.20

_BUILDERS = {
    "stencil": fig7_stencil,
    "ipic3d": fig7_ipic3d,
    "tpc": fig7_tpc,
}


def panel_mode(quick: bool, smoke: bool) -> str:
    if smoke:
        return "smoke"
    return "quick" if quick else "full"


@dataclass
class ScalingPanel:
    """One complete sweep: all three apps at one mode, with host timing."""

    mode: str
    node_counts: tuple[int, ...]
    series: dict[str, ScalingSeries]
    wall_seconds: dict[str, float]

    @property
    def wall_total(self) -> float:
        return sum(self.wall_seconds.values())


def scaling_panel(quick: bool = False, smoke: bool = False) -> ScalingPanel:
    """Run the Fig. 7 sweep for every application, timing each panel."""
    series: dict[str, ScalingSeries] = {}
    wall: dict[str, float] = {}
    for name, build in _BUILDERS.items():
        started = time.perf_counter()
        series[name] = build(quick=quick, smoke=smoke)
        wall[name] = time.perf_counter() - started
    return ScalingPanel(
        mode=panel_mode(quick, smoke),
        node_counts=quick_node_counts(quick, smoke),
        series=series,
        wall_seconds=wall,
    )


def panel_section(panel: ScalingPanel) -> dict:
    """One mode's baseline section: exact point values plus host timing."""
    apps = {}
    for name, series in panel.series.items():
        apps[name] = {
            "metric": series.metric,
            "points": [
                {"nodes": p.nodes, "allscale": p.allscale, "mpi": p.mpi}
                for p in series.points
            ],
            "wall_seconds": round(panel.wall_seconds[name], 2),
        }
    section = {
        "node_counts": list(panel.node_counts),
        "apps": apps,
        "wall_seconds_total": round(panel.wall_total, 2),
    }
    if panel.mode == "quick":
        section["pr5_seconds"] = PR5_QUICK_SECONDS
        section["speedup_vs_pr5"] = round(PR5_QUICK_SECONDS / panel.wall_total, 2)
    return section


def load_baseline(path: pathlib.Path | None = None) -> dict | None:
    path = path or BASELINE_PATH
    if not path.exists():
        return None
    return json.loads(path.read_text())


def write_baseline(
    panel: ScalingPanel, path: pathlib.Path | None = None
) -> pathlib.Path:
    """Merge this run's section into the baseline file (kept per mode)."""
    path = path or BASELINE_PATH
    baseline = load_baseline(path) or {
        "schema": SCALING_SCHEMA_VERSION,
        "modes": {},
    }
    baseline["schema"] = SCALING_SCHEMA_VERSION
    baseline["modes"][panel.mode] = panel_section(panel)
    path.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    return path


def check_panel(panel: ScalingPanel, baseline: dict | None) -> list[str]:
    """Compare a fresh sweep against the committed baseline.

    Returns a list of human-readable problems; empty means the run
    matches.  Throughput values must be exactly equal — the simulation is
    deterministic, so the committed numbers are goldens, not estimates.
    Host wall clock may vary but must not regress beyond the tolerance.
    """
    if baseline is None:
        return [f"no baseline file at {BASELINE_PATH}"]
    section = baseline.get("modes", {}).get(panel.mode)
    if section is None:
        return [f"baseline has no {panel.mode!r} section"]
    problems: list[str] = []
    if section.get("node_counts") != list(panel.node_counts):
        problems.append(
            f"node counts changed: baseline {section.get('node_counts')}, "
            f"run {list(panel.node_counts)}"
        )
    for name, series in panel.series.items():
        pinned = section.get("apps", {}).get(name)
        if pinned is None:
            problems.append(f"{name}: missing from baseline")
            continue
        rows = {row["nodes"]: row for row in pinned.get("points", ())}
        for point in series.points:
            row = rows.get(point.nodes)
            if row is None:
                problems.append(f"{name}@{point.nodes}: not in baseline")
                continue
            for system, got in (
                ("allscale", point.allscale),
                ("mpi", point.mpi),
            ):
                want = row.get(system)
                if got != want:
                    problems.append(
                        f"{name}@{point.nodes} {system}: output changed "
                        f"(baseline {want!r}, run {got!r})"
                    )
    pinned_total = section.get("wall_seconds_total")
    if pinned_total:
        limit = pinned_total * (1.0 + ELAPSED_TOLERANCE)
        if panel.wall_total > limit:
            problems.append(
                f"wall clock regressed: {panel.wall_total:.1f}s vs "
                f"baseline {pinned_total:.1f}s "
                f"(>{ELAPSED_TOLERANCE * 100.0:.0f}% over)"
            )
    return problems


def render_scaling_summary(panel: ScalingPanel) -> str:
    """Per-app host timing plus the quick-mode speedup line."""
    lines = [f"Scaling sweep ({panel.mode}: {list(panel.node_counts)} nodes)"]
    for name in _BUILDERS:
        lines.append(f"  {name:<8} {panel.wall_seconds[name]:7.1f}s wall")
    lines.append(f"  {'total':<8} {panel.wall_total:7.1f}s wall")
    if panel.mode == "quick":
        lines.append(
            f"  speedup vs PR-5 quick bench ({PR5_QUICK_SECONDS:.1f}s): "
            f"{PR5_QUICK_SECONDS / panel.wall_total:.1f}x"
        )
    return "\n".join(lines)
