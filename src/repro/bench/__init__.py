"""Benchmark harness regenerating the paper's evaluation artifacts.

One entry point per artifact (see DESIGN.md's experiment index):

* :func:`repro.bench.tables.table1` — Table 1, the application inventory;
* :func:`repro.bench.figures.fig7_series` — the three panels of Fig. 7
  (weak-scaling throughput of stencil / iPiC3D / TPC, AllScale vs MPI vs
  linear);
* :mod:`repro.bench.harness` — generic node-count sweeps and shape checks
  (who wins, by what factor, where curves flatten).

Absolute numbers come from a simulator calibrated at single-node scale, so
EXPERIMENTS.md compares *shapes* against the paper, not raw values.
"""

from repro.bench.harness import (
    FIG7_NODE_COUNTS,
    ScalingPoint,
    ScalingSeries,
    parallel_efficiency,
)
from repro.bench.figures import (
    fig7_stencil,
    fig7_ipic3d,
    fig7_tpc,
    quick_node_counts,
)
from repro.bench.tables import table1, TABLE1_ROWS
from repro.bench.report import render_series, render_table, series_to_csv

__all__ = [
    "FIG7_NODE_COUNTS",
    "ScalingPoint",
    "ScalingSeries",
    "parallel_efficiency",
    "fig7_stencil",
    "fig7_ipic3d",
    "fig7_tpc",
    "quick_node_counts",
    "table1",
    "TABLE1_ROWS",
    "render_series",
    "render_table",
    "series_to_csv",
]
