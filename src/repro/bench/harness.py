"""Generic scaling-sweep machinery and shape metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.apps.common import AppResult

#: the node counts of the paper's Fig. 7 x-axis
FIG7_NODE_COUNTS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)


@dataclass
class ScalingPoint:
    """One x-position of a Fig. 7 panel."""

    nodes: int
    allscale: float
    mpi: float

    @property
    def ratio(self) -> float:
        """AllScale throughput as a fraction of MPI's."""
        return self.allscale / self.mpi if self.mpi else float("nan")


@dataclass
class ScalingSeries:
    """One full panel: throughput vs node count for both systems."""

    app: str
    metric: str
    points: list[ScalingPoint] = field(default_factory=list)

    def add(self, allscale: AppResult, mpi: AppResult) -> None:
        if allscale.nodes != mpi.nodes:
            raise ValueError("mismatched node counts in a scaling point")
        self.points.append(
            ScalingPoint(allscale.nodes, allscale.throughput, mpi.throughput)
        )

    def node_counts(self) -> list[int]:
        return [p.nodes for p in self.points]

    def linear(self, system: str = "allscale") -> list[float]:
        """The ideal-scaling reference line anchored at the first point."""
        if not self.points:
            return []
        base = getattr(self.points[0], system) / self.points[0].nodes
        return [base * p.nodes for p in self.points]

    def point_at(self, nodes: int) -> ScalingPoint:
        for p in self.points:
            if p.nodes == nodes:
                return p
        raise KeyError(f"no point at {nodes} nodes")

    def speedup(self, system: str) -> list[float]:
        base = getattr(self.points[0], system)
        return [getattr(p, system) / base * self.points[0].nodes for p in self.points]


def parallel_efficiency(series: ScalingSeries, system: str) -> float:
    """Efficiency at the largest node count vs the single-node anchor."""
    first, last = series.points[0], series.points[-1]
    base = getattr(first, system) / first.nodes
    return getattr(last, system) / (base * last.nodes)


def sweep(
    app: str,
    metric: str,
    node_counts: tuple[int, ...],
    run_allscale: Callable[[int], AppResult],
    run_mpi: Callable[[int], AppResult],
) -> ScalingSeries:
    """Run both systems across the node counts and collect a series."""
    series = ScalingSeries(app=app, metric=metric)
    for nodes in node_counts:
        series.add(run_allscale(nodes), run_mpi(nodes))
    return series
