"""Rendering of benchmark results as ASCII tables and CSV."""

from __future__ import annotations

import io
from typing import Sequence

from repro.bench.harness import ScalingSeries
from repro.bench.tables import Table1Row
from repro.regions.kernel import get_kernel


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """Plain fixed-width ASCII table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(str(cell)))
    lines = []
    header = "  ".join(h.ljust(widths[k]) for k, h in enumerate(headers))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(widths[k]) for k, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_table1(rows: Sequence[Table1Row]) -> str:
    return render_table(
        ["Name", "Description", "Data Structure", "Problem Size", "Metric"],
        [row.as_tuple() for row in rows],
    )


def _fmt(value: float) -> str:
    if value >= 1e6:
        return f"{value:.4g}"
    if value >= 100:
        return f"{value:.1f}"
    return f"{value:.3g}"


def render_series(series: ScalingSeries) -> str:
    """One Fig. 7 panel as a table: nodes | AllScale | MPI | linear."""
    linear = series.linear("allscale")
    rows = []
    for point, ideal in zip(series.points, linear):
        rows.append(
            (
                str(point.nodes),
                _fmt(point.allscale),
                _fmt(point.mpi),
                _fmt(ideal),
                f"{point.ratio:.2f}",
            )
        )
    title = f"Fig. 7 — {series.app} throughput [{series.metric}]"
    body = render_table(
        ["nodes", "AllScale", "MPI", "linear", "AS/MPI"], rows
    )
    return f"{title}\n{body}"


def region_cache_stats() -> dict[str, int]:
    """Region-kernel efficiency counters for benchmark reports.

    Returns the ``region.cache_hits`` / ``region.cache_misses`` /
    ``region.interned`` totals plus the per-op breakdown, so BENCH_*.json
    files can track region-op efficiency across PRs.
    """
    return get_kernel().stats()


def render_region_cache(stats: dict[str, int] | None = None) -> str:
    """The kernel's per-op hit/miss counters as an ASCII table."""
    if stats is None:
        stats = region_cache_stats()
    ops = sorted(
        {
            name.split(".")[1]
            for name in stats
            if name.count(".") == 2 and name.endswith(".hits")
        }
    )
    rows = []
    for op in ops:
        hits = stats.get(f"region.{op}.hits", 0)
        misses = stats.get(f"region.{op}.misses", 0)
        total = hits + misses
        rate = f"{hits / total:.1%}" if total else "-"
        rows.append((op, str(hits), str(misses), rate))
    hits = stats.get("region.cache_hits", 0)
    misses = stats.get("region.cache_misses", 0)
    total = hits + misses
    rate = f"{hits / total:.1%}" if total else "-"
    rows.append(("TOTAL", str(hits), str(misses), rate))
    body = render_table(["op", "hits", "misses", "hit rate"], rows)
    interned = stats.get("region.interned", 0)
    return (
        f"Region kernel cache ({interned} regions interned)\n{body}"
    )


def region_cache_csv(stats: dict[str, int] | None = None) -> str:
    """CSV text with the raw region-kernel counters."""
    if stats is None:
        stats = region_cache_stats()
    out = io.StringIO()
    out.write("counter,value\n")
    for name in sorted(stats):
        out.write(f"{name},{stats[name]}\n")
    return out.getvalue()


def series_to_csv(series: ScalingSeries) -> str:
    """CSV text with the panel's raw numbers."""
    out = io.StringIO()
    out.write("app,metric,nodes,allscale,mpi,linear\n")
    linear = series.linear("allscale")
    for point, ideal in zip(series.points, linear):
        out.write(
            f"{series.app},{series.metric},{point.nodes},"
            f"{point.allscale!r},{point.mpi!r},{ideal!r}\n"
        )
    return out.getvalue()
