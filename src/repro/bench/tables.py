"""Regeneration of the paper's Table 1 (list of target application codes).

The table rows derive from the actual workload dataclasses rather than
being hard-coded prose, so the table stays true to what the benchmarks
run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.ipic3d import IPic3DWorkload
from repro.apps.stencil import StencilWorkload
from repro.apps.tpc import TPCWorkload


@dataclass(frozen=True)
class Table1Row:
    name: str
    description: str
    data_structure: str
    problem_size: str
    metric: str

    def as_tuple(self) -> tuple[str, str, str, str, str]:
        return (
            self.name,
            self.description,
            self.data_structure,
            self.problem_size,
            self.metric,
        )


def table1(
    stencil: StencilWorkload | None = None,
    ipic3d: IPic3DWorkload | None = None,
    tpc: TPCWorkload | None = None,
) -> list[Table1Row]:
    """Build Table 1 from (possibly customized) workload definitions."""
    stencil = stencil or StencilWorkload()
    ipic3d = ipic3d or IPic3DWorkload()
    tpc = tpc or TPCWorkload()
    return [
        Table1Row(
            name="stencil",
            description="2D stencil kernel [12]",
            data_structure="regular 2D grid",
            problem_size=f"{stencil.n_per_node:,}² elements per node",
            metric="FLOPS",
        ),
        Table1Row(
            name="iPiC3D",
            description="particle-in-cell simulator [13]",
            data_structure="multiple regular 3D grids",
            problem_size=(
                f"{ipic3d.particles_per_node / 1e6:.0f} · 10⁶ particles per node"
            ),
            metric="particle updates per second",
        ),
        Table1Row(
            name="TPC",
            description="two-point-correlation search [14]",
            data_structure="kd-tree",
            problem_size=(
                f"2^{tpc.total_points.bit_length() - 1} points in "
                f"[{tpc.low:g}, {tpc.high:g})^{tpc.dims} with radius "
                f"{tpc.radius:g}"
            ),
            metric="queries per second",
        ),
    ]


#: the default instantiation — what the paper's Table 1 shows
TABLE1_ROWS = table1()
