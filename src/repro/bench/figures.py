"""Regeneration of the paper's Fig. 7 (the three scaling panels).

Each ``fig7_*`` function sweeps node counts and returns a
:class:`~repro.bench.harness.ScalingSeries` with AllScale and MPI
throughput per node count.  ``quick=True`` shrinks the sweep (and, for
iPiC3D/TPC, the workload intensity) to keep CI runs fast; the full sweep
reproduces the paper's 1–64 node x-axis.

Calibration (single-node anchors, see DESIGN.md §5):

* stencil — effective 2.4 GFLOP/s/core ⇒ ≈45 GFLOPS/node, matching the
  paper's leftmost stencil point;
* iPiC3D — ``flops_per_particle_update = 7·10⁵`` ⇒ ≈6.5·10⁴ particle
  updates/s/node;
* TPC — ``visit_flops=150 / point_flops=30`` ⇒ ≈600 q/s single node.
"""

from __future__ import annotations


from repro.apps.ipic3d import IPic3DWorkload, ipic3d_allscale, ipic3d_mpi
from repro.apps.stencil import StencilWorkload, stencil_allscale, stencil_mpi
from repro.apps.tpc import TPCWorkload, make_problem, tpc_allscale, tpc_mpi
from repro.bench.harness import FIG7_NODE_COUNTS, ScalingSeries, sweep
from repro.runtime.config import RuntimeConfig
from repro.sim.cluster import Cluster, meggie_like_spec


def quick_node_counts(quick: bool, smoke: bool = False) -> tuple[int, ...]:
    if smoke:
        return (1, 4)
    return (1, 4, 16) if quick else FIG7_NODE_COUNTS


def _runtime_config() -> RuntimeConfig:
    # modest oversubscription keeps task counts (and simulation cost)
    # reasonable without changing the scaling shape
    return RuntimeConfig(functional=False, oversubscription=2)


def fig7_stencil(quick: bool = False, smoke: bool = False) -> ScalingSeries:
    """Fig. 7, left panel: stencil throughput [GFLOPS]."""
    reduced = quick or smoke
    workload = StencilWorkload(
        n_per_node=20_000 if not reduced else 4_000,
        timesteps=4 if not reduced else 2,
        functional=False,
    )
    return sweep(
        "stencil",
        "GFLOPS",
        quick_node_counts(quick, smoke),
        lambda nodes: stencil_allscale(
            Cluster(meggie_like_spec(nodes)), workload, _runtime_config()
        ),
        lambda nodes: stencil_mpi(Cluster(meggie_like_spec(nodes)), workload),
    )


def fig7_ipic3d(quick: bool = False, smoke: bool = False) -> ScalingSeries:
    """Fig. 7, middle panel: iPiC3D throughput [particles/s]."""
    reduced = quick or smoke
    workload = IPic3DWorkload(
        particles_per_node=48_000_000,
        cells_per_node_side=16 if not reduced else 8,
        timesteps=3 if not reduced else 2,
    )
    return sweep(
        "ipic3d",
        "particles/s",
        quick_node_counts(quick, smoke),
        lambda nodes: ipic3d_allscale(
            Cluster(meggie_like_spec(nodes)), workload, _runtime_config()
        ),
        lambda nodes: ipic3d_mpi(Cluster(meggie_like_spec(nodes)), workload),
    )


def fig7_tpc(quick: bool = False, smoke: bool = False) -> ScalingSeries:
    """Fig. 7, right panel: TPC throughput [queries/s].

    Offered load: a fixed window of queries per measurement (see the
    ``queries_total`` note in :class:`~repro.apps.tpc.TPCWorkload`); both
    systems process the identical window.
    """
    reduced = quick or smoke
    workload = TPCWorkload(
        total_points=2**29,
        depth=16,
        queries_total=384 if not reduced else 128,
        functional=False,
        visit_flops=150.0,
        point_flops=30.0,
        task_subtree_height=9,
    )
    series = ScalingSeries(app="tpc", metric="queries/s")
    for nodes in quick_node_counts(quick, smoke):
        problem = make_problem(workload, nodes)
        allscale = tpc_allscale(
            Cluster(meggie_like_spec(nodes)),
            workload,
            _runtime_config(),
            problem=problem,
        )
        mpi = tpc_mpi(Cluster(meggie_like_spec(nodes)), workload, problem=problem)
        series.add(allscale, mpi)
    return series
