"""Explicit element-set region — the semantic reference implementation.

The paper notes (Section 3.1) that explicit element enumerations, "while
technically sound, are less practical".  We keep one anyway: it is trivially
correct, so every efficient region type (interval sets, box sets, tree
schemes) is property-tested against it.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator

from repro.regions.base import Region, RegionMismatchError


class ExplicitSetRegion(Region):
    """A region backed by a plain frozen set of element addresses."""

    __slots__ = ("_elements", "_ckey")

    def __init__(self, elements: Iterable[Any] = ()) -> None:
        self._elements = frozenset(elements)
        self._ckey: Hashable = None
        self._rid: int | None = None

    @classmethod
    def empty(cls) -> "ExplicitSetRegion":
        return cls(())

    @property
    def element_set(self) -> frozenset:
        return self._elements

    # -- closure operations ---------------------------------------------------

    def _coerce(self, other: Region) -> frozenset:
        if isinstance(other, ExplicitSetRegion):
            return other._elements
        if isinstance(other, Region):
            return frozenset(other.elements())
        raise RegionMismatchError(
            f"cannot combine ExplicitSetRegion with {type(other).__name__}"
        )

    def _union(self, other: Region) -> "ExplicitSetRegion":
        return ExplicitSetRegion(self._elements | self._coerce(other))

    def _intersect(self, other: Region) -> "ExplicitSetRegion":
        return ExplicitSetRegion(self._elements & self._coerce(other))

    def _difference(self, other: Region) -> "ExplicitSetRegion":
        return ExplicitSetRegion(self._elements - self._coerce(other))

    # -- cardinality and membership ------------------------------------------

    def cache_key(self) -> Hashable:
        if self._ckey is None:
            self._ckey = ("explicit", self._elements)
        return self._ckey

    def _is_empty(self) -> bool:
        return not self._elements

    def size(self) -> int:
        return len(self._elements)

    def elements(self) -> Iterator[Any]:
        return iter(self._elements)

    def contains(self, element: Any) -> bool:
        return element in self._elements

    # -- value semantics -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExplicitSetRegion):
            return NotImplemented
        return self._elements == other._elements

    def __hash__(self) -> int:
        return hash(self._elements)

    def __repr__(self) -> str:
        preview = sorted(self._elements, key=repr)[:6]
        suffix = ", ..." if len(self._elements) > 6 else ""
        inner = ", ".join(map(repr, preview))
        return f"ExplicitSetRegion({{{inner}{suffix}}})"
