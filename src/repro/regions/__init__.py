"""Region algebras for addressing subsets of data item elements.

Definition 2.2 of the paper introduces *regions* as addressable subsets of a
data item's elements.  Section 3.1 requires every concrete region type to be

* closed under union, intersection, and set-difference,
* efficient in space and time (no explicit element enumeration), and
* expressive enough for the regions of interest of the algorithms that run
  on the associated data structure.

This package provides the region types shipped with the prototype
implementation described in the paper (Fig. 4) plus a reference type:

``ExplicitSetRegion``
    explicit element enumeration; the semantic reference every other type is
    property-tested against.
``IntervalRegion``
    sorted disjoint half-open 1-D intervals; building block for arrays.
``BoxRegion`` / ``BoxSetRegion``
    sets of axis-aligned N-dimensional boxes (Fig. 4a) — individual boxes are
    not closed under union/difference, sets of them are.
``TreeRegion``
    flexible include/exclude sub-tree scheme for balanced binary trees
    (Fig. 4b).
``BlockedTreeRegion``
    coarse-grained blocked scheme — one root tree of height ``h`` plus
    ``2**h`` bottom sub-trees addressed through a bitmask (Fig. 4c).
"""

from repro.regions.kernel import RegionKernel, get_kernel
from repro.regions.base import Region, RegionMismatchError
from repro.regions.explicit import ExplicitSetRegion
from repro.regions.interval import Interval, IntervalRegion
from repro.regions.box import Box, BoxSetRegion
from repro.regions.tree import TreeGeometry, TreeRegion
from repro.regions.blocked_tree import BlockedTreeGeometry, BlockedTreeRegion

__all__ = [
    "Region",
    "RegionKernel",
    "RegionMismatchError",
    "get_kernel",
    "ExplicitSetRegion",
    "Interval",
    "IntervalRegion",
    "Box",
    "BoxSetRegion",
    "TreeGeometry",
    "TreeRegion",
    "BlockedTreeGeometry",
    "BlockedTreeRegion",
]
