"""Abstract region interface (Definition 2.2 / Section 3.1).

A region addresses a finite subset of a data item's element addresses.  The
paper requires region types to be closed under union, intersection and
set-difference; this module pins that contract down as an abstract base
class so the runtime (data item manager, hierarchical index, scheduler) can
operate on any region type uniformly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterator


class RegionMismatchError(TypeError):
    """Raised when combining regions over incompatible element universes."""


class Region(ABC):
    """A finite, addressable subset of a data item's elements.

    Subclasses must implement the three closure operations plus emptiness,
    cardinality, enumeration, and membership.  Operators ``|``, ``&`` and
    ``-`` are provided on top of them, and semantic (element-set) equality is
    available through :meth:`same_elements` even when two instances use
    different internal representations.
    """

    __slots__ = ()

    # -- closure operations (Section 3.1 requirements) ---------------------

    @abstractmethod
    def union(self, other: "Region") -> "Region":
        """Return the region addressing ``self ∪ other``."""

    @abstractmethod
    def intersect(self, other: "Region") -> "Region":
        """Return the region addressing ``self ∩ other``."""

    @abstractmethod
    def difference(self, other: "Region") -> "Region":
        """Return the region addressing ``self \\ other``."""

    # -- cardinality and membership ----------------------------------------

    @abstractmethod
    def is_empty(self) -> bool:
        """Return ``True`` iff the region addresses no element."""

    @abstractmethod
    def size(self) -> int:
        """Return the number of addressed elements."""

    @abstractmethod
    def elements(self) -> Iterator[Any]:
        """Enumerate the addressed element addresses.

        May be expensive for large regions; intended for tests, debugging and
        small functional fragments — the runtime itself never enumerates.
        """

    @abstractmethod
    def contains(self, element: Any) -> bool:
        """Return ``True`` iff ``element`` is addressed by this region."""

    # -- derived conveniences ------------------------------------------------

    def overlaps(self, other: "Region") -> bool:
        """Return ``True`` iff the two regions share at least one element."""
        return not self.intersect(other).is_empty()

    def covers(self, other: "Region") -> bool:
        """Return ``True`` iff every element of ``other`` is in ``self``."""
        return other.difference(self).is_empty()

    def same_elements(self, other: "Region") -> bool:
        """Semantic equality: both regions address exactly the same set."""
        return self.difference(other).is_empty() and other.difference(self).is_empty()

    # -- operator sugar -------------------------------------------------------

    def __or__(self, other: "Region") -> "Region":
        return self.union(other)

    def __and__(self, other: "Region") -> "Region":
        return self.intersect(other)

    def __sub__(self, other: "Region") -> "Region":
        return self.difference(other)

    def __bool__(self) -> bool:
        return not self.is_empty()

    def __len__(self) -> int:
        return self.size()

    def __iter__(self) -> Iterator[Any]:
        return self.elements()

    def __contains__(self, element: Any) -> bool:
        return self.contains(element)
