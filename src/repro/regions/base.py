"""Abstract region interface (Definition 2.2 / Section 3.1).

A region addresses a finite subset of a data item's element addresses.  The
paper requires region types to be closed under union, intersection and
set-difference; this module pins that contract down as an abstract base
class so the runtime (data item manager, hierarchical index, scheduler) can
operate on any region type uniformly.

Regions are immutable value objects in a *canonical* normal form: every
family implements :meth:`Region.cache_key`, a hashable key that identifies
the addressed element set (plus family and geometry) uniquely.  The public
algebra — ``union``/``intersect``/``difference`` and the predicates
``covers``/``overlaps`` — does not run the per-family implementations
directly; it routes through the process-wide
:class:`~repro.regions.kernel.RegionKernel`, which interns canonical
regions and memoizes the operations.  Families provide the raw
implementations as ``_union``/``_intersect``/``_difference`` (and may
override ``_covers`` with a fast path).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Hashable, Iterator

from repro.regions.kernel import get_kernel


class RegionMismatchError(TypeError):
    """Raised when combining regions over incompatible element universes."""


class Region(ABC):
    """A finite, addressable subset of a data item's elements.

    Subclasses must implement the three raw closure operations plus
    emptiness, cardinality, enumeration, membership, and a canonical
    :meth:`cache_key`.  Operators ``|``, ``&`` and ``-`` are provided on
    top of the kernel-routed algebra, and semantic (element-set) equality
    is available through :meth:`same_elements` even when two instances use
    different region families.
    """

    #: interned id — ``None`` until the kernel interns this instance, then a
    #: process-unique integer that marks it canonical and keys the memo
    #: cache (see :class:`~repro.regions.kernel.RegionKernel`)
    __slots__ = ("_rid",)

    # -- kernel-routed closure operations (Section 3.1 requirements) -------

    def union(self, other: "Region") -> "Region":
        """Return the region addressing ``self ∪ other`` (memoized)."""
        return get_kernel().union(self, other)

    def intersect(self, other: "Region") -> "Region":
        """Return the region addressing ``self ∩ other`` (memoized)."""
        return get_kernel().intersect(self, other)

    def difference(self, other: "Region") -> "Region":
        """Return the region addressing ``self \\ other`` (memoized)."""
        return get_kernel().difference(self, other)

    # -- raw per-family implementations (called by the kernel on miss) -----

    @abstractmethod
    def _union(self, other: "Region") -> "Region":
        """Uncached ``self ∪ other``."""

    @abstractmethod
    def _intersect(self, other: "Region") -> "Region":
        """Uncached ``self ∩ other``."""

    @abstractmethod
    def _difference(self, other: "Region") -> "Region":
        """Uncached ``self \\ other``."""

    def _covers(self, other: "Region") -> bool:
        """Uncached containment; families may override with a fast path."""
        return other.difference(self).is_empty()

    # -- canonical identity -------------------------------------------------

    @abstractmethod
    def cache_key(self) -> Hashable:
        """Hashable canonical identity: family, geometry, element set.

        Two regions have equal cache keys iff they are of the same family
        over the same geometry and address exactly the same element set.
        The kernel's intern table and memo-cache are keyed on it.
        """

    def interned(self) -> "Region":
        """The canonical representative of this region (self if first)."""
        return get_kernel().intern(self)

    # -- cardinality and membership ----------------------------------------

    def is_empty(self) -> bool:
        """Return ``True`` iff the region addresses no element."""
        return self._is_empty()

    @abstractmethod
    def _is_empty(self) -> bool:
        """Emptiness test; O(1) on every canonical form."""

    @abstractmethod
    def size(self) -> int:
        """Return the number of addressed elements."""

    @abstractmethod
    def elements(self) -> Iterator[Any]:
        """Enumerate the addressed element addresses.

        May be expensive for large regions; intended for tests, debugging and
        small functional fragments — the runtime itself never enumerates.
        """

    @abstractmethod
    def contains(self, element: Any) -> bool:
        """Return ``True`` iff ``element`` is addressed by this region."""

    # -- derived conveniences ------------------------------------------------

    def overlaps(self, other: "Region") -> bool:
        """Return ``True`` iff the two regions share at least one element."""
        return get_kernel().overlaps(self, other)

    def covers(self, other: "Region") -> bool:
        """Return ``True`` iff every element of ``other`` is in ``self``."""
        return get_kernel().covers(self, other)

    def same_elements(self, other: "Region") -> bool:
        """Semantic equality: both regions address exactly the same set."""
        if self is other:
            return True
        if type(self) is type(other) and self.cache_key() == other.cache_key():
            return True
        return self.difference(other).is_empty() and other.difference(self).is_empty()

    # -- operator sugar -------------------------------------------------------

    def __or__(self, other: "Region") -> "Region":
        return self.union(other)

    def __and__(self, other: "Region") -> "Region":
        return self.intersect(other)

    def __sub__(self, other: "Region") -> "Region":
        return self.difference(other)

    def __bool__(self) -> bool:
        return not self.is_empty()

    def __len__(self) -> int:
        return self.size()

    def __iter__(self) -> Iterator[Any]:
        return self.elements()

    def __contains__(self, element: Any) -> bool:
        return self.contains(element)
