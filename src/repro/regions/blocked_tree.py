"""Blocked tree regions (Fig. 4c of the paper).

The coarse-grained alternative to the flexible include/exclude sub-tree
scheme: the overall tree of ``depth`` levels is divided into one *root tree*
of height ``h`` and ``2**h`` bottom sub-trees hanging off its leaves.  A
region is a bitmask of length ``2**h + 1`` — bit ``0`` selects the whole
root tree, bit ``k`` (``1 <= k <= 2**h``) selects the ``k``-th bottom
sub-tree.  All region algebra reduces to integer bitwise operations, making
this scheme far cheaper than the flexible one at the price of distribution
granularity.

Node addressing matches :mod:`repro.regions.tree` (binary-heap order), so
blocked regions convert losslessly into flexible :class:`TreeRegion` form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Iterator

from repro.regions.base import Region, RegionMismatchError
from repro.regions.tree import TreeGeometry, TreeRegion


@dataclass(frozen=True)
class BlockedTreeGeometry:
    """A tree of ``depth`` levels blocked into a root tree of height ``h``."""

    depth: int
    root_height: int

    def __post_init__(self) -> None:
        if self.root_height < 1:
            raise ValueError(f"root_height must be >= 1, got {self.root_height}")
        if self.depth <= self.root_height:
            raise ValueError(
                f"depth ({self.depth}) must exceed root_height ({self.root_height})"
            )

    @property
    def tree(self) -> TreeGeometry:
        return TreeGeometry(self.depth)

    @property
    def num_blocks(self) -> int:
        """Number of bottom sub-trees: ``2**root_height``."""
        return 1 << self.root_height

    @property
    def mask_length(self) -> int:
        """Bitmask length from the paper: ``2**h + 1``."""
        return self.num_blocks + 1

    @property
    def root_tree_size(self) -> int:
        return (1 << self.root_height) - 1

    @property
    def block_size(self) -> int:
        """Nodes per bottom sub-tree."""
        return (1 << (self.depth - self.root_height)) - 1

    def block_root(self, block: int) -> int:
        """Heap id of the root node of bottom sub-tree ``block`` (1-based)."""
        if not (1 <= block <= self.num_blocks):
            raise ValueError(f"block {block} out of range 1..{self.num_blocks}")
        return self.num_blocks + block - 1

    def block_of(self, node: int) -> int | None:
        """Bottom sub-tree containing ``node``, or ``None`` if in root tree."""
        self.tree.check_node(node)
        level = node.bit_length()
        if level <= self.root_height:
            return None
        ancestor = node >> (level - self.root_height - 1)
        return ancestor - self.num_blocks + 1


class BlockedTreeRegion(Region):
    """Tree region addressed through the blocked bitmask scheme."""

    __slots__ = ("_geometry", "_mask")

    def __init__(self, geometry: BlockedTreeGeometry, mask: int = 0) -> None:
        if mask < 0 or mask >= (1 << geometry.mask_length):
            raise ValueError(
                f"mask {mask:#x} does not fit bitmask of length "
                f"{geometry.mask_length}"
            )
        self._geometry = geometry
        self._mask = mask
        self._rid: int | None = None

    # -- constructors ---------------------------------------------------------

    @classmethod
    def empty(cls, geometry: BlockedTreeGeometry) -> "BlockedTreeRegion":
        return cls(geometry, 0)

    @classmethod
    def full(cls, geometry: BlockedTreeGeometry) -> "BlockedTreeRegion":
        return cls(geometry, (1 << geometry.mask_length) - 1)

    @classmethod
    def root_tree(cls, geometry: BlockedTreeGeometry) -> "BlockedTreeRegion":
        return cls(geometry, 1)

    @classmethod
    def of_blocks(
        cls, geometry: BlockedTreeGeometry, blocks: Iterable[int],
        include_root_tree: bool = False,
    ) -> "BlockedTreeRegion":
        mask = 1 if include_root_tree else 0
        for block in blocks:
            if not (1 <= block <= geometry.num_blocks):
                raise ValueError(
                    f"block {block} out of range 1..{geometry.num_blocks}"
                )
            mask |= 1 << block
        return cls(geometry, mask)

    # -- views -----------------------------------------------------------------

    @property
    def geometry(self) -> BlockedTreeGeometry:
        return self._geometry

    @property
    def mask(self) -> int:
        return self._mask

    def has_root_tree(self) -> bool:
        return bool(self._mask & 1)

    def blocks(self) -> Iterator[int]:
        """Enumerate selected bottom sub-tree indices (1-based)."""
        mask = self._mask >> 1
        block = 1
        while mask:
            if mask & 1:
                yield block
            mask >>= 1
            block += 1

    def to_tree_region(self) -> TreeRegion:
        """Lossless conversion into the flexible include/exclude scheme."""
        geometry = self._geometry
        tree = geometry.tree
        includes: list[int] = []
        excludes: list[int] = []
        if self.has_root_tree():
            includes.append(1)
            for block in range(1, geometry.num_blocks + 1):
                if not self._mask & (1 << block):
                    excludes.append(geometry.block_root(block))
        else:
            includes.extend(
                geometry.block_root(block) for block in self.blocks()
            )
        return TreeRegion.of_subtrees(tree, includes, excludes)

    def representation_size(self) -> int:
        """Space cost of the scheme in bits — constant per geometry."""
        return self._geometry.mask_length

    # -- closure operations -------------------------------------------------------

    def _coerce(self, other: Region) -> "BlockedTreeRegion":
        if not isinstance(other, BlockedTreeRegion):
            raise RegionMismatchError(
                f"cannot combine BlockedTreeRegion with {type(other).__name__}"
            )
        if other._geometry != self._geometry:
            raise RegionMismatchError("blocked tree geometry mismatch")
        return other

    def _union(self, other: Region) -> "BlockedTreeRegion":
        other = self._coerce(other)
        return BlockedTreeRegion(self._geometry, self._mask | other._mask)

    def _intersect(self, other: Region) -> "BlockedTreeRegion":
        other = self._coerce(other)
        return BlockedTreeRegion(self._geometry, self._mask & other._mask)

    def _difference(self, other: Region) -> "BlockedTreeRegion":
        other = self._coerce(other)
        return BlockedTreeRegion(self._geometry, self._mask & ~other._mask)

    # -- cardinality and membership ------------------------------------------

    def cache_key(self) -> Hashable:
        geometry = self._geometry
        return ("btree", geometry.depth, geometry.root_height, self._mask)

    def _is_empty(self) -> bool:
        return self._mask == 0

    def size(self) -> int:
        geometry = self._geometry
        total = geometry.root_tree_size if self.has_root_tree() else 0
        block_bits = (self._mask >> 1).bit_count()
        return total + block_bits * geometry.block_size

    def elements(self) -> Iterator[int]:
        geometry = self._geometry
        tree = geometry.tree
        if self.has_root_tree():
            yield from range(1, geometry.root_tree_size + 1)
        for block in self.blocks():
            yield from tree.subtree_nodes(geometry.block_root(block))

    def contains(self, element: Any) -> bool:
        if not isinstance(element, int):
            return False
        geometry = self._geometry
        if not (1 <= element <= geometry.tree.num_nodes):
            return False
        block = geometry.block_of(element)
        if block is None:
            return self.has_root_tree()
        return bool(self._mask & (1 << block))

    # -- value semantics --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BlockedTreeRegion):
            return NotImplemented
        return self._geometry == other._geometry and self._mask == other._mask

    def __hash__(self) -> int:
        return hash((self._geometry, self._mask))

    def __repr__(self) -> str:
        return (
            f"BlockedTreeRegion(depth={self._geometry.depth}, "
            f"h={self._geometry.root_height}, mask={self._mask:#x})"
        )
