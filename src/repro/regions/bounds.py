"""Cheap bounding-corner summaries for conservative overlap rejection.

Pairwise region sweeps (the sentinel's race checks, the runtime's
write-intent reservation) mostly compare regions that are nowhere near
each other.  Routing every pair through the memoized region algebra
churns the op cache — each unique pair is a miss — so hot paths first
compare *bounding corners*: a pair whose axis-aligned bounds are
disjoint provably cannot overlap and is rejected with a few tuple
comparisons.  The test is conservative: it only ever rejects pairs the
full algebra would also reject, never pairs that might overlap.

Summaries are tri-state:

* ``(lo, hi)`` corner tuples — half-open on every axis, like ``Box``;
* ``None`` — the region is empty (disjoint from everything);
* ``NO_BOUNDS`` — the scheme exposes no cheap corners (tree/bitmask/
  set-based regions), so no rejection is possible and the caller must
  fall through to the exact ``overlaps`` check.
"""

from __future__ import annotations

from typing import Any

#: marker for "region scheme exposes no cheap bounds" (tree/bitmask/set)
NO_BOUNDS: Any = object()


def corner_bounds(region) -> Any:
    """Bounding-corner summary of ``region`` (see module docstring).

    Box-set regions report their bounding box; interval regions report
    their hull as a 1-D corner pair; anything else yields ``NO_BOUNDS``.
    """
    box_fn = getattr(region, "bounding_box", None)
    if box_fn is not None:
        box = box_fn()
        return None if box is None else (box.lo, box.hi)
    iv_fn = getattr(region, "bounds", None)
    if iv_fn is not None:
        iv = iv_fn()
        return None if iv is None else ((iv.lo,), (iv.hi,))
    return NO_BOUNDS


def bounds_disjoint(a, b) -> bool:
    """True when two bound summaries *provably* do not overlap.

    ``None`` means an empty region (disjoint from everything);
    ``NO_BOUNDS`` means unknown, so no rejection is possible.
    """
    if a is None or b is None:
        return True
    if a is NO_BOUNDS or b is NO_BOUNDS:
        return False
    alo, ahi = a
    blo, bhi = b
    if len(alo) != len(blo):
        return False
    for k in range(len(alo)):
        if alo[k] >= bhi[k] or blo[k] >= ahi[k]:
            return True
    return False
