"""N-dimensional box-set regions (Fig. 4a of the paper).

Individual axis-aligned bounding boxes are *not* closed under union or
set-difference, but finite sets of disjoint boxes are — this is exactly the
region scheme the paper uses for its N-dimensional grid data item.

A :class:`BoxSetRegion` maintains a list of pairwise-disjoint half-open boxes
and implements the full region algebra:

* ``intersect`` — pairwise box intersection (disjointness is preserved),
* ``difference`` — per-axis slab splitting (a box minus a box yields at most
  ``2·dims`` disjoint boxes),
* ``union`` — concatenate and re-canonicalize.

The stored representation is *canonical*: :func:`_canonical_boxes` slices
the element set along axis 0 at exactly the coordinates where its
cross-section changes, merges maximal runs of equal cross-sections, and
recurses over the remaining axes.  The resulting box list depends only on
the addressed element set — never on how the inputs were split — so
``==`` and ``hash`` are cheap *and* semantic, which is what lets the
region kernel intern box regions and memoize their algebra.
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Hashable, Iterable, Iterator, Sequence

from repro.regions.base import Region, RegionMismatchError


class Box:
    """Half-open axis-aligned box ``[lo, hi)`` in N dimensions.

    A hand-rolled slotted value class rather than a dataclass: boxes are
    created millions of times inside the runtime's region algebra, and
    frozen-dataclass construction overhead dominated profiles.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: tuple[int, ...], hi: tuple[int, ...]) -> None:
        if len(lo) != len(hi):
            raise ValueError(f"box corner ranks differ: {lo} vs {hi}")
        self.lo = lo
        self.hi = hi

    @classmethod
    def of(cls, lo: Sequence[int], hi: Sequence[int]) -> "Box":
        return cls(tuple(int(x) for x in lo), tuple(int(x) for x in hi))

    @classmethod
    def full(cls, shape: Sequence[int]) -> "Box":
        """The box covering a whole grid of the given shape."""
        return cls(tuple(0 for _ in shape), tuple(int(s) for s in shape))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Box):
            return NotImplemented
        return self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    @property
    def dims(self) -> int:
        return len(self.lo)

    def is_empty(self) -> bool:
        lo, hi = self.lo, self.hi
        for k in range(len(lo)):
            if lo[k] >= hi[k]:
                return True
        return False

    def size(self) -> int:
        total = 1
        lo, hi = self.lo, self.hi
        for k in range(len(lo)):
            width = hi[k] - lo[k]
            if width <= 0:
                return 0
            total *= width
        return total

    def contains(self, point: Sequence[int]) -> bool:
        if len(point) != len(self.lo):
            return False
        lo, hi = self.lo, self.hi
        for k in range(len(lo)):
            if not (lo[k] <= point[k] < hi[k]):
                return False
        return True

    def intersect(self, other: "Box") -> "Box":
        return Box(
            tuple(map(max, self.lo, other.lo)),
            tuple(map(min, self.hi, other.hi)),
        )

    def overlaps(self, other: "Box") -> bool:
        alo, ahi, blo, bhi = self.lo, self.hi, other.lo, other.hi
        for k in range(len(alo)):
            if alo[k] >= bhi[k] or blo[k] >= ahi[k]:
                return False
            if alo[k] >= ahi[k] or blo[k] >= bhi[k]:
                return False
        return True

    def encloses(self, other: "Box") -> bool:
        """True iff ``other ⊆ self`` (both non-empty assumed)."""
        alo, ahi, blo, bhi = self.lo, self.hi, other.lo, other.hi
        for k in range(len(alo)):
            if blo[k] < alo[k] or bhi[k] > ahi[k]:
                return False
        return True

    def subtract(self, other: "Box") -> list["Box"]:
        """Return disjoint boxes covering ``self − other`` (at most 2·dims)."""
        cut = self.intersect(other)
        if cut.is_empty():
            return [] if self.is_empty() else [self]
        pieces: list[Box] = []
        lo = list(self.lo)
        hi = list(self.hi)
        # peel slabs off one axis at a time; what remains shrinks toward `cut`
        for axis in range(self.dims):
            if lo[axis] < cut.lo[axis]:
                piece_hi = hi.copy()
                piece_hi[axis] = cut.lo[axis]
                pieces.append(Box(tuple(lo), tuple(piece_hi)))
                lo[axis] = cut.lo[axis]
            if cut.hi[axis] < hi[axis]:
                piece_lo = lo.copy()
                piece_lo[axis] = cut.hi[axis]
                pieces.append(Box(tuple(piece_lo), tuple(hi)))
                hi[axis] = cut.hi[axis]
        return [p for p in pieces if not p.is_empty()]

    def points(self) -> Iterator[tuple[int, ...]]:
        if self.is_empty():
            return iter(())
        return itertools.product(*(range(l, h) for l, h in zip(self.lo, self.hi)))

    def widths(self) -> tuple[int, ...]:
        return tuple(max(0, h - l) for l, h in zip(self.lo, self.hi))

    def split(self, axis: int, at: int) -> tuple["Box", "Box"]:
        """Split the box along ``axis`` at coordinate ``at``."""
        lo_hi = list(self.hi)
        lo_hi[axis] = at
        hi_lo = list(self.lo)
        hi_lo[axis] = at
        return Box(self.lo, tuple(lo_hi)), Box(tuple(hi_lo), self.hi)

    def surface(self) -> int:
        """Number of boundary elements — the halo size driver for stencils."""
        total = self.size()
        widths = self.widths()
        if total == 0:
            return 0
        inner = math.prod(max(0, w - 2) for w in widths)
        return total - inner

    def __repr__(self) -> str:
        return f"Box({list(self.lo)}..{list(self.hi)})"


def _canonical_boxes(boxes: list[Box], dims: int) -> tuple[Box, ...]:
    """Unique disjoint decomposition of the union of ``boxes``.

    Slice along axis 0 at every coordinate where some input box starts or
    ends; between two adjacent cuts the cross-section (a rank ``dims-1``
    set) is constant, so it can be canonicalized recursively.  Adjacent
    slabs with identical canonical cross-sections are merged into maximal
    runs.  The output therefore depends only on the addressed element set:
    the same set always canonicalizes to the same box tuple, regardless of
    how (or with what overlaps) the inputs were split.
    """
    if not boxes:
        return ()
    if dims == 0:
        # rank-0 boxes address the single empty-tuple point
        return (boxes[0],)
    cuts = sorted({b.lo[0] for b in boxes} | {b.hi[0] for b in boxes})
    # (lo0, hi0, canonical cross-section) maximal slabs along axis 0
    slabs: list[tuple[int, int, tuple[Box, ...]]] = []
    for lo0, hi0 in zip(cuts, cuts[1:]):
        # cuts include every box boundary, so each box either spans the
        # whole slab or misses it entirely
        cross = [
            Box(b.lo[1:], b.hi[1:])
            for b in boxes
            if b.lo[0] <= lo0 and hi0 <= b.hi[0]
        ]
        if not cross:
            continue
        canonical = _canonical_boxes(cross, dims - 1)
        if slabs and slabs[-1][1] == lo0 and slabs[-1][2] == canonical:
            slabs[-1] = (slabs[-1][0], hi0, canonical)
        else:
            slabs.append((lo0, hi0, canonical))
    out: list[Box] = []
    for lo0, hi0, canonical in slabs:
        for cross_box in canonical:
            out.append(Box((lo0,) + cross_box.lo, (hi0,) + cross_box.hi))
    return tuple(out)


class BoxSetRegion(Region):
    """Region stored as the canonical set of pairwise-disjoint boxes."""

    __slots__ = ("_boxes", "_dims", "_ckey")

    def __init__(self, boxes: Iterable[Box] = (), dims: int | None = None) -> None:
        live: list[Box] = []
        for box in boxes:
            if box.is_empty():
                continue
            if dims is None:
                dims = box.dims
            elif box.dims != dims:
                raise RegionMismatchError(
                    f"box of rank {box.dims} in a rank-{dims} region"
                )
            live.append(box)
        self._boxes: tuple[Box, ...] = _canonical_boxes(live, dims or 0)
        self._dims = dims
        self._ckey: Hashable = None
        self._rid: int | None = None

    @classmethod
    def empty(cls, dims: int | None = None) -> "BoxSetRegion":
        return cls((), dims=dims)

    @classmethod
    def single(cls, lo: Sequence[int], hi: Sequence[int]) -> "BoxSetRegion":
        return cls((Box.of(lo, hi),))

    @classmethod
    def full_grid(cls, shape: Sequence[int]) -> "BoxSetRegion":
        return cls((Box.full(shape),))

    @property
    def boxes(self) -> tuple[Box, ...]:
        return self._boxes

    @property
    def dims(self) -> int | None:
        return self._dims

    def bounding_box(self) -> Box | None:
        if not self._boxes:
            return None
        dims = self._boxes[0].dims
        lo = tuple(min(b.lo[a] for b in self._boxes) for a in range(dims))
        hi = tuple(max(b.hi[a] for b in self._boxes) for a in range(dims))
        return Box(lo, hi)

    # -- closure operations ---------------------------------------------------

    def _coerce(self, other: Region) -> "BoxSetRegion":
        if isinstance(other, BoxSetRegion):
            if (
                self._dims is not None
                and other._dims is not None
                and self._dims != other._dims
            ):
                raise RegionMismatchError(
                    f"rank mismatch: {self._dims} vs {other._dims}"
                )
            return other
        raise RegionMismatchError(
            f"cannot combine BoxSetRegion with {type(other).__name__}"
        )

    def _union(self, other: Region) -> "BoxSetRegion":
        other = self._coerce(other)
        if not other._boxes:
            return self
        if not self._boxes:
            return other
        return BoxSetRegion(
            self._boxes + other._boxes, dims=self._dims or other._dims
        )

    def _intersect(self, other: Region) -> "BoxSetRegion":
        other = self._coerce(other)
        if not self._boxes or not other._boxes:
            return BoxSetRegion.empty(self._dims or other._dims)
        cuts = []
        for a in self._boxes:
            for b in other._boxes:
                cut = a.intersect(b)
                if not cut.is_empty():
                    cuts.append(cut)
        return BoxSetRegion(cuts, dims=self._dims or other._dims)

    def _difference(self, other: Region) -> "BoxSetRegion":
        other = self._coerce(other)
        if not self._boxes:
            return self
        remaining = list(self._boxes)
        touched = False
        for cutter in other._boxes:
            pieces = []
            for box in remaining:
                if box.overlaps(cutter):
                    pieces.extend(box.subtract(cutter))
                    touched = True
                else:
                    pieces.append(box)
            remaining = pieces
        if not touched:
            return self
        return BoxSetRegion(remaining, dims=self._dims or other._dims)

    # -- cardinality and membership ------------------------------------------

    def cache_key(self) -> Hashable:
        if self._ckey is None:
            self._ckey = ("box", self._dims, self._boxes)
        return self._ckey

    def _is_empty(self) -> bool:
        return not self._boxes

    def size(self) -> int:
        return sum(b.size() for b in self._boxes)

    def elements(self) -> Iterator[tuple[int, ...]]:
        for box in self._boxes:
            yield from box.points()

    def contains(self, element: Any) -> bool:
        if not isinstance(element, tuple):
            return False
        return any(b.contains(element) for b in self._boxes)

    def _covers(self, other: Region) -> bool:
        """Containment with a fast path for box-in-box (the hot case)."""
        if isinstance(other, BoxSetRegion):
            remaining = []
            for box in other._boxes:
                for mine in self._boxes:
                    if mine.encloses(box):
                        break
                else:
                    remaining.append(box)
            if not remaining:
                return True
            other = BoxSetRegion(remaining, dims=other._dims)
        return other.difference(self).is_empty()

    def surface(self) -> int:
        """Sum of per-box boundary element counts (halo volume estimate)."""
        return sum(b.surface() for b in self._boxes)

    # -- value semantics --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoxSetRegion):
            return NotImplemented
        # the representation is canonical, so structural equality of the
        # box tuples *is* semantic equality (dims of empties excluded)
        return self._boxes == other._boxes

    def __hash__(self) -> int:
        return hash(self._boxes)

    def __repr__(self) -> str:
        return f"BoxSetRegion({list(self._boxes)!r})"


def grid_block_decomposition(shape: Sequence[int], parts: int) -> list[Box]:
    """Decompose a full grid into ``parts`` near-equal boxes.

    Recursively bisects the widest axis, matching the blocking the MPI
    reference codes in the paper's evaluation use and the blocking the
    AllScale scheduler converges to during the initialization phase.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    result: list[Box] = []

    def rec(box: Box, n: int) -> None:
        if n == 1:
            result.append(box)
            return
        widths = box.widths()
        axis = max(range(len(widths)), key=widths.__getitem__)
        left_n = n // 2
        right_n = n - left_n
        at = box.lo[axis] + (widths[axis] * left_n) // n
        left, right = box.split(axis, at)
        rec(left, left_n)
        rec(right, right_n)

    rec(Box.full(shape), parts)
    return result
