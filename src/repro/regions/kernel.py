"""Canonical region kernel: interning and memoized region algebra.

Every hot path of the runtime — Algorithm 1's hierarchical index lookups,
Algorithm 2's coverage checks, the region-granular lock tables, and the
data item manager's migrate/replicate/invalidate machinery (paper §3.2) —
is a chain of region ``union``/``difference``/``intersect``/``covers``
calls, and the same operand pairs recur over and over (per timestep, per
task template, per lookup).  This module provides the shared kernel those
paths run on:

* **Interning** — every region family defines a *canonical* normal form
  (see :meth:`repro.regions.base.Region.cache_key`); the kernel maps each
  canonical key to one representative instance, so semantically equal
  regions collapse to the same object, equality degenerates to identity,
  and hashing is O(1) after the first computation.

* **Memoized algebra** — the binary closure operations (``union``,
  ``intersect``, ``difference``) and the derived predicates (``covers``,
  ``overlaps``) are cached in a bounded LRU keyed by the *identities* of
  the interned operands.  Cache entries keep strong references to both
  operands, so an ``id()`` can never be recycled while its entry is live.
  ``is_empty`` is O(1) on every canonical form and is therefore delegated
  (and merely counted), not cached.

* **Counters** — per-op hit/miss counters plus the intern count are
  exposed through :meth:`RegionKernel.stats` and surfaced as
  ``region.*`` counters in ``runtime.metrics`` and the bench report.

The kernel is deliberately family-agnostic: it never inspects region
internals, it only calls the raw ``_union``/``_intersect``/``_difference``
/``_covers`` implementations the families provide.  Type and geometry
mismatch errors therefore surface exactly as they would without the
kernel (and failed operations are never cached).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Hashable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.regions.base import Region

#: operations whose result does not depend on operand order; their cache
#: keys are normalized (same-family operands only) to double the hit rate
_SYMMETRIC_OPS = frozenset({"union", "intersect", "overlaps"})


class RegionKernel:
    """Interning table plus bounded memo-cache for the region algebra."""

    __slots__ = (
        "intern_capacity",
        "op_capacity",
        "_interned",
        "_ops",
        "_hits",
        "_misses",
        "_interned_count",
        "_delegated",
    )

    def __init__(
        self, intern_capacity: int = 1 << 16, op_capacity: int = 1 << 16
    ) -> None:
        if intern_capacity < 1 or op_capacity < 1:
            raise ValueError("kernel capacities must be positive")
        self.intern_capacity = intern_capacity
        self.op_capacity = op_capacity
        #: canonical key -> representative region instance (LRU-bounded)
        self._interned: "OrderedDict[Hashable, Region]" = OrderedDict()
        #: (op, id(a), id(b)) -> (a, b, result); operands are kept alive by
        #: the entry itself so id-based keys can never alias
        self._ops: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._hits: dict[str, int] = {}
        self._misses: dict[str, int] = {}
        self._delegated: dict[str, int] = {}
        self._interned_count = 0

    # -- interning ------------------------------------------------------------

    def intern(self, region: "Region") -> "Region":
        """Return the canonical representative for ``region``.

        The first instance seen for a canonical key becomes the
        representative; later semantically-equal instances resolve to it.
        """
        key = region.cache_key()
        table = self._interned
        rep = table.get(key)
        if rep is not None:
            table.move_to_end(key)
            return rep
        table[key] = region
        self._interned_count += 1
        if len(table) > self.intern_capacity:
            table.popitem(last=False)
        return region

    # -- memoized binary algebra ------------------------------------------------

    def _memoized(self, op: str, a: "Region", b: "Region") -> Any:
        """Cache lookup / fill for one binary operation."""
        a = self.intern(a)
        b = self.intern(b)
        if op in _SYMMETRIC_OPS and type(a) is type(b) and id(b) < id(a):
            a, b = b, a
        key = (op, id(a), id(b))
        ops = self._ops
        entry = ops.get(key)
        if entry is not None and entry[0] is a and entry[1] is b:
            self._hits[op] = self._hits.get(op, 0) + 1
            ops.move_to_end(key)
            return entry[2]
        self._misses[op] = self._misses.get(op, 0) + 1
        if op == "union":
            result: Any = self.intern(a._union(b))
        elif op == "intersect":
            result = self.intern(a._intersect(b))
        elif op == "difference":
            result = self.intern(a._difference(b))
        elif op == "covers":
            result = a._covers(b)
        elif op == "overlaps":
            result = not self.intersect(a, b).is_empty()
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown region op {op!r}")
        ops[key] = (a, b, result)
        if len(ops) > self.op_capacity:
            ops.popitem(last=False)
        return result

    def union(self, a: "Region", b: "Region") -> "Region":
        if a is b:
            return self.intern(a)
        return self._memoized("union", a, b)

    def intersect(self, a: "Region", b: "Region") -> "Region":
        if a is b:
            return self.intern(a)
        return self._memoized("intersect", a, b)

    def difference(self, a: "Region", b: "Region") -> "Region":
        return self._memoized("difference", a, b)

    # -- memoized predicates ---------------------------------------------------

    def covers(self, a: "Region", b: "Region") -> bool:
        if a is b:
            return True
        return self._memoized("covers", a, b)

    def overlaps(self, a: "Region", b: "Region") -> bool:
        if a is b:
            return not a.is_empty()
        return self._memoized("overlaps", a, b)

    def is_empty(self, a: "Region") -> bool:
        # O(1) on every canonical form; counted for completeness, not cached
        self._delegated["is_empty"] = self._delegated.get("is_empty", 0) + 1
        return a._is_empty()

    # -- introspection ---------------------------------------------------------

    @property
    def cache_hits(self) -> int:
        return sum(self._hits.values())

    @property
    def cache_misses(self) -> int:
        return sum(self._misses.values())

    @property
    def interned(self) -> int:
        """Total regions interned (monotone; unaffected by LRU eviction)."""
        return self._interned_count

    @property
    def live_interned(self) -> int:
        return len(self._interned)

    def stats(self) -> dict[str, int]:
        """Flat counter snapshot using the ``region.*`` metric names."""
        out = {
            "region.cache_hits": self.cache_hits,
            "region.cache_misses": self.cache_misses,
            "region.interned": self._interned_count,
        }
        for op in sorted(set(self._hits) | set(self._misses)):
            out[f"region.{op}.hits"] = self._hits.get(op, 0)
            out[f"region.{op}.misses"] = self._misses.get(op, 0)
        for op, count in sorted(self._delegated.items()):
            out[f"region.{op}.calls"] = count
        return out

    def reset(self) -> None:
        """Drop both tables and all counters (test isolation)."""
        self._interned.clear()
        self._ops.clear()
        self._hits.clear()
        self._misses.clear()
        self._delegated.clear()
        self._interned_count = 0

    def __repr__(self) -> str:
        return (
            f"RegionKernel(interned={len(self._interned)}, "
            f"ops={len(self._ops)}, hits={self.cache_hits}, "
            f"misses={self.cache_misses})"
        )


#: process-wide kernel all region instances route their algebra through
_KERNEL = RegionKernel()


def get_kernel() -> RegionKernel:
    """The process-wide region kernel singleton."""
    return _KERNEL
