"""Canonical region kernel: interning and memoized region algebra.

Every hot path of the runtime — Algorithm 1's hierarchical index lookups,
Algorithm 2's coverage checks, the region-granular lock tables, and the
data item manager's migrate/replicate/invalidate machinery (paper §3.2) —
is a chain of region ``union``/``difference``/``intersect``/``covers``
calls, and the same operand pairs recur over and over (per timestep, per
task template, per lookup).  This module provides the shared kernel those
paths run on:

* **Interning** — every region family defines a *canonical* normal form
  (see :meth:`repro.regions.base.Region.cache_key`); the kernel maps each
  canonical key to one representative instance, so semantically equal
  regions collapse to the same object, equality degenerates to identity,
  and hashing is O(1) after the first computation.

* **Interned ids** — every representative carries a small, process-unique
  integer id (``_rid``, assigned once at interning time and never
  recycled).  The id does double duty: it marks a region as already
  canonical, so re-interning is a single attribute check instead of a
  ``cache_key``/hash/dict round trip, and it keys the memo-cache with a
  flat ``(op, rid, rid)`` integer tuple — the O(1) fast path every hot
  loop lands on once its operands have been seen once.

* **Memoized algebra** — the binary closure operations (``union``,
  ``intersect``, ``difference``) and the derived predicates (``covers``,
  ``overlaps``) are cached in a plain dict keyed by interned ids.  Ids
  are never reused, so entries can never alias; when the cache exceeds
  its capacity the oldest half (insertion order) is dropped wholesale —
  cheaper than per-hit LRU maintenance, which dominated profiles.
  Same-family operations with an empty operand short-circuit without
  touching the cache at all.  ``is_empty`` is O(1) on every canonical
  form and is therefore delegated (and merely counted), not cached.

* **Counters** — per-op hit/miss counters plus the intern count are
  exposed through :meth:`RegionKernel.stats` and surfaced as
  ``region.*`` counters in ``runtime.metrics`` and the bench report.

The kernel is deliberately family-agnostic: it never inspects region
internals, it only calls the raw ``_union``/``_intersect``/``_difference``
/``_covers`` implementations the families provide.  Type and geometry
mismatch errors therefore surface exactly as they would without the
kernel (and failed operations are never cached).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Hashable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.regions.base import Region

#: process-wide interned-id allocator: ids are unique across *all* kernel
#: instances (and never recycled), so an id-keyed memo entry can never
#: alias even when regions flow between kernels (tests build private ones)
_RID_COUNTER = itertools.count(1)

# opcodes for the memo-cache key tuples; kept as module constants so the
# hot methods avoid any string hashing
_UNION, _INTERSECT, _DIFFERENCE, _COVERS, _OVERLAPS = range(5)
_OP_NAMES = ("union", "intersect", "difference", "covers", "overlaps")


class RegionKernel:
    """Interning table plus bounded memo-cache for the region algebra."""

    __slots__ = (
        "intern_capacity",
        "op_capacity",
        "_interned",
        "_ops",
        "_hits",
        "_misses",
        "_interned_count",
        "_is_empty_calls",
    )

    def __init__(
        self, intern_capacity: int = 1 << 16, op_capacity: int = 1 << 17
    ) -> None:
        if intern_capacity < 1 or op_capacity < 1:
            raise ValueError("kernel capacities must be positive")
        self.intern_capacity = intern_capacity
        self.op_capacity = op_capacity
        #: canonical key -> representative region instance (FIFO-bounded)
        self._interned: dict[Hashable, "Region"] = {}
        #: (op, rid(a), rid(b)) -> result; ids are never recycled, so the
        #: key alone identifies the operands — no liveness guard needed
        self._ops: dict[tuple[int, int, int], object] = {}
        self._hits = [0, 0, 0, 0, 0]
        self._misses = [0, 0, 0, 0, 0]
        self._is_empty_calls = 0
        self._interned_count = 0

    # -- interning ------------------------------------------------------------

    def intern(self, region: "Region") -> "Region":
        """Return the canonical representative for ``region``.

        The first instance seen for a canonical key becomes the
        representative; later semantically-equal instances resolve to it.
        An already-interned region (carrying an id) returns itself with a
        single attribute check — no key computation, no table access.
        """
        if region._rid is not None:
            return region
        key = region.cache_key()
        table = self._interned
        rep = table.get(key)
        if rep is not None:
            return rep
        region._rid = next(_RID_COUNTER)
        table[key] = region
        self._interned_count += 1
        if len(table) > self.intern_capacity:
            # FIFO: drop the oldest representative.  Its id stays valid on
            # the instance (live references keep working at full speed);
            # only future duplicates re-intern to a fresh representative.
            del table[next(iter(table))]
        return region

    # -- memoized binary algebra ------------------------------------------------

    def _store(self, key: tuple[int, int, int], result: object) -> None:
        ops = self._ops
        ops[key] = result
        if len(ops) > self.op_capacity:
            # drop the oldest (insertion-ordered) half wholesale; per-hit
            # LRU reordering cost more than the misses it prevented
            for stale in list(itertools.islice(iter(ops), len(ops) // 2)):
                del ops[stale]

    def union(self, a: "Region", b: "Region") -> "Region":
        if a._rid is None:
            a = self.intern(a)
        if b._rid is None:
            b = self.intern(b)
        if a is b:
            return a
        if type(a) is type(b):
            if b._is_empty():
                return a
            if a._is_empty():
                return b
        ra = a._rid
        rb = b._rid
        if type(a) is type(b) and rb < ra:  # symmetric: normalize the key
            a, b, ra, rb = b, a, rb, ra
        key = (_UNION, ra, rb)
        result = self._ops.get(key)
        if result is not None:
            self._hits[_UNION] += 1
            return result  # type: ignore[return-value]
        self._misses[_UNION] += 1
        result = self.intern(a._union(b))
        self._store(key, result)
        return result  # type: ignore[return-value]

    def intersect(self, a: "Region", b: "Region") -> "Region":
        if a._rid is None:
            a = self.intern(a)
        if b._rid is None:
            b = self.intern(b)
        if a is b:
            return a
        if type(a) is type(b):
            if a._is_empty():
                return a
            if b._is_empty():
                return b
        ra = a._rid
        rb = b._rid
        if type(a) is type(b) and rb < ra:
            a, b, ra, rb = b, a, rb, ra
        key = (_INTERSECT, ra, rb)
        result = self._ops.get(key)
        if result is not None:
            self._hits[_INTERSECT] += 1
            return result  # type: ignore[return-value]
        self._misses[_INTERSECT] += 1
        result = self.intern(a._intersect(b))
        self._store(key, result)
        return result  # type: ignore[return-value]

    def difference(self, a: "Region", b: "Region") -> "Region":
        if type(a) is type(b) and (a._is_empty() or b._is_empty()):
            return a if a._rid is not None else self.intern(a)
        if a._rid is None:
            a = self.intern(a)
        if b._rid is None:
            b = self.intern(b)
        key = (_DIFFERENCE, a._rid, b._rid)
        result = self._ops.get(key)
        if result is not None:
            self._hits[_DIFFERENCE] += 1
            return result  # type: ignore[return-value]
        self._misses[_DIFFERENCE] += 1
        result = self.intern(a._difference(b))
        self._store(key, result)
        return result  # type: ignore[return-value]

    # -- memoized predicates ---------------------------------------------------

    def covers(self, a: "Region", b: "Region") -> bool:
        if a is b:
            return True
        if type(a) is type(b) and b._is_empty():
            return True
        if a._rid is None:
            a = self.intern(a)
        if b._rid is None:
            b = self.intern(b)
        if a is b:
            return True
        key = (_COVERS, a._rid, b._rid)
        result = self._ops.get(key)
        if result is not None:
            self._hits[_COVERS] += 1
            return result is True
        self._misses[_COVERS] += 1
        verdict = a._covers(b)
        self._store(key, verdict)
        return verdict

    def overlaps(self, a: "Region", b: "Region") -> bool:
        if a is b:
            return not a._is_empty()
        if type(a) is type(b) and (a._is_empty() or b._is_empty()):
            return False
        if a._rid is None:
            a = self.intern(a)
        if b._rid is None:
            b = self.intern(b)
        if a is b:
            return not a._is_empty()
        ra = a._rid
        rb = b._rid
        if type(a) is type(b) and rb < ra:
            a, b, ra, rb = b, a, rb, ra
        key = (_OVERLAPS, ra, rb)
        result = self._ops.get(key)
        if result is not None:
            self._hits[_OVERLAPS] += 1
            return result is True
        self._misses[_OVERLAPS] += 1
        verdict = not self.intersect(a, b)._is_empty()
        self._store(key, verdict)
        return verdict

    def is_empty(self, a: "Region") -> bool:
        # O(1) on every canonical form; counted for completeness, not cached
        self._is_empty_calls += 1
        return a._is_empty()

    # -- introspection ---------------------------------------------------------

    @property
    def cache_hits(self) -> int:
        return sum(self._hits)

    @property
    def cache_misses(self) -> int:
        return sum(self._misses)

    @property
    def interned(self) -> int:
        """Total regions interned (monotone; unaffected by eviction)."""
        return self._interned_count

    @property
    def live_interned(self) -> int:
        return len(self._interned)

    def stats(self) -> dict[str, int]:
        """Flat counter snapshot using the ``region.*`` metric names."""
        out = {
            "region.cache_hits": self.cache_hits,
            "region.cache_misses": self.cache_misses,
            "region.interned": self._interned_count,
        }
        for code, op in enumerate(_OP_NAMES):
            hits = self._hits[code]
            misses = self._misses[code]
            if hits or misses:
                out[f"region.{op}.hits"] = hits
                out[f"region.{op}.misses"] = misses
        if self._is_empty_calls:
            out["region.is_empty.calls"] = self._is_empty_calls
        return out

    def reset(self) -> None:
        """Drop both tables and all counters (test isolation).

        Already-issued interned ids stay valid on their instances — ids
        are never recycled, so stale memo keys cannot alias after reset.
        """
        self._interned.clear()
        self._ops.clear()
        self._hits = [0, 0, 0, 0, 0]
        self._misses = [0, 0, 0, 0, 0]
        self._is_empty_calls = 0
        self._interned_count = 0

    def __repr__(self) -> str:
        return (
            f"RegionKernel(interned={len(self._interned)}, "
            f"ops={len(self._ops)}, hits={self.cache_hits}, "
            f"misses={self.cache_misses})"
        )


#: process-wide kernel all region instances route their algebra through
_KERNEL = RegionKernel()


def get_kernel() -> RegionKernel:
    """The process-wide region kernel singleton."""
    return _KERNEL
