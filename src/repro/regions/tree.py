"""Flexible sub-tree regions for balanced binary trees (Fig. 4b).

The paper describes tree regions given by two sets of sub-tree roots: an
*include* set enumerating covered sub-trees and an *exclude* set enumerating
sub-trees carved back out of the included ones.  Arbitrary node
distributions are expressible this way (any single node is its sub-tree
minus both child sub-trees), and the representation cost is proportional to
the number of "switch points" rather than the number of nodes.

Internally a region is a canonical *mark map*: ``marks[n] = True/False``
means membership switches to that value for node ``n`` and its whole
sub-tree until overridden by a deeper mark; the root default is "excluded".
Include/exclude views (the paper's presentation) are derived from the marks.
Canonicality makes ``==`` and ``hash`` cheap *and* semantic.

Nodes of a tree with ``depth`` levels are addressed in binary-heap order:
the root is ``1``, node ``n`` has children ``2n`` and ``2n+1``, and ids run
from ``1`` to ``2**depth - 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable, Iterator, Mapping

from repro.regions.base import Region, RegionMismatchError


@dataclass(frozen=True)
class TreeGeometry:
    """Shape of a complete binary tree: ``depth`` levels, ``2**depth - 1`` nodes."""

    depth: int

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError(f"tree depth must be >= 1, got {self.depth}")

    @property
    def num_nodes(self) -> int:
        return (1 << self.depth) - 1

    def level_of(self, node: int) -> int:
        """1-based level of ``node`` (root is level 1)."""
        self.check_node(node)
        return node.bit_length()

    def check_node(self, node: int) -> int:
        if not (1 <= node <= self.num_nodes):
            raise ValueError(
                f"node {node} out of range for tree with {self.num_nodes} nodes"
            )
        return node

    def is_leaf(self, node: int) -> bool:
        return self.level_of(node) == self.depth

    def parent(self, node: int) -> int | None:
        self.check_node(node)
        return node // 2 if node > 1 else None

    def children(self, node: int) -> tuple[int, ...]:
        if self.is_leaf(node):
            return ()
        return (2 * node, 2 * node + 1)

    def subtree_size(self, node: int) -> int:
        """Number of nodes in the complete sub-tree rooted at ``node``."""
        levels_below = self.depth - self.level_of(node) + 1
        return (1 << levels_below) - 1

    def subtree_nodes(self, node: int) -> Iterator[int]:
        self.check_node(node)
        frontier = [node]
        while frontier:
            n = frontier.pop()
            yield n
            frontier.extend(self.children(n))

    def leaves(self) -> Iterator[int]:
        return iter(range(1 << (self.depth - 1), 1 << self.depth))


def _canonical_marks(
    geometry: TreeGeometry, raw: Mapping[int, bool]
) -> dict[int, bool]:
    """Reduce an arbitrary mark map to its unique minimal change-point form."""
    touched: set[int] = set()
    for node in raw:
        geometry.check_node(node)
        m = node
        while m >= 1:
            touched.add(m)
            m //= 2
    marks: dict[int, bool] = {}

    def rec(node: int, inherited: bool) -> None:
        value = raw.get(node, inherited)
        if value != inherited:
            marks[node] = value
        for child in geometry.children(node):
            if child in touched:
                rec(child, value)

    if touched:
        rec(1, False)
    return marks


class TreeRegion(Region):
    """Region over a complete binary tree in include/exclude sub-tree form."""

    __slots__ = ("_geometry", "_marks", "_key", "_ckey")

    def __init__(
        self, geometry: TreeGeometry, marks: Mapping[int, bool] | None = None
    ) -> None:
        self._geometry = geometry
        self._marks = _canonical_marks(geometry, marks or {})
        self._key = frozenset(self._marks.items())
        self._ckey: Hashable = None
        self._rid: int | None = None

    # -- constructors ---------------------------------------------------------

    @classmethod
    def empty(cls, geometry: TreeGeometry) -> "TreeRegion":
        return cls(geometry)

    @classmethod
    def full(cls, geometry: TreeGeometry) -> "TreeRegion":
        return cls(geometry, {1: True})

    @classmethod
    def of_subtrees(
        cls,
        geometry: TreeGeometry,
        includes: Iterable[int],
        excludes: Iterable[int] = (),
    ) -> "TreeRegion":
        """Build a region from the paper's include/exclude sub-tree sets.

        ``excludes`` win over ``includes`` when nested deeper (the paper's
        reading: excluded sub-trees are carved out of included ones).  When
        an include and an exclude name the same node, the exclude wins.
        """
        raw: dict[int, bool] = {}
        for node in includes:
            raw[geometry.check_node(node)] = True
        for node in excludes:
            raw[geometry.check_node(node)] = False
        return cls(geometry, raw)

    @classmethod
    def of_nodes(cls, geometry: TreeGeometry, nodes: Iterable[int]) -> "TreeRegion":
        """Region addressing exactly the given individual nodes.

        An included node implicitly covers its whole sub-tree, so every child
        of an included node must carry an explicit mark shielding (or
        re-including) it; canonicalization then drops redundant marks.
        """
        node_set = {geometry.check_node(n) for n in nodes}
        raw: dict[int, bool] = {}
        for node in node_set:
            raw[node] = True
            for child in geometry.children(node):
                raw[child] = child in node_set
        return cls(geometry, raw)

    # -- views -----------------------------------------------------------------

    @property
    def geometry(self) -> TreeGeometry:
        return self._geometry

    @property
    def marks(self) -> Mapping[int, bool]:
        return dict(self._marks)

    def include_roots(self) -> frozenset[int]:
        """Sub-tree roots where membership switches on (paper's include set)."""
        return frozenset(n for n, v in self._marks.items() if v)

    def exclude_roots(self) -> frozenset[int]:
        """Sub-tree roots where membership switches off (paper's exclude set)."""
        return frozenset(n for n, v in self._marks.items() if not v)

    def representation_size(self) -> int:
        """Number of stored switch points — the scheme's space cost."""
        return len(self._marks)

    # -- closure operations -------------------------------------------------------

    def _coerce(self, other: Region) -> "TreeRegion":
        if not isinstance(other, TreeRegion):
            raise RegionMismatchError(
                f"cannot combine TreeRegion with {type(other).__name__}"
            )
        if other._geometry != self._geometry:
            raise RegionMismatchError(
                f"tree geometry mismatch: depth {self._geometry.depth} "
                f"vs {other._geometry.depth}"
            )
        return other

    def _combine(
        self, other: "TreeRegion", op: Callable[[bool, bool], bool]
    ) -> "TreeRegion":
        geometry = self._geometry
        touched: set[int] = set()
        for node in (*self._marks, *other._marks):
            m = node
            while m >= 1:
                touched.add(m)
                m //= 2
        marks: dict[int, bool] = {}

        def rec(node: int, ia: bool, ib: bool, inherited: bool) -> None:
            va = self._marks.get(node, ia)
            vb = other._marks.get(node, ib)
            vo = op(va, vb)
            if vo != inherited:
                marks[node] = vo
            for child in geometry.children(node):
                if child in touched:
                    rec(child, va, vb, vo)

        if touched:
            rec(1, False, False, False)
        result = TreeRegion.__new__(TreeRegion)
        result._geometry = geometry
        result._marks = marks
        result._key = frozenset(marks.items())
        result._ckey = None
        result._rid = None
        return result

    def _union(self, other: Region) -> "TreeRegion":
        return self._combine(self._coerce(other), lambda a, b: a or b)

    def _intersect(self, other: Region) -> "TreeRegion":
        return self._combine(self._coerce(other), lambda a, b: a and b)

    def _difference(self, other: Region) -> "TreeRegion":
        return self._combine(self._coerce(other), lambda a, b: a and not b)

    # -- cardinality and membership ------------------------------------------

    def cache_key(self) -> Hashable:
        if self._ckey is None:
            self._ckey = ("tree", self._geometry.depth, self._key)
        return self._ckey

    def _is_empty(self) -> bool:
        return not self._marks

    def size(self) -> int:
        geometry = self._geometry
        internal = {n // 2 for n in self._marks if n > 1}
        closure: set[int] = set()
        for node in internal:
            m = node
            while m >= 1 and m not in closure:
                closure.add(m)
                m //= 2

        def rec(node: int, inherited: bool) -> int:
            value = self._marks.get(node, inherited)
            children = geometry.children(node)
            if not any(c in closure or c in self._marks for c in children):
                return geometry.subtree_size(node) if value else 0
            total = 1 if value else 0
            for child in children:
                total += rec(child, value)
            return total

        return rec(1, False) if self._marks else 0

    def elements(self) -> Iterator[int]:
        geometry = self._geometry

        def rec(node: int, inherited: bool) -> Iterator[int]:
            value = self._marks.get(node, inherited)
            if value:
                yield node
            for child in geometry.children(node):
                yield from rec(child, value)

        if self._marks:
            yield from rec(1, False)

    def contains(self, element: Any) -> bool:
        if not isinstance(element, int):
            return False
        if not (1 <= element <= self._geometry.num_nodes):
            return False
        node = element
        while node >= 1:
            if node in self._marks:
                return self._marks[node]
            node //= 2
        return False

    # -- value semantics --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TreeRegion):
            return NotImplemented
        return self._geometry == other._geometry and self._key == other._key

    def __hash__(self) -> int:
        return hash((self._geometry, self._key))

    def __repr__(self) -> str:
        inc = sorted(self.include_roots())
        exc = sorted(self.exclude_roots())
        return (
            f"TreeRegion(depth={self._geometry.depth}, "
            f"include={inc}, exclude={exc})"
        )
