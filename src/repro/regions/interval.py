"""1-D interval-set regions.

An :class:`IntervalRegion` is a sorted list of disjoint, non-adjacent,
half-open integer intervals ``[lo, hi)``.  It addresses elements of 1-D
arrays and is also the per-axis building block used by the N-dimensional
box-set regions of :mod:`repro.regions.box`.

All three closure operations run in ``O(n + m)`` over the interval counts of
the operands, and the representation is canonical: two regions address the
same element set iff their interval lists are identical, so ``==`` is both
cheap and semantic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Iterator

from repro.regions.base import Region, RegionMismatchError


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open integer interval ``[lo, hi)``; empty iff ``lo >= hi``."""

    lo: int
    hi: int

    def is_empty(self) -> bool:
        return self.lo >= self.hi

    def size(self) -> int:
        return max(0, self.hi - self.lo)

    def contains(self, point: int) -> bool:
        return self.lo <= point < self.hi

    def overlaps(self, other: "Interval") -> bool:
        return self.lo < other.hi and other.lo < self.hi

    def intersect(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def __repr__(self) -> str:
        return f"[{self.lo},{self.hi})"


def _normalize(intervals: Iterable[Interval]) -> tuple[Interval, ...]:
    """Sort, drop empties, and merge overlapping/adjacent intervals."""
    pending = sorted(i for i in intervals if not i.is_empty())
    merged: list[Interval] = []
    for iv in pending:
        if merged and iv.lo <= merged[-1].hi:
            last = merged[-1]
            if iv.hi > last.hi:
                merged[-1] = Interval(last.lo, iv.hi)
        else:
            merged.append(iv)
    return tuple(merged)


class IntervalRegion(Region):
    """Canonical union of disjoint half-open integer intervals."""

    __slots__ = ("_intervals", "_ckey")

    def __init__(self, intervals: Iterable[Interval | tuple[int, int]] = ()) -> None:
        coerced = [
            iv if isinstance(iv, Interval) else Interval(int(iv[0]), int(iv[1]))
            for iv in intervals
        ]
        self._intervals = _normalize(coerced)
        self._ckey: Hashable = None
        self._rid: int | None = None

    @classmethod
    def empty(cls) -> "IntervalRegion":
        return cls(())

    @classmethod
    def span(cls, lo: int, hi: int) -> "IntervalRegion":
        """Region addressing the contiguous range ``[lo, hi)``."""
        return cls(((lo, hi),))

    @classmethod
    def of_points(cls, points: Iterable[int]) -> "IntervalRegion":
        return cls((p, p + 1) for p in points)

    @property
    def intervals(self) -> tuple[Interval, ...]:
        return self._intervals

    def bounds(self) -> Interval | None:
        """Smallest single interval covering the region, or ``None`` if empty."""
        if not self._intervals:
            return None
        return Interval(self._intervals[0].lo, self._intervals[-1].hi)

    # -- closure operations ---------------------------------------------------

    def _coerce(self, other: Region) -> "IntervalRegion":
        if isinstance(other, IntervalRegion):
            return other
        raise RegionMismatchError(
            f"cannot combine IntervalRegion with {type(other).__name__}"
        )

    def _union(self, other: Region) -> "IntervalRegion":
        other = self._coerce(other)
        if not other._intervals:
            return self
        if not self._intervals:
            return other
        return IntervalRegion(self._intervals + other._intervals)

    def _intersect(self, other: Region) -> "IntervalRegion":
        other = self._coerce(other)
        result: list[Interval] = []
        a, b = self._intervals, other._intervals
        i = j = 0
        while i < len(a) and j < len(b):
            cut = a[i].intersect(b[j])
            if not cut.is_empty():
                result.append(cut)
            # advance whichever interval ends first
            if a[i].hi <= b[j].hi:
                i += 1
            else:
                j += 1
        return IntervalRegion(result)

    def _difference(self, other: Region) -> "IntervalRegion":
        other = self._coerce(other)
        if not self._intervals or not other._intervals:
            return self
        result: list[Interval] = []
        b = other._intervals
        j = 0
        for iv in self._intervals:
            lo = iv.lo
            while j < len(b) and b[j].hi <= lo:
                j += 1
            k = j
            while k < len(b) and b[k].lo < iv.hi:
                if b[k].lo > lo:
                    result.append(Interval(lo, b[k].lo))
                lo = max(lo, b[k].hi)
                if lo >= iv.hi:
                    break
                k += 1
            if lo < iv.hi:
                result.append(Interval(lo, iv.hi))
        return IntervalRegion(result)

    # -- cardinality and membership ------------------------------------------

    def cache_key(self) -> Hashable:
        if self._ckey is None:
            self._ckey = ("interval", self._intervals)
        return self._ckey

    def _is_empty(self) -> bool:
        return not self._intervals

    def size(self) -> int:
        return sum(iv.size() for iv in self._intervals)

    def elements(self) -> Iterator[int]:
        for iv in self._intervals:
            yield from range(iv.lo, iv.hi)

    def contains(self, element: Any) -> bool:
        if not isinstance(element, int):
            return False
        # binary search over the sorted disjoint intervals
        lo, hi = 0, len(self._intervals)
        while lo < hi:
            mid = (lo + hi) // 2
            iv = self._intervals[mid]
            if element < iv.lo:
                hi = mid
            elif element >= iv.hi:
                lo = mid + 1
            else:
                return True
        return False

    # -- value semantics --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalRegion):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __repr__(self) -> str:
        return f"IntervalRegion({list(self._intervals)!r})"


def split_interval_region(region: IntervalRegion, parts: int) -> list[IntervalRegion]:
    """Split ``region`` into ``parts`` contiguous chunks of near-equal size.

    Used by the runtime when spreading a 1-D data item across processes.
    Chunks are returned in address order; some may be empty when the region
    holds fewer elements than ``parts``.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    total = region.size()
    targets = [(total * (k + 1)) // parts for k in range(parts)]
    chunks: list[IntervalRegion] = []
    acc: list[Interval] = []
    seen = 0
    t = 0
    for iv in region.intervals:
        lo = iv.lo
        while lo < iv.hi:
            want = targets[t] - seen
            take = min(want, iv.hi - lo)
            if take > 0:
                acc.append(Interval(lo, lo + take))
                seen += take
                lo += take
            if seen == targets[t]:
                chunks.append(IntervalRegion(acc))
                acc = []
                t += 1
    while t < parts:
        chunks.append(IntervalRegion(acc))
        acc = []
        t += 1
    return chunks
