"""AST lint over leaf-task bodies: declared vs. actual ``ctx`` accesses.

The §2.5 guarantees only cover what a task *declared* (Def. 2.7); the
data-item manager stages and locks exactly the declared regions, so a
body reaching for anything else is a latent out-of-requirement access —
the defect the PR-3 sentinel catches dynamically, caught here before any
simulation event runs.  The pass parses the user kernel's source
(``inspect.getsource`` + ``ast``), follows ``ctx.fragment(item)`` calls
(including aliases like ``f = ctx.fragment(grid)``), classifies fragment
methods as reads or writes, resolves the item names through the kernel's
closure and globals (``inspect.getclosurevars``), and compares against
the task's ``reads``/``writes``:

* an item touched but declared nowhere — under-declaration, error
  (``lint.undeclared_item``);
* a write-classified method on an item declared read-only — error
  (``lint.undeclared_write``);
* a read-classified method on an item declared write-only — warning
  (``lint.undeclared_read``: the manager only guarantees *presence* of
  the write region, not meaningful values);
* an item declared but never touched — warning
  (``lint.unused_requirement``: correct but serializes the scheduler
  against phantom conflicts, i.e. lost parallelism).

The lint is best-effort and honest about it: kernels whose source or
item references cannot be resolved produce ``info`` findings
(``lint.no_source`` / ``lint.unresolvable``) and suppress the
over-declaration check rather than guessing.  Bodies that never mention
their context parameter (pure cost stubs, ubiquitous in virtual-mode
benchmarks) are skipped entirely.
"""

from __future__ import annotations

import ast
import inspect
from dataclasses import dataclass, field

from repro.analysis.findings import ERROR, INFO, WARNING, Finding
from repro.items.base import DataItem
from repro.runtime.tasks import TaskSpec

#: fragment methods that mutate element values
WRITE_METHODS = frozenset({"scatter", "set", "put", "delete", "fill"})
#: fragment methods that only observe element values
READ_METHODS = frozenset(
    {
        "gather",
        "get",
        "neighbors",
        "degree",
        "local_items",
        "local_size",
        "local_vertices",
        "can_visit",
    }
)

_FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda

#: source file -> parsed module (or None if unparseable); lint is called
#: once per leaf of large pfor trees, all sharing a handful of files
_MODULE_CACHE: dict[str, ast.Module | None] = {}


@dataclass
class BodyAccesses:
    """What one kernel body does with its execution context."""

    #: the body never references its ctx parameter (pure cost stub)
    ignores_ctx: bool = False
    #: items read (or touched via an unclassified method)
    reads: set[DataItem] = field(default_factory=set)
    #: items written
    writes: set[DataItem] = field(default_factory=set)
    #: items touched in any way
    touched: set[DataItem] = field(default_factory=set)
    #: source snippets of fragment() arguments that did not resolve
    unresolved: list[str] = field(default_factory=list)
    #: ctx escaped into a helper call / container — accesses are opaque
    opaque: bool = False


def lint_spec(spec: TaskSpec, task_path: str | None = None) -> list[Finding]:
    """Lint one task's kernel against its declared requirements.

    Returns an empty list (and no lint happens) when the task has no
    resolvable Python kernel.  ``task_path`` is the provenance string
    used in findings; defaults to the task name.
    """
    path = task_path if task_path is not None else spec.name
    fn = spec.origin_body or spec.body
    if fn is None:
        return []
    node, problem = _function_node(fn)
    if node is None:
        return [
            Finding(
                check="lint.no_source",
                severity=INFO,
                message=f"kernel source unavailable ({problem}); body not linted",
                task=path,
            )
        ]
    accesses = extract_accesses(node, _resolver(fn))
    if accesses.ignores_ctx:
        return []
    return _compare(spec, path, accesses)


def extract_accesses(node: _FunctionNode, resolve) -> BodyAccesses:
    """Walk a kernel's AST and classify its ``ctx`` accesses.

    ``resolve`` maps a variable name to its runtime value (closure cell,
    global, default) or raises ``KeyError``.
    """
    out = BodyAccesses()
    args = node.args
    positional = args.posonlyargs + args.args
    if not positional:
        out.ignores_ctx = True
        return out
    ctx_name = positional[0].arg
    body = node.body if isinstance(node.body, list) else [node.body]
    parents: dict[ast.AST, ast.AST] = {}
    nodes: list[ast.AST] = []
    for stmt in body:
        for parent in ast.walk(stmt):
            nodes.append(parent)
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent

    if not any(
        isinstance(n, ast.Name) and n.id == ctx_name for n in nodes
    ):
        out.ignores_ctx = True
        return out

    def is_ctx_fragment_call(n: ast.AST) -> bool:
        return (
            isinstance(n, ast.Call)
            and isinstance(n.func, ast.Attribute)
            and n.func.attr == "fragment"
            and isinstance(n.func.value, ast.Name)
            and n.func.value.id == ctx_name
        )

    def resolve_item(arg: ast.AST) -> DataItem | None:
        if isinstance(arg, ast.Name):
            try:
                value = resolve(arg.id)
            except KeyError:
                value = None
            if isinstance(value, DataItem):
                return value
        out.unresolved.append(ast.unparse(arg))
        return None

    def record(item: DataItem | None, method: str | None) -> None:
        if item is None:
            return
        out.touched.add(item)
        if method in WRITE_METHODS:
            out.writes.add(item)
        elif method in READ_METHODS:
            out.reads.add(item)
        elif method is not None:
            # unknown fragment method: count as a read-side touch so the
            # under-declaration check still applies
            out.reads.add(item)

    def method_of(call: ast.Call) -> str | None:
        """Method name when ``call`` is the receiver of ``call.m(...)``."""
        attr = parents.get(call)
        if not isinstance(attr, ast.Attribute):
            return None
        outer = parents.get(attr)
        if isinstance(outer, ast.Call) and outer.func is attr:
            return attr.attr
        return None

    #: alias name -> item, from ``f = ctx.fragment(item)``
    aliases: dict[str, DataItem] = {}
    for n in nodes:
        if not is_ctx_fragment_call(n):
            continue
        item = resolve_item(n.args[0]) if n.args else None
        parent = parents.get(n)
        if (
            isinstance(parent, ast.Assign)
            and parent.value is n
            and len(parent.targets) == 1
            and isinstance(parent.targets[0], ast.Name)
        ):
            if item is not None:
                aliases[parent.targets[0].id] = item
            record(item, None)
        else:
            record(item, method_of(n))

    for n in nodes:
        if (
            isinstance(n, ast.Attribute)
            and isinstance(n.value, ast.Name)
            and n.value.id in aliases
        ):
            outer = parents.get(n)
            method = (
                n.attr
                if isinstance(outer, ast.Call) and outer.func is n
                else None
            )
            record(aliases[n.value.id], method)

    # ctx escaping into anything but a ctx.<attr> access makes the body
    # opaque — e.g. ``helper(ctx)`` may touch arbitrary fragments
    for n in nodes:
        if isinstance(n, ast.Name) and n.id == ctx_name:
            parent = parents.get(n)
            if not (isinstance(parent, ast.Attribute) and parent.value is n):
                out.opaque = True
                break
    return out


def _compare(
    spec: TaskSpec, path: str, accesses: BodyAccesses
) -> list[Finding]:
    findings: list[Finding] = []
    declared_reads = {
        item for item, region in spec.reads.items() if not region.is_empty()
    }
    declared_writes = {
        item for item, region in spec.writes.items() if not region.is_empty()
    }
    declared = declared_reads | declared_writes

    for item in sorted(accesses.touched, key=lambda i: i.name):
        if item not in declared:
            findings.append(
                Finding(
                    check="lint.undeclared_item",
                    severity=ERROR,
                    message=(
                        "body accesses an item absent from the task's "
                        "reads and writes (under-declaration)"
                    ),
                    task=path,
                    item=item.name,
                )
            )
            continue
        if item in accesses.writes and item not in declared_writes:
            findings.append(
                Finding(
                    check="lint.undeclared_write",
                    severity=ERROR,
                    message=(
                        "body writes an item declared read-only "
                        "(under-declared write)"
                    ),
                    task=path,
                    item=item.name,
                )
            )
        if (
            item in accesses.reads
            and item not in declared_reads
            and item in declared_writes
        ):
            findings.append(
                Finding(
                    check="lint.undeclared_read",
                    severity=WARNING,
                    message=(
                        "body reads an item declared write-only; only "
                        "presence of the write region is guaranteed"
                    ),
                    task=path,
                    item=item.name,
                )
            )

    for snippet in accesses.unresolved:
        findings.append(
            Finding(
                check="lint.unresolvable",
                severity=INFO,
                message=(
                    f"fragment argument {snippet!r} could not be resolved "
                    "to a data item; related checks skipped"
                ),
                task=path,
            )
        )

    # over-declaration is only judged when the picture is complete
    if not accesses.opaque and not accesses.unresolved:
        for item in sorted(declared - accesses.touched, key=lambda i: i.name):
            findings.append(
                Finding(
                    check="lint.unused_requirement",
                    severity=WARNING,
                    message=(
                        "requirement declared but the body never touches "
                        "this item (over-declaration costs parallelism)"
                    ),
                    task=path,
                    item=item.name,
                )
            )
    return findings


# -- kernel source resolution ----------------------------------------------------


def _function_node(fn) -> tuple[_FunctionNode | None, str]:
    """Locate ``fn``'s def/lambda node in its source file's AST.

    Parsing the whole file (cached) instead of ``inspect.getsource``'s
    block keeps lambdas embedded in call expressions parseable — their
    snippet (``body=lambda ctx, box: ...``) is not a valid statement.
    """
    code = getattr(fn, "__code__", None)
    if code is None:
        return None, "not a plain Python function"
    try:
        filename = inspect.getsourcefile(fn)
    except TypeError:
        filename = None
    if filename is None:
        return None, "no source file"
    module = _module_ast(filename)
    if module is None:
        return None, f"could not parse {filename!r}"
    lineno = code.co_firstlineno
    name = getattr(fn, "__name__", "<lambda>")
    candidates: list[_FunctionNode] = []
    for n in ast.walk(module):
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)):
            start = min(
                [n.lineno] + [d.lineno for d in n.decorator_list]
            )
            if start == lineno and n.name == name:
                candidates.append(n)
        elif isinstance(n, ast.Lambda) and n.lineno == lineno:
            if len(n.args.posonlyargs + n.args.args) == code.co_argcount:
                candidates.append(n)
    if not candidates:
        return None, f"no def at {filename}:{lineno}"
    return candidates[0], ""


def _module_ast(filename: str) -> ast.Module | None:
    if filename not in _MODULE_CACHE:
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                _MODULE_CACHE[filename] = ast.parse(handle.read())
        except (OSError, SyntaxError, ValueError):
            _MODULE_CACHE[filename] = None
    return _MODULE_CACHE[filename]


def _resolver(fn):
    """Name -> value lookup through the kernel's closure, globals, defaults."""
    try:
        closure = inspect.getclosurevars(fn)
        namespaces = [dict(closure.nonlocals), dict(closure.globals)]
    except (TypeError, ValueError):
        namespaces = [getattr(fn, "__globals__", {})]
    defaults: dict[str, object] = {}
    try:
        signature = inspect.signature(fn)
        for pname, parameter in signature.parameters.items():
            if parameter.default is not inspect.Parameter.empty:
                defaults[pname] = parameter.default
    except (TypeError, ValueError):
        pass
    namespaces.append(defaults)

    def resolve(name: str):
        for namespace in namespaces:
            if name in namespace:
                return namespace[name]
        raise KeyError(name)

    return resolve


def lint_key(spec: TaskSpec) -> tuple | None:
    """Deduplication key: same kernel code + same declared item sets.

    Thousands of pfor leaves share one kernel and one item vocabulary;
    linting the first is linting them all.  ``None`` means unlintable
    (no kernel) — callers skip those without charging the dedupe set.
    """
    fn = spec.origin_body or spec.body
    code = getattr(fn, "__code__", None)
    if code is None:
        return None
    return (
        code,
        tuple(sorted(i.name for i in spec.reads)),
        tuple(sorted(i.name for i in spec.writes)),
    )
