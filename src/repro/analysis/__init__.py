"""Static requirement analysis over task DAGs (pre-execution §2.5 checks).

The §2.5 guarantees are proved from *declared* requirements (Def. 2.7);
this package checks the declarations themselves, before a single
simulation event runs:

* :mod:`~repro.analysis.expansion` — unfold splitters to bounded depth
  without executing bodies;
* :mod:`~repro.analysis.coverage` — parent/child requirement subsumption
  and sibling write-disjointness (the spawn rule's precondition);
* :mod:`~repro.analysis.races` — declared-region race detection over
  unordered task pairs, happens-before from the spawn/sync structure;
* :mod:`~repro.analysis.lint` — AST pass comparing what a kernel's body
  touches against what its task declared;
* :mod:`~repro.analysis.model_bridge` — the same reasoning over formal
  model programs (Defs. 2.3–2.7);
* :mod:`~repro.analysis.admission` — opt-in submit-time analysis
  (``REPRO_ANALYZE=1`` / ``warn`` / ``strict``), the static front door
  to the runtime sentinel;
* ``python -m repro.analysis`` — CLI over the paper apps and examples.
"""

from repro.analysis.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionError,
)
from repro.analysis.expansion import AnalysisConfig, TaskNode, expand_task
from repro.analysis.findings import (
    ERROR,
    INFO,
    SEVERITIES,
    WARNING,
    AnalysisReport,
    Finding,
)
from repro.analysis.model_bridge import analyze_model_program
from repro.analysis.program import TaskProgram, analyze_program, analyze_task

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionError",
    "AnalysisConfig",
    "AnalysisReport",
    "ERROR",
    "Finding",
    "INFO",
    "SEVERITIES",
    "TaskNode",
    "TaskProgram",
    "WARNING",
    "analyze_model_program",
    "analyze_program",
    "analyze_task",
    "expand_task",
]
