"""Named analysis targets: the paper apps and the example scripts.

The CLI analyzes the *real* task graphs, not hand-maintained replicas:
each target runs its application at a miniature scale with submit-time
admission globally enabled (warn mode), then drains the auto-attached
controllers and folds their per-submission reports into one.  Whatever
tasks the app actually submits — including shapes that only exist at
runtime, like TPC's per-batch splitter closures — is what gets analyzed;
the target can never drift out of sync with the app.

Example scripts are executed the same way via :mod:`runpy` (they are
top-level scripts, self-verifying against NumPy references), with their
stdout captured so the analysis report stays readable.
"""

from __future__ import annotations

import contextlib
import io
import pathlib
import runpy

from repro.analysis import admission
from repro.analysis.expansion import AnalysisConfig
from repro.analysis.findings import AnalysisReport


def _collect(label: str, action, config: AnalysisConfig) -> AnalysisReport:
    """Run ``action`` with global admission on; return the merged report."""
    admission.enable_globally(
        admission.AdmissionConfig(strict=False, analysis=config)
    )
    try:
        action()
    finally:
        controllers = admission.drain_created()
        admission.reset_global()
    report = AnalysisReport(subject=label)
    for controller in controllers:
        for sub in controller.reports:
            report.merge(sub)
    return report


# -- the three paper applications, miniature scale ------------------------------


def _run_stencil() -> None:
    from repro.apps.stencil import StencilWorkload, stencil_allscale
    from repro.sim import Cluster, ClusterSpec

    stencil_allscale(
        Cluster(ClusterSpec(num_nodes=2, cores_per_node=2)),
        StencilWorkload(n_per_node=16, timesteps=2, functional=False),
    )


def _run_ipic3d() -> None:
    from repro.apps.ipic3d import IPic3DWorkload, ipic3d_allscale
    from repro.sim import Cluster, ClusterSpec

    ipic3d_allscale(
        Cluster(ClusterSpec(num_nodes=2, cores_per_node=2)),
        IPic3DWorkload(
            particles_per_node=1_000,
            cells_per_node_side=4,
            timesteps=2,
        ),
    )


def _run_tpc() -> None:
    from repro.apps.tpc import TPCWorkload, tpc_allscale
    from repro.sim import Cluster, ClusterSpec

    tpc_allscale(
        Cluster(ClusterSpec(num_nodes=2, cores_per_node=2)),
        TPCWorkload(
            total_points=2**10,
            depth=6,
            queries_per_node=4,
            task_subtree_height=3,
            task_batch=2,
        ),
    )


APP_RUNNERS = {
    "stencil": _run_stencil,
    "ipic3d": _run_ipic3d,
    "tpc": _run_tpc,
}


def analyze_app(name: str, config: AnalysisConfig | None = None) -> AnalysisReport:
    """Analyze every task graph one paper app submits (miniature scale)."""
    runner = APP_RUNNERS[name]
    return _collect(f"app:{name}", runner, config or AnalysisConfig())


# -- example scripts -------------------------------------------------------------

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[3] / "examples"

#: examples whose task graphs admission can observe.  ``model_trace_demo``
#: exercises the formal interpreter only (no runtime submissions) and is
#: covered by the model-bridge tests instead.
EXAMPLE_SCRIPTS = (
    "quickstart.py",
    "heat_diffusion.py",
    "particle_in_cell.py",
    "adaptive_load.py",
    "graph_bfs.py",
    "two_point_correlation.py",
)


def analyze_example(
    script: str | pathlib.Path,
    config: AnalysisConfig | None = None,
) -> AnalysisReport:
    """Run one example script under admission and report its task graphs."""
    path = pathlib.Path(script)
    if not path.exists():
        path = EXAMPLES_DIR / script

    def action() -> None:
        with contextlib.redirect_stdout(io.StringIO()):
            runpy.run_path(str(path), run_name="__analysis__")

    return _collect(
        f"example:{path.name}", action, config or AnalysisConfig()
    )
