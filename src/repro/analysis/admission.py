"""Opt-in submit-time admission: the static front door to the sentinel.

With admission active, every root task submitted through
:meth:`AllScaleRuntime.submit` is analyzed *before* the scheduler sees it
(children re-dispatched during splitting are not re-analyzed — the
expansion already covered them statically).  Findings accumulate on the
controller and surface as ``analysis.*`` counters in the runtime's
metrics; **strict** mode raises :class:`AdmissionError` on any
error-severity finding, rejecting the task before a single simulation
event runs — the static counterpart of the sentinel's strict mode.

Enablement mirrors :mod:`repro.runtime.sentinel`: per-runtime
(``AdmissionController(runtime).attach()``), process-wide
(:func:`enable_globally`, used by ``bench --analyze`` and the CLI), or
for a whole test run (``REPRO_ANALYZE=1`` / ``warn`` / ``strict``,
consumed in ``AllScaleRuntime.__init__`` via :func:`attach_from_global`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.expansion import AnalysisConfig
from repro.analysis.findings import AnalysisReport
from repro.analysis.program import analyze_task

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import AllScaleRuntime
    from repro.runtime.tasks import TaskSpec


class AdmissionError(RuntimeError):
    """A task was rejected at submit time (strict admission)."""


@dataclass
class AdmissionConfig:
    """Behaviour knobs of submit-time analysis."""

    #: reject (raise) on error-severity findings instead of just recording
    strict: bool = False
    #: bounds for the per-submission analyzer runs
    analysis: AnalysisConfig = field(
        default_factory=AnalysisConfig.admission_profile
    )
    #: stop analyzing after this many submissions per runtime (admission
    #: is a spot check at the front door, not a profiler; iterative apps
    #: submit the same task shape every timestep)
    max_submissions: int = 256


class AdmissionController:
    """Analyzes one runtime's submissions at the front door."""

    def __init__(
        self,
        runtime: "AllScaleRuntime",
        config: AdmissionConfig | None = None,
    ) -> None:
        self.runtime = runtime
        self.config = config or AdmissionConfig()
        self.reports: list[AnalysisReport] = []
        self.analyzed = 0
        self.skipped = 0

    def attach(self) -> "AdmissionController":
        if self.runtime.analyzer is not None and self.runtime.analyzer is not self:
            raise RuntimeError("runtime already has an admission controller")
        self.runtime.analyzer = self
        return self

    def detach(self) -> None:
        if self.runtime.analyzer is self:
            self.runtime.analyzer = None

    def on_submit(self, task: "TaskSpec") -> None:
        """Analyze one root submission; raises in strict mode on errors."""
        if self.analyzed >= self.config.max_submissions:
            self.skipped += 1
            return
        self.analyzed += 1
        report = analyze_task(task, self.config.analysis)
        self.reports.append(report)
        metrics = self.runtime.metrics
        metrics.incr("analysis.submissions")
        counts = report.counts()
        for severity in ("error", "warning", "info"):
            if counts[severity]:
                metrics.incr(f"analysis.findings.{severity}", counts[severity])
        metrics.incr("analysis.tasks_expanded", report.tasks_expanded)
        metrics.incr("analysis.pairs_checked", report.pairs_checked)
        metrics.incr("analysis.elapsed", report.elapsed)
        if self.config.strict and report.errors:
            raise AdmissionError(
                f"task {task.name!r} rejected by static analysis:\n"
                + "\n".join(str(f) for f in report.errors)
            )

    def combined_report(self) -> AnalysisReport:
        """All submissions' findings folded into one (deduplicated)."""
        out = AnalysisReport(subject=f"runtime:{id(self.runtime):#x}")
        for report in self.reports:
            out.merge(report)
        return out


# -- process-wide enablement (bench --analyze, REPRO_ANALYZE=1) -----------------

#: explicit-off marker: distinguishes "never configured, fall back to the
#: environment variable" (None) from "switched off programmatically"
_DISABLED = object()
_global_config: object = None
#: controllers created while global enablement was active (drained by the
#: CLI, the bench reporter, and the test fixture)
_created: list[AdmissionController] = []


def enable_globally(config: AdmissionConfig | None = None) -> None:
    """Attach admission to every :class:`AllScaleRuntime` created from now on."""
    global _global_config
    _global_config = config or AdmissionConfig()
    _created.clear()


def disable_globally() -> None:
    """Switch auto-attachment off, overriding ``REPRO_ANALYZE`` too.

    Seeded-defect tests use this: they submit deliberately broken task
    trees and run the analyzer by hand instead.
    """
    global _global_config
    _global_config = _DISABLED


def reset_global() -> None:
    """Back to the default: enabled iff ``REPRO_ANALYZE`` is set."""
    global _global_config
    _global_config = None


def global_config() -> AdmissionConfig | None:
    """Active process-wide config, if any (``REPRO_ANALYZE`` counts)."""
    if _global_config is _DISABLED:
        return None
    if _global_config is not None:
        return _global_config  # type: ignore[return-value]
    value = os.environ.get("REPRO_ANALYZE", "0").strip().lower()
    if value in ("", "0"):
        return None
    return AdmissionConfig(strict=value == "strict")


def drain_created() -> list[AdmissionController]:
    """Return and forget the controllers auto-attached since the last drain."""
    out, _created[:] = list(_created), []
    return out


def attach_from_global(runtime: "AllScaleRuntime") -> None:
    """Auto-attach admission if process-wide enablement is active."""
    config = global_config()
    if config is None:
        return
    controller = AdmissionController(runtime, config).attach()
    _created.append(controller)
