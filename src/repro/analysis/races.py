"""Static race detection over the declared-requirement task DAG (§2.5).

Happens-before at the task level is structural: a split parent's children
are spawned together and joined by the parent's combiner barrier, so

* ancestor/descendant pairs are ordered (a task runs *either* its leaf
  variant or its split variant — never both);
* everything else inside one tree is unordered — two tasks race-check
  against each other exactly when neither is an ancestor of the other;
* separate submissions are ordered only by explicit dependency (treeture
  ``after`` chains or driver barriers); program phases encode this.

Rather than enumerating all unordered pairs, the detector works with
**effective regions**: each node's declared regions unioned with its
descendants' (bottom-up).  Any unordered pair (x, y) has a unique pair of
distinct sibling ancestors (a, b) below their least common ancestor, and
x's regions are contained in a's effective regions (likewise y in b) — so
checking sibling pairs on effective regions covers every unordered pair,
*including* pairs whose declarations escape their parents (the effective
union keeps escaped regions visible where plain subsumption would hide
them).

Checks per unordered pair and item, after a bounding-corner prefilter
(:mod:`repro.regions.bounds`):

* write ∩ write ≠ ∅ — an *exclusive writes* violation (error);
* read ∩ write ≠ ∅ — legal (the runtime serializes through region locks)
  but scheduling-order dependent, hence a determinism warning.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.expansion import AnalysisConfig, TaskNode
from repro.analysis.findings import ERROR, WARNING, Finding
from repro.items.base import DataItem
from repro.regions.base import Region
from repro.regions.bounds import bounds_disjoint, corner_bounds


class EffectiveRequirements:
    """A task subtree's declared requirements, unioned over all levels."""

    __slots__ = ("path", "reads", "writes", "_bounds")

    def __init__(self, path: str) -> None:
        self.path = path
        self.reads: dict[DataItem, Region] = {}
        self.writes: dict[DataItem, Region] = {}
        #: (item, "r"/"w") -> corner bounds of the effective region
        self._bounds: dict = {}

    def absorb_spec(self, spec) -> None:
        for item, region in spec.reads.items():
            self._merge(self.reads, item, region)
        for item, region in spec.writes.items():
            self._merge(self.writes, item, region)

    def absorb(self, other: "EffectiveRequirements") -> None:
        for item, region in other.reads.items():
            self._merge(self.reads, item, region)
        for item, region in other.writes.items():
            self._merge(self.writes, item, region)

    @staticmethod
    def _merge(target: dict, item: DataItem, region: Region) -> None:
        if region.is_empty():
            return
        current = target.get(item)
        target[item] = region if current is None else current.union(region)

    def bounds(self, item: DataItem, kind: str) -> object:
        key = (item, kind)
        if key not in self._bounds:
            source = self.reads if kind == "r" else self.writes
            region = source.get(item)
            self._bounds[key] = None if region is None else corner_bounds(region)
        return self._bounds[key]


def effective_requirements(root: TaskNode) -> dict[int, EffectiveRequirements]:
    """Bottom-up effective regions for every node, keyed by ``id(node)``."""
    out: dict[int, EffectiveRequirements] = {}
    post_order: list[TaskNode] = list(root.walk())
    for node in reversed(post_order):
        eff = EffectiveRequirements(node.path)
        eff.absorb_spec(node.spec)
        for child in node.children:
            eff.absorb(out[id(child)])
        out[id(node)] = eff
    return out


def check_tree_races(
    root: TaskNode, config: AnalysisConfig | None = None
) -> tuple[list[Finding], int]:
    """Race-check all unordered pairs inside one expanded task tree.

    Returns ``(findings, pairs_checked)``.
    """
    config = config or AnalysisConfig()
    effective = effective_requirements(root)
    findings: list[Finding] = []
    pairs = 0
    for node in root.walk():
        children = node.children
        for i in range(len(children)):
            for j in range(i + 1, len(children)):
                if pairs >= config.max_pairs:
                    return findings, pairs
                pairs += 1
                _check_pair(
                    effective[id(children[i])],
                    effective[id(children[j])],
                    findings,
                )
    return findings, pairs


def check_concurrent_roots(
    efforts: Iterable[EffectiveRequirements],
    config: AnalysisConfig | None = None,
) -> tuple[list[Finding], int]:
    """Race-check mutually unordered root subtrees (one program phase)."""
    config = config or AnalysisConfig()
    items = list(efforts)
    findings: list[Finding] = []
    pairs = 0
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            if pairs >= config.max_pairs:
                return findings, pairs
            pairs += 1
            _check_pair(items[i], items[j], findings)
    return findings, pairs


def _check_pair(
    a: EffectiveRequirements,
    b: EffectiveRequirements,
    findings: list[Finding],
) -> None:
    # write/write — exclusive-writes violation
    for item in sorted(a.writes.keys() & b.writes.keys(), key=lambda i: i.name):
        if bounds_disjoint(a.bounds(item, "w"), b.bounds(item, "w")):
            continue
        overlap = a.writes[item].intersect(b.writes[item])
        if overlap.is_empty():
            continue
        findings.append(
            Finding(
                check="race.write_write",
                severity=ERROR,
                message=(
                    f"unordered tasks both write {overlap.size()} "
                    f"element(s) (peer: {a.path!r})"
                ),
                task=b.path,
                item=item.name,
                region=overlap,
            )
        )
    # read/write — order-dependent result
    for reader, writer in ((a, b), (b, a)):
        for item in sorted(
            reader.reads.keys() & writer.writes.keys(), key=lambda i: i.name
        ):
            if bounds_disjoint(reader.bounds(item, "r"), writer.bounds(item, "w")):
                continue
            overlap = reader.reads[item].intersect(writer.writes[item])
            if overlap.is_empty():
                continue
            findings.append(
                Finding(
                    check="race.read_write",
                    severity=WARNING,
                    message=(
                        f"unordered read/write overlap of {overlap.size()} "
                        f"element(s) (writer: {writer.path!r}); result "
                        "depends on scheduling order"
                    ),
                    task=reader.path,
                    item=item.name,
                    region=overlap,
                )
            )
