"""Structured findings of the static requirement analyzer.

Every check in :mod:`repro.analysis` reports through one vocabulary: a
:class:`Finding` names the check that fired, a severity, the task (by
provenance path through the expanded task tree), the data item and region
involved, and a human-readable message.  :class:`AnalysisReport`
aggregates findings plus the expansion statistics a caller needs to judge
how much of the task tree was actually covered (bounded expansion means
"no findings" is only as strong as the explored depth).

Severities:

* ``error`` — a declared-requirement structure under which the §2.5
  guarantees cannot hold (overlapping sibling writes, child requirements
  escaping the parent, a body touching an undeclared item).  CI fails on
  these; strict admission rejects the task.
* ``warning`` — legal but suspicious: unordered read/write overlap
  (scheduling-order-dependent results), requirements declared but never
  touched (lost parallelism), reads of write-only declarations.
* ``info`` — analyzer limitations worth surfacing (unresolvable item
  references, bodies without retrievable source), never a failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

#: severity levels, in increasing order of badness
SEVERITIES = ("info", "warning", "error")

ERROR = "error"
WARNING = "warning"
INFO = "info"


@dataclass(frozen=True)
class Finding:
    """One issue discovered by a static check."""

    #: which check fired, e.g. ``coverage.write_escape`` or
    #: ``race.write_write`` or ``lint.undeclared_item``
    check: str
    severity: str
    message: str
    #: provenance path of the task through the expanded tree, e.g.
    #: ``step0/step0[1]/step0[1][0]`` (root name, then child indices)
    task: str | None = None
    #: name of the data item involved, if any
    item: str | None = None
    #: offending region (repr'd lazily by renderers), if any
    region: Any = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def __str__(self) -> str:
        parts = [f"{self.severity.upper()} [{self.check}]"]
        if self.task is not None:
            parts.append(f"task={self.task!r}")
        if self.item is not None:
            parts.append(f"item={self.item!r}")
        parts.append(self.message)
        return " ".join(parts)

    def key(self) -> tuple:
        """Deduplication key (region participates via its repr)."""
        return (self.check, self.task, self.item, self.message)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (the region goes through its repr)."""
        return {
            "check": self.check,
            "severity": self.severity,
            "message": self.message,
            "task": self.task,
            "item": self.item,
            "region": None if self.region is None else repr(self.region),
        }


@dataclass
class AnalysisReport:
    """Aggregated result of analyzing one task tree or program."""

    #: what was analyzed (root task name or program label)
    subject: str = ""
    findings: list[Finding] = field(default_factory=list)
    #: task-tree nodes visited during expansion
    tasks_expanded: int = 0
    #: nodes whose splitter was *not* expanded (depth/node budget hit)
    tasks_truncated: int = 0
    #: leaf bodies the lint pass actually parsed
    bodies_linted: int = 0
    #: unordered task pairs the race detector compared
    pairs_checked: int = 0
    #: wall-clock seconds spent analyzing (filled by the driver)
    elapsed: float = 0.0

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def by_severity(self, severity: str) -> list[Finding]:
        return [f for f in self.findings if f.severity == severity]

    @property
    def errors(self) -> list[Finding]:
        return self.by_severity(ERROR)

    @property
    def warnings(self) -> list[Finding]:
        return self.by_severity(WARNING)

    @property
    def clean(self) -> bool:
        """No error-severity findings (warnings and infos may remain)."""
        return not self.errors

    def counts(self) -> dict[str, int]:
        out = {severity: 0 for severity in SEVERITIES}
        for finding in self.findings:
            out[finding.severity] += 1
        return out

    def merge(self, other: "AnalysisReport") -> None:
        """Fold ``other`` into this report, deduplicating findings."""
        seen = {f.key() for f in self.findings}
        for finding in other.findings:
            if finding.key() not in seen:
                seen.add(finding.key())
                self.findings.append(finding)
        self.tasks_expanded += other.tasks_expanded
        self.tasks_truncated += other.tasks_truncated
        self.bodies_linted += other.bodies_linted
        self.pairs_checked += other.pairs_checked
        self.elapsed += other.elapsed

    def summary(self) -> str:
        counts = self.counts()
        return (
            f"{self.subject or '<analysis>'}: "
            f"{counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['info']} info(s) over {self.tasks_expanded} task(s)"
            + (
                f" ({self.tasks_truncated} truncated)"
                if self.tasks_truncated
                else ""
            )
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form: counts, expansion stats, and all findings."""
        return {
            "subject": self.subject,
            "counts": self.counts(),
            "clean": self.clean,
            "tasks_expanded": self.tasks_expanded,
            "tasks_truncated": self.tasks_truncated,
            "bodies_linted": self.bodies_linted,
            "pairs_checked": self.pairs_checked,
            "elapsed": self.elapsed,
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def render_lines(self, max_findings: int | None = None) -> list[str]:
        """Human-readable report: summary line plus one line per finding."""
        lines = [self.summary()]
        ordered = sorted(
            self.findings,
            key=lambda f: (-SEVERITIES.index(f.severity), f.check, str(f.task)),
        )
        shown = ordered if max_findings is None else ordered[:max_findings]
        lines.extend(f"  {finding}" for finding in shown)
        if max_findings is not None and len(ordered) > max_findings:
            lines.append(f"  ... and {len(ordered) - max_findings} more")
        return lines

    def __str__(self) -> str:
        return "\n".join(self.render_lines())
