"""Command-line front end of the static requirement analyzer.

Usage::

    python -m repro.analysis                     # apps + examples
    python -m repro.analysis stencil ipic3d tpc  # the paper apps
    python -m repro.analysis examples            # the example scripts
    python -m repro.analysis --max-depth 5 tpc   # deeper expansion
    python -m repro.analysis --json examples     # machine-readable report

Exit status is 1 when any error-severity finding survives — the CI
analysis job runs exactly this over all examples and bench task graphs —
and 2 when the analyzer itself crashes (so CI can tell "the code has
errors" apart from "the analyzer is broken").
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.expansion import AnalysisConfig
from repro.analysis.targets import (
    APP_RUNNERS,
    EXAMPLE_SCRIPTS,
    analyze_app,
    analyze_example,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Statically analyze task graphs: requirement coverage, race "
            "detection, and body lint, before any simulation runs."
        ),
    )
    choices = [*APP_RUNNERS, "examples", "all"]
    parser.add_argument(
        "targets",
        nargs="*",
        metavar=f"{{{','.join(choices)}}}",
        help="what to analyze (default: all)",
    )
    parser.add_argument(
        "--max-depth",
        type=int,
        default=None,
        help="split levels to expand below each analyzed root",
    )
    parser.add_argument(
        "--max-nodes",
        type=int,
        default=None,
        help="total task-node budget per analyzed root",
    )
    parser.add_argument(
        "--max-findings",
        type=int,
        default=20,
        help="findings printed per report (all are still counted)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="print summaries only",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON document on stdout instead of text",
    )
    args = parser.parse_args(argv)

    for target in args.targets:
        if target not in choices:
            parser.error(
                f"argument targets: invalid choice: {target!r} "
                f"(choose from {', '.join(map(repr, choices))})"
            )

    config = AnalysisConfig()
    if args.max_depth is not None:
        config.max_depth = args.max_depth
    if args.max_nodes is not None:
        config.max_nodes = args.max_nodes

    wanted = list(args.targets or ["all"])
    if "all" in wanted:
        wanted = [*APP_RUNNERS, "examples"]

    total_errors = 0
    total_warnings = 0
    json_reports = []
    for target in wanted:
        if target == "examples":
            reports = [
                analyze_example(script, config) for script in EXAMPLE_SCRIPTS
            ]
        else:
            reports = [analyze_app(target, config)]
        for report in reports:
            counts = report.counts()
            total_errors += counts["error"]
            total_warnings += counts["warning"]
            if args.json:
                json_reports.append(report.to_dict())
                continue
            if args.quiet:
                print(report.summary())
            else:
                for line in report.render_lines(args.max_findings):
                    print(line)
            print(
                f"  (analysis: {report.elapsed * 1e3:.1f} ms, "
                f"{report.pairs_checked} pair(s), "
                f"{report.bodies_linted} body(ies) linted)"
            )
    if args.json:
        print(
            json.dumps(
                {
                    "targets": wanted,
                    "errors": total_errors,
                    "warnings": total_warnings,
                    "reports": json_reports,
                },
                indent=2,
            )
        )
    else:
        print()
        print(
            f"analysis: {total_errors} error(s), {total_warnings} warning(s) "
            f"across {len(wanted)} target(s)"
        )
    return 1 if total_errors else 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        raise
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(
            f"analysis: internal error: {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        sys.exit(2)
