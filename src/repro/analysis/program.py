"""Analyzer drivers: whole task trees and phased task programs.

:func:`analyze_task` is the unit of analysis — one submitted (or
about-to-be-submitted) :class:`~repro.runtime.tasks.TaskSpec`, expanded
statically and run through the coverage, race, and lint checks.

:func:`analyze_program` lifts this to a :class:`TaskProgram`: an ordered
list of *phases*, each a list of root tasks that are mutually unordered
(submitted concurrently between two barriers — exactly the structure of
the example drivers, where each ``pfor`` sweep ends in a treeture
barrier).  Roots within a phase are additionally race-checked against
each other on their subtree-effective regions; consecutive phases are
separated by a barrier, hence ordered, hence silent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis.coverage import check_coverage
from repro.analysis.expansion import AnalysisConfig, TaskNode, expand_task
from repro.analysis.findings import AnalysisReport
from repro.analysis.lint import lint_key, lint_spec
from repro.analysis.races import (
    check_concurrent_roots,
    check_tree_races,
    effective_requirements,
)
from repro.runtime.tasks import TaskSpec


@dataclass
class TaskProgram:
    """Phase-structured task submissions of one application run.

    ``phases[k]`` holds the root tasks submitted concurrently in phase
    ``k``; a barrier orders phase ``k`` before phase ``k+1``.
    """

    label: str
    phases: list[list[TaskSpec]] = field(default_factory=list)

    def add_phase(self, *roots: TaskSpec) -> "TaskProgram":
        self.phases.append(list(roots))
        return self

    def all_roots(self) -> list[TaskSpec]:
        return [root for phase in self.phases for root in phase]


def analyze_task(
    spec: TaskSpec,
    config: AnalysisConfig | None = None,
    subject: str | None = None,
) -> AnalysisReport:
    """Statically analyze one task tree; returns the full report."""
    config = config or AnalysisConfig()
    report = AnalysisReport(subject=subject or spec.name)
    started = time.perf_counter()
    _analyze_tree(spec, config, report)
    report.elapsed = time.perf_counter() - started
    return report


def analyze_program(
    program: TaskProgram,
    config: AnalysisConfig | None = None,
) -> AnalysisReport:
    """Analyze every root of a phased program, plus cross-root races."""
    config = config or AnalysisConfig()
    report = AnalysisReport(subject=program.label)
    started = time.perf_counter()
    linted: set = set()
    for phase in program.phases:
        roots = [
            _analyze_tree(spec, config, report, linted=linted)
            for spec in phase
        ]
        if config.races and len(roots) > 1:
            efforts = [effective_requirements(root)[id(root)] for root in roots]
            findings, pairs = check_concurrent_roots(efforts, config)
            report.extend(findings)
            report.pairs_checked += pairs
    report.elapsed = time.perf_counter() - started
    return report


def _analyze_tree(
    spec: TaskSpec,
    config: AnalysisConfig,
    report: AnalysisReport,
    linted: set | None = None,
) -> TaskNode:
    """Expand one root and fold its checks into ``report``."""
    root, expanded, truncated = expand_task(spec, config, report.findings)
    report.tasks_expanded += expanded
    report.tasks_truncated += truncated
    if config.coverage:
        report.extend(check_coverage(root, config))
    if config.races:
        findings, pairs = check_tree_races(root, config)
        report.extend(findings)
        report.pairs_checked += pairs
    if config.lint:
        seen = linted if linted is not None else set()
        for node in root.walk():
            if node.children:
                continue  # bodies only run at leaves
            key = lint_key(node.spec)
            if key is not None:
                if key in seen:
                    continue
                seen.add(key)
            report.extend(lint_spec(node.spec, node.path))
            report.bodies_linted += 1
    return root
