"""Bounded static expansion of splittable task trees.

The parallel variant of a :class:`~repro.runtime.tasks.TaskSpec` is its
``splitter``: a closure producing the child tasks the runtime would spawn
(Algorithm 2's split branch).  Splitters only *construct* child specs —
they evaluate the compiler-style requirement functions but never run leaf
bodies — so the analyzer can unfold the task tree ahead of execution and
reason about the declared requirements at every level.

Expansion is bounded two ways (``max_depth``, ``max_nodes``): a
paper-scale ``pfor`` unfolds into millions of leaves, but requirement
defects are self-similar — a child escaping its parent's declaration does
so at the first split just as it would at the tenth, because requirement
functions are evaluated pointwise on sub-ranges.  Nodes whose splitter was
not invoked are marked ``truncated`` and counted in the report, so "no
findings" is always qualified by how much tree was explored.

Splitters are expected to be *pure* (side-effect-free and deterministic);
the runtime may invoke them once more at execution time.  A splitter that
raises during expansion becomes a ``expansion.splitter_failed`` warning
rather than an analyzer crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.findings import WARNING, Finding
from repro.runtime.tasks import TaskSpec


@dataclass
class AnalysisConfig:
    """Bounds and toggles of one analyzer run."""

    #: how many split levels below each analyzed root to unfold
    max_depth: int = 4
    #: total node budget across the expansion (hard cap)
    max_nodes: int = 512
    #: run the requirement-coverage check (spawn-rule precondition)
    coverage: bool = True
    #: run the static race detector over unordered task pairs
    races: bool = True
    #: run the AST lint pass over leaf bodies
    lint: bool = True
    #: unordered-pair comparison budget for the race detector
    max_pairs: int = 100_000

    @classmethod
    def admission_profile(cls) -> "AnalysisConfig":
        """Cheaper bounds for per-submit admission checking."""
        return cls(max_depth=3, max_nodes=128, max_pairs=10_000)


@dataclass
class TaskNode:
    """One task of the statically expanded tree."""

    spec: TaskSpec
    depth: int
    #: provenance path: root task name, then bracketed child indices
    path: str
    parent: "TaskNode | None" = None
    children: list["TaskNode"] = field(default_factory=list)
    #: splittable but not expanded (depth or node budget reached)
    truncated: bool = False

    def walk(self) -> Iterator["TaskNode"]:
        """Depth-first pre-order traversal of this subtree."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def __repr__(self) -> str:
        return (
            f"TaskNode({self.path!r}, depth={self.depth}, "
            f"children={len(self.children)})"
        )


def expand_task(
    spec: TaskSpec,
    config: AnalysisConfig | None = None,
    findings: list[Finding] | None = None,
) -> tuple[TaskNode, int, int]:
    """Unfold ``spec``'s split structure without executing bodies.

    Returns ``(root, nodes_expanded, nodes_truncated)``; expansion
    problems are appended to ``findings`` when a list is supplied.
    """
    config = config or AnalysisConfig()
    root = TaskNode(spec=spec, depth=0, path=spec.name)
    expanded = 1
    truncated = 0
    frontier = [root]
    while frontier:
        node = frontier.pop(0)  # breadth-first: shallow levels win the budget
        if not node.spec.splittable:
            continue
        if node.depth >= config.max_depth or expanded >= config.max_nodes:
            node.truncated = True
            truncated += 1
            continue
        try:
            children = node.spec.expand_children()
        except Exception as exc:  # noqa: BLE001 - analyzer must not crash
            if findings is not None:
                findings.append(
                    Finding(
                        check="expansion.splitter_failed",
                        severity=WARNING,
                        message=f"splitter raised {exc!r}; subtree not analyzed",
                        task=node.path,
                    )
                )
            node.truncated = True
            truncated += 1
            continue
        for index, child_spec in enumerate(children):
            if expanded >= config.max_nodes:
                node.truncated = True
                truncated += 1
                break
            child = TaskNode(
                spec=child_spec,
                depth=node.depth + 1,
                path=f"{node.path}[{index}]",
                parent=node,
            )
            node.children.append(child)
            frontier.append(child)
            expanded += 1
    return root, expanded, truncated
