"""Static analysis of model-level programs (Definitions 2.3–2.7).

The runtime-facing analyzer works on :class:`TaskSpec` trees; this bridge
applies the same reasoning to the formal layer: a
:class:`~repro.model.task.Program` whose variant bodies are generators
yielding the action algebra of Def. 2.5.  Bodies are *executed* here —
they are the model's behaviour, there is nothing below them to simulate —
but only for their action sequences; no runtime, engine, or data ever
exists.

Happens-before comes from the spawn/sync structure (the premises of the
*spawn*/*sync* rules): a spawned child is concurrent with its parent's
continuation until the parent syncs on it, so two children are ordered
exactly when the first's ``sync`` precedes the second's ``spawn`` in the
parent's action sequence.  For unordered pairs, declared requirement
intersections are reported like the runtime checks: write/write overlap
is an *exclusive writes* violation (error), read/write overlap a
determinism warning.  A task with several variants must be safe under
every choice (Def. 2.3 lets the runtime pick freely), so requirements
are unioned over variants.

Parent/child subsumption is *not* a premise of the formal model (any
variant may declare any requirement), so escapes are reported as
warnings, not errors — and items the parent's body ``create``\\ s are
exempt, since the parent cannot have declared requirements on items that
did not exist at its own spawn.
"""

from __future__ import annotations

from repro.analysis.expansion import AnalysisConfig
from repro.analysis.findings import ERROR, WARNING, AnalysisReport, Finding
from repro.model.actions import Create, End, Spawn, Sync
from repro.model.execution import VariantExecution
from repro.model.task import AccessSpec, Program, Task, Variant

#: step budget per variant body — model bodies are scripts, not loops over
#: data, so this is a runaway guard rather than a real bound
MAX_STEPS = 10_000


def analyze_model_program(
    program: Program,
    config: AnalysisConfig | None = None,
) -> AnalysisReport:
    """Statically check a model program's spawn/sync/requirement structure."""
    config = config or AnalysisConfig()
    report = AnalysisReport(subject=f"program:{program.entry.name}")
    budget = [config.max_nodes]
    _analyze_task(program.entry, program.entry.name, 0, config, report, budget)
    return report


def _requirements(task: Task) -> tuple[dict, dict]:
    """Requirements unioned over all variants ({item: region} twice)."""
    reads: dict = {}
    writes: dict = {}
    for variant in task.variants:
        for item, region in variant.requirements.read_items().items():
            current = reads.get(item)
            reads[item] = region if current is None else current.union(region)
        for item, region in variant.requirements.write_items().items():
            current = writes.get(item)
            writes[item] = region if current is None else current.union(region)
    return reads, writes


def _analyze_task(
    task: Task,
    path: str,
    depth: int,
    config: AnalysisConfig,
    report: AnalysisReport,
    budget: list[int],
) -> None:
    if budget[0] <= 0:
        report.tasks_truncated += 1
        return
    budget[0] -= 1
    report.tasks_expanded += 1
    for variant in task.variants:
        _analyze_variant(task, variant, path, depth, config, report, budget)


def _analyze_variant(
    task: Task,
    variant: Variant,
    path: str,
    depth: int,
    config: AnalysisConfig,
    report: AnalysisReport,
    budget: list[int],
) -> None:
    try:
        actions = _trace(variant)
    except Exception as exc:  # noqa: BLE001 - analyzer must not crash
        report.add(
            Finding(
                check="model.body_failed",
                severity=WARNING,
                message=f"variant body raised {exc!r}; not analyzed",
                task=path,
            )
        )
        return

    created = {a.item for a in actions if isinstance(a, Create)}
    #: children in spawn order, with the action index of their spawn
    spawns: list[tuple[int, Task]] = [
        (i, a.task) for i, a in enumerate(actions) if isinstance(a, Spawn)
    ]
    #: task -> action index of the first sync on it
    syncs: dict[Task, int] = {}
    for i, action in enumerate(actions):
        if isinstance(action, Sync) and action.task not in syncs:
            syncs[action.task] = i

    if config.coverage:
        _check_model_coverage(variant, spawns, created, path, report)

    if config.races:
        child_requirements = {
            child: _requirements(child) for _i, child in spawns
        }
        for a_pos in range(len(spawns)):
            for b_pos in range(a_pos + 1, len(spawns)):
                if report.pairs_checked >= config.max_pairs:
                    break
                spawn_a, child_a = spawns[a_pos]
                spawn_b, child_b = spawns[b_pos]
                if child_a is child_b:
                    continue
                # ordered iff the earlier child was synced before the
                # later one was spawned
                sync_a = syncs.get(child_a)
                if sync_a is not None and sync_a < spawn_b:
                    continue
                report.pairs_checked += 1
                _check_model_pair(
                    child_a,
                    child_b,
                    child_requirements[child_a],
                    child_requirements[child_b],
                    path,
                    report,
                )

    if depth < config.max_depth:
        seen: set[Task] = set()
        for _i, child in spawns:
            if child in seen:
                continue
            seen.add(child)
            _analyze_task(
                child, f"{path}/{child.name}", depth + 1, config, report, budget
            )
    elif spawns:
        report.tasks_truncated += 1


def _trace(variant: Variant) -> list:
    execution = VariantExecution.init(variant)
    actions = []
    for _ in range(MAX_STEPS):
        action = execution.step()
        actions.append(action)
        if isinstance(action, End):
            return actions
    raise RuntimeError(f"variant {variant.name!r} exceeded {MAX_STEPS} steps")


def _check_model_coverage(
    variant: Variant,
    spawns: list,
    created: set,
    path: str,
    report: AnalysisReport,
) -> None:
    requirements: AccessSpec = variant.requirements
    for _i, child in spawns:
        child_reads, child_writes = _requirements(child)
        child_path = f"{path}/{child.name}"
        for item, region in child_writes.items():
            if item in created:
                continue
            escape = region.difference(requirements.write(item))
            if not escape.is_empty():
                report.add(
                    Finding(
                        check="model.write_escape",
                        severity=WARNING,
                        message=(
                            f"child writes {escape.size()} element(s) "
                            "outside the spawning variant's write set"
                        ),
                        task=child_path,
                        item=item.name,
                        region=escape,
                    )
                )
        for item, region in child_reads.items():
            if item in created:
                continue
            escape = region.difference(requirements.accessed(item))
            if not escape.is_empty():
                report.add(
                    Finding(
                        check="model.read_escape",
                        severity=WARNING,
                        message=(
                            f"child reads {escape.size()} element(s) "
                            "outside the spawning variant's requirements"
                        ),
                        task=child_path,
                        item=item.name,
                        region=escape,
                    )
                )


def _check_model_pair(
    task_a: Task,
    task_b: Task,
    reqs_a: tuple[dict, dict],
    reqs_b: tuple[dict, dict],
    path: str,
    report: AnalysisReport,
) -> None:
    reads_a, writes_a = reqs_a
    reads_b, writes_b = reqs_b
    for item in sorted(writes_a.keys() & writes_b.keys(), key=lambda i: i.name):
        overlap = writes_a[item].intersect(writes_b[item])
        if overlap.is_empty():
            continue
        report.add(
            Finding(
                check="race.write_write",
                severity=ERROR,
                message=(
                    f"unordered spawned tasks both write {overlap.size()} "
                    f"element(s) (peer: {path}/{task_a.name!r})"
                ),
                task=f"{path}/{task_b.name}",
                item=item.name,
                region=overlap,
            )
        )
    for (r_task, reads), (w_task, writes) in (
        ((task_a, reads_a), (task_b, writes_b)),
        ((task_b, reads_b), (task_a, writes_a)),
    ):
        for item in sorted(reads.keys() & writes.keys(), key=lambda i: i.name):
            overlap = reads[item].intersect(writes[item])
            if overlap.is_empty():
                continue
            report.add(
                Finding(
                    check="race.read_write",
                    severity=WARNING,
                    message=(
                        f"unordered read/write overlap of {overlap.size()} "
                        f"element(s) (writer: {path}/{w_task.name!r})"
                    ),
                    task=f"{path}/{r_task.name}",
                    item=item.name,
                    region=overlap,
                )
            )
