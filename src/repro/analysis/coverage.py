"""Requirement-coverage checks (the spawn rule's precondition, §2.2/§3.2).

When the runtime splits a task, each child is scheduled against its *own*
declared requirements — the parent's guarantees extend to the child only
if the child's declarations are subsumed by the parent's (the premise of
the paper's task-decomposition reasoning, and the precondition under
which §2.5's *satisfied requirements* survives splitting):

* a child's **write** region must lie within the parent's write region;
* a child's **read** region must lie within the parent's accessed
  (read ∪ write) region;
* sibling **write** regions must be pairwise disjoint — with that,
  *exclusive writes* holds by construction at every level of the tree.

Escapes are reported per item with the exact escaping region (the
difference), so an application author can see precisely which elements
the requirement function forgot.
"""

from __future__ import annotations

from repro.analysis.expansion import AnalysisConfig, TaskNode
from repro.analysis.findings import ERROR, Finding
from repro.regions.bounds import bounds_disjoint, corner_bounds


def check_coverage(
    root: TaskNode, config: AnalysisConfig | None = None
) -> list[Finding]:
    """Check parent/child subsumption and sibling write-disjointness."""
    findings: list[Finding] = []
    for node in root.walk():
        if node.children:
            _check_children(node, findings)
    return findings


def _check_children(parent: TaskNode, findings: list[Finding]) -> None:
    pspec = parent.spec
    for child in parent.children:
        cspec = child.spec
        for item in cspec.accessed_items_ordered():
            write_escape = cspec.write_region(item).difference(
                pspec.write_region(item)
            )
            if not write_escape.is_empty():
                findings.append(
                    Finding(
                        check="coverage.write_escape",
                        severity=ERROR,
                        message=(
                            f"child writes {write_escape.size()} element(s) "
                            "outside the parent's declared write region"
                        ),
                        task=child.path,
                        item=item.name,
                        region=write_escape,
                    )
                )
            read_escape = cspec.read_region(item).difference(
                pspec.accessed_region(item)
            )
            if not read_escape.is_empty():
                findings.append(
                    Finding(
                        check="coverage.read_escape",
                        severity=ERROR,
                        message=(
                            f"child reads {read_escape.size()} element(s) "
                            "outside the parent's declared requirements"
                        ),
                        task=child.path,
                        item=item.name,
                        region=read_escape,
                    )
                )
    _check_sibling_writes(parent, findings)


def _check_sibling_writes(parent: TaskNode, findings: list[Finding]) -> None:
    """Exclusive writes by construction: sibling writes pairwise disjoint."""
    children = parent.children
    # per child and item: (write region, corner bounds) — the bounding-box
    # prefilter rejects far-apart siblings without touching the algebra
    summaries: list[dict] = []
    for child in children:
        per_item = {}
        for item, region in child.spec.writes.items():
            if not region.is_empty():
                per_item[item] = (region, corner_bounds(region))
        summaries.append(per_item)
    for i in range(len(children)):
        for j in range(i + 1, len(children)):
            shared = summaries[i].keys() & summaries[j].keys()
            for item in sorted(shared, key=lambda it: it.name):
                region_a, bounds_a = summaries[i][item]
                region_b, bounds_b = summaries[j][item]
                if bounds_disjoint(bounds_a, bounds_b):
                    continue
                overlap = region_a.intersect(region_b)
                if overlap.is_empty():
                    continue
                findings.append(
                    Finding(
                        check="coverage.sibling_write_overlap",
                        severity=ERROR,
                        message=(
                            f"sibling write regions overlap in "
                            f"{overlap.size()} element(s) "
                            f"(also declared by {children[i].path!r})"
                        ),
                        task=children[j].path,
                        item=item.name,
                        region=overlap,
                    )
                )
