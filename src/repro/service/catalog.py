"""The job catalog: named, parameterized task-graph job kinds.

A job crosses the client/service boundary as JSON, so it cannot carry
callables — instead it names a *kind* from this catalog plus parameters,
and the service builds the actual task graph (a :class:`JobProgram`) on
its side of the boundary.  The built program is what the admission gate
statically analyzes and what the dispatcher executes, so the graph the
analyzer approved is exactly the graph that runs.

The built-in kinds are service-sized ports of the repository's workload
families: ``compute`` (pure-cost tasks with exactly predictable
node-seconds — the quota test workhorse), ``grid_sum`` (the quickstart
example's functional init+reduce), ``stencil`` (the paper's §4 stencil
sweeps), ``particles`` (iPiC3D-flavored particle pushes), ``queries``
(TPC-flavored read-only batched queries), and ``bad_overlap`` (a
deliberately racy graph whose sibling writes overlap — admission must
reject it; the CI smoke trace uses it to pin zero false-accepts).

In-process embedders (apps, examples, tests) can extend the catalog with
:func:`register_kind`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.api import box_region, expand_box, pfor_task
from repro.items.base import DataItem
from repro.items.grid import Grid
from repro.regions.base import Region
from repro.runtime.tasks import TaskSpec


@dataclass
class JobProgram:
    """A built job: data items plus phase-structured root tasks.

    ``phases[k]`` holds root tasks submitted concurrently; a barrier
    orders phase ``k`` before ``k+1`` — the same structure
    :func:`repro.analysis.program.analyze_program` checks, so admission
    covers cross-root races within each phase too.
    """

    #: data items to register on the job's runtime before phase 0
    items: list[DataItem] = field(default_factory=list)
    phases: list[list[TaskSpec]] = field(default_factory=list)
    #: run the job's runtime in functional mode (bodies compute values)
    functional: bool = False
    #: fold the last phase's root values into the job result (JSON-able)
    finalize: Callable[[list], Any] | None = None

    def total_flops(self) -> float:
        """Sequential FLOPs of every root — the admission cost estimate."""
        return sum(root.flops for phase in self.phases for root in phase)

    def all_roots(self) -> list[TaskSpec]:
        return [root for phase in self.phases for root in phase]


def _merge_params(kind: str, params: dict, defaults: dict) -> dict:
    unknown = set(params) - set(defaults)
    if unknown:
        raise ValueError(
            f"job kind {kind!r}: unknown parameter(s) "
            f"{sorted(unknown)!r}; accepted: {sorted(defaults)!r}"
        )
    merged = dict(defaults)
    merged.update(params)
    return merged


# -- built-in kinds ---------------------------------------------------------------


def _build_compute(params: dict) -> JobProgram:
    """Pure-cost leaf tasks; node-seconds = flops / flops_per_core exactly."""
    p = _merge_params(
        "compute", params, {"flops": 2.0e7, "tasks": 4, "phases": 1}
    )
    flops = float(p["flops"])
    tasks = int(p["tasks"])
    n_phases = int(p["phases"])
    if flops <= 0 or tasks < 1 or n_phases < 1:
        raise ValueError("compute: flops > 0, tasks >= 1, phases >= 1")
    per_task = flops / (tasks * n_phases)
    phases = [
        [
            TaskSpec(
                name=f"compute[{phase}][{index}]",
                flops=per_task,
                size_hint=per_task,
            )
            for index in range(tasks)
        ]
        for phase in range(n_phases)
    ]
    return JobProgram(phases=phases)


def _grid_init_task(grid: Grid, n: int, granularity: float) -> TaskSpec:
    return pfor_task(
        (0, 0),
        (n, n),
        body=_scatter_coords(grid),
        writes=lambda box: {grid: box_region(grid, box)},
        flops_per_element=2.0,
        granularity=granularity,
        name="svc-init",
    )


def _scatter_coords(grid: Grid):
    def body(ctx, box) -> None:
        import numpy as np

        rows = np.arange(box.lo[0], box.hi[0], dtype=np.float64)
        cols = np.arange(box.lo[1], box.hi[1], dtype=np.float64)
        ctx.fragment(grid).scatter(box, np.add.outer(rows, cols))

    return body


def _build_grid_sum(params: dict) -> JobProgram:
    """Quickstart-shaped functional job: parallel init, then sum of squares."""
    p = _merge_params("grid_sum", params, {"n": 16})
    n = int(p["n"])
    if not 4 <= n <= 256:
        raise ValueError("grid_sum: n must be in [4, 256]")
    grid = Grid((n, n), name="grid")
    granularity = float(max(1, (n * n) // 8))
    init = _grid_init_task(grid, n, granularity)

    def sum_squares(ctx, box) -> float:
        return float((ctx.fragment(grid).gather(box) ** 2).sum())

    reduce_task = pfor_task(
        (0, 0),
        (n, n),
        body=sum_squares,
        reads=lambda box: {grid: box_region(grid, box)},
        combiner=sum,
        flops_per_element=2.0,
        granularity=granularity,
        name="svc-sumsq",
    )
    return JobProgram(
        items=[grid],
        phases=[[init], [reduce_task]],
        functional=True,
        finalize=lambda values: float(values[0]),
    )


def _build_stencil(params: dict) -> JobProgram:
    """Cost-only stencil sweeps (ping-pong grids, halo reads)."""
    p = _merge_params("stencil", params, {"n": 24, "steps": 2})
    n = int(p["n"])
    steps = int(p["steps"])
    if not 8 <= n <= 512 or not 1 <= steps <= 16:
        raise ValueError("stencil: n in [8, 512], steps in [1, 16]")
    grids = [Grid((n, n), name="cells-a"), Grid((n, n), name="cells-b")]
    granularity = float(max(1, (n * n) // 8))
    phases: list[list[TaskSpec]] = [
        [_grid_init_task(grids[0], n, granularity)]
    ]
    for step in range(steps):
        src, dst = grids[step % 2], grids[(step + 1) % 2]
        phases.append(
            [
                pfor_task(
                    (0, 0),
                    (n, n),
                    body=lambda ctx, box: None,
                    reads=lambda box, src=src: {src: expand_box(src, box, 1)},
                    writes=lambda box, dst=dst: {dst: box_region(dst, box)},
                    flops_per_element=7.0,
                    granularity=granularity,
                    name=f"svc-step{step}",
                )
            ]
        )
    return JobProgram(items=grids, phases=phases)


def _build_particles(params: dict) -> JobProgram:
    """iPiC3D-flavored pushes: read a field grid, update a particle array."""
    p = _merge_params(
        "particles", params, {"particles": 4096, "cells": 8, "steps": 2}
    )
    count = int(p["particles"])
    cells = int(p["cells"])
    steps = int(p["steps"])
    if count < 64 or not 2 <= cells <= 64 or not 1 <= steps <= 16:
        raise ValueError(
            "particles: particles >= 64, cells in [2, 64], steps in [1, 16]"
        )
    field_grid = Grid((cells, cells), name="field")
    particles = Grid((count,), name="particles")
    field_whole = field_grid.full_region
    granularity = float(max(1, count // 8))
    init_field = pfor_task(
        (0, 0),
        (cells, cells),
        body=lambda ctx, box: None,
        writes=lambda box: {field_grid: box_region(field_grid, box)},
        flops_per_element=1.0,
        granularity=float(cells * cells),
        name="svc-field-init",
    )
    init_particles = pfor_task(
        (0,),
        (count,),
        body=lambda ctx, box: None,
        writes=lambda box: {particles: box_region(particles, box)},
        flops_per_element=2.0,
        granularity=granularity,
        name="svc-part-init",
    )
    phases: list[list[TaskSpec]] = [[init_field, init_particles]]
    for step in range(steps):
        phases.append(
            [
                pfor_task(
                    (0,),
                    (count,),
                    body=lambda ctx, box: None,
                    reads=lambda box: {field_grid: field_whole},
                    writes=lambda box: {particles: box_region(particles, box)},
                    flops_per_element=10.0,
                    granularity=granularity,
                    name=f"svc-push{step}",
                )
            ]
        )
    return JobProgram(items=[field_grid, particles], phases=phases)


def _build_queries(params: dict) -> JobProgram:
    """TPC-flavored batch: read-only queries over a shared structure."""
    p = _merge_params("queries", params, {"queries": 16, "n": 32})
    queries = int(p["queries"])
    n = int(p["n"])
    if not 1 <= queries <= 4096 or not 8 <= n <= 256:
        raise ValueError("queries: queries in [1, 4096], n in [8, 256]")
    grid = Grid((n, n), name="index-grid")
    whole = grid.full_region
    init = pfor_task(
        (0, 0),
        (n, n),
        body=lambda ctx, box: None,
        writes=lambda box: {grid: box_region(grid, box)},
        flops_per_element=1.0,
        granularity=float(max(1, (n * n) // 4)),
        name="svc-build-index",
    )
    batch = pfor_task(
        (0,),
        (queries,),
        body=lambda ctx, box: float(box.size()),
        reads=lambda box: {grid: whole},
        combiner=sum,
        flops_per_element=5.0e4,
        granularity=float(max(1, queries // 8)),
        name="svc-queries",
        body_in_virtual=True,
    )
    return JobProgram(
        items=[grid],
        phases=[[init], [batch]],
        finalize=lambda values: float(values[0]),
    )


def _build_bad_overlap(params: dict) -> JobProgram:
    """Deliberately racy: every sibling writes the whole grid.

    The race detector reports sibling write/write overlaps as errors, so
    admission must reject this kind — the smoke trace's false-accept
    probe.
    """
    p = _merge_params("bad_overlap", params, {"n": 8})
    n = int(p["n"])
    if not 4 <= n <= 64:
        raise ValueError("bad_overlap: n must be in [4, 64]")
    grid = Grid((n, n), name="contested")
    whole: Region = grid.full_region
    racy = pfor_task(
        (0, 0),
        (n, n),
        body=lambda ctx, box: None,
        writes=lambda box: {grid: whole},
        flops_per_element=1.0,
        granularity=float(max(1, (n * n) // 4)),
        name="svc-racy",
    )
    return JobProgram(items=[grid], phases=[[racy]])


_KINDS: dict[str, Callable[[dict], JobProgram]] = {
    "compute": _build_compute,
    "grid_sum": _build_grid_sum,
    "stencil": _build_stencil,
    "particles": _build_particles,
    "queries": _build_queries,
    "bad_overlap": _build_bad_overlap,
}


def job_kinds() -> tuple[str, ...]:
    """Names of the registered job kinds."""
    return tuple(sorted(_KINDS))


def register_kind(
    name: str, builder: Callable[[dict], JobProgram], replace: bool = False
) -> None:
    """Extend the catalog (in-process embedders: apps, examples, tests)."""
    if name in _KINDS and not replace:
        raise ValueError(f"job kind {name!r} already registered")
    _KINDS[name] = builder


def unregister_kind(name: str) -> None:
    if name not in set(_KINDS) - set(_BUILTINS):
        raise ValueError(f"job kind {name!r} is not a registered extension")
    del _KINDS[name]


_BUILTINS = tuple(_KINDS)


def build_program(kind: str, params: dict) -> JobProgram:
    """Build the task graph of one job; raises KeyError/ValueError."""
    try:
        builder = _KINDS[kind]
    except KeyError:
        raise KeyError(
            f"unknown job kind {kind!r}; available: {', '.join(job_kinds())}"
        ) from None
    return builder(dict(params))
