"""Runtime-as-a-service: a multi-tenant job frontend over one shared cluster.

The paper's runtime executes a single task-graph application per run.
This package turns it into a long-lived service: an asyncio frontend
(:mod:`repro.service.frontend`) accepts job submissions from many
concurrent clients, a mandatory admission gate runs the static
requirement analyzer over every submitted task graph before it touches
the cluster (:mod:`repro.service.core`), per-tenant quotas bound
concurrency and node-seconds (:mod:`repro.service.quotas`), and admitted
jobs are dispatched over one shared simulated cluster by a weighted
stride/deficit fair-share scheduler with priority aging
(:mod:`repro.service.fairshare`).

``python -m repro.service`` exposes serve/submit/status/result/drain
over a local socket plus in-process replay of recorded multi-tenant
arrival traces (:mod:`repro.service.trace`).
"""

from repro.service.catalog import JobProgram, job_kinds, register_kind
from repro.service.core import ServiceConfig, ServiceCore
from repro.service.fairshare import FairShareScheduler
from repro.service.jobs import (
    AdmissionVerdict,
    JobRecord,
    JobSpec,
    JobState,
)
from repro.service.quotas import QuotaError, TenantConfig, TenantLedger

__all__ = [
    "AdmissionVerdict",
    "FairShareScheduler",
    "JobProgram",
    "JobRecord",
    "JobSpec",
    "JobState",
    "QuotaError",
    "ServiceConfig",
    "ServiceCore",
    "TenantConfig",
    "TenantLedger",
    "job_kinds",
    "register_kind",
]
