"""Recorded multi-tenant arrival traces: save, load, deterministic replay.

A trace is a self-contained JSON document: the service configuration
(tenants, weights, quotas, cluster shape) plus a list of arrival events,
each a simulated timestamp and a :class:`~repro.service.jobs.JobSpec`.
Replaying a trace in-process is fully deterministic — arrivals become
engine events via :meth:`ServiceCore.schedule`, so the same trace always
yields the same verdicts, dispatch order, and per-tenant node-second
totals.  That is what lets ``repro.bench --service`` pin exact replay
numbers in ``BENCH_service_baseline.json``, and what the CI ``service``
job replays through the socket frontend with concurrent clients.

The committed smoke trace (``traces/multi_tenant_smoke.json``) is built
by :func:`smoke_trace`: three tenants with 3:2:1 weights, racy
``bad_overlap`` probes from every tenant (admission must reject all of
them — the zero-false-accepts assertion), and a budget-capped tenant
whose burst overruns its node-seconds quota (the quota-enforcement
assertion).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.service.core import ServiceConfig, ServiceCore
from repro.service.fairshare import jain_fairness
from repro.service.jobs import JobSpec, JobState
from repro.service.quotas import TenantConfig

TRACE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TraceEvent:
    """One recorded arrival: a submission at a simulated timestamp."""

    at: float
    spec: JobSpec

    def to_dict(self) -> dict:
        out = {"at": self.at}
        out.update(self.spec.to_dict())
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "TraceEvent":
        return cls(at=float(data["at"]), spec=JobSpec.from_dict(data))


@dataclass
class Trace:
    """A service configuration plus its recorded arrival events."""

    config: ServiceConfig
    events: list[TraceEvent] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "service": self.config.to_dict(),
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Trace":
        schema = int(data.get("schema", 0))
        if schema != TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"trace schema {schema} != supported {TRACE_SCHEMA_VERSION}"
            )
        return cls(
            config=ServiceConfig.from_dict(data.get("service") or {}),
            events=[TraceEvent.from_dict(e) for e in data.get("events", [])],
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "Trace":
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def replay(
    trace: Trace,
    core: ServiceCore | None = None,
    horizon_dispatches: int | None = None,
) -> dict:
    """Deterministically replay a trace in-process; return the report.

    Every arrival is scheduled as an engine event at its recorded
    simulated time, the service is pumped until drained, and ledger
    invariants are checked.  The report carries per-tenant latency and
    throughput plus the weighted fairness index — the exact numbers the
    bench baseline pins.

    ``horizon_dispatches`` additionally snapshots per-tenant *committed*
    node-seconds (completed plus in-flight estimates) once that many
    jobs have been dispatched, while every tenant is still backlogged.
    Shares must be measured at such a contended horizon: a full drain
    completes everyone's work, so end-of-run shares reflect demand, not
    the scheduler.  At the horizon they reflect the configured weights.
    """
    core = core or ServiceCore(trace.config)
    for event in trace.events:
        core.schedule(event.spec, event.at)
    contended = None
    if horizon_dispatches is not None:
        while (
            not core.idle
            and core.fairshare.dispatches < horizon_dispatches
        ):
            core.step()
        contended = contended_shares(core)
    core.run_until_drained()
    core.check_invariants()
    report = replay_report(core, trace)
    if contended is not None:
        report["contended"] = contended
    return report


def contended_shares(core: ServiceCore) -> dict:
    """Per-tenant committed node-seconds and shares at this instant.

    Committed = node-seconds of completed jobs plus the static estimates
    of currently running ones; queued admissions are excluded (their
    budget reservation is not yet scheduler work).
    """
    committed: dict[str, float] = {
        name: ledger.used for name, ledger in core.ledgers.items()
    }
    for record in core.jobs.values():
        if record.state == JobState.RUNNING:
            assert record.verdict is not None
            committed[record.spec.tenant] += (
                record.verdict.estimated_node_seconds
            )
    total = sum(committed.values())
    weights = {
        name: ledger.config.weight for name, ledger in core.ledgers.items()
    }
    active = {name for name, value in committed.items() if value > 0.0}
    weight_total = sum(weights[name] for name in active)
    shares = {}
    for name in core.ledgers:
        shares[name] = {
            "committed_node_seconds": committed[name],
            "observed_share": committed[name] / total if total else 0.0,
            "configured_share": (
                weights[name] / weight_total if name in active else 0.0
            ),
        }
    fairness = jain_fairness(
        [committed[name] / weights[name] for name in sorted(active)]
    )
    return {
        "dispatches": core.fairshare.dispatches,
        "time": core.engine.now,
        "fairness_index": fairness,
        "tenants": shares,
    }


def replay_report(core: ServiceCore, trace: Trace) -> dict:
    """Summarize a drained replay: per-tenant latency/throughput/shares."""
    makespan = core.engine.now
    stats = core.stats()
    per_tenant: dict[str, dict] = {}
    for snap in stats["tenants"]:
        completed = [
            record
            for record in core.jobs.values()
            if record.spec.tenant == snap["name"]
            and record.state == JobState.COMPLETED
        ]
        turnarounds = [
            record.finished_at - record.submitted_at for record in completed
        ]
        per_tenant[snap["name"]] = {
            "weight": snap["weight"],
            "submitted": snap["submitted"],
            "admitted": snap["admitted"],
            "rejected": snap["rejected"],
            "completed": snap["completed"],
            "node_seconds": snap["used_node_seconds"],
            "observed_share": snap["observed_share"],
            "configured_share": snap["configured_share"],
            "mean_queue_wait": snap["mean_queue_wait"],
            "mean_turnaround": (
                sum(turnarounds) / len(turnarounds) if turnarounds else 0.0
            ),
            "throughput_jobs_per_second": (
                len(completed) / makespan if makespan > 0 else 0.0
            ),
            "over_budget_jobs": snap["over_budget_jobs"],
        }
    rejected_by_reason: dict[str, int] = {}
    false_accepts = 0
    for record in core.jobs.values():
        if record.state == JobState.REJECTED:
            assert record.verdict is not None
            reason = record.verdict.reason
            rejected_by_reason[reason] = rejected_by_reason.get(reason, 0) + 1
        if record.spec.kind == "bad_overlap" and record.state != (
            JobState.REJECTED
        ):
            false_accepts += 1
    return {
        "events": len(trace.events),
        "jobs": len(core.jobs),
        "makespan": makespan,
        "total_node_seconds": stats["total_node_seconds"],
        "fairness_index": stats["fairness_index"],
        "rejected_by_reason": rejected_by_reason,
        "false_accepts": false_accepts,
        "tenants": per_tenant,
    }


# -- canned traces ----------------------------------------------------------------


def smoke_trace() -> Trace:
    """The committed CI smoke trace: three tenants, probes, a quota burst.

    * ``alpha`` (weight 3) and ``beta`` (weight 2) submit steady compute
      work plus functional and stencil jobs whose results the smoke run
      cross-checks.
    * ``gamma`` (weight 1) carries a 0.11 node-seconds budget and bursts
      eight 0.02 node-seconds jobs — exactly five fit (its grid_sum's
      tiny estimate reserves first), so three must be rejected with
      reason ``quota``.
    * every tenant sends a racy ``bad_overlap`` probe — all three must
      be rejected with reason ``analysis`` (zero false-accepts).
    """
    config = ServiceConfig(
        nodes=2,
        cores_per_node=4,
        tenants=(
            TenantConfig("alpha", weight=3.0, max_concurrent_jobs=2),
            TenantConfig("beta", weight=2.0, max_concurrent_jobs=2),
            TenantConfig(
                "gamma",
                weight=1.0,
                max_concurrent_jobs=1,
                max_node_seconds=0.11,
            ),
        ),
        max_running_jobs=2,
    )
    compute = {"flops": 4.8e7, "tasks": 4}
    events: list[TraceEvent] = []

    def add(at: float, tenant: str, kind: str, **params) -> None:
        events.append(
            TraceEvent(
                at, JobSpec(tenant=tenant, kind=kind, params=params)
            )
        )

    for index in range(6):
        add(0.005 * index, "alpha", "compute", **compute)
    for index in range(4):
        add(0.010 * index, "beta", "compute", **compute)
    add(0.0, "alpha", "grid_sum", n=16)
    add(0.010, "beta", "grid_sum", n=16)
    add(0.020, "beta", "stencil", n=16, steps=2)
    add(0.030, "alpha", "queries", queries=16, n=32)
    # gamma's budget burst: grid_sum (~0 cost) then eight 0.02-cost jobs
    add(0.0, "gamma", "grid_sum", n=8)
    for index in range(8):
        add(0.004 * index, "gamma", "compute", **compute)
    # the racy probes: admission must reject every one of these
    add(0.015, "alpha", "bad_overlap")
    add(0.025, "beta", "bad_overlap")
    add(0.035, "gamma", "bad_overlap")
    events.sort(key=lambda event: event.at)
    return Trace(config=config, events=events)


#: dispatch horizon at which the demo / bench panel measures shares;
#: divisible by the 3+2+1 weight total so the stride split is exact
DEMO_HORIZON_DISPATCHES = 72


def demo_trace() -> Trace:
    """The acceptance demo: 3 tenants, 120+ concurrent jobs at t=0.

    All arrivals land at time zero, so the whole batch contends for the
    two running-job slots at once and the fair-share scheduler's 3:2:1
    split is visible in per-tenant committed node-seconds at the
    :data:`DEMO_HORIZON_DISPATCHES` horizon (while everyone is still
    backlogged).  ``gamma``'s budget also forces a batch of structured
    quota rejections, and each tenant sends one racy probe.
    """
    config = ServiceConfig(
        tenants=(
            TenantConfig("alpha", weight=3.0, max_concurrent_jobs=2),
            TenantConfig("beta", weight=2.0, max_concurrent_jobs=2),
            TenantConfig(
                "gamma",
                weight=1.0,
                max_concurrent_jobs=2,
                max_node_seconds=0.3,
            ),
        ),
        max_running_jobs=2,
    )
    compute = {"flops": 4.8e7, "tasks": 4}
    events: list[TraceEvent] = []
    for tenant in ("alpha", "beta", "gamma"):
        for index in range(40):
            events.append(
                TraceEvent(
                    0.0,
                    JobSpec(tenant=tenant, kind="compute", params=compute),
                )
            )
        events.append(
            TraceEvent(
                0.0, JobSpec(tenant=tenant, kind="grid_sum", params={"n": 16})
            )
        )
        events.append(
            TraceEvent(0.0, JobSpec(tenant=tenant, kind="bad_overlap"))
        )
    return Trace(config=config, events=events)
