"""The deterministic heart of the service: admission, queues, dispatch.

:class:`ServiceCore` is synchronous and event-driven — it owns one shared
simulated :class:`~repro.sim.cluster.Cluster` and advances it in bounded
slices via :meth:`ServiceCore.step`, which the asyncio frontend interleaves
with socket I/O (and tests call directly).  Everything that decides a
job's fate is deterministic: same submissions at the same simulated times
produce the same verdicts, dispatch order, and per-tenant node-second
totals — which is what lets the bench panel pin exact numbers in its
committed baseline.

A submission passes through the gates in order:

1. **draining / tenant / kind** — structural refusals, no analysis run.
2. **build** — the catalog materializes the task graph on the service
   side of the boundary, so the graph the analyzer sees is the graph
   that runs.
3. **analysis** — :func:`repro.analysis.program.analyze_program` under
   the bounded admission profile; any error-severity finding rejects the
   job with the findings attached to the structured verdict.
4. **budget** — the static node-seconds estimate must fit the tenant's
   remaining budget (used + reserved headroom).

Admitted jobs wait in their tenant's fair-share queue; the dispatcher
starts them whenever a global running-jobs slot is free, picking tenants
by stride pass and jobs within a tenant by aged priority.  Each running
job gets its *own* :class:`~repro.runtime.runtime.AllScaleRuntime` (own
index, own processes) over the *shared* cluster nodes and engine — so
jobs genuinely contend for the same simulated cores while their data
items and schedulers stay isolated.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Generator

from repro.analysis.expansion import AnalysisConfig
from repro.analysis.program import TaskProgram, analyze_program
from repro.runtime.config import RuntimeConfig
from repro.runtime.jobs import JobContext
from repro.runtime.runtime import AllScaleRuntime
from repro.service.catalog import JobProgram, build_program
from repro.service.fairshare import FairShareScheduler, jain_fairness
from repro.service.jobs import AdmissionVerdict, JobRecord, JobSpec, JobState
from repro.service.quotas import TenantConfig, TenantLedger
from repro.sim.cluster import Cluster, ClusterSpec


@dataclass(frozen=True)
class ServiceConfig:
    """Static configuration of one service instance."""

    #: shared cluster shape
    nodes: int = 4
    cores_per_node: int = 4
    flops_per_core: float = 2.4e9
    #: the tenants allowed to submit (unknown tenants are refused)
    tenants: tuple[TenantConfig, ...] = (
        TenantConfig("alpha", weight=3.0),
        TenantConfig("beta", weight=2.0),
        TenantConfig("gamma", weight=1.0),
    )
    #: global bound on concurrently running jobs (cluster multiprogramming
    #: level); per-tenant concurrency quotas apply on top
    max_running_jobs: int = 2
    #: engine events processed per :meth:`ServiceCore.step` slice — the
    #: frontend's latency/throughput knob
    events_per_slice: int = 20_000
    #: simulated seconds of queue wait worth one priority level
    #: (None = no aging, strict priority within a tenant)
    priority_aging_seconds: float | None = 0.05
    #: bounded analyzer profile for the admission gate
    analysis: AnalysisConfig = field(
        default_factory=AnalysisConfig.admission_profile
    )

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.cores_per_node < 1:
            raise ValueError("service cluster needs >= 1 node and core")
        if self.flops_per_core <= 0:
            raise ValueError("flops_per_core must be positive")
        if self.max_running_jobs < 1:
            raise ValueError("max_running_jobs must be >= 1")
        if self.events_per_slice < 1:
            raise ValueError("events_per_slice must be >= 1")
        if not self.tenants:
            raise ValueError("a service needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names!r}")

    def to_dict(self) -> dict:
        return {
            "nodes": self.nodes,
            "cores_per_node": self.cores_per_node,
            "flops_per_core": self.flops_per_core,
            "tenants": [t.to_dict() for t in self.tenants],
            "max_running_jobs": self.max_running_jobs,
            "events_per_slice": self.events_per_slice,
            "priority_aging_seconds": self.priority_aging_seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceConfig":
        kwargs: dict[str, Any] = {}
        for key in (
            "nodes",
            "cores_per_node",
            "max_running_jobs",
            "events_per_slice",
        ):
            if key in data:
                kwargs[key] = int(data[key])
        if "flops_per_core" in data:
            kwargs["flops_per_core"] = float(data["flops_per_core"])
        if "priority_aging_seconds" in data:
            raw = data["priority_aging_seconds"]
            kwargs["priority_aging_seconds"] = (
                None if raw is None else float(raw)
            )
        if "tenants" in data:
            kwargs["tenants"] = tuple(
                TenantConfig.from_dict(t) for t in data["tenants"]
            )
        return cls(**kwargs)


@dataclass
class _RunningJob:
    """Book-keeping for one job currently on the cluster."""

    record: JobRecord
    runtime: AllScaleRuntime
    future: Any
    program: JobProgram
    estimate: float


class ServiceCore:
    """Multi-tenant job service over one shared simulated cluster."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.cluster = Cluster(
            ClusterSpec(
                num_nodes=self.config.nodes,
                cores_per_node=self.config.cores_per_node,
                flops_per_core=self.config.flops_per_core,
            )
        )
        self.engine = self.cluster.engine
        self.metrics = self.cluster.metrics
        self.fairshare = FairShareScheduler(
            aging_seconds=self.config.priority_aging_seconds
        )
        self.ledgers: dict[str, TenantLedger] = {}
        for tenant in self.config.tenants:
            self.fairshare.register_tenant(tenant.name, tenant.weight)
            self.ledgers[tenant.name] = TenantLedger(tenant)
        self.jobs: dict[str, JobRecord] = {}
        self._programs: dict[str, tuple[JobProgram, float]] = {}
        self._running: list[_RunningJob] = []
        self._seq = 0
        self.draining = False

    # -- submission (the admission gate) -----------------------------------------

    def submit(self, spec: JobSpec) -> JobRecord:
        """Admit or reject one submission; always returns a record.

        Rejections are structured verdicts, never exceptions: the record
        lands in state ``rejected`` with ``verdict.reason`` saying why,
        and — pinned by the property tests — consumes zero cluster time.
        """
        self._seq += 1
        record = JobRecord(
            job_id=f"job-{self._seq:05d}",
            spec=spec,
            submitted_at=self.engine.now,
            seq=self._seq,
        )
        self.jobs[record.job_id] = record
        self.metrics.incr("service.submitted")
        ledger = self.ledgers.get(spec.tenant)
        if ledger is not None:
            ledger.submitted += 1
        verdict, program = self._admit(spec, ledger)
        record.verdict = verdict
        if not verdict.accepted:
            record.state = JobState.REJECTED
            record.finished_at = self.engine.now
            self.metrics.incr("service.rejected")
            self.metrics.incr(f"service.rejected.{verdict.reason}")
            if ledger is not None:
                ledger.rejected += 1
                self.metrics.incr(f"service.tenant.{spec.tenant}.rejected")
            return record
        self.metrics.incr("service.admitted")
        self.metrics.incr(f"service.tenant.{spec.tenant}.admitted")
        assert ledger is not None and program is not None
        ledger.admitted += 1
        ledger.on_admit(verdict.estimated_node_seconds)
        self._programs[record.job_id] = (
            program,
            verdict.estimated_node_seconds,
        )
        self.fairshare.enqueue(record)
        return record

    def _admit(
        self, spec: JobSpec, ledger: TenantLedger | None
    ) -> tuple[AdmissionVerdict, JobProgram | None]:
        if self.draining:
            return (
                AdmissionVerdict.refusal(
                    "draining", "service is draining; not accepting new jobs"
                ),
                None,
            )
        if ledger is None:
            known = ", ".join(sorted(self.ledgers))
            return (
                AdmissionVerdict.refusal(
                    "unknown_tenant",
                    f"unknown tenant {spec.tenant!r}; configured: {known}",
                ),
                None,
            )
        try:
            program = build_program(spec.kind, dict(spec.params))
        except KeyError as exc:
            return (
                AdmissionVerdict.refusal("unknown_kind", str(exc.args[0])),
                None,
            )
        except ValueError as exc:
            return AdmissionVerdict.refusal("build_error", str(exc)), None
        label = f"{spec.tenant}/{spec.kind}"
        report = analyze_program(
            TaskProgram(label=label, phases=program.phases),
            self.config.analysis,
        )
        estimate = program.total_flops() / self.config.flops_per_core
        verdict = AdmissionVerdict.from_report(report, estimate)
        if not verdict.accepted:
            return verdict, None
        refusal = ledger.admission_refusal(estimate)
        if refusal is not None:
            verdict.accepted = False
            verdict.reason = "quota"
            verdict.detail = refusal
            return verdict, None
        # the program the analyzer approved is exactly what will run
        return verdict, program

    def schedule(self, spec: JobSpec, at: float) -> None:
        """Arrange a future submission at simulated time ``at``.

        Trace replay uses this: arrivals become engine events, so
        :meth:`step` advances simulated time through idle gaps naturally.
        """
        self.engine.schedule_at(at, lambda: self.submit(spec))

    # -- dispatch ----------------------------------------------------------------

    def _dispatch(self) -> int:
        started = 0
        while len(self._running) < self.config.max_running_jobs:
            record = self.fairshare.select(
                self.engine.now,
                lambda tenant: self.ledgers[tenant].can_start(),
            )
            if record is None:
                break
            program, estimate = self._programs.pop(record.job_id)
            ledger = self.ledgers[record.spec.tenant]
            self._start(record, program, estimate, ledger)
            started += 1
        return started

    def _start(
        self,
        record: JobRecord,
        program: JobProgram,
        estimate: float,
        ledger: TenantLedger,
    ) -> None:
        # the job may spend its own reservation plus unreserved headroom,
        # but never another admitted job's reservation
        headroom = ledger.remaining_node_seconds()
        runtime = AllScaleRuntime(
            self.cluster,
            RuntimeConfig(
                functional=program.functional,
                tenant=record.spec.tenant,
                job_node_seconds_cap=(
                    None
                    if headroom == float("inf")
                    else estimate + max(0.0, headroom)
                ),
            ),
        )
        context = JobContext(
            job_id=record.job_id,
            tenant=record.spec.tenant,
            node_seconds_cap=runtime.config.job_node_seconds_cap,
        )
        runtime.job_context = context
        record.context = context
        for item in program.items:
            runtime.register_item(item)
        record.state = JobState.RUNNING
        record.started_at = self.engine.now
        wait = record.started_at - record.submitted_at
        ledger.on_start(estimate, wait)
        self.fairshare.charge(record.spec.tenant, estimate)
        future = self.engine.spawn(self._driver(runtime, program))
        self._running.append(
            _RunningJob(record, runtime, future, program, estimate)
        )
        self.metrics.incr("service.dispatched")
        self.metrics.incr(f"service.tenant.{record.spec.tenant}.dispatched")
        self.metrics.observe(
            f"service.tenant.{record.spec.tenant}.queue_wait", wait
        )

    def _driver(
        self, runtime: AllScaleRuntime, program: JobProgram
    ) -> Generator:
        """Engine process executing one job phase by phase."""
        values: list[Any] = []
        for phase in program.phases:
            treetures = [runtime.submit(root) for root in phase]
            values = yield runtime.engine.all_of(
                [t.future for t in treetures]
            )
        if runtime.sentinel is not None:
            runtime.sentinel.verify_all()
        if program.finalize is not None:
            return program.finalize(values)
        return None

    # -- completion --------------------------------------------------------------

    def _collect(self) -> int:
        finished = 0
        still_running: list[_RunningJob] = []
        for run in self._running:
            if not run.future.done:
                still_running.append(run)
                continue
            record = run.record
            tenant = record.spec.tenant
            ledger = self.ledgers[tenant]
            context = record.context
            assert context is not None
            actual = context.cpu_seconds
            ledger.on_finish(run.estimate, actual)
            # deficit correction: the dispatch charge used the estimate;
            # settle the difference so long-run shares track actual use
            self.fairshare.charge(tenant, actual - run.estimate)
            record.node_seconds = actual
            record.over_budget = context.over_budget
            if context.over_budget:
                ledger.over_budget_jobs += 1
                self.metrics.incr("service.over_budget")
            record.result = run.future.value
            record.state = JobState.COMPLETED
            record.finished_at = self.engine.now
            for item in run.program.items:
                run.runtime.destroy_item(item)
            self.metrics.incr("service.completed")
            self.metrics.incr(f"service.tenant.{tenant}.completed")
            self.metrics.observe(
                f"service.tenant.{tenant}.node_seconds", actual
            )
            finished += 1
        self._running = still_running
        return finished

    # -- the pump ----------------------------------------------------------------

    @property
    def running_jobs(self) -> int:
        return len(self._running)

    @property
    def idle(self) -> bool:
        """Nothing queued, running, or scheduled to arrive."""
        return (
            not self._running
            and self.fairshare.backlog() == 0
            and self.engine.pending_events == 0
        )

    def step(self, until: float | None = None) -> bool:
        """One bounded slice of service progress; True if anything moved.

        Dispatches what fits, advances the shared engine by at most
        ``events_per_slice`` events (to ``until`` at the latest), then
        collects completions.  The asyncio frontend calls this between
        socket polls; :meth:`run_until_drained` loops it for batch runs.
        """
        progressed = self._dispatch() > 0
        processed = 0
        if self._running or self.engine.pending_events:
            processed = self.engine.run(
                until=until, max_events=self.config.events_per_slice
            )
            if processed:
                progressed = True
        if self._collect() > 0:
            progressed = True
        if self._dispatch() > 0:
            progressed = True
        if (
            until is None
            and processed == 0
            and self._running
            and not progressed
        ):
            raise RuntimeError(
                "service: event queue drained with jobs still running "
                "(lost dependency?)"
            )
        return progressed

    def run_until_drained(self, max_steps: int = 1_000_000) -> None:
        """Pump until every submitted and scheduled job is terminal."""
        for _ in range(max_steps):
            if self.idle:
                return
            self.step()
        raise RuntimeError(
            f"service did not drain within {max_steps} steps"
        )

    def drain(self) -> None:
        """Stop admitting; already-queued jobs still run to completion."""
        self.draining = True
        self.metrics.incr("service.drain_requests")

    # -- elasticity --------------------------------------------------------------

    def add_node(
        self,
        cores: int | None = None,
        flops_per_core: float | None = None,
        memory_bytes: int | None = None,
        gpus: int | None = None,
    ) -> int:
        """Grow the shared cluster by one node and rescale tenant quotas.

        Jobs already running keep their runtime's original process set
        (an AllScale runtime's index geometry is fixed at construction);
        jobs dispatched from here on span the enlarged cluster.
        """
        node_id = self.cluster.add_node(
            cores=cores,
            flops_per_core=flops_per_core,
            memory_bytes=memory_bytes,
            gpus=gpus,
        )
        self.on_capacity_change()
        return node_id

    def on_capacity_change(self) -> None:
        """Recompute metered tenant budgets for the current capacity.

        ``max_node_seconds`` quotas were sized against the configured
        cluster; when capacity changes they scale pro-rata against the
        *original* core count (idempotent — repeated calls do not
        compound).  A shrink never cuts a budget below what a tenant has
        already used plus reserved, so the ledger oversubscription
        invariant keeps holding for in-flight work.
        """
        baseline = self.config.nodes * self.config.cores_per_node
        factor = self.cluster.total_cores() / baseline
        for name, ledger in self.ledgers.items():
            configured = next(
                t for t in self.config.tenants if t.name == name
            )
            if configured.max_node_seconds is None:
                continue
            scaled = max(
                configured.max_node_seconds * factor,
                ledger.used + ledger.reserved,
            )
            ledger.config = replace(
                ledger.config, max_node_seconds=scaled
            )
        self.metrics.incr("service.capacity_changes")
        self.metrics.set("service.total_cores", self.cluster.total_cores())

    # -- introspection -----------------------------------------------------------

    def status(self, job_id: str) -> dict | None:
        record = self.jobs.get(job_id)
        return record.to_status() if record is not None else None

    def result(self, job_id: str) -> dict | None:
        record = self.jobs.get(job_id)
        return record.to_result() if record is not None else None

    def check_invariants(self) -> None:
        """Raise if any tenant ledger broke an accounting invariant."""
        for ledger in self.ledgers.values():
            ledger.check_invariants()

    def fairness_index(self) -> float:
        """Weighted Jain index over per-tenant consumed node-seconds.

        1.0 means every tenant's share exactly matches its weight;
        tenants that consumed nothing (never submitted or all-rejected)
        are excluded so an idle tenant does not read as unfairness.
        """
        normalized = [
            ledger.used / ledger.config.weight
            for ledger in self.ledgers.values()
            if ledger.used > 0.0
        ]
        return jain_fairness(normalized)

    def stats(self) -> dict:
        """JSON-ready service-wide statistics block."""
        total_used = sum(lg.used for lg in self.ledgers.values())
        tenants = []
        for ledger in self.ledgers.values():
            snap = ledger.snapshot()
            snap["observed_share"] = (
                ledger.used / total_used if total_used > 0 else 0.0
            )
            snap["pass"] = self.fairshare.pass_value(ledger.name)
            snap["queued"] = self.fairshare.queue_length(ledger.name)
            tenants.append(snap)
        total_weight = sum(
            lg.config.weight
            for lg in self.ledgers.values()
            if lg.used > 0.0
        )
        for snap in tenants:
            snap["configured_share"] = (
                snap["weight"] / total_weight
                if total_weight > 0 and snap["used_node_seconds"] > 0
                else 0.0
            )
        states: dict[str, int] = {}
        for record in self.jobs.values():
            states[record.state] = states.get(record.state, 0) + 1
        return {
            "time": self.engine.now,
            "draining": self.draining,
            "jobs": len(self.jobs),
            "states": states,
            "running": self.running_jobs,
            "queued": self.fairshare.backlog(),
            "dispatches": self.fairshare.dispatches,
            "total_node_seconds": total_used,
            "fairness_index": self.fairness_index(),
            "tenants": tenants,
        }
