"""Per-tenant quota configuration and accounting.

Two quotas bound what a tenant can take from the shared cluster:

* **max_concurrent_jobs** — how many of the tenant's jobs may run at
  once; further admitted jobs wait in the tenant's fair-share queue.
* **max_node_seconds** — a cumulative core-seconds budget.  Admission
  rejects a job whose static estimate no longer fits the remaining
  budget (used + reserved + estimate > budget); an admitted job's
  estimate is *reserved* from admission until completion, so a burst of
  concurrent submissions cannot oversubscribe the budget and admission
  never has to be retracted at dispatch time.  On completion the
  reservation is replaced by the actual charge.

The ledger maintains the invariants the service's property tests pin:
counts and budgets never go negative, reservations always return, and a
rejected job changes nothing but the rejection counter.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf


class QuotaError(RuntimeError):
    """Internal accounting would have gone negative (a service bug)."""


@dataclass(frozen=True)
class TenantConfig:
    """Static description of one tenant."""

    name: str
    #: fair-share weight; observed long-run share of node-seconds tracks
    #: the weights of backlogged tenants
    weight: float = 1.0
    #: concurrent running-job bound (admitted jobs queue beyond it)
    max_concurrent_jobs: int = 4
    #: cumulative core-seconds budget (None = unmetered)
    max_node_seconds: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name!r}: weight must be > 0")
        if self.max_concurrent_jobs < 1:
            raise ValueError(
                f"tenant {self.name!r}: max_concurrent_jobs must be >= 1"
            )
        if self.max_node_seconds is not None and self.max_node_seconds < 0:
            raise ValueError(
                f"tenant {self.name!r}: max_node_seconds must be >= 0"
            )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "weight": self.weight,
            "max_concurrent_jobs": self.max_concurrent_jobs,
            "max_node_seconds": self.max_node_seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TenantConfig":
        return cls(
            name=str(data["name"]),
            weight=float(data.get("weight", 1.0)),
            max_concurrent_jobs=int(data.get("max_concurrent_jobs", 4)),
            max_node_seconds=(
                None
                if data.get("max_node_seconds") is None
                else float(data["max_node_seconds"])
            ),
        )


@dataclass
class TenantLedger:
    """Live accounting of one tenant against its quotas."""

    config: TenantConfig
    #: jobs currently executing on the cluster
    running: int = 0
    #: core-seconds reserved by admitted-but-unfinished jobs' estimates
    reserved: float = 0.0
    #: core-seconds actually charged by completed jobs
    used: float = 0.0
    #: lifetime counters
    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    #: high-water mark of concurrently running jobs (quota audit)
    peak_running: int = 0
    #: sum of simulated queue waits of started jobs (seconds)
    total_queue_wait: float = 0.0
    started: int = 0
    over_budget_jobs: int = 0

    @property
    def name(self) -> str:
        return self.config.name

    def remaining_node_seconds(self) -> float:
        """Budget headroom after actual use and live reservations."""
        if self.config.max_node_seconds is None:
            return inf
        return self.config.max_node_seconds - self.used - self.reserved

    def admission_refusal(self, estimate: float) -> str | None:
        """Why a job with this estimate cannot be admitted (None = fits)."""
        if estimate > self.remaining_node_seconds():
            return (
                f"estimated {estimate:.6g} core-seconds exceeds tenant "
                f"{self.name!r} remaining budget "
                f"{max(0.0, self.remaining_node_seconds()):.6g} "
                f"(cap {self.config.max_node_seconds:.6g})"
            )
        return None

    def can_start(self) -> bool:
        """Concurrency gate the fair-share scheduler consults."""
        return self.running < self.config.max_concurrent_jobs

    def on_admit(self, estimate: float) -> None:
        """Reserve the estimate at admission, not dispatch.

        Reserving this early means a burst of concurrent submissions
        cannot collectively oversubscribe the budget, and an admitted
        job is *guaranteed* to fit when its turn comes — admission never
        has to be retracted at dispatch time.
        """
        self.reserved += estimate

    def on_start(self, estimate: float, queue_wait: float) -> None:
        if not self.can_start():
            raise QuotaError(
                f"tenant {self.name!r} dispatched past its concurrency cap"
            )
        self.running += 1
        self.peak_running = max(self.peak_running, self.running)
        self.started += 1
        self.total_queue_wait += queue_wait

    def on_finish(self, estimate: float, actual: float) -> None:
        """Return the reservation and charge the actual core-seconds."""
        self.running -= 1
        self.reserved -= estimate
        self.used += actual
        self.completed += 1
        if self.running < 0 or actual < 0:
            raise QuotaError(
                f"tenant {self.name!r} accounting went negative "
                f"(running={self.running}, actual={actual})"
            )
        if self.reserved < 0:
            # float dust from the reservation round trip, never real debt
            if self.reserved < -1e-9:
                raise QuotaError(
                    f"tenant {self.name!r} reservation underflow "
                    f"({self.reserved})"
                )
            self.reserved = 0.0
        if self.completed == self.admitted and abs(self.reserved) < 1e-9:
            # nothing outstanding: snap accumulated dust to an exact zero
            self.reserved = 0.0

    def check_invariants(self) -> None:
        """Raise :class:`QuotaError` if any accounting invariant broke."""
        if self.running < 0 or self.reserved < 0 or self.used < 0:
            raise QuotaError(f"tenant {self.name!r}: negative accounting")
        if self.running > self.config.max_concurrent_jobs:
            raise QuotaError(f"tenant {self.name!r}: concurrency exceeded")
        if self.peak_running > self.config.max_concurrent_jobs:
            raise QuotaError(f"tenant {self.name!r}: peak concurrency exceeded")
        if (
            self.config.max_node_seconds is not None
            and self.used + self.reserved
            > self.config.max_node_seconds + 1e-9
        ):
            raise QuotaError(f"tenant {self.name!r}: budget oversubscribed")
        if self.admitted + self.rejected > self.submitted:
            raise QuotaError(f"tenant {self.name!r}: verdicts exceed arrivals")

    def snapshot(self) -> dict:
        """JSON-ready per-tenant stats block."""
        return {
            "name": self.name,
            "weight": self.config.weight,
            "max_concurrent_jobs": self.config.max_concurrent_jobs,
            "max_node_seconds": self.config.max_node_seconds,
            "running": self.running,
            "peak_running": self.peak_running,
            "reserved_node_seconds": self.reserved,
            "used_node_seconds": self.used,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "over_budget_jobs": self.over_budget_jobs,
            "mean_queue_wait": (
                self.total_queue_wait / self.started if self.started else 0.0
            ),
        }
