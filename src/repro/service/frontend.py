"""The asyncio socket frontend: many concurrent clients, one core.

The protocol is newline-delimited JSON over a local TCP socket: each
request is one JSON object with an ``op`` field, each response one JSON
object with ``ok`` plus op-specific payload.  Handlers run on a single
asyncio loop, so every :meth:`ServiceCore.submit` is atomic with respect
to other clients — concurrency quota checks cannot race.

The simulated cluster advances on a *pump* task that interleaves bounded
:meth:`ServiceCore.step` slices with the socket I/O: submissions land
between slices, and clients blocked in ``result(wait=True)`` are woken
the moment their job turns terminal.  A ``shutdown`` request drains the
core (no new admissions, queued jobs still finish) and stops the server
once the last job is terminal.

Ops::

    {"op": "ping"}
    {"op": "kinds"}
    {"op": "submit", "spec": {"tenant": ..., "kind": ..., "params": {...}}}
    {"op": "status", "job_id": "job-00001"}
    {"op": "result", "job_id": "job-00001", "wait": true}
    {"op": "stats"}
    {"op": "drain"}
    {"op": "shutdown"}
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.service.catalog import job_kinds
from repro.service.core import ServiceCore
from repro.service.jobs import JobSpec

#: pump sleep while the core is idle (wall-clock seconds); short enough
#: that a fresh submission is picked up promptly, long enough that an
#: idle service does not spin a CPU
IDLE_POLL_SECONDS = 0.002


class ServiceError(RuntimeError):
    """A request the service answered with ``ok: false``."""


class ServiceFrontend:
    """Socket server wrapping one :class:`ServiceCore`."""

    def __init__(
        self, core: ServiceCore, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.core = core
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._pump_task: asyncio.Task | None = None
        self._waiters: dict[str, asyncio.Event] = {}
        self._shutdown_requested = False

    async def start(self) -> tuple[str, int]:
        """Bind (port 0 = ephemeral) and start the pump; returns address."""
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._pump_task = asyncio.create_task(self._pump())
        return self.host, self.port

    async def serve(self) -> None:
        """Run until a ``shutdown`` request has drained the core."""
        assert self._pump_task is not None, "call start() first"
        await self._pump_task
        await self.stop()

    async def stop(self) -> None:
        """Stop serving immediately (queued work is abandoned in place)."""
        if self._pump_task is not None and not self._pump_task.done():
            self._shutdown_requested = True
            self.core.draining = True
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- the pump ----------------------------------------------------------------

    async def _pump(self) -> None:
        while True:
            if self.core.idle:
                if self._shutdown_requested:
                    return
                await asyncio.sleep(IDLE_POLL_SECONDS)
                continue
            self.core.step()
            self._wake_finished()
            # yield so submissions and result reads interleave with slices
            await asyncio.sleep(0)

    def _wake_finished(self) -> None:
        if not self._waiters:
            return
        done = [
            job_id
            for job_id in self._waiters
            if self.core.jobs[job_id].terminal
        ]
        for job_id in done:
            self._waiters.pop(job_id).set()

    # -- request handling --------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                    response = await self._dispatch(request)
                except ServiceError as exc:
                    response = {"ok": False, "error": str(exc)}
                except (
                    json.JSONDecodeError,
                    KeyError,
                    TypeError,
                    ValueError,
                ) as exc:
                    response = {
                        "ok": False,
                        "error": f"bad request: {exc}",
                    }
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
                if response.get("bye"):
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "time": self.core.engine.now}
        if op == "kinds":
            return {"ok": True, "kinds": list(job_kinds())}
        if op == "submit":
            spec = JobSpec.from_dict(request["spec"])
            record = self.core.submit(spec)
            return {"ok": True, "job": record.to_status()}
        if op == "status":
            status = self.core.status(str(request["job_id"]))
            if status is None:
                raise ServiceError(f"unknown job {request['job_id']!r}")
            return {"ok": True, "job": status}
        if op == "result":
            job_id = str(request["job_id"])
            record = self.core.jobs.get(job_id)
            if record is None:
                raise ServiceError(f"unknown job {job_id!r}")
            if request.get("wait", True) and not record.terminal:
                event = self._waiters.setdefault(job_id, asyncio.Event())
                await event.wait()
            return {"ok": True, "job": record.to_result()}
        if op == "stats":
            return {"ok": True, "stats": self.core.stats()}
        if op == "drain":
            self.core.drain()
            return {"ok": True, "draining": True}
        if op == "shutdown":
            self.core.drain()
            self._shutdown_requested = True
            return {"ok": True, "bye": True}
        raise ServiceError(f"unknown op {op!r}")


class ServiceClient:
    """Async client for one frontend connection.

    Usable as an async context manager; every method returns the
    response payload or raises :class:`ServiceError` on ``ok: false``.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def __aenter__(self) -> "ServiceClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            self._reader = self._writer = None

    async def request(self, op: str, **fields: Any) -> dict:
        assert self._reader is not None and self._writer is not None
        payload = {"op": op, **fields}
        self._writer.write(json.dumps(payload).encode() + b"\n")
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ServiceError("connection closed by service")
        response = json.loads(line)
        if not response.get("ok"):
            raise ServiceError(response.get("error", "request failed"))
        return response

    async def ping(self) -> float:
        return float((await self.request("ping"))["time"])

    async def kinds(self) -> list[str]:
        return list((await self.request("kinds"))["kinds"])

    async def submit(self, spec: JobSpec | dict) -> dict:
        data = spec.to_dict() if isinstance(spec, JobSpec) else dict(spec)
        return (await self.request("submit", spec=data))["job"]

    async def status(self, job_id: str) -> dict:
        return (await self.request("status", job_id=job_id))["job"]

    async def result(self, job_id: str, wait: bool = True) -> dict:
        return (await self.request("result", job_id=job_id, wait=wait))[
            "job"
        ]

    async def stats(self) -> dict:
        return (await self.request("stats"))["stats"]

    async def drain(self) -> dict:
        return await self.request("drain")

    async def shutdown(self) -> dict:
        return await self.request("shutdown")


def call(host: str, port: int, op: str, **fields: Any) -> dict:
    """One-shot synchronous request (the CLI's client path)."""

    async def _run() -> dict:
        async with ServiceClient(host, port) as client:
            return await client.request(op, **fields)

    return asyncio.run(_run())
