"""Weighted fair-share scheduling over per-tenant queues.

A stride/deficit scheduler: every tenant carries a *pass* value, and the
next job comes from the backlogged, capacity-eligible tenant with the
smallest pass.  Dispatching charges the tenant's pass by the job's
statically estimated core-seconds divided by the tenant's weight; when
the job completes, the difference between actual and estimated charge is
settled the same way (the deficit correction).  Over any backlogged
window, each tenant's consumed core-seconds therefore track its share of
the total weight to within one job's worth of quantization — the bound
the bench panel's fairness index measures.

Within one tenant's queue, jobs are ordered by *aged priority*: a job's
effective priority is ``priority + waited_seconds / aging_seconds``, so
urgent jobs jump ahead but long-waiting background jobs eventually
overtake fresher urgent ones (no intra-tenant starvation).  Ties fall
back to arrival order.  Cross-tenant starvation cannot occur at all:
stride scheduling hands every positive-weight tenant turns in proportion
to its weight regardless of the others' demand.

Everything here is deterministic — simulated timestamps in, pure
arithmetic inside — which is what lets the service bench pin exact
per-tenant node-second totals in its committed baseline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.jobs import JobRecord


def jain_fairness(values: list[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    Feed it weight-normalized shares (``share / weight``) and 1.0 means
    observed consumption matches configured weights exactly; the floor
    is ``1/n`` when one participant takes everything.  Empty input
    (nothing consumed yet) reads as perfectly fair.
    """
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0.0:
        return 1.0
    return (total * total) / (len(values) * squares)


class FairShareScheduler:
    """Stride scheduler with per-tenant queues and priority aging."""

    def __init__(self, aging_seconds: float | None = None) -> None:
        #: simulated seconds of waiting worth one priority level; None
        #: disables aging (strict priority within a tenant)
        self.aging_seconds = aging_seconds
        self._weights: dict[str, float] = {}
        self._passes: dict[str, float] = {}
        self._queues: dict[str, list["JobRecord"]] = {}
        self.dispatches = 0

    # -- tenant registry ---------------------------------------------------------

    def register_tenant(self, name: str, weight: float) -> None:
        if name in self._weights:
            raise ValueError(f"tenant {name!r} registered twice")
        if weight <= 0:
            raise ValueError(f"tenant {name!r}: weight must be > 0")
        self._weights[name] = weight
        self._passes[name] = 0.0
        self._queues[name] = []

    def tenants(self) -> tuple[str, ...]:
        return tuple(self._weights)

    def queue_length(self, tenant: str) -> int:
        return len(self._queues[tenant])

    def backlog(self) -> int:
        """Total queued jobs across all tenants."""
        return sum(len(q) for q in self._queues.values())

    def pass_value(self, tenant: str) -> float:
        return self._passes[tenant]

    # -- queue operations --------------------------------------------------------

    def enqueue(self, job: "JobRecord") -> None:
        """Add an admitted job to its tenant's queue.

        A tenant waking from idle has its pass clamped up to the minimum
        pass of the currently backlogged tenants — idle time does not
        bank credit (the standard stride-virtual-time correction).
        """
        tenant = job.spec.tenant
        queue = self._queues[tenant]
        if not queue:
            active = [
                self._passes[name]
                for name, q in self._queues.items()
                if q and name != tenant
            ]
            if active:
                self._passes[tenant] = max(
                    self._passes[tenant], min(active)
                )
        queue.append(job)

    def _effective_priority(self, job: "JobRecord", now: float) -> float:
        if self.aging_seconds is None:
            return float(job.spec.priority)
        return job.spec.priority + (now - job.submitted_at) / self.aging_seconds

    def select(
        self,
        now: float,
        eligible: Callable[[str], bool],
    ) -> "JobRecord | None":
        """Pop the next job to dispatch, or None when nothing may run.

        ``eligible`` is the capacity gate (tenant concurrency quota,
        typically).  The caller must follow up with :meth:`charge` once
        the job actually starts.
        """
        best_tenant: str | None = None
        for tenant, queue in self._queues.items():
            if not queue or not eligible(tenant):
                continue
            if best_tenant is None or (
                self._passes[tenant],
                tenant,
            ) < (self._passes[best_tenant], best_tenant):
                best_tenant = tenant
        if best_tenant is None:
            return None
        queue = self._queues[best_tenant]
        # max aged priority; ties resolve to the oldest arrival
        best_index = 0
        best_key = (self._effective_priority(queue[0], now), -queue[0].seq)
        for index in range(1, len(queue)):
            key = (
                self._effective_priority(queue[index], now),
                -queue[index].seq,
            )
            if key > best_key:
                best_index, best_key = index, key
        job = queue.pop(best_index)
        self.dispatches += 1
        return job

    def charge(self, tenant: str, cost_node_seconds: float) -> None:
        """Advance a tenant's pass by consumed (or corrected) cost."""
        self._passes[tenant] += cost_node_seconds / self._weights[tenant]

    def remove(self, job: "JobRecord") -> bool:
        """Drop a queued job (client-side cancellation)."""
        queue = self._queues[job.spec.tenant]
        try:
            queue.remove(job)
            return True
        except ValueError:
            return False
