"""``python -m repro.service`` — serve, submit, inspect, replay, smoke.

Client/server commands speak the newline-delimited JSON protocol of
:mod:`repro.service.frontend` over a local TCP socket::

    python -m repro.service serve --port 7421
    python -m repro.service submit --tenant alpha --kind grid_sum \
        --params '{"n": 16}' --wait
    python -m repro.service status job-00001
    python -m repro.service stats
    python -m repro.service shutdown

Batch commands run in-process and deterministically::

    python -m repro.service replay traces/multi_tenant_smoke.json
    python -m repro.service demo
    python -m repro.service smoke   # what the CI service job runs

``smoke`` starts a real frontend on an ephemeral port, replays the
committed multi-tenant trace with one concurrent client per tenant, and
asserts the admission, quota, and fairness properties the CI job pins.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.service.core import ServiceConfig, ServiceCore
from repro.service.frontend import (
    ServiceClient,
    ServiceError,
    ServiceFrontend,
    call,
)
from repro.service.jobs import JobSpec, JobState
from repro.service.trace import (
    DEMO_HORIZON_DISPATCHES,
    Trace,
    demo_trace,
    replay,
    smoke_trace,
)

#: fairness-index floor the smoke run enforces; the smoke trace's
#: demand-driven drain fairness is ~0.82 (gamma's quota cap skews its
#: weight-normalized share), so 0.75 catches a broken scheduler while
#: tolerating protocol-level arrival reordering
SMOKE_FAIRNESS_FLOOR = 0.75

#: relative share tolerance the demo enforces at the contended horizon
DEMO_SHARE_TOLERANCE = 0.10


def _load_config(path: str | None) -> ServiceConfig:
    if path is None:
        return ServiceConfig()
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    # accept either a bare config or a full trace document
    return ServiceConfig.from_dict(data.get("service", data))


def _print(data: dict) -> None:
    json.dump(data, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


# -- server ----------------------------------------------------------------------


def cmd_serve(args: argparse.Namespace) -> int:
    core = ServiceCore(_load_config(args.config))

    async def _serve() -> None:
        frontend = ServiceFrontend(core, host=args.host, port=args.port)
        host, port = await frontend.start()
        print(f"repro.service listening on {host}:{port}", flush=True)
        try:
            await frontend.serve()
        except asyncio.CancelledError:  # pragma: no cover - signal path
            await frontend.stop()
        print("repro.service: drained, bye", flush=True)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        print("repro.service: interrupted", flush=True)
    return 0


# -- one-shot client commands ----------------------------------------------------


def cmd_submit(args: argparse.Namespace) -> int:
    spec = JobSpec(
        tenant=args.tenant,
        kind=args.kind,
        params=json.loads(args.params),
        priority=args.priority,
        name=args.name,
    )

    async def _run() -> dict:
        async with ServiceClient(args.host, args.port) as client:
            job = await client.submit(spec)
            if args.wait and job["state"] not in JobState.TERMINAL:
                job = await client.result(job["job_id"], wait=True)
            return job

    _print(asyncio.run(_run()))
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    _print(call(args.host, args.port, "status", job_id=args.job_id)["job"])
    return 0


def cmd_result(args: argparse.Namespace) -> int:
    _print(
        call(
            args.host,
            args.port,
            "result",
            job_id=args.job_id,
            wait=args.wait,
        )["job"]
    )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    _print(call(args.host, args.port, "stats")["stats"])
    return 0


def cmd_kinds(args: argparse.Namespace) -> int:
    _print(call(args.host, args.port, "kinds"))
    return 0


def cmd_drain(args: argparse.Namespace) -> int:
    _print(call(args.host, args.port, "drain"))
    return 0


def cmd_shutdown(args: argparse.Namespace) -> int:
    _print(call(args.host, args.port, "shutdown"))
    return 0


# -- in-process batch commands ---------------------------------------------------


def cmd_write_trace(args: argparse.Namespace) -> int:
    trace = demo_trace() if args.demo else smoke_trace()
    trace.save(args.path)
    print(f"wrote {len(trace.events)} events to {args.path}")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    trace = Trace.load(args.trace)
    report = replay(trace, horizon_dispatches=args.horizon)
    _print(report)
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    trace = demo_trace()
    report = replay(trace, horizon_dispatches=DEMO_HORIZON_DISPATCHES)
    _print(report)
    failures: list[str] = []
    if report["false_accepts"]:
        failures.append(f"{report['false_accepts']} racy job(s) admitted")
    terminal = report["jobs"] - sum(
        t["completed"] + t["rejected"] for t in report["tenants"].values()
    )
    if terminal:
        failures.append(f"{terminal} job(s) neither completed nor rejected")
    for name, share in report["contended"]["tenants"].items():
        observed = share["observed_share"]
        configured = share["configured_share"]
        if configured <= 0:
            continue
        error = abs(observed - configured) / configured
        if error > DEMO_SHARE_TOLERANCE:
            failures.append(
                f"tenant {name}: share {observed:.4f} deviates "
                f"{error:.1%} from configured {configured:.4f}"
            )
    if failures:
        for failure in failures:
            print(f"DEMO FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"demo ok: {report['jobs']} jobs across "
        f"{len(report['tenants'])} tenants, shares within "
        f"{DEMO_SHARE_TOLERANCE:.0%} of weights at the contended horizon "
        f"(fairness {report['contended']['fairness_index']:.4f})"
    )
    return 0


# -- the CI smoke ----------------------------------------------------------------


def cmd_smoke(args: argparse.Namespace) -> int:
    trace = Trace.load(args.trace) if args.trace else smoke_trace()
    core = ServiceCore(trace.config)
    results: list[dict] = []

    async def _client(host: str, port: int, events: list) -> None:
        async with ServiceClient(host, port) as client:
            submitted = []
            for event in events:
                submitted.append(await client.submit(event.spec))
                # yield between submissions so tenants interleave
                await asyncio.sleep(0)
            for job in submitted:
                results.append(await client.result(job["job_id"], wait=True))

    async def _run() -> dict:
        frontend = ServiceFrontend(core)
        host, port = await frontend.start()
        by_tenant: dict[str, list] = {}
        for event in trace.events:
            by_tenant.setdefault(event.spec.tenant, []).append(event)
        await asyncio.gather(
            *(
                _client(host, port, events)
                for events in by_tenant.values()
            )
        )
        async with ServiceClient(host, port) as client:
            stats = await client.stats()
            await client.shutdown()
        await frontend.serve()
        return stats

    stats = asyncio.run(_run())
    core.check_invariants()

    failures: list[str] = []
    if len(results) != len(trace.events):
        failures.append(
            f"{len(results)} results for {len(trace.events)} submissions"
        )
    for job in results:
        verdict = job["verdict"]
        if job["state"] not in JobState.TERMINAL:
            failures.append(f"{job['job_id']}: non-terminal {job['state']}")
        if verdict is None:
            failures.append(f"{job['job_id']}: missing verdict")
            continue
        if job["kind"] == "bad_overlap" and job["state"] != (
            JobState.REJECTED
        ):
            failures.append(
                f"{job['job_id']}: FALSE ACCEPT of racy job "
                f"(state {job['state']})"
            )
        if job["state"] == JobState.REJECTED:
            if verdict["reason"] in ("", "ok"):
                failures.append(
                    f"{job['job_id']}: rejected without a reason"
                )
            if job["node_seconds"] != 0.0:
                failures.append(
                    f"{job['job_id']}: rejected but consumed "
                    f"{job['node_seconds']} node-seconds"
                )
    quota_rejects = sum(
        1
        for job in results
        if job["state"] == JobState.REJECTED
        and job["verdict"]["reason"] == "quota"
    )
    for tenant in trace.config.tenants:
        ledger = core.ledgers[tenant.name]
        if tenant.max_node_seconds is not None:
            if ledger.used > tenant.max_node_seconds + 1e-9:
                failures.append(
                    f"tenant {tenant.name}: used {ledger.used:.6g} exceeds "
                    f"budget {tenant.max_node_seconds:.6g}"
                )
            if quota_rejects == 0:
                failures.append(
                    f"tenant {tenant.name}: budgeted burst produced no "
                    "quota rejections"
                )
    fairness = stats["fairness_index"]
    if fairness < SMOKE_FAIRNESS_FLOOR:
        failures.append(
            f"fairness index {fairness:.4f} below floor "
            f"{SMOKE_FAIRNESS_FLOOR}"
        )

    print(
        f"smoke: {len(results)} jobs, "
        f"{stats['states'].get('completed', 0)} completed, "
        f"{stats['states'].get('rejected', 0)} rejected "
        f"({quota_rejects} quota), fairness {fairness:.4f}"
    )
    if failures:
        for failure in failures:
            print(f"SMOKE FAIL: {failure}", file=sys.stderr)
        return 1
    print("smoke ok")
    return 0


# -- argument parsing ------------------------------------------------------------


def _add_endpoint(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7421)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="multi-tenant job service over the simulated runtime",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("serve", help="run the socket frontend")
    _add_endpoint(p)
    p.add_argument(
        "--config", help="JSON service config (or trace file)", default=None
    )
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("submit", help="submit one job")
    _add_endpoint(p)
    p.add_argument("--tenant", required=True)
    p.add_argument("--kind", required=True)
    p.add_argument("--params", default="{}", help="JSON parameters")
    p.add_argument("--priority", type=int, default=0)
    p.add_argument("--name", default="")
    p.add_argument(
        "--wait", action="store_true", help="block until terminal"
    )
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser("status", help="job status")
    _add_endpoint(p)
    p.add_argument("job_id")
    p.set_defaults(fn=cmd_status)

    p = sub.add_parser("result", help="job result (waits by default)")
    _add_endpoint(p)
    p.add_argument("job_id")
    p.add_argument("--no-wait", dest="wait", action="store_false")
    p.set_defaults(fn=cmd_result, wait=True)

    p = sub.add_parser("stats", help="service-wide statistics")
    _add_endpoint(p)
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("kinds", help="list job kinds")
    _add_endpoint(p)
    p.set_defaults(fn=cmd_kinds)

    p = sub.add_parser("drain", help="stop admitting new jobs")
    _add_endpoint(p)
    p.set_defaults(fn=cmd_drain)

    p = sub.add_parser("shutdown", help="drain, finish, and stop serving")
    _add_endpoint(p)
    p.set_defaults(fn=cmd_shutdown)

    p = sub.add_parser("write-trace", help="write a canned trace file")
    p.add_argument("path")
    p.add_argument(
        "--demo", action="store_true", help="demo trace (default: smoke)"
    )
    p.set_defaults(fn=cmd_write_trace)

    p = sub.add_parser("replay", help="deterministic in-process replay")
    p.add_argument("trace")
    p.add_argument("--horizon", type=int, default=None)
    p.set_defaults(fn=cmd_replay)

    p = sub.add_parser("demo", help="acceptance demo (3 tenants, 126 jobs)")
    p.set_defaults(fn=cmd_demo)

    p = sub.add_parser("smoke", help="frontend smoke over a real socket")
    p.add_argument(
        "--trace", default=None, help="trace file (default: built-in smoke)"
    )
    p.set_defaults(fn=cmd_smoke)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ConnectionRefusedError:
        print(
            f"error: no service at {args.host}:{args.port} "
            "(start one with: python -m repro.service serve)",
            file=sys.stderr,
        )
        return 1


if __name__ == "__main__":
    sys.exit(main())
