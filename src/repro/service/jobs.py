"""Job descriptions, lifecycle records, and structured admission verdicts.

A :class:`JobSpec` is what crosses the client/service boundary: a tenant
name, a catalog job kind, JSON-serializable parameters, and a priority.
The service turns each submission into a :class:`JobRecord` that tracks
the job through its lifecycle and carries the :class:`AdmissionVerdict`
the static analyzer produced at the front door — rejections are not
exceptions but structured API responses, so a client can always ask
*why* a job never ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.findings import AnalysisReport
    from repro.runtime.jobs import JobContext


class JobState:
    """Lifecycle states of a submitted job (plain strings on the wire)."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    REJECTED = "rejected"
    FAILED = "failed"

    #: states from which a job never leaves
    TERMINAL = frozenset({COMPLETED, REJECTED, FAILED})


@dataclass(frozen=True)
class JobSpec:
    """One client-side job submission."""

    tenant: str
    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)
    #: larger = more urgent within the tenant's queue; aging lifts
    #: long-waiting low-priority jobs past fresher urgent ones
    priority: int = 0
    #: optional client-chosen label (surfaced in status, never unique)
    name: str = ""

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "kind": self.kind,
            "params": dict(self.params),
            "priority": self.priority,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        return cls(
            tenant=str(data.get("tenant", "")),
            kind=str(data.get("kind", "")),
            params=dict(data.get("params") or {}),
            priority=int(data.get("priority", 0)),
            name=str(data.get("name", "")),
        )


@dataclass
class AdmissionVerdict:
    """Structured outcome of the submit-time admission gate.

    ``accepted`` is True only when the job cleared every gate: known
    tenant, buildable task graph, zero error-severity analyzer findings,
    and a node-seconds estimate within the tenant's remaining budget.
    """

    accepted: bool
    #: machine-readable cause: ``ok`` | ``analysis`` | ``quota`` |
    #: ``build_error`` | ``unknown_tenant`` | ``unknown_kind`` | ``draining``
    reason: str
    #: human-readable elaboration of the reason
    detail: str = ""
    #: analyzer findings as plain dicts (check/severity/message/task/item)
    findings: list[dict] = field(default_factory=list)
    #: finding counts by severity (error/warning/info)
    counts: dict[str, int] = field(default_factory=dict)
    #: statically estimated core-seconds the job will charge
    estimated_node_seconds: float = 0.0

    @classmethod
    def from_report(
        cls, report: "AnalysisReport", estimate: float
    ) -> "AdmissionVerdict":
        findings = [
            {
                "check": f.check,
                "severity": f.severity,
                "message": f.message,
                "task": f.task,
                "item": f.item,
            }
            for f in report.findings
        ]
        accepted = report.clean
        return cls(
            accepted=accepted,
            reason="ok" if accepted else "analysis",
            detail=(
                ""
                if accepted
                else f"{len(report.errors)} error finding(s) from the "
                "static requirement analyzer"
            ),
            findings=findings,
            counts=report.counts(),
            estimated_node_seconds=estimate,
        )

    @classmethod
    def refusal(cls, reason: str, detail: str) -> "AdmissionVerdict":
        """A rejection that never reached the analyzer."""
        return cls(accepted=False, reason=reason, detail=detail)

    def to_dict(self) -> dict:
        return {
            "accepted": self.accepted,
            "reason": self.reason,
            "detail": self.detail,
            "findings": self.findings,
            "counts": dict(self.counts),
            "estimated_node_seconds": self.estimated_node_seconds,
        }


@dataclass
class JobRecord:
    """Server-side state of one submission, from arrival to terminal."""

    job_id: str
    spec: JobSpec
    state: str = JobState.QUEUED
    verdict: AdmissionVerdict | None = None
    #: simulated timestamps (seconds on the shared cluster's clock)
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    #: core-seconds actually charged (0.0 until completion; stays 0.0 for
    #: rejected jobs — they never touch the cluster)
    node_seconds: float = 0.0
    #: job result value (JSON-serializable or None)
    result: Any = None
    #: failure description when state == failed
    error: str = ""
    #: the job exceeded its node-seconds cap (sticky, settled at completion)
    over_budget: bool = False
    #: monotonically increasing arrival sequence (tie-breaks scheduling)
    seq: int = 0
    #: live accounting context while running (not serialized)
    context: "JobContext | None" = field(default=None, repr=False)

    @property
    def terminal(self) -> bool:
        return self.state in JobState.TERMINAL

    @property
    def queue_wait(self) -> float | None:
        """Simulated seconds between arrival and dispatch (None if never ran)."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    def to_status(self) -> dict:
        """JSON-ready status view (no result payload)."""
        return {
            "job_id": self.job_id,
            "tenant": self.spec.tenant,
            "kind": self.spec.kind,
            "name": self.spec.name,
            "priority": self.spec.priority,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "queue_wait": self.queue_wait,
            "node_seconds": self.node_seconds,
            "over_budget": self.over_budget,
            "verdict": self.verdict.to_dict() if self.verdict else None,
        }

    def to_result(self) -> dict:
        """JSON-ready result view (status plus the result value / error)."""
        out = self.to_status()
        out["result"] = self.result
        out["error"] = self.error
        return out
