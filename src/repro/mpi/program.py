"""SPMD job driver.

``run_spmd`` launches one rank coroutine per cluster node and drives the
event loop until every rank returns, collecting per-rank results — the
``mpiexec -n P`` of the simulated world.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.mpi.comm import MpiWorld
from repro.sim.cluster import Cluster

RankMain = Callable[..., Generator]


def run_spmd(
    cluster: Cluster, rank_main: RankMain, *args: Any, **kwargs: Any
) -> list[Any]:
    """Run ``rank_main(comm, *args, **kwargs)`` on every rank to completion.

    Returns the list of per-rank return values (index = rank).  Raises if
    any rank fails to finish (lost message / deadlock), identifying the
    stuck ranks.
    """
    world = MpiWorld(cluster)
    futures = []
    for rank in range(world.size):
        comm = world.communicator(rank)
        futures.append(cluster.engine.spawn(rank_main(comm, *args, **kwargs)))
    cluster.engine.run()
    stuck = [rank for rank, f in enumerate(futures) if not f.done]
    if stuck:
        raise RuntimeError(
            f"SPMD program did not terminate; stuck ranks: {stuck} "
            "(unmatched receive or circular wait)"
        )
    return [f.value for f in futures]
