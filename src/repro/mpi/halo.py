"""Halo exchange planning for block-decomposed grids.

Given the per-rank blocks of a grid decomposition and a stencil radius,
the plan records, for every rank, which slab of which neighbor it must
receive (and symmetrically send) each timestep — the classic ghost-cell
pattern of the paper's MPI stencil/iPiC3D reference codes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Sequence

from repro.mpi.comm import Communicator
from repro.regions.box import Box, BoxSetRegion


@dataclass(frozen=True)
class HaloTransfer:
    """One per-step message: ``src`` sends ``box`` (its cells) to ``dst``."""

    src: int
    dst: int
    box: Box
    nbytes: int


@dataclass
class HaloPlan:
    """All per-step halo messages, grouped by rank for convenience."""

    transfers: list[HaloTransfer] = field(default_factory=list)

    def sends_of(self, rank: int) -> list[HaloTransfer]:
        return [t for t in self.transfers if t.src == rank]

    def recvs_of(self, rank: int) -> list[HaloTransfer]:
        return [t for t in self.transfers if t.dst == rank]

    def total_bytes(self) -> int:
        return sum(t.nbytes for t in self.transfers)

    def neighbors_of(self, rank: int) -> set[int]:
        out = {t.dst for t in self.sends_of(rank)}
        out |= {t.src for t in self.recvs_of(rank)}
        return out


def plan_halo_exchange(
    blocks: Sequence[Box],
    radius: int,
    bytes_per_element: int,
) -> HaloPlan:
    """Compute the halo messages for one stencil sweep.

    Rank ``j`` needs the cells of ``expand(blocks[j], radius) ∩ blocks[i]``
    from every other rank ``i`` — each such non-empty overlap is one
    message per step.  The overlaps are computed on kernel-backed
    (interned, memoized) box regions, so re-planning the same
    decomposition — every run of an MPI reference code does this once per
    rank — hits the region kernel's cache instead of recomputing.
    """
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    plan = HaloPlan()
    if radius == 0:
        return plan
    sender_regions = [BoxSetRegion((b,)).interned() for b in blocks]
    for j, receiver in enumerate(blocks):
        grown = BoxSetRegion(
            (
                Box(
                    tuple(l - radius for l in receiver.lo),
                    tuple(h + radius for h in receiver.hi),
                ),
            )
        ).interned()
        for i, sender in enumerate(sender_regions):
            if i == j:
                continue
            overlap = grown.intersect(sender)
            if overlap.is_empty():
                continue
            # both operands are single boxes, so the cut is a single box
            for box in overlap.boxes:
                plan.transfers.append(
                    HaloTransfer(
                        src=i,
                        dst=j,
                        box=box,
                        nbytes=box.size() * bytes_per_element,
                    )
                )
    return plan


def exchange_step(
    comm: Communicator, plan: HaloPlan, tag: int = 100
) -> Generator:
    """Execute one halo exchange round for ``comm.rank``.

    Posts all sends, then waits for all receives — the non-blocking
    isend/irecv + waitall structure of a typical MPI stencil.
    """
    for transfer in plan.sends_of(comm.rank):
        comm.isend(transfer.dst, transfer.nbytes, None, tag)
    for transfer in plan.recvs_of(comm.rank):
        yield comm.recv(transfer.src, tag)
