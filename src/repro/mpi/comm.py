"""Simulated MPI communicator.

Point-to-point semantics follow MPI's matching rules (messages from one
sender with one tag are consumed in order); data transport and timing go
through the simulated network, so MPI baselines and the AllScale runtime
pay identical latency/bandwidth/NIC costs.

Collectives use the standard O(log P) algorithms:

* ``barrier``     — dissemination;
* ``bcast``       — binomial tree;
* ``reduce``      — binomial tree (mirror of bcast);
* ``allreduce``   — recursive doubling;
* ``alltoall``    — pairwise exchange (P-1 rounds).

Payloads carry an explicit byte count plus an optional Python value, so
functional tests can move real data while benchmark codes move only bytes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Generator

from repro.sim.cluster import Cluster
from repro.sim.engine import Future


@dataclass
class _Message:
    nbytes: int
    value: Any


class MpiWorld:
    """Shared mailbox state of one communicator group."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.size = cluster.num_nodes
        # (dst, src, tag) -> queue of delivered messages
        self._mailboxes: dict[tuple[int, int, int], deque[_Message]] = {}
        # (dst, src, tag) -> queue of waiting receive futures
        self._waiters: dict[tuple[int, int, int], deque[Future]] = {}

    def communicator(self, rank: int) -> "Communicator":
        return Communicator(self, rank)

    def _deliver(self, dst: int, src: int, tag: int, message: _Message) -> None:
        key = (dst, src, tag)
        waiters = self._waiters.get(key)
        if waiters:
            waiters.popleft().complete(message)
            if not waiters:
                del self._waiters[key]
        else:
            self._mailboxes.setdefault(key, deque()).append(message)

    def _receive(self, dst: int, src: int, tag: int) -> Future:
        key = (dst, src, tag)
        future = self.cluster.engine.future()
        mailbox = self._mailboxes.get(key)
        if mailbox:
            future.complete(mailbox.popleft())
            if not mailbox:
                del self._mailboxes[key]
        else:
            self._waiters.setdefault(key, deque()).append(future)
        return future


class Communicator:
    """One rank's view of the communicator (rank == node index)."""

    def __init__(self, world: MpiWorld, rank: int) -> None:
        if not (0 <= rank < world.size):
            raise ValueError(f"rank {rank} out of range 0..{world.size - 1}")
        self.world = world
        self.rank = rank
        self.node = world.cluster.nodes[rank]
        self.network = world.cluster.network
        self.engine = world.cluster.engine

    @property
    def size(self) -> int:
        return self.world.size

    # -- point to point -----------------------------------------------------------

    def isend(self, dst: int, nbytes: int, value: Any = None, tag: int = 0) -> Future:
        """Non-blocking send; the future completes at delivery."""
        message = _Message(nbytes, value)
        transfer = self.network.send(self.rank, dst, nbytes)
        done = self.engine.future()

        def on_delivery(_: Any) -> None:
            self.world._deliver(dst, self.rank, tag, message)
            done.complete(None)

        transfer.add_callback(on_delivery)
        return done

    def recv(self, src: int, tag: int = 0) -> Future:
        """Future completing with the matched message's value."""
        raw = self.world._receive(self.rank, src, tag)
        out = self.engine.future()
        raw.add_callback(lambda msg: out.complete(msg.value))
        return out

    def sendrecv(
        self, dst: int, nbytes: int, value: Any = None, tag: int = 0
    ) -> Generator:
        """Simultaneous exchange with one peer (both directions)."""
        self.isend(dst, nbytes, value, tag)
        received = yield self.recv(dst, tag)
        return received

    # -- compute ---------------------------------------------------------------------

    def compute(self, flops: float) -> Future:
        """Run a node-wide parallel kernel of ``flops`` total work."""
        return self.node.execute_parallel(
            self.node.flops_to_seconds_parallel(flops)
        )

    def compute_seconds(self, seconds: float) -> Future:
        return self.node.execute_parallel(seconds)

    # -- collectives (generator helpers; drive with `yield from`) ----------------------

    def barrier(self, tag: int = 900) -> Generator:
        """Dissemination barrier: ⌈log₂P⌉ rounds of pairwise messages."""
        size = self.size
        if size == 1:
            return
        distance = 1
        round_no = 0
        while distance < size:
            dst = (self.rank + distance) % size
            src = (self.rank - distance) % size
            self.isend(dst, 8, None, tag + round_no)
            yield self.recv(src, tag + round_no)
            distance *= 2
            round_no += 1

    def bcast(self, value: Any, nbytes: int, root: int = 0, tag: int = 910) -> Generator:
        """Binomial-tree broadcast; returns the value on every rank."""
        size = self.size
        if size == 1:
            return value
        vrank = (self.rank - root) % size
        # receive phase: a non-root rank gets the value from the partner at
        # its lowest set bit (classic binomial tree)
        mask = 1
        while mask < size:
            if vrank & mask:
                src = (vrank - mask + root) % size
                value = yield self.recv(src, tag)
                break
            mask <<= 1
        # forward phase: fan out to partners below the receive bit
        mask >>= 1
        while mask >= 1:
            if vrank + mask < size:
                dst = (vrank + mask + root) % size
                self.isend(dst, nbytes, value, tag)
            mask >>= 1
        return value

    def allreduce(
        self,
        value: Any,
        nbytes: int,
        op: Callable[[Any, Any], Any] = lambda a, b: a + b,
        tag: int = 920,
    ) -> Generator:
        """Recursive-doubling allreduce (power-of-two via folding)."""
        size = self.size
        if size == 1:
            return value
        # fold non-power-of-two remainder onto the lower half
        pow2 = 1
        while pow2 * 2 <= size:
            pow2 *= 2
        rem = size - pow2
        if self.rank >= pow2:
            self.isend(self.rank - pow2, nbytes, value, tag + 90)
            value = yield self.recv(self.rank - pow2, tag + 91)
            return value
        if self.rank < rem:
            other = yield self.recv(self.rank + pow2, tag + 90)
            value = op(value, other)
        distance = 1
        round_no = 0
        while distance < pow2:
            partner = self.rank ^ distance
            self.isend(partner, nbytes, value, tag + round_no)
            other = yield self.recv(partner, tag + round_no)
            value = op(value, other)
            distance *= 2
            round_no += 1
        if self.rank < rem:
            self.isend(self.rank + pow2, nbytes, value, tag + 91)
        return value

    def alltoall(
        self,
        payloads: list[tuple[int, Any]],
        tag: int = 940,
    ) -> Generator:
        """Pairwise-exchange alltoall.

        ``payloads[r]`` is ``(nbytes, value)`` destined for rank ``r``;
        returns the list of values received, indexed by source rank.
        """
        size = self.size
        if len(payloads) != size:
            raise ValueError(
                f"alltoall needs {size} payloads, got {len(payloads)}"
            )
        received: list[Any] = [None] * size
        received[self.rank] = payloads[self.rank][1]
        for shift in range(1, size):
            dst = (self.rank + shift) % size
            src = (self.rank - shift) % size
            nbytes, value = payloads[dst]
            self.isend(dst, max(1, nbytes), value, tag + shift)
            received[src] = yield self.recv(src, tag + shift)
        return received

    def __repr__(self) -> str:
        return f"Communicator(rank={self.rank}/{self.size})"
