"""Simulated MPI-style SPMD substrate — the paper's comparison baseline.

The paper ports each application to MPI "to provide a reference"; this
package provides the equivalent over the same simulated cluster, so the
AllScale-vs-MPI comparison in the benchmarks shares one cost model:

``comm``
    ranks (one per node, driving all its cores), point-to-point
    send/recv with tag matching, and tree-based collectives (barrier,
    broadcast, allreduce, alltoall) built on the simulated network;
``halo``
    halo-exchange planning and execution for block-decomposed grids;
``program``
    the SPMD job driver: spawn one rank coroutine per node, run to
    completion, collect per-rank results.
"""

from repro.mpi.comm import Communicator, MpiWorld
from repro.mpi.halo import HaloPlan, plan_halo_exchange
from repro.mpi.program import run_spmd

__all__ = [
    "Communicator",
    "MpiWorld",
    "HaloPlan",
    "plan_halo_exchange",
    "run_spmd",
]
