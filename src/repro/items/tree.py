"""Balanced binary tree data item with selectable region scheme.

The paper's Fig. 4b/4c present the same tree structure under two different
region schemes — flexible include/exclude sub-trees and blocked bitmasks.
:class:`BalancedTree` supports both: pass ``scheme="flexible"`` (default)
or ``scheme="blocked"`` with a root-tree height.  The choice trades
representation cost against distribution flexibility; the ablation
benchmark ``benchmarks/test_ablation_regions.py`` measures exactly this
trade-off.

Nodes are addressed in binary-heap order (root = 1), matching
:mod:`repro.regions.tree`.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.items.base import DataItem, Fragment, FragmentPayload
from repro.regions.base import Region
from repro.regions.blocked_tree import BlockedTreeGeometry, BlockedTreeRegion
from repro.regions.tree import TreeGeometry, TreeRegion


class BalancedTree(DataItem):
    """Complete binary tree of ``depth`` levels holding one value per node."""

    def __init__(
        self,
        depth: int,
        scheme: str = "flexible",
        root_height: int | None = None,
        bytes_per_node: int = 8,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        self.geometry = TreeGeometry(depth)
        if scheme not in ("flexible", "blocked"):
            raise ValueError(f"unknown region scheme {scheme!r}")
        self.scheme = scheme
        self._nbytes = bytes_per_node
        if scheme == "blocked":
            if root_height is None:
                root_height = max(1, depth // 2)
            self.blocked_geometry: BlockedTreeGeometry | None = (
                BlockedTreeGeometry(depth=depth, root_height=root_height)
            )
            self._full: Region = BlockedTreeRegion.full(self.blocked_geometry).interned()
        else:
            self.blocked_geometry = None
            self._full = TreeRegion.full(self.geometry).interned()

    @property
    def depth(self) -> int:
        return self.geometry.depth

    @property
    def full_region(self) -> Region:
        return self._full

    @property
    def bytes_per_element(self) -> int:
        return self._nbytes

    # -- region helpers in the item's own scheme -------------------------------

    def subtree_region(self, root: int) -> Region:
        """Region covering the sub-tree rooted at ``root``.

        Under the blocked scheme the sub-tree must align with the blocking
        (the whole root tree, or whole bottom blocks); that loss of
        flexibility is the point of the scheme.
        """
        if self.scheme == "flexible":
            return TreeRegion.of_subtrees(self.geometry, [root])
        geometry = self.blocked_geometry
        assert geometry is not None
        level = root.bit_length()
        if level == geometry.root_height + 1:
            block = root - geometry.num_blocks + 1
            return BlockedTreeRegion.of_blocks(geometry, [block])
        if root == 1:
            return BlockedTreeRegion.full(geometry)
        raise ValueError(
            f"sub-tree at node {root} does not align with the blocked scheme"
        )

    def nodes_region(self, nodes: Iterable[int]) -> Region:
        if self.scheme == "flexible":
            return TreeRegion.of_nodes(self.geometry, nodes)
        raise ValueError("blocked scheme cannot address individual nodes")

    def decompose(self, parts: int) -> list[Region]:
        """Split the tree into ``parts`` regions of whole sub-trees.

        Bottom sub-trees at a level with at least ``parts`` of them are
        dealt out round-robin; the small top tree joins part 0.  Under the
        blocked scheme the split level is fixed by the blocking.
        """
        if parts < 1:
            raise ValueError(f"parts must be >= 1, got {parts}")
        if self.scheme == "blocked":
            geometry = self.blocked_geometry
            assert geometry is not None
            groups: list[list[int]] = [[] for _ in range(parts)]
            for block in range(1, geometry.num_blocks + 1):
                groups[(block - 1) % parts].append(block)
            out: list[Region] = [
                BlockedTreeRegion.of_blocks(
                    geometry, blocks, include_root_tree=(k == 0)
                )
                for k, blocks in enumerate(groups)
            ]
            return out
        level = 1
        while (1 << (level - 1)) < parts and level < self.depth:
            level += 1
        roots = list(range(1 << (level - 1), 1 << level))
        groups = [[] for _ in range(parts)]
        for k, root in enumerate(roots):
            groups[k % parts].append(root)
        regions: list[Region] = []
        top = TreeRegion.full(self.geometry)
        for root in roots:
            top = top.difference(TreeRegion.of_subtrees(self.geometry, [root]))
        for k, group in enumerate(groups):
            region = TreeRegion.of_subtrees(self.geometry, group)
            if k == 0:
                region = region.union(top)
            regions.append(region)
        return regions

    def new_fragment(
        self, region: Region, functional: bool = True
    ) -> "TreeFragment":
        return TreeFragment(self, region, functional)


class TreeFragment(Fragment):
    """Node values for a region of the tree, held in one address space."""

    def __init__(self, item: BalancedTree, region: Region, functional: bool) -> None:
        super().__init__(item, region, functional)
        self.tree: BalancedTree = item
        self._values: dict[int, Any] = {}

    def get(self, node: int) -> Any:
        self._check_access(node)
        return self._values.get(node)

    def set(self, node: int, value: Any) -> None:
        self._check_access(node)
        self._values[node] = value

    def _check_access(self, node: int) -> None:
        if not self.functional:
            raise RuntimeError("virtual fragments carry no values")
        if not self.region.contains(node):
            raise KeyError(f"node {node} not held by this fragment")

    def resize(self, new_region: Region) -> None:
        new_region = self.item.full_region.intersect(new_region)
        if self.functional:
            self._values = {
                n: v for n, v in self._values.items() if new_region.contains(n)
            }
        self._region = new_region

    def extract(self, region: Region) -> FragmentPayload:
        part = self.region.intersect(region)
        data = None
        if self.functional:
            data = {n: self._values.get(n) for n in part.elements()}
        return FragmentPayload(
            region=part, nbytes=self.item.region_bytes(part), data=data
        )

    def insert(self, payload: FragmentPayload) -> None:
        incoming = self.item.full_region.intersect(payload.region)
        self._region = self.region.union(incoming)
        if self.functional:
            if payload.data is None:
                raise ValueError("functional fragment received a virtual payload")
            self._values.update(payload.data)
