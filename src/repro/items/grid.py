"""N-dimensional grid data item with box-set regions (Fig. 4a).

The façade mirrors the ``Grid<T, D>`` type of the AllScale API used in the
paper's stencil example (Fig. 6b): element access by coordinate, rectangular
sub-views for bulk kernels.  Fragments store one NumPy array per disjoint
box of their region; ``gather``/``scatter`` assemble and distribute
rectangular windows that may span several stored boxes, which is what the
stencil's halo reads need.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.items.base import DataItem, Fragment, FragmentPayload
from repro.regions.base import Region
from repro.regions.box import Box, BoxSetRegion


class Grid(DataItem):
    """Dense N-dimensional grid of fixed shape."""

    def __init__(
        self,
        shape: Sequence[int],
        dtype: np.dtype | type = np.float64,
        name: str | None = None,
        element_bytes: int | None = None,
    ) -> None:
        """``element_bytes`` overrides the wire/storage weight of one element
        (multi-component cells, particle populations, ...); functional
        storage still uses ``dtype``."""
        super().__init__(name)
        self.shape = tuple(int(s) for s in shape)
        if not self.shape or any(s < 1 for s in self.shape):
            raise ValueError(f"invalid grid shape {self.shape}")
        self.dtype = np.dtype(dtype)
        if element_bytes is not None and element_bytes < 1:
            raise ValueError(f"element_bytes must be >= 1, got {element_bytes}")
        self._element_bytes = element_bytes
        self._full = BoxSetRegion.full_grid(self.shape).interned()

    @property
    def dims(self) -> int:
        return len(self.shape)

    @property
    def full_region(self) -> BoxSetRegion:
        return self._full

    @property
    def bytes_per_element(self) -> int:
        if self._element_bytes is not None:
            return self._element_bytes
        return self.dtype.itemsize

    def box(self, lo: Sequence[int], hi: Sequence[int]) -> BoxSetRegion:
        """Region for the box ``[lo, hi)``, clamped to the grid."""
        return BoxSetRegion.single(lo, hi).intersect(self._full)

    def decompose(self, parts: int) -> list[BoxSetRegion]:
        """Recursive-bisection block decomposition into ``parts`` regions."""
        from repro.regions.box import grid_block_decomposition

        return [
            BoxSetRegion((box,))
            for box in grid_block_decomposition(self.shape, parts)
        ]

    def new_fragment(
        self, region: Region, functional: bool = True
    ) -> "GridFragment":
        return GridFragment(self, region, functional)


class GridFragment(Fragment):
    """Region of a grid materialized in one address space."""

    def __init__(self, item: Grid, region: Region, functional: bool) -> None:
        if not isinstance(region, BoxSetRegion):
            raise TypeError(
                f"Grid fragments need BoxSetRegion, got {type(region).__name__}"
            )
        super().__init__(item, region, functional)
        self.grid: Grid = item
        self._arrays: dict[Box, np.ndarray] = {}
        if functional:
            for box in self.region.boxes:  # type: ignore[attr-defined]
                self._arrays[box] = np.zeros(box.widths(), dtype=item.dtype)

    # -- element access ----------------------------------------------------------

    def _locate(self, coord: tuple[int, ...]) -> tuple[Box, tuple[int, ...]]:
        for box, _ in self._arrays.items():
            if box.contains(coord):
                offset = tuple(c - l for c, l in zip(coord, box.lo))
                return box, offset
        raise KeyError(f"coordinate {coord} not held by this fragment")

    def get(self, coord: Sequence[int]):
        self._need_functional()
        box, offset = self._locate(tuple(coord))
        return self._arrays[box][offset]

    def set(self, coord: Sequence[int], value) -> None:
        self._need_functional()
        box, offset = self._locate(tuple(coord))
        self._arrays[box][offset] = value

    # -- bulk window access --------------------------------------------------------

    def gather(self, window: Box) -> np.ndarray:
        """Copy the rectangular ``window`` out as one contiguous array.

        The window must be fully covered by the fragment's region; it may
        span several stored boxes.
        """
        self._need_functional()
        target = BoxSetRegion((window,))
        if not self.region.covers(target):
            raise KeyError(f"window {window} not covered by fragment region")
        out = np.empty(window.widths(), dtype=self.grid.dtype)
        for box, array in self._arrays.items():
            cut = box.intersect(window)
            if cut.is_empty():
                continue
            src = tuple(
                slice(cl - bl, ch - bl)
                for cl, ch, bl in zip(cut.lo, cut.hi, box.lo)
            )
            dst = tuple(
                slice(cl - wl, ch - wl)
                for cl, ch, wl in zip(cut.lo, cut.hi, window.lo)
            )
            out[dst] = array[src]
        return out

    def scatter(self, window: Box, values: np.ndarray) -> None:
        """Write a contiguous array back into the stored boxes.

        Only the parts of ``window`` the fragment actually holds are
        written; out-of-fragment parts are ignored (callers subtract halos
        themselves when that matters).
        """
        self._need_functional()
        values = np.asarray(values, dtype=self.grid.dtype)
        if values.shape != window.widths():
            raise ValueError(
                f"array shape {values.shape} does not match window "
                f"{window.widths()}"
            )
        for box, array in self._arrays.items():
            cut = box.intersect(window)
            if cut.is_empty():
                continue
            src = tuple(
                slice(cl - wl, ch - wl)
                for cl, ch, wl in zip(cut.lo, cut.hi, window.lo)
            )
            dst = tuple(
                slice(cl - bl, ch - bl)
                for cl, ch, bl in zip(cut.lo, cut.hi, box.lo)
            )
            array[dst] = values[src]

    def fill(self, fn) -> None:
        """Set every held element to ``fn(coord)`` (initialization helper)."""
        self._need_functional()
        for box, array in self._arrays.items():
            it = np.nditer(array, flags=["multi_index"], op_flags=["writeonly"])
            for cell in it:
                coord = tuple(l + o for l, o in zip(box.lo, it.multi_index))
                cell[...] = fn(coord)

    # -- manager operations -----------------------------------------------------------

    def resize(self, new_region: Region) -> None:
        new_region = self.item.full_region.intersect(new_region)
        if not isinstance(new_region, BoxSetRegion):  # pragma: no cover
            raise TypeError("resize needs a BoxSetRegion")
        if self.functional:
            old_arrays = self._arrays
            self._arrays = {}
            for box in new_region.boxes:
                array = np.zeros(box.widths(), dtype=self.grid.dtype)
                self._arrays[box] = array
            # copy retained data from the old storage
            for old_box, old_array in old_arrays.items():
                for new_box, new_array in self._arrays.items():
                    cut = old_box.intersect(new_box)
                    if cut.is_empty():
                        continue
                    src = tuple(
                        slice(cl - ol, ch - ol)
                        for cl, ch, ol in zip(cut.lo, cut.hi, old_box.lo)
                    )
                    dst = tuple(
                        slice(cl - nl, ch - nl)
                        for cl, ch, nl in zip(cut.lo, cut.hi, new_box.lo)
                    )
                    new_array[dst] = old_array[src]
        self._region = new_region

    def extract(self, region: Region) -> FragmentPayload:
        part = self.region.intersect(region)
        data = None
        if self.functional:
            data = [
                (box, self.gather(box)) for box in part.boxes  # type: ignore[attr-defined]
            ]
        return FragmentPayload(
            region=part, nbytes=self.item.region_bytes(part), data=data
        )

    def insert(self, payload: FragmentPayload) -> None:
        incoming = self.item.full_region.intersect(payload.region)
        grown = self.region.union(incoming)
        self.resize(grown)
        if self.functional:
            if payload.data is None:
                raise ValueError(
                    "functional fragment received a virtual payload"
                )
            for box, array in payload.data:
                self.scatter(box, array)

    # -- helpers -------------------------------------------------------------------------

    def _need_functional(self) -> None:
        if not self.functional:
            raise RuntimeError(
                "virtual fragments carry no values; build the item in "
                "functional mode for data access"
            )
