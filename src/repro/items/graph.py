"""Partitioned graph data item.

Graphs complete the data-structure families the paper names ("lists,
trees, graphs, sets, maps, or meshes").  Vertices are addressed by integer
id through 1-D interval regions; a fragment holds the adjacency lists of
the vertices it covers, so distributing the graph means distributing
vertex ranges — the standard 1-D partitioning of distributed graph
processing.

Interops with :mod:`networkx` both ways for construction and for
verification of distributed algorithms (see ``examples/graph_bfs.py``).
"""

from __future__ import annotations

from typing import Iterable

from repro.items.base import DataItem, Fragment, FragmentPayload
from repro.regions.base import Region
from repro.regions.interval import IntervalRegion, split_interval_region


class PartitionedGraph(DataItem):
    """A graph over vertices ``0..num_vertices-1``; element = one vertex."""

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[tuple[int, int]] = (),
        undirected: bool = True,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if num_vertices < 1:
            raise ValueError(f"num_vertices must be >= 1, got {num_vertices}")
        self.num_vertices = num_vertices
        self.undirected = undirected
        adjacency: list[list[int]] = [[] for _ in range(num_vertices)]
        edge_count = 0
        for u, v in edges:
            self._check_vertex(u)
            self._check_vertex(v)
            adjacency[u].append(v)
            if undirected and u != v:
                adjacency[v].append(u)
            edge_count += 1
        self.adjacency: tuple[tuple[int, ...], ...] = tuple(
            tuple(sorted(set(neighbors))) for neighbors in adjacency
        )
        self.num_edges = edge_count
        self._full = IntervalRegion.span(0, num_vertices).interned()
        degree_sum = sum(len(n) for n in self.adjacency)
        # per-vertex storage: id + neighbor list
        self._vertex_bytes = max(16, 16 + 8 * degree_sum // num_vertices)

    def _check_vertex(self, vertex: int) -> int:
        if not (0 <= vertex < self.num_vertices):
            raise ValueError(
                f"vertex {vertex} out of range 0..{self.num_vertices - 1}"
            )
        return vertex

    # -- item interface -----------------------------------------------------------

    @property
    def full_region(self) -> IntervalRegion:
        return self._full

    @property
    def bytes_per_element(self) -> int:
        return self._vertex_bytes

    def vertex_region(self, vertices: Iterable[int]) -> IntervalRegion:
        return IntervalRegion.of_points(
            self._check_vertex(v) for v in vertices
        )

    def range_region(self, lo: int, hi: int) -> IntervalRegion:
        return IntervalRegion.span(lo, hi).intersect(self._full)

    def decompose(self, parts: int) -> list[Region]:
        return list(split_interval_region(self._full, parts))

    def new_fragment(
        self, region: Region, functional: bool = True
    ) -> "GraphFragment":
        return GraphFragment(self, region, functional)

    # -- networkx interop -------------------------------------------------------------

    @classmethod
    def from_networkx(cls, graph, name: str | None = None) -> "PartitionedGraph":
        """Build from a networkx graph with integer nodes ``0..n-1``."""
        nodes = sorted(graph.nodes)
        if nodes != list(range(len(nodes))):
            raise ValueError(
                "networkx graph must use contiguous integer nodes 0..n-1 "
                "(relabel with networkx.convert_node_labels_to_integers)"
            )
        return cls(
            len(nodes),
            graph.edges,
            undirected=not graph.is_directed(),
            name=name,
        )

    def to_networkx(self):
        import networkx as nx

        graph = nx.Graph() if self.undirected else nx.DiGraph()
        graph.add_nodes_from(range(self.num_vertices))
        for u, neighbors in enumerate(self.adjacency):
            for v in neighbors:
                graph.add_edge(u, v)
        return graph


class GraphFragment(Fragment):
    """Adjacency lists of the vertices a fragment covers."""

    def __init__(
        self, item: PartitionedGraph, region: Region, functional: bool
    ) -> None:
        super().__init__(item, region, functional)
        self.graph: PartitionedGraph = item
        self._adjacency: dict[int, tuple[int, ...]] = {}
        if functional:
            for vertex in self.region.elements():
                self._adjacency[vertex] = item.adjacency[vertex]

    def neighbors(self, vertex: int) -> tuple[int, ...]:
        if not self.functional:
            raise RuntimeError("virtual fragments carry no adjacency")
        try:
            return self._adjacency[vertex]
        except KeyError:
            raise KeyError(
                f"vertex {vertex} not held by this fragment"
            ) from None

    def local_vertices(self) -> Iterable[int]:
        return self._adjacency.keys() if self.functional else self.region.elements()

    def degree(self, vertex: int) -> int:
        return len(self.neighbors(vertex))

    # -- manager operations --------------------------------------------------------

    def resize(self, new_region: Region) -> None:
        new_region = self.item.full_region.intersect(new_region)
        if self.functional:
            added = new_region.difference(self.region)
            self._adjacency = {
                v: n for v, n in self._adjacency.items()
                if new_region.contains(v)
            }
            for vertex in added.elements():
                self._adjacency[vertex] = self.graph.adjacency[vertex]
        self._region = new_region

    def extract(self, region: Region) -> FragmentPayload:
        part = self.region.intersect(region)
        data = None
        if self.functional:
            data = {v: self._adjacency[v] for v in part.elements()}
        return FragmentPayload(
            region=part, nbytes=self.item.region_bytes(part), data=data
        )

    def insert(self, payload: FragmentPayload) -> None:
        incoming = self.item.full_region.intersect(payload.region)
        self._region = self.region.union(incoming)
        if self.functional:
            if payload.data is None:
                raise ValueError("functional fragment received a virtual payload")
            self._adjacency.update(payload.data)
