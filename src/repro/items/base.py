"""Façade/fragment interface shared by all data item implementations.

The runtime's data item manager (paper §3.2) manipulates fragments through
exactly this interface: grow or shrink a fragment (``resize``), cut data
out for an outgoing transfer (``extract``), and splice received data in
(``insert``).  The façade classes are what application code holds; they
double as factories for fragments and for model-level declarations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from repro.model.elements import DataItemDecl
from repro.regions.base import Region
from repro.regions.kernel import get_kernel
from repro.util.ids import fresh_id


@dataclass
class FragmentPayload:
    """Serialized slice of a fragment, in flight between address spaces.

    ``data`` is ``None`` for virtual fragments — the byte count still
    reflects what the wire would carry, so the network cost model is
    unaffected by the mode.
    """

    region: Region
    nbytes: int
    data: Any = None


class DataItem(ABC):
    """Façade base: identity, element universe, fragment factory."""

    def __init__(self, name: str | None = None) -> None:
        self.name = name if name is not None else fresh_id("item")
        self._empty_region: Region | None = None

    @property
    @abstractmethod
    def full_region(self) -> Region:
        """Region covering ``elems(d)``."""

    @property
    @abstractmethod
    def bytes_per_element(self) -> int:
        """Wire/storage size of one element — drives the network cost model."""

    @abstractmethod
    def new_fragment(self, region: Region, functional: bool = True) -> "Fragment":
        """Create a fragment holding ``region`` in some address space."""

    def empty_region(self) -> Region:
        # requested constantly (requirement defaults, share accumulators);
        # computed once and pinned to the kernel's interned representative
        if self._empty_region is None:
            full = get_kernel().intern(self.full_region)
            self._empty_region = full.difference(full)
        return self._empty_region

    def decompose(self, parts: int) -> list[Region]:
        """Split ``elems(d)`` into ``parts`` near-equal regions.

        Used by the scheduling policy as the even-spreading hint during the
        initialization phase (paper §3.2); concrete items override with a
        structure-aware decomposition.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not define a decomposition"
        )

    def declaration(self) -> DataItemDecl:
        """Model-level declaration (Def. 2.1) for this façade."""
        return DataItemDecl(self.full_region, name=self.name)

    def region_bytes(self, region: Region) -> int:
        """Bytes needed to hold/transfer ``region`` of this item."""
        return region.size() * self.bytes_per_element

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class Fragment(ABC):
    """Runtime-side storage for a region of a data item in one address space."""

    def __init__(self, item: DataItem, region: Region, functional: bool) -> None:
        self.item = item
        self._region = item.full_region.intersect(region)
        self.functional = functional

    @property
    def region(self) -> Region:
        """The region of elements this fragment currently maintains."""
        return self._region

    @property
    def nbytes(self) -> int:
        return self.item.region_bytes(self._region)

    # -- the three manager operations (resizing, import, export; §3.2) ------

    @abstractmethod
    def resize(self, new_region: Region) -> None:
        """Grow/shrink to ``new_region``; retained elements keep their values."""

    @abstractmethod
    def extract(self, region: Region) -> FragmentPayload:
        """Serialize ``region ∩ self.region`` for an outgoing transfer."""

    @abstractmethod
    def insert(self, payload: FragmentPayload) -> None:
        """Splice a received payload in; grows the fragment's region."""

    def covers(self, region: Region) -> bool:
        return self._region.covers(region)

    def __repr__(self) -> str:
        mode = "functional" if self.functional else "virtual"
        return (
            f"{type(self).__name__}({self.item.name!r}, "
            f"|region|={self._region.size()}, {mode})"
        )
