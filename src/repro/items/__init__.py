"""Data item implementations (paper §3.1).

Every data item implementation provides the three components of Fig. 4:

* a **façade** — the user-facing type (these classes), exposing
  data-structure-specific operations;
* a **fragment** — the runtime's view, capable of holding an arbitrary
  region of the item's elements inside one address space, and of being
  resized, split, serialized, and merged as data migrates;
* a **region** type — the addressing scheme (see :mod:`repro.regions`).

All fragments are *dual-mode*: **functional** fragments carry real values
(NumPy storage) and are used by tests and examples; **virtual** fragments
carry only regions and byte-counts and are used by the full-scale benchmark
sweeps, where materializing 20,000²-per-node grids would be pointless — the
placement, locking, index, and migration code paths are identical in both
modes.

Provided items:

``ScalarItem``
    a single addressable value;
``Grid``
    the N-dimensional grid of the paper's stencil/iPiC3D apps, with
    box-set regions (Fig. 4a);
``BalancedTree``
    a complete binary tree with selectable region scheme — flexible
    include/exclude sub-trees (Fig. 4b) or blocked bitmask (Fig. 4c);
``KDTreeItem``
    the kd-tree used by the two-point-correlation app, layered over the
    balanced-tree addressing.
"""

from repro.items.base import DataItem, Fragment, FragmentPayload
from repro.items.scalar import ScalarItem, ScalarFragment
from repro.items.grid import Grid, GridFragment
from repro.items.tree import BalancedTree, TreeFragment
from repro.items.kdtree import (
    KDTreeItem,
    KDTreeFragment,
    KDTreeStructure,
    build_kdtree,
    synthetic_kdtree,
)
from repro.items.hashmap import HashMapItem, HashMapFragment
from repro.items.graph import PartitionedGraph, GraphFragment

__all__ = [
    "DataItem",
    "Fragment",
    "FragmentPayload",
    "ScalarItem",
    "ScalarFragment",
    "Grid",
    "GridFragment",
    "BalancedTree",
    "TreeFragment",
    "KDTreeItem",
    "KDTreeFragment",
    "KDTreeStructure",
    "build_kdtree",
    "synthetic_kdtree",
    "HashMapItem",
    "HashMapFragment",
    "PartitionedGraph",
    "GraphFragment",
]
