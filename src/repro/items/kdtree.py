"""kd-tree data item for the two-point-correlation application (paper §4.1).

TPC counts, for each query point, the number of points within a given
radius in 7-D space, via a pruned kd-tree traversal.  The kd-tree here is a
*complete* binary tree of configurable depth (internal nodes carry split
plane + bounding box + subtree count, leaves carry point buckets), which
maps directly onto the balanced-tree addressing of
:mod:`repro.regions.tree` — so sub-trees can be distributed across address
spaces exactly like any other tree data item.

Two constructions are provided:

* :func:`build_kdtree` — functional: median splits over real points, leaf
  buckets store the points; query results are exact and testable against
  brute force;
* :func:`synthetic_kdtree` — virtual: the structure (boxes, counts) for a
  uniform point population of arbitrary size, without materializing points.
  Traversals visit the same nodes a real uniform tree would, which is all
  the cost model needs; leaf tallies are estimated from box/ball overlap.

The per-node classification primitive :meth:`KDTreeStructure.classify`
drives both the sequential reference query and the distributed task-based
traversal of :mod:`repro.apps.tpc`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence

import numpy as np

from repro.items.base import DataItem, Fragment, FragmentPayload
from repro.regions.base import Region
from repro.regions.tree import TreeGeometry, TreeRegion


class Visit(Enum):
    """Outcome of examining one node during a range-count traversal."""

    PRUNE_OUT = "prune_out"  # box entirely outside the ball: contribute 0
    PRUNE_IN = "prune_in"  # box entirely inside: contribute subtree count
    SCAN_LEAF = "scan_leaf"  # leaf partially overlapping: scan its bucket
    RECURSE = "recurse"  # internal node partially overlapping: descend


@dataclass
class QueryStats:
    """Work performed by one range-count query."""

    count: float = 0.0
    visited_nodes: int = 0
    scanned_points: float = 0.0


class KDTreeStructure:
    """Complete kd-tree in heap layout (node 1 is the root)."""

    def __init__(
        self,
        depth: int,
        dims: int,
        bbox_lo: np.ndarray,
        bbox_hi: np.ndarray,
        counts: np.ndarray,
        leaf_points: dict[int, np.ndarray] | None,
    ) -> None:
        self.geometry = TreeGeometry(depth)
        self.dims = dims
        self.bbox_lo = bbox_lo  # shape (num_nodes + 1, dims); row 0 unused
        self.bbox_hi = bbox_hi
        self.counts = counts  # points in each node's subtree
        self.leaf_points = leaf_points  # None => virtual structure

    @property
    def depth(self) -> int:
        return self.geometry.depth

    @property
    def num_nodes(self) -> int:
        return self.geometry.num_nodes

    @property
    def total_points(self) -> float:
        return float(self.counts[1])

    def is_leaf(self, node: int) -> bool:
        return self.geometry.is_leaf(node)

    # -- geometric predicates ------------------------------------------------------

    def min_dist2(self, node: int, q: np.ndarray) -> float:
        """Squared distance from ``q`` to the node's bounding box."""
        d = np.maximum(self.bbox_lo[node] - q, 0.0)
        d = np.maximum(d, q - self.bbox_hi[node])
        return float(np.dot(d, d))

    def max_dist2(self, node: int, q: np.ndarray) -> float:
        """Squared distance from ``q`` to the farthest box corner."""
        d = np.maximum(np.abs(q - self.bbox_lo[node]), np.abs(q - self.bbox_hi[node]))
        return float(np.dot(d, d))

    def classify(self, node: int, q: np.ndarray, radius: float) -> Visit:
        r2 = radius * radius
        if self.min_dist2(node, q) > r2:
            return Visit.PRUNE_OUT
        if self.max_dist2(node, q) <= r2:
            return Visit.PRUNE_IN
        return Visit.SCAN_LEAF if self.is_leaf(node) else Visit.RECURSE

    def leaf_tally(self, node: int, q: np.ndarray, radius: float) -> float:
        """Points of leaf ``node`` within the ball (exact or estimated)."""
        if self.leaf_points is not None:
            points = self.leaf_points.get(node)
            if points is None or len(points) == 0:
                return 0.0
            delta = points - q
            return float(np.count_nonzero(np.einsum("ij,ij->i", delta, delta)
                                           <= radius * radius))
        # virtual: estimate by the fraction of the box inside the ball's
        # enclosing cube — deterministic and cheap; only the *cost* of the
        # scan matters for the benchmarks
        lo, hi = self.bbox_lo[node], self.bbox_hi[node]
        widths = np.maximum(hi - lo, 1e-300)
        overlap = np.minimum(hi, q + radius) - np.maximum(lo, q - radius)
        frac = float(np.prod(np.clip(overlap / widths, 0.0, 1.0)))
        return float(self.counts[node]) * frac * 0.5

    def query(self, q: Sequence[float], radius: float) -> QueryStats:
        """Sequential pruned range count from the root."""
        return self.query_from(1, q, radius)

    def query_from(
        self, start: int, q: Sequence[float], radius: float
    ) -> QueryStats:
        """Pruned range count restricted to the sub-tree rooted at ``start``.

        The unit of work the distributed TPC traversal ships to the
        process owning that sub-tree.
        """
        q = np.asarray(q, dtype=np.float64)
        stats = QueryStats()
        stack = [start]
        while stack:
            node = stack.pop()
            stats.visited_nodes += 1
            kind = self.classify(node, q, radius)
            if kind is Visit.PRUNE_OUT:
                continue
            if kind is Visit.PRUNE_IN:
                stats.count += float(self.counts[node])
            elif kind is Visit.SCAN_LEAF:
                stats.count += self.leaf_tally(node, q, radius)
                stats.scanned_points += float(self.counts[node])
            else:
                stack.extend(self.geometry.children(node))
        return stats

    def brute_force_count(self, q: Sequence[float], radius: float) -> int:
        """Exact count over all leaf buckets (functional trees only)."""
        if self.leaf_points is None:
            raise RuntimeError("virtual kd-trees hold no points")
        q = np.asarray(q, dtype=np.float64)
        total = 0
        for points in self.leaf_points.values():
            if len(points) == 0:
                continue
            delta = points - q
            total += int(
                np.count_nonzero(
                    np.einsum("ij,ij->i", delta, delta) <= radius * radius
                )
            )
        return total


def build_kdtree(points: np.ndarray, depth: int) -> KDTreeStructure:
    """Median-split kd-tree over real points (functional mode).

    Splits along the widest axis of each node's point population; leaves
    are at level ``depth`` and hold the surviving buckets.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be a 2-D array (n, dims)")
    dims = points.shape[1]
    geometry = TreeGeometry(depth)
    size = geometry.num_nodes + 1
    bbox_lo = np.zeros((size, dims))
    bbox_hi = np.zeros((size, dims))
    counts = np.zeros(size, dtype=np.int64)
    leaf_points: dict[int, np.ndarray] = {}

    def rec(node: int, pts: np.ndarray) -> None:
        counts[node] = len(pts)
        if len(pts):
            bbox_lo[node] = pts.min(axis=0)
            bbox_hi[node] = pts.max(axis=0)
        if geometry.is_leaf(node):
            leaf_points[node] = pts
            return
        if len(pts) == 0:
            left = right = pts
        else:
            axis = int(np.argmax(bbox_hi[node] - bbox_lo[node]))
            order = np.argsort(pts[:, axis], kind="stable")
            half = len(pts) // 2
            left = pts[order[:half]]
            right = pts[order[half:]]
        rec(2 * node, left)
        rec(2 * node + 1, right)

    rec(1, points)
    return KDTreeStructure(depth, dims, bbox_lo, bbox_hi, counts, leaf_points)


def synthetic_kdtree(
    total_points: float,
    depth: int,
    low: Sequence[float],
    high: Sequence[float],
) -> KDTreeStructure:
    """Virtual kd-tree for ``total_points`` uniform points in a box.

    Boxes are midpoint splits along the widest axis (what median splits of
    a uniform population converge to); counts halve per level.  No points
    are materialized, so paper-scale trees (2²⁹ points) cost only the
    structure (O(2^depth) floats).
    """
    low = np.asarray(low, dtype=np.float64)
    high = np.asarray(high, dtype=np.float64)
    if low.shape != high.shape or low.ndim != 1:
        raise ValueError("low/high must be 1-D arrays of equal length")
    dims = len(low)
    geometry = TreeGeometry(depth)
    size = geometry.num_nodes + 1
    bbox_lo = np.zeros((size, dims))
    bbox_hi = np.zeros((size, dims))
    counts = np.zeros(size, dtype=np.float64)
    bbox_lo[1] = low
    bbox_hi[1] = high
    counts[1] = total_points
    for node in range(1, geometry.num_nodes + 1):
        if geometry.is_leaf(node):
            continue
        axis = int(np.argmax(bbox_hi[node] - bbox_lo[node]))
        mid = 0.5 * (bbox_lo[node, axis] + bbox_hi[node, axis])
        for child, new_lo, new_hi in (
            (2 * node, None, mid),
            (2 * node + 1, mid, None),
        ):
            bbox_lo[child] = bbox_lo[node]
            bbox_hi[child] = bbox_hi[node]
            if new_lo is not None:
                bbox_lo[child, axis] = new_lo
            if new_hi is not None:
                bbox_hi[child, axis] = new_hi
            counts[child] = counts[node] / 2.0
    return KDTreeStructure(depth, dims, bbox_lo, bbox_hi, counts, None)


class KDTreeItem(DataItem):
    """Data item façade wrapping a :class:`KDTreeStructure`.

    The element universe is the tree's node set, addressed with the
    flexible sub-tree scheme of Fig. 4b; the runtime distributes the tree
    by assigning sub-tree regions to processes.
    """

    def __init__(
        self, structure: KDTreeStructure, name: str | None = None
    ) -> None:
        super().__init__(name)
        self.structure = structure
        self._full = TreeRegion.full(structure.geometry).interned()
        # storage per node: split metadata + bbox for internal nodes, the
        # point bucket for leaves; averaged into one per-element figure
        points_bytes = structure.total_points * structure.dims * 8
        meta_bytes = structure.num_nodes * (2 * structure.dims + 2) * 8
        self._bytes_per_node = max(
            1, int((points_bytes + meta_bytes) / structure.num_nodes)
        )

    @property
    def full_region(self) -> TreeRegion:
        return self._full

    @property
    def bytes_per_element(self) -> int:
        return self._bytes_per_node

    @property
    def geometry(self) -> TreeGeometry:
        return self.structure.geometry

    def subtree_region(self, root: int) -> TreeRegion:
        return TreeRegion.of_subtrees(self.geometry, [root])

    def node_region(self, node: int) -> TreeRegion:
        return TreeRegion.of_nodes(self.geometry, [node])

    def decompose(self, parts: int) -> list[Region]:
        """Whole-sub-tree decomposition; top tree joins part 0.

        Matches how the TPC workload distributes its kd-tree: each process
        owns a contiguous band of sub-trees, so traversals stay local until
        they cross a sub-tree boundary.
        """
        if parts < 1:
            raise ValueError(f"parts must be >= 1, got {parts}")
        geometry = self.geometry
        level = 1
        while (1 << (level - 1)) < parts and level < geometry.depth:
            level += 1
        roots = list(range(1 << (level - 1), 1 << level))
        groups: list[list[int]] = [[] for _ in range(parts)]
        # contiguous bands (not round-robin): keeps sibling sub-trees —
        # which queries visit together — on the same process
        per = len(roots) / parts
        for k, root in enumerate(roots):
            groups[min(parts - 1, int(k / per))].append(root)
        top = TreeRegion.full(geometry)
        for root in roots:
            top = top.difference(TreeRegion.of_subtrees(geometry, [root]))
        regions: list[Region] = []
        for k, group in enumerate(groups):
            region = TreeRegion.of_subtrees(geometry, group)
            if k == 0:
                region = region.union(top)
            regions.append(region)
        return regions

    def new_fragment(
        self, region: Region, functional: bool = True
    ) -> "KDTreeFragment":
        return KDTreeFragment(self, region, functional)


class KDTreeFragment(Fragment):
    """Held region of the kd-tree; values live in the shared structure.

    The structure arrays are immutable after construction (TPC is a
    read-only workload), so fragments only track *which* nodes an address
    space holds — extraction/insertion move region membership and account
    bytes, matching what the real runtime would ship.
    """

    def __init__(self, item: KDTreeItem, region: Region, functional: bool) -> None:
        super().__init__(item, region, functional)
        self.kdtree: KDTreeItem = item

    def can_visit(self, node: int) -> bool:
        """Whether this fragment holds ``node`` (traversal locality test)."""
        return self.region.contains(node)

    def resize(self, new_region: Region) -> None:
        self._region = self.item.full_region.intersect(new_region)

    def extract(self, region: Region) -> FragmentPayload:
        part = self.region.intersect(region)
        return FragmentPayload(
            region=part, nbytes=self.item.region_bytes(part), data=None
        )

    def insert(self, payload: FragmentPayload) -> None:
        incoming = self.item.full_region.intersect(payload.region)
        self._region = self.region.union(incoming)
