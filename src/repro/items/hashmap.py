"""Distributed hash map data item.

The paper claims the façade/fragment/region interface covers "sets, and
maps"; this item substantiates that.  The element universe is a fixed set
of *hash buckets* addressed through 1-D interval regions: keys hash to
buckets, bucket ranges partition across address spaces, and all data item
machinery (first-touch allocation, migration, replication, the
hierarchical index) applies unchanged.

The bucket count is the distribution granularity — like choosing the
blocking of Fig. 4c, it trades distribution flexibility for bookkeeping
cost.
"""

from __future__ import annotations

import zlib
from typing import Any, Hashable, Iterable

from repro.items.base import DataItem, Fragment, FragmentPayload
from repro.regions.base import Region
from repro.regions.interval import IntervalRegion, split_interval_region


class HashMapItem(DataItem):
    """Key-value map distributed by key hash over ``num_buckets`` buckets."""

    def __init__(
        self,
        num_buckets: int = 256,
        bytes_per_bucket: int = 1024,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        if bytes_per_bucket < 1:
            raise ValueError("bytes_per_bucket must be >= 1")
        self.num_buckets = num_buckets
        self._bucket_bytes = bytes_per_bucket
        self._full = IntervalRegion.span(0, num_buckets).interned()

    @property
    def full_region(self) -> IntervalRegion:
        return self._full

    @property
    def bytes_per_element(self) -> int:
        return self._bucket_bytes

    # -- key addressing --------------------------------------------------------

    def bucket_of(self, key: Hashable) -> int:
        """Stable (process-independent) bucket of a key."""
        digest = zlib.crc32(repr(key).encode("utf-8"))
        return digest % self.num_buckets

    def key_region(self, keys: Iterable[Hashable]) -> IntervalRegion:
        """Region covering the buckets the given keys live in.

        This is the data requirement of a task touching exactly ``keys``.
        """
        return IntervalRegion.of_points(self.bucket_of(k) for k in keys)

    def decompose(self, parts: int) -> list[Region]:
        return list(split_interval_region(self._full, parts))

    def new_fragment(
        self, region: Region, functional: bool = True
    ) -> "HashMapFragment":
        return HashMapFragment(self, region, functional)


class HashMapFragment(Fragment):
    """Bucket contents held in one address space."""

    def __init__(self, item: HashMapItem, region: Region, functional: bool) -> None:
        super().__init__(item, region, functional)
        self.map: HashMapItem = item
        self._buckets: dict[int, dict[Hashable, Any]] = {}

    # -- map operations ---------------------------------------------------------

    def _bucket_for(self, key: Hashable) -> dict[Hashable, Any]:
        if not self.functional:
            raise RuntimeError("virtual fragments carry no values")
        bucket = self.map.bucket_of(key)
        if not self.region.contains(bucket):
            raise KeyError(
                f"bucket {bucket} of key {key!r} not held by this fragment"
            )
        return self._buckets.setdefault(bucket, {})

    def put(self, key: Hashable, value: Any) -> None:
        self._bucket_for(key)[key] = value

    def get(self, key: Hashable, default: Any = None) -> Any:
        return self._bucket_for(key).get(key, default)

    def delete(self, key: Hashable) -> bool:
        return self._bucket_for(key).pop(key, _MISSING) is not _MISSING

    def local_items(self) -> Iterable[tuple[Hashable, Any]]:
        for bucket in self._buckets.values():
            yield from bucket.items()

    def local_size(self) -> int:
        return sum(len(b) for b in self._buckets.values())

    # -- manager operations --------------------------------------------------------

    def resize(self, new_region: Region) -> None:
        new_region = self.item.full_region.intersect(new_region)
        if self.functional:
            self._buckets = {
                b: kv for b, kv in self._buckets.items()
                if new_region.contains(b)
            }
        self._region = new_region

    def extract(self, region: Region) -> FragmentPayload:
        part = self.region.intersect(region)
        data = None
        if self.functional:
            data = {
                b: dict(kv)
                for b, kv in self._buckets.items()
                if part.contains(b)
            }
        return FragmentPayload(
            region=part, nbytes=self.item.region_bytes(part), data=data
        )

    def insert(self, payload: FragmentPayload) -> None:
        incoming = self.item.full_region.intersect(payload.region)
        self._region = self.region.union(incoming)
        if self.functional:
            if payload.data is None:
                raise ValueError("functional fragment received a virtual payload")
            for bucket, kv in payload.data.items():
                self._buckets.setdefault(bucket, {}).update(kv)


class _Missing:
    __slots__ = ()


_MISSING = _Missing()
