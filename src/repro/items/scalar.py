"""Scalar data item — a single addressable element.

The smallest data structure expressible in the model (the paper notes the
interface covers "simple scalars" up to meshes).  Useful for global
reduction results and as the simplest fixture in tests.  The element
universe is the one-element interval ``[0, 1)``.
"""

from __future__ import annotations

from repro.items.base import DataItem, Fragment, FragmentPayload
from repro.regions.base import Region
from repro.regions.interval import IntervalRegion


class ScalarItem(DataItem):
    """A data item holding exactly one value."""

    def __init__(self, nbytes: int = 8, name: str | None = None) -> None:
        super().__init__(name)
        if nbytes < 1:
            raise ValueError(f"nbytes must be >= 1, got {nbytes}")
        self._nbytes = nbytes
        self._full = IntervalRegion.span(0, 1).interned()

    @property
    def full_region(self) -> IntervalRegion:
        return self._full

    @property
    def bytes_per_element(self) -> int:
        return self._nbytes

    def new_fragment(
        self, region: Region, functional: bool = True
    ) -> "ScalarFragment":
        return ScalarFragment(self, region, functional)


class ScalarFragment(Fragment):
    """Holds the scalar's value (or nothing, when its region is empty)."""

    def __init__(self, item: ScalarItem, region: Region, functional: bool) -> None:
        super().__init__(item, region, functional)
        self.value = None

    def get(self):
        if not self.functional:
            raise RuntimeError("virtual fragments carry no values")
        if self.region.is_empty():
            raise KeyError("fragment does not hold the scalar")
        return self.value

    def set(self, value) -> None:
        if not self.functional:
            raise RuntimeError("virtual fragments carry no values")
        if self.region.is_empty():
            raise KeyError("fragment does not hold the scalar")
        self.value = value

    def resize(self, new_region: Region) -> None:
        new_region = self.item.full_region.intersect(new_region)
        if new_region.is_empty():
            self.value = None
        self._region = new_region

    def extract(self, region: Region) -> FragmentPayload:
        part = self.region.intersect(region)
        data = self.value if (self.functional and not part.is_empty()) else None
        return FragmentPayload(
            region=part, nbytes=self.item.region_bytes(part), data=data
        )

    def insert(self, payload: FragmentPayload) -> None:
        incoming = self.item.full_region.intersect(payload.region)
        if incoming.is_empty():
            return
        self._region = self.region.union(incoming)
        if self.functional:
            self.value = payload.data
