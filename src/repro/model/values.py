"""Value semantics for the formal model — the ``val`` function of §2.1.

The paper notes that element values "can be modeled by a function
``val : D × E → X`` … updated along the evolution of the system state" and
omits it for brevity.  This module supplies that omitted layer in an
abstract form: instead of concrete values, every *copy* of an element
carries a **version number** — the count of completed writes to that
element.  Two copies with equal versions hold (by computational
equivalence of variants) equal values, so version agreement is exactly
value coherence without committing to a value domain ``X``.

The tracker mirrors state transitions:

* *(init)* stamps fresh elements with version 0;
* *(migrate)* / *(replicate)* carry versions with the data;
* *(end)* bumps the version of every element the finished variant had
  write-locked, in the memory where the lock lived;
* *(destroy)* forgets the item.

Two derived properties become checkable (see
:func:`check_replica_coherence` and :func:`check_read_freshness`):
coherent replicas — all simultaneous copies of an element agree — and
fresh reads — a starting variant always reads the globally newest
version.  Both follow from the exclusive-writes discipline: a write
requires all other copies gone, so divergent copies can never arise.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.model.architecture import MemorySpace
from repro.model.elements import DataItemDecl
from repro.model.state import RunningEntry, SystemState
from repro.regions.base import Region

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.task import Variant


class CoherenceViolation(AssertionError):
    """Simultaneous copies of an element disagree, or a read was stale."""


class VersionTracker:
    """Per-copy write-version bookkeeping layered over a system state.

    The interpreter does not know about this class; tests (or any other
    driver) call the ``on_*`` hooks alongside the corresponding
    transitions.  :meth:`attach_to` wires the hooks into an interpreter
    run via the transition functions' observable effects.
    """

    def __init__(self) -> None:
        # (memory, item) -> {element: version}
        self._versions: dict[
            tuple[MemorySpace, DataItemDecl], dict[object, int]
        ] = {}

    # -- queries ---------------------------------------------------------------

    def version(
        self, memory: MemorySpace, item: DataItemDecl, element: object
    ) -> int | None:
        return self._versions.get((memory, item), {}).get(element)

    def newest_version(self, item: DataItemDecl, element: object) -> int:
        newest = -1
        for (memory, d), versions in self._versions.items():
            if d is item and element in versions:
                newest = max(newest, versions[element])
        return newest

    def copies_of(self, item: DataItemDecl, element: object) -> list[int]:
        return [
            versions[element]
            for (_m, d), versions in self._versions.items()
            if d is item and element in versions
        ]

    # -- transition hooks --------------------------------------------------------

    def on_init(
        self, memory: MemorySpace, item: DataItemDecl, region: Region
    ) -> None:
        store = self._versions.setdefault((memory, item), {})
        for element in region.elements():
            store[element] = 0

    def on_migrate(
        self,
        source: MemorySpace,
        target: MemorySpace,
        item: DataItemDecl,
        region: Region,
    ) -> None:
        src = self._versions.setdefault((source, item), {})
        dst = self._versions.setdefault((target, item), {})
        for element in region.elements():
            if element in src:
                dst[element] = src.pop(element)

    def on_replicate(
        self,
        source: MemorySpace,
        target: MemorySpace,
        item: DataItemDecl,
        region: Region,
    ) -> None:
        src = self._versions.get((source, item), {})
        dst = self._versions.setdefault((target, item), {})
        for element in region.elements():
            if element in src:
                dst[element] = src[element]

    def on_variant_end(self, state: SystemState, variant: "Variant") -> None:
        """Bump versions for the variant's write set (call *before* the
        end transition releases its locks)."""
        for (v, memory, item), region in state.write_locks.items():
            if v is not variant:
                continue
            store = self._versions.setdefault((memory, item), {})
            for element in region.elements():
                store[element] = store.get(element, 0) + 1

    def on_destroy(self, item: DataItemDecl) -> None:
        for key in [k for k in self._versions if k[1] is item]:
            del self._versions[key]

    def on_start(self, state: SystemState, entry: RunningEntry) -> None:
        """Interpreter hook: enforce freshness/coherence at every start."""
        self.check_read_freshness(state, entry)
        self.check_replica_coherence(state)

    # -- checkable properties ---------------------------------------------------------

    def check_replica_coherence(self, state: SystemState) -> None:
        """All simultaneous copies of every element carry equal versions."""
        for item in state.items:
            seen: dict[object, int] = {}
            for (memory, d), versions in self._versions.items():
                if d is not item:
                    continue
                for element, version in versions.items():
                    if element in seen and seen[element] != version:
                        raise CoherenceViolation(
                            f"element {element!r} of {item.name!r} has "
                            f"divergent copies (versions {seen[element]} "
                            f"and {version})"
                        )
                    seen.setdefault(element, version)

    def check_read_freshness(
        self, state: SystemState, entry: RunningEntry
    ) -> None:
        """A just-started variant sees the newest version of its read set."""
        requirements = entry.variant.requirements
        for item in requirements.items():
            memory = entry.binding.get(item)
            if memory is None:
                continue
            for element in requirements.read(item).elements():
                local = self.version(memory, item, element)
                newest = self.newest_version(item, element)
                if local is None or local < newest:
                    raise CoherenceViolation(
                        f"variant {entry.variant.name!r} reads element "
                        f"{element!r} of {item.name!r} at version {local} "
                        f"while version {newest} exists elsewhere"
                    )

    def check_consistent_with_distribution(self, state: SystemState) -> None:
        """Versioned copies exist exactly where the state says data is."""
        for item in state.items:
            for memory in state.architecture.memories:
                present = set(state.present_region(memory, item).elements())
                tracked = set(self._versions.get((memory, item), {}))
                if present != tracked:
                    missing = present ^ tracked
                    raise CoherenceViolation(
                        f"version tracking diverged from D for "
                        f"{item.name!r} in {memory.name!r}: {missing!r}"
                    )
