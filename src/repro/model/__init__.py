"""Executable formalization of the AllScale application model (paper §2).

This package is the *specification level* of the library: a direct,
executable transcription of Definitions 2.1–2.11 and the transition rules of
Figs. 2 and 3.  It is deliberately unconcerned with performance — system
states are explicit, transitions are enumerable, and executions are
nondeterministic — so that the five model properties of §2.5 can be checked
mechanically (see :mod:`repro.model.properties` and the property-based test
suite).

The *implementation level* — the actual runtime system of paper §3 — lives
in :mod:`repro.runtime` and is constrained by the same rules.

Contents
--------
``elements``      data items and their element universes (Def. 2.1–2.2)
``actions``       the action algebra ``spawn/sync/create/destroy/end`` (Def. 2.5)
``task``          tasks, variants, programs (Def. 2.3–2.4, 2.7)
``execution``     task-local execution states and the ``step`` function (Def. 2.6)
``architecture``  the bipartite compute/memory graph (Def. 2.8)
``state``         the 7-tuple system state (Def. 2.9)
``transitions``   the ten inference rules (Def. 2.10, Figs. 2–3)
``interpreter``   nondeterministic small-step executor producing traces (Def. 2.11)
``properties``    checkable forms of the §2.5 model properties
"""

from repro.model.elements import DataItemDecl
from repro.model.actions import Action, Spawn, Sync, Create, Destroy, End
from repro.model.task import Task, Variant, Program, AccessSpec
from repro.model.architecture import ArchitectureModel, ComputeUnit, MemorySpace
from repro.model.state import SystemState
from repro.model.interpreter import Interpreter, InterpreterConfig, Trace
from repro.model.values import VersionTracker, CoherenceViolation
from repro.model.properties import (
    check_exclusive_writes,
    check_satisfied_requirements,
    check_data_preservation,
    check_single_execution,
    check_terminal,
)

__all__ = [
    "DataItemDecl",
    "Action",
    "Spawn",
    "Sync",
    "Create",
    "Destroy",
    "End",
    "Task",
    "Variant",
    "Program",
    "AccessSpec",
    "ArchitectureModel",
    "ComputeUnit",
    "MemorySpace",
    "SystemState",
    "Interpreter",
    "InterpreterConfig",
    "Trace",
    "VersionTracker",
    "CoherenceViolation",
    "check_exclusive_writes",
    "check_satisfied_requirements",
    "check_data_preservation",
    "check_single_execution",
    "check_terminal",
]
