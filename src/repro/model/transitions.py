"""The ten state transition rules (Definition 2.10, Figs. 2 and 3).

Each rule is a pair of functions: a *guard* that decides whether a concrete
instantiation of the rule is enabled in a given state, and an *apply* that
performs the (atomic) state update.  Task-related rules — *start*, *spawn*,
*sync*, *continue*, *end* — come from Fig. 2; data-related rules —
*create*, *init*, *migrate*, *replicate*, *destroy* — from Fig. 3.

The *progress* rules (spawn/sync/end/create/destroy) share one entry point,
:func:`apply_progress`, because which of them fires is determined by the
action the ``step`` function returns — exactly how the inference rules
dispatch on ``step(v, s)``.

Faithfulness notes
------------------
* *(migrate)* and *(replicate)* as literally printed add ``{md} × {d} × E``
  without requiring ``E`` to be present at the source ``ms``; read that way
  they could materialize data from nothing and even create replicas of
  elements write-locked in a third address space, contradicting the paper's
  own *exclusive writes* and *data preservation* proofs (Appendix A argues
  "every element removed from the source is added to the target").  We
  therefore implement the evidently intended guard ``E ⊆ D(ms, d)``.
* *(start)* uses disjoint union ``⊎`` when adding locks; since lock tuples
  are keyed by the (fresh) variant, disjointness always holds — the rule
  does *not* forbid overlapping locks held by different variants, and
  neither do we.  Race freedom at this level comes from the model's
  sequential-equivalence requirement, not from lock exclusivity.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.model.actions import Action, Create, Destroy, End, Spawn, Sync
from repro.model.architecture import ComputeUnit, MemorySpace
from repro.model.elements import DataItemDecl
from repro.model.execution import VariantExecution
from repro.model.state import BlockedEntry, RunningEntry, SystemState
from repro.model.task import Task, Variant
from repro.regions.base import Region


class TransitionError(RuntimeError):
    """Raised when an apply function is invoked with a violated guard."""


@dataclass(frozen=True)
class StartCandidate:
    """A concrete instantiation of the *start* rule."""

    task: Task
    variant: Variant
    unit: ComputeUnit
    binding: Mapping[DataItemDecl, MemorySpace]


# ---------------------------------------------------------------------------
# (start) — Fig. 2
# ---------------------------------------------------------------------------


def start_guard(
    state: SystemState,
    task: Task,
    variant: Variant,
    unit: ComputeUnit,
    binding: Mapping[DataItemDecl, MemorySpace],
) -> bool:
    """Premises of the *start* rule for a concrete (t, v, c, m) witness."""
    if task not in state.queued or variant not in task.variants:
        return False
    reqs = variant.requirements
    for item in reqs.items():
        memory = binding.get(item)
        if memory is None:
            return False
        # (c, m(d)) ∈ L
        if not state.architecture.can_access(unit, memory):
            return False
        # all accessed elements present in m(d)
        accessed = reqs.accessed(item)
        if not state.present_region(memory, item).covers(accessed):
            return False
        # D ∩ Dw = ∅: written elements must not be present anywhere else
        write = reqs.write(item)
        if not write.is_empty():
            for other in state.architecture.memories:
                if other == memory:
                    continue
                if state.present_region(other, item).overlaps(write):
                    return False
    return True


def enabled_starts(state: SystemState) -> Iterator[StartCandidate]:
    """Enumerate all enabled instantiations of the *start* rule."""
    for task in sorted(state.queued, key=lambda t: t.name):
        for variant in task.variants:
            reqs = variant.requirements
            items = sorted(reqs.items(), key=lambda i: i.name)
            for unit in sorted(
                state.architecture.compute_units, key=lambda c: c.name
            ):
                mem_choices = []
                for item in items:
                    candidates = [
                        m
                        for m in state.architecture.accessible_memories(unit)
                        if state.present_region(m, item).covers(
                            reqs.accessed(item)
                        )
                    ]
                    mem_choices.append(sorted(candidates, key=lambda m: m.name))
                if items and any(not c for c in mem_choices):
                    continue
                for combo in itertools.product(*mem_choices):
                    binding = dict(zip(items, combo))
                    if start_guard(state, task, variant, unit, binding):
                        yield StartCandidate(task, variant, unit, binding)


def apply_start(state: SystemState, candidate: StartCandidate) -> RunningEntry:
    """Fire the *start* rule: dequeue, begin execution, install locks."""
    if not start_guard(
        state, candidate.task, candidate.variant, candidate.unit, candidate.binding
    ):
        raise TransitionError(f"start guard violated for {candidate!r}")
    state.queued.remove(candidate.task)
    execution = VariantExecution.init(candidate.variant)
    entry = RunningEntry(candidate.unit, execution, dict(candidate.binding))
    state.running.append(entry)
    reqs = candidate.variant.requirements
    for item, memory in candidate.binding.items():
        read = reqs.read(item)
        if not read.is_empty():
            key = (candidate.variant, memory, item)
            state.read_locks[key] = read
        write = reqs.write(item)
        if not write.is_empty():
            key = (candidate.variant, memory, item)
            state.write_locks[key] = write
    state.started.append(candidate.task)
    return entry


# ---------------------------------------------------------------------------
# progress rules: (spawn), (sync), (end) of Fig. 2; (create), (destroy) of Fig. 3
# ---------------------------------------------------------------------------


def apply_progress(
    state: SystemState, entry: RunningEntry, observer: object | None = None
) -> Action:
    """Advance one running execution by one ``step`` and fire the matching rule.

    Returns the action that was issued.  ``observer`` (e.g. a
    :class:`~repro.model.values.VersionTracker`) is notified of effects
    that need pre-transition context: variant completion (before locks
    release) and item destruction.
    """
    if entry not in state.running:
        raise TransitionError(f"{entry!r} is not running")
    action = entry.execution.step()
    if isinstance(action, Spawn):
        _apply_spawn(state, entry, action.task)
    elif isinstance(action, Sync):
        _apply_sync(state, entry, action.task)
    elif isinstance(action, End):
        if observer is not None:
            observer.on_variant_end(state, entry.variant)
        _apply_end(state, entry)
    elif isinstance(action, Create):
        _apply_create(state, entry, action.item)
    elif isinstance(action, Destroy):
        if observer is not None:
            observer.on_destroy(action.item)
        _apply_destroy(state, entry, action.item)
    else:  # pragma: no cover - VariantExecution already validates
        raise TransitionError(f"unknown action {action!r}")
    return action


def _apply_spawn(state: SystemState, entry: RunningEntry, task: Task) -> None:
    """Rule *(spawn)*: enqueue a new task.

    The paper assumes every non-entry task has a unique spawn point; a
    second spawn of the same task is therefore a malformed program and is
    rejected rather than silently re-enqueued.
    """
    if task in state.spawned:
        raise TransitionError(
            f"task {task.name!r} spawned twice — violates the unique "
            "spawn point assumption of Definition 2.7"
        )
    task.check_well_formed()
    state.spawned.add(task)
    state.queued.add(task)


def _apply_sync(state: SystemState, entry: RunningEntry, task: Task) -> None:
    """Rule *(sync)*: move the issuing execution from R to B."""
    state.running.remove(entry)
    state.blocked.append(
        BlockedEntry(entry.unit, entry.execution, task, entry.binding)
    )


def _apply_end(state: SystemState, entry: RunningEntry) -> None:
    """Rule *(end)*: discard state, release the variant's locks."""
    state.running.remove(entry)
    state.release_locks_of(entry.variant)
    state.completed.add(entry.variant.task)


def _apply_create(
    state: SystemState, entry: RunningEntry, item: DataItemDecl
) -> None:
    """Rule *(create)*: register the item; no allocation, no locks."""
    if item in state.items:
        raise TransitionError(f"data item {item.name!r} created twice")
    state.items.add(item)


def _apply_destroy(
    state: SystemState, entry: RunningEntry, item: DataItemDecl
) -> None:
    """Rule *(destroy)*: drop all copies and all locks of the item."""
    if item not in state.items:
        raise TransitionError(f"destroy of unknown data item {item.name!r}")
    state.items.remove(item)
    for key in [k for k in state.distribution if k[1] is item]:
        del state.distribution[key]
    state.drop_item_locks(item)


# ---------------------------------------------------------------------------
# (continue) — Fig. 2
# ---------------------------------------------------------------------------


def continue_guard(state: SystemState, entry: BlockedEntry) -> bool:
    """``t ∉ Q`` and no variant of ``t`` is running or blocked."""
    task = entry.waiting_on
    if task in state.queued:
        return False
    variants = set(task.variants)
    for running in state.running:
        if running.variant in variants:
            return False
    for blocked in state.blocked:
        if blocked.variant in variants:
            return False
    return True


def enabled_continues(state: SystemState) -> Iterator[BlockedEntry]:
    for entry in list(state.blocked):
        if continue_guard(state, entry):
            yield entry


def apply_continue(state: SystemState, entry: BlockedEntry) -> RunningEntry:
    if not continue_guard(state, entry):
        raise TransitionError(f"continue guard violated for {entry!r}")
    state.blocked.remove(entry)
    resumed = RunningEntry(entry.unit, entry.execution, entry.binding)
    state.running.append(resumed)
    return resumed


# ---------------------------------------------------------------------------
# (init) — Fig. 3
# ---------------------------------------------------------------------------


def init_guard(
    state: SystemState, memory: MemorySpace, item: DataItemDecl, region: Region
) -> bool:
    """``E ≠ ∅`` and no element of ``E`` is present in any address space."""
    if item not in state.items or region.is_empty():
        return False
    if memory not in state.architecture.memories:
        return False
    if not item.full_region.covers(region):
        return False
    return not state.coverage(item).overlaps(region)


def uninitialized_region(state: SystemState, item: DataItemDecl) -> Region:
    """Maximal region an *init* may target for ``item``."""
    return item.full_region.difference(state.coverage(item))


def apply_init(
    state: SystemState, memory: MemorySpace, item: DataItemDecl, region: Region
) -> None:
    if not init_guard(state, memory, item, region):
        raise TransitionError(
            f"init guard violated for {item.name!r} in {memory.name!r}"
        )
    state.set_present(
        memory, item, state.present_region(memory, item).union(region)
    )


# ---------------------------------------------------------------------------
# (migrate) — Fig. 3
# ---------------------------------------------------------------------------


def migrate_guard(
    state: SystemState,
    source: MemorySpace,
    target: MemorySpace,
    item: DataItemDecl,
    region: Region,
) -> bool:
    """No locks on the region at source or target; region present at source."""
    if item not in state.items or region.is_empty():
        return False
    if not state.present_region(source, item).covers(region):
        return False  # faithfulness note: see module docstring
    for memory in (source, target):
        if state.any_locked(memory, item).overlaps(region):
            return False
    return True


def apply_migrate(
    state: SystemState,
    source: MemorySpace,
    target: MemorySpace,
    item: DataItemDecl,
    region: Region,
) -> None:
    if not migrate_guard(state, source, target, item, region):
        raise TransitionError(
            f"migrate guard violated for {item.name!r}: "
            f"{source.name} -> {target.name}"
        )
    state.set_present(
        source, item, state.present_region(source, item).difference(region)
    )
    state.set_present(
        target, item, state.present_region(target, item).union(region)
    )


# ---------------------------------------------------------------------------
# (replicate) — Fig. 3
# ---------------------------------------------------------------------------


def replicate_guard(
    state: SystemState,
    source: MemorySpace,
    target: MemorySpace,
    item: DataItemDecl,
    region: Region,
) -> bool:
    """No write lock at source, no locks at target, region present at source."""
    if item not in state.items or region.is_empty():
        return False
    if not state.present_region(source, item).covers(region):
        return False  # faithfulness note: see module docstring
    if state.write_locked(source, item).overlaps(region):
        return False
    if state.any_locked(target, item).overlaps(region):
        return False
    return True


def apply_replicate(
    state: SystemState,
    source: MemorySpace,
    target: MemorySpace,
    item: DataItemDecl,
    region: Region,
) -> None:
    if not replicate_guard(state, source, target, item, region):
        raise TransitionError(
            f"replicate guard violated for {item.name!r}: "
            f"{source.name} -> {target.name}"
        )
    state.set_present(
        target, item, state.present_region(target, item).union(region)
    )
