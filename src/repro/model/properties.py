"""Checkable forms of the model properties of §2.5 / Appendix A.

Each checker raises :class:`PropertyViolation` with a diagnostic message
when the property fails, and returns quietly otherwise — convenient both
for direct assertions in tests and for wrapping into hypothesis properties.

* :func:`check_single_execution` — in a terminating trace, the entry point
  and every spawned task is started exactly once, through exactly one
  variant (Theorems A.1/A.2).
* :func:`check_satisfied_requirements` — every running/blocked variant has
  all its required data present, in memories reachable from its compute
  unit, protected by its own locks (§A.2.3).
* :func:`check_exclusive_writes` — a write-locked element is present in
  exactly the one address space holding the lock (§A.2.4).
* :func:`check_data_preservation` — across a transition, the system-wide
  coverage of every live data item never shrinks; only *destroy* may drop
  data (§A.2.5).
* :func:`check_terminal` — terminal states per Definition 2.11 carry no
  queued/running/blocked work and no locks.

Termination itself (Theorem A.3) is checked in the test-suite by running
many random schedules of deadlock-free programs under a step budget and
asserting each reaches a terminal state.
"""

from __future__ import annotations

from typing import Iterable

from repro.model.interpreter import Trace
from repro.model.state import SystemState


class PropertyViolation(AssertionError):
    """A model property of §2.5 does not hold."""


def check_terminal(state: SystemState) -> None:
    """Assert the state is terminal: ``(∅, ∅, ∅, Dt, ∅, ∅, arch)``."""
    if state.queued:
        raise PropertyViolation(f"terminal state has queued tasks: {state.queued}")
    if state.running:
        raise PropertyViolation(f"terminal state has running variants: {state.running}")
    if state.blocked:
        raise PropertyViolation(f"terminal state has blocked variants: {state.blocked}")
    if state.read_locks or state.write_locks:
        raise PropertyViolation("terminal state still holds locks")


def check_single_execution(trace: Trace, state: SystemState) -> None:
    """No task is started twice; on termination every spawned task ran once."""
    started = [t.name for t in state.started]
    if len(started) != len(set(started)):
        dupes = sorted({n for n in started if started.count(n) > 1})
        raise PropertyViolation(f"tasks started more than once: {dupes}")
    if trace.terminated:
        spawned = {t.name for t in state.spawned}
        if spawned != set(started):
            raise PropertyViolation(
                "terminating trace did not start every spawned task exactly "
                f"once: spawned={sorted(spawned)}, started={sorted(started)}"
            )


def check_satisfied_requirements(state: SystemState) -> None:
    """Running/blocked variants retain their data where they were bound."""
    entries = [(e.unit, e.variant, e.binding) for e in state.running]
    entries += [(e.unit, e.variant, e.binding) for e in state.blocked]
    for unit, variant, binding in entries:
        reqs = variant.requirements
        for item in reqs.items():
            memory = binding.get(item)
            if memory is None:
                raise PropertyViolation(
                    f"{variant.name!r} has no memory binding for {item.name!r}"
                )
            if not state.architecture.can_access(unit, memory):
                raise PropertyViolation(
                    f"{variant.name!r} bound to memory {memory.name!r} "
                    f"not accessible from {unit.name!r}"
                )
            accessed = reqs.accessed(item)
            present = state.present_region(memory, item)
            if not present.covers(accessed):
                raise PropertyViolation(
                    f"data required by {variant.name!r} on {item.name!r} "
                    f"is missing from {memory.name!r}"
                )
            # the variant's own locks must pin the accessed region
            read_lock = state.read_locks.get((variant, memory, item))
            write_lock = state.write_locks.get((variant, memory, item))
            read_needed = reqs.read(item)
            if not read_needed.is_empty() and (
                read_lock is None or not read_lock.covers(read_needed)
            ):
                raise PropertyViolation(
                    f"{variant.name!r} lost its read lock on {item.name!r}"
                )
            write_needed = reqs.write(item)
            if not write_needed.is_empty() and (
                write_lock is None or not write_lock.covers(write_needed)
            ):
                raise PropertyViolation(
                    f"{variant.name!r} lost its write lock on {item.name!r}"
                )


def check_exclusive_writes(state: SystemState) -> None:
    """Write-locked data exists only in the address space holding the lock."""
    for (variant, memory, item), region in state.write_locks.items():
        for other in state.architecture.memories:
            if other == memory:
                continue
            replica = state.present_region(other, item).intersect(region)
            if not replica.is_empty():
                raise PropertyViolation(
                    f"element(s) of {item.name!r} write-locked by "
                    f"{variant.name!r} in {memory.name!r} are replicated "
                    f"in {other.name!r}"
                )


def check_data_preservation(
    before: SystemState | dict,
    after: SystemState,
    destroyed: Iterable = (),
) -> None:
    """System-wide coverage of live items never shrinks.

    ``before`` may be a live state or a pre-captured ``{item: coverage}``
    dict (use :func:`capture_coverage` to snapshot before mutating).
    ``destroyed`` lists items legitimately dropped since the capture.
    """
    if isinstance(before, SystemState):
        coverage_before = capture_coverage(before)
    else:
        coverage_before = before
    dropped = set(destroyed)
    for item, old in coverage_before.items():
        if item in dropped:
            continue
        new = after.coverage(item)
        lost = old.difference(new)
        if not lost.is_empty():
            raise PropertyViolation(
                f"runtime lost {lost.size()} element(s) of {item.name!r} "
                "without an explicit destroy"
            )


def capture_coverage(state: SystemState) -> dict:
    """Snapshot ``{item: coverage-region}`` for later preservation checks."""
    return {item: state.coverage(item) for item in state.items}
