"""The system state (Definition 2.9).

A state is the tuple ``(Q, R, B, D, Lr, Lw, (C ⊎ M, L))``:

* ``Q`` — enqueued, not yet started tasks,
* ``R`` — running variant executions ``(c, v, s)``,
* ``B`` — suspended executions ``(c, v, s, t)`` waiting on task ``t``,
* ``D`` — the data distribution: which elements of which item are present
  in which address space,
* ``Lr`` / ``Lw`` — read / write locks per ``(v, m, d)``,
* the architecture graph.

``D``, ``Lr`` and ``Lw`` are element-level relations in the paper; here
they map ``(m, d)`` respectively ``(v, m, d)`` to a
:class:`~repro.regions.base.Region`, which is the same information without
element enumeration (exactly the representation the paper's §3
implementation uses).

The class is mutable — transitions update it in place — and offers
:meth:`snapshot` to capture an immutable, comparable view for traces and
property checks.  A few *ghost fields* (``items``, ``spawned``,
``started``, ``completed``) record history used by Appendix A style
property checks; they are not part of the formal tuple and never influence
transition guards except where the guard quantifies over them faithfully
(``init`` needs the set of created items to know ``elems(d)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.model.architecture import ArchitectureModel, ComputeUnit, MemorySpace
from repro.model.elements import DataItemDecl
from repro.model.execution import VariantExecution
from repro.model.task import Task, Variant
from repro.regions.base import Region


@dataclass(eq=False)
class RunningEntry:
    """An element ``(c, v, s) ∈ R`` — a variant running on a compute unit.

    ``binding`` records the memory chosen for each accessed data item by the
    *start* transition; the formal rule existentially quantifies over this
    mapping, and keeping the witness makes the *satisfied requirements*
    property directly checkable.
    """

    unit: ComputeUnit
    execution: VariantExecution
    binding: Mapping[DataItemDecl, MemorySpace] = field(default_factory=dict)

    @property
    def variant(self) -> Variant:
        return self.execution.variant


@dataclass(eq=False)
class BlockedEntry:
    """An element ``(c, v, s, t) ∈ B`` — a variant waiting for task ``t``."""

    unit: ComputeUnit
    execution: VariantExecution
    waiting_on: Task
    binding: Mapping[DataItemDecl, MemorySpace] = field(default_factory=dict)

    @property
    def variant(self) -> Variant:
        return self.execution.variant


@dataclass(frozen=True)
class StateSnapshot:
    """Immutable summary of a state for traces and invariant checks."""

    queued: frozenset[str]
    running: frozenset[str]
    blocked: frozenset[tuple[str, str]]
    coverage: Mapping[str, int]
    read_locks: int
    write_locks: int

    def is_terminal(self) -> bool:
        return (
            not self.queued
            and not self.running
            and not self.blocked
            and self.read_locks == 0
            and self.write_locks == 0
        )


class SystemState:
    """Mutable system state driven by :mod:`repro.model.transitions`."""

    def __init__(self, architecture: ArchitectureModel) -> None:
        self.architecture = architecture
        self.queued: set[Task] = set()
        self.running: list[RunningEntry] = []
        self.blocked: list[BlockedEntry] = []
        # D: (m, d) -> present region (entries with empty regions are dropped)
        self.distribution: dict[tuple[MemorySpace, DataItemDecl], Region] = {}
        # Lr / Lw: (v, m, d) -> locked region
        self.read_locks: dict[
            tuple[Variant, MemorySpace, DataItemDecl], Region
        ] = {}
        self.write_locks: dict[
            tuple[Variant, MemorySpace, DataItemDecl], Region
        ] = {}
        # ghost fields (history / registries, see module docstring)
        self.items: set[DataItemDecl] = set()
        self.spawned: set[Task] = set()
        self.started: list[Task] = []
        self.completed: set[Task] = set()

    # -- D queries --------------------------------------------------------------

    def present_region(self, memory: MemorySpace, item: DataItemDecl) -> Region:
        """Elements of ``item`` present in ``memory``."""
        region = self.distribution.get((memory, item))
        return region if region is not None else item.empty_region()

    def coverage(self, item: DataItemDecl) -> Region:
        """Union of present regions over all address spaces."""
        total = item.empty_region()
        for (memory, d), region in self.distribution.items():
            if d is item:
                total = total.union(region)
        return total

    def memories_holding(self, item: DataItemDecl, region: Region) -> list[MemorySpace]:
        """Memories whose present region overlaps ``region``."""
        out = []
        for (memory, d), present in self.distribution.items():
            if d is item and present.overlaps(region):
                out.append(memory)
        return out

    def set_present(
        self, memory: MemorySpace, item: DataItemDecl, region: Region
    ) -> None:
        key = (memory, item)
        if region.is_empty():
            self.distribution.pop(key, None)
        else:
            self.distribution[key] = region

    # -- lock queries -------------------------------------------------------------

    def locked_region(
        self,
        locks: Mapping[tuple[Variant, MemorySpace, DataItemDecl], Region],
        memory: MemorySpace,
        item: DataItemDecl,
    ) -> Region:
        total = item.empty_region()
        for (_, m, d), region in locks.items():
            if m == memory and d is item:
                total = total.union(region)
        return total

    def read_locked(self, memory: MemorySpace, item: DataItemDecl) -> Region:
        return self.locked_region(self.read_locks, memory, item)

    def write_locked(self, memory: MemorySpace, item: DataItemDecl) -> Region:
        return self.locked_region(self.write_locks, memory, item)

    def any_locked(self, memory: MemorySpace, item: DataItemDecl) -> Region:
        return self.read_locked(memory, item).union(
            self.write_locked(memory, item)
        )

    def write_locked_anywhere(self, item: DataItemDecl) -> Region:
        total = item.empty_region()
        for (_, _, d), region in self.write_locks.items():
            if d is item:
                total = total.union(region)
        return total

    def release_locks_of(self, variant: Variant) -> None:
        """Drop ``{v} × M × D × E`` from both lock relations (rule *end*)."""
        for locks in (self.read_locks, self.write_locks):
            for key in [k for k in locks if k[0] is variant]:
                del locks[key]

    def drop_item_locks(self, item: DataItemDecl) -> None:
        """Drop ``V × M × {d} × E`` from both lock relations (rule *destroy*)."""
        for locks in (self.read_locks, self.write_locks):
            for key in [k for k in locks if k[2] is item]:
                del locks[key]

    # -- snapshots ---------------------------------------------------------------

    def snapshot(self) -> StateSnapshot:
        return StateSnapshot(
            queued=frozenset(t.name for t in self.queued),
            running=frozenset(e.variant.name for e in self.running),
            blocked=frozenset(
                (e.variant.name, e.waiting_on.name) for e in self.blocked
            ),
            coverage={i.name: self.coverage(i).size() for i in self.items},
            read_locks=len(self.read_locks),
            write_locks=len(self.write_locks),
        )

    def is_terminal(self) -> bool:
        """Terminal per Definition 2.11: only ``D`` may be non-empty."""
        return (
            not self.queued
            and not self.running
            and not self.blocked
            and not self.read_locks
            and not self.write_locks
        )

    def __repr__(self) -> str:
        return (
            f"SystemState(|Q|={len(self.queued)}, |R|={len(self.running)}, "
            f"|B|={len(self.blocked)}, |D|={len(self.distribution)}, "
            f"|Lr|={len(self.read_locks)}, |Lw|={len(self.write_locks)})"
        )


def initial_state(
    architecture: ArchitectureModel, entry: Task
) -> SystemState:
    """``s0 = ({t0}, ∅, ∅, ∅, ∅, ∅, (C ⊎ M, L))`` (Definition 2.11)."""
    state = SystemState(architecture)
    state.queued.add(entry.check_well_formed())
    state.spawned.add(entry)
    return state
