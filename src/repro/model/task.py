"""Tasks, variants, programs, and data requirements (Definitions 2.3–2.7).

A :class:`Task` owns one or more :class:`Variant` implementations; the
runtime may freely pick among them (Def. 2.3).  Variants declare their data
requirements as read and write regions per data item (Def. 2.7) and provide
their behaviour as a Python generator function — each ``yield`` of an
:class:`~repro.model.actions.Action` is one application of the abstract
``step`` function of Def. 2.6 (see :mod:`repro.model.execution`).

The paper's well-formedness assumptions are enforced structurally:

* no two tasks share a variant — variants are constructed bound to their
  task and cannot be re-attached;
* every task has at least one variant (``var : T → 2^V \\ ∅``);
* every non-entry task has a unique spawn point — the interpreter rejects a
  second ``spawn`` of the same task.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, TYPE_CHECKING

from repro.model.elements import DataItemDecl
from repro.regions.base import Region
from repro.util.ids import fresh_id

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.actions import Action
    from repro.model.execution import TaskContext


VariantBody = Callable[["TaskContext"], Iterator["Action"]]


class AccessSpec:
    """Read/write requirement sets of one variant (Definition 2.7).

    ``read(v, d)`` and ``write(v, d)`` are total functions that are empty
    for almost every pair; we store only the non-empty entries and return an
    item-compatible empty region otherwise.
    """

    __slots__ = ("_reads", "_writes")

    def __init__(
        self,
        reads: Mapping[DataItemDecl, Region] | None = None,
        writes: Mapping[DataItemDecl, Region] | None = None,
    ) -> None:
        self._reads: dict[DataItemDecl, Region] = {}
        self._writes: dict[DataItemDecl, Region] = {}
        for item, region in (reads or {}).items():
            if not region.is_empty():
                self._reads[item] = item.check_region(region)
        for item, region in (writes or {}).items():
            if not region.is_empty():
                self._writes[item] = item.check_region(region)

    def read(self, item: DataItemDecl) -> Region:
        """``read(v, d)`` — elements of ``item`` read during execution."""
        return self._reads.get(item, item.empty_region())

    def write(self, item: DataItemDecl) -> Region:
        """``write(v, d)`` — elements of ``item`` updated during execution."""
        return self._writes.get(item, item.empty_region())

    def accessed(self, item: DataItemDecl) -> Region:
        """``read(v, d) ∪ write(v, d)``."""
        return self.read(item).union(self.write(item))

    def items(self) -> frozenset[DataItemDecl]:
        """Data items with a non-empty read or write set."""
        return frozenset(self._reads) | frozenset(self._writes)

    def read_items(self) -> Mapping[DataItemDecl, Region]:
        return dict(self._reads)

    def write_items(self) -> Mapping[DataItemDecl, Region]:
        return dict(self._writes)

    def is_empty(self) -> bool:
        return not self._reads and not self._writes

    def __repr__(self) -> str:
        r = {i.name: reg.size() for i, reg in self._reads.items()}
        w = {i.name: reg.size() for i, reg in self._writes.items()}
        return f"AccessSpec(reads={r}, writes={w})"


class Variant:
    """One implementation alternative ``v ∈ var(t)`` of a task (Def. 2.3).

    Instances are created through :meth:`Task.add_variant` only, which keeps
    the "no two tasks share a common variant" assumption true by
    construction.
    """

    __slots__ = ("name", "task", "body", "requirements")

    def __init__(
        self,
        task: "Task",
        body: VariantBody,
        requirements: AccessSpec,
        name: str | None = None,
        _token: object = None,
    ) -> None:
        if _token is not Task._VARIANT_TOKEN:
            raise TypeError("Variants must be created via Task.add_variant()")
        self.task = task
        self.body = body
        self.requirements = requirements
        self.name = name if name is not None else fresh_id("variant")

    def __repr__(self) -> str:
        return f"Variant({self.name!r} of {self.task.name!r})"


class Task:
    """A task ``t ∈ T`` with its non-empty set of variants ``var(t)``."""

    _VARIANT_TOKEN = object()

    __slots__ = ("name", "_variants")

    def __init__(self, name: str | None = None) -> None:
        self.name = name if name is not None else fresh_id("task")
        self._variants: list[Variant] = []

    @property
    def variants(self) -> tuple[Variant, ...]:
        """``var(t)`` — empty only while the task is still being built."""
        return tuple(self._variants)

    def add_variant(
        self,
        body: VariantBody,
        requirements: AccessSpec | None = None,
        name: str | None = None,
    ) -> Variant:
        """Attach an implementation alternative and return it."""
        variant = Variant(
            self,
            body,
            requirements if requirements is not None else AccessSpec(),
            name=name if name is not None else f"{self.name}/v{len(self._variants)}",
            _token=Task._VARIANT_TOKEN,
        )
        self._variants.append(variant)
        return variant

    def check_well_formed(self) -> "Task":
        """Enforce ``var(t) ≠ ∅`` (Definition 2.3)."""
        if not self._variants:
            raise ValueError(f"task {self.name!r} has no variants")
        return self

    def __repr__(self) -> str:
        return f"Task({self.name!r}, {len(self._variants)} variants)"


def simple_task(
    body: VariantBody,
    requirements: AccessSpec | None = None,
    name: str | None = None,
) -> Task:
    """Build a task with a single variant — the common case in tests."""
    task = Task(name=name)
    task.add_variant(body, requirements)
    return task


class Program:
    """A program given by its entry-point task ``t0 ∈ P`` (Definition 2.4)."""

    __slots__ = ("entry",)

    def __init__(self, entry: Task) -> None:
        self.entry = entry.check_well_formed()

    def __repr__(self) -> str:
        return f"Program(entry={self.entry.name!r})"


def reachable_tasks(program: Program, known: Iterable[Task]) -> set[Task]:
    """Helper for tests: the task set a finished interpreter run touched.

    The true reachable set ``T_p`` of Definition A.5 is semantic; traces
    report the tasks they actually spawned, which is what property checks
    compare against.
    """
    return {program.entry, *known}
