"""The architecture model (Definition 2.8, Example 2.4).

The hardware abstraction is the bipartite graph ``(C ⊎ M, L)`` of compute
units, memory address spaces, and access links.  The model intentionally
omits network topology and cache hierarchy — those are implementation-level
concerns handled by :mod:`repro.sim`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class ComputeUnit:
    """A compute unit ``c ∈ C`` (CPU core, GPU, ...)."""

    name: str

    def __repr__(self) -> str:
        return f"ComputeUnit({self.name!r})"


@dataclass(frozen=True)
class MemorySpace:
    """A memory address space ``m ∈ M`` (node main memory, device memory, ...)."""

    name: str

    def __repr__(self) -> str:
        return f"MemorySpace({self.name!r})"


class ArchitectureModel:
    """Bipartite graph ``(C ⊎ M, L)`` with ``L ⊆ C × M``."""

    __slots__ = ("compute_units", "memories", "links", "_mem_of", "_units_of")

    def __init__(
        self,
        compute_units: Iterable[ComputeUnit],
        memories: Iterable[MemorySpace],
        links: Iterable[tuple[ComputeUnit, MemorySpace]],
    ) -> None:
        self.compute_units = frozenset(compute_units)
        self.memories = frozenset(memories)
        self.links = frozenset(links)
        for c, m in self.links:
            if c not in self.compute_units:
                raise ValueError(f"link references unknown compute unit {c!r}")
            if m not in self.memories:
                raise ValueError(f"link references unknown memory {m!r}")
        self._mem_of: dict[ComputeUnit, frozenset[MemorySpace]] = {}
        self._units_of: dict[MemorySpace, frozenset[ComputeUnit]] = {}
        for c in self.compute_units:
            self._mem_of[c] = frozenset(m for cc, m in self.links if cc == c)
        for m in self.memories:
            self._units_of[m] = frozenset(c for c, mm in self.links if mm == m)

    def accessible_memories(self, unit: ComputeUnit) -> frozenset[MemorySpace]:
        """Memories ``m`` with ``(c, m) ∈ L``."""
        return self._mem_of[unit]

    def units_with_access(self, memory: MemorySpace) -> frozenset[ComputeUnit]:
        """Compute units ``c`` with ``(c, m) ∈ L``."""
        return self._units_of[memory]

    def can_access(self, unit: ComputeUnit, memory: MemorySpace) -> bool:
        return (unit, memory) in self.links

    def to_networkx(self):
        """Export the bipartite graph for analysis/visualization."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self.compute_units, bipartite="compute")
        graph.add_nodes_from(self.memories, bipartite="memory")
        graph.add_edges_from(self.links)
        return graph

    def __repr__(self) -> str:
        return (
            f"ArchitectureModel(|C|={len(self.compute_units)}, "
            f"|M|={len(self.memories)}, |L|={len(self.links)})"
        )


def distributed_cluster(
    nodes: int, cores_per_node: int = 1
) -> ArchitectureModel:
    """Build the architecture of Example 2.4.

    Each node forms its own address space; its cores link only to it.

    >>> arch = distributed_cluster(2, 4)
    >>> len(arch.compute_units), len(arch.memories), len(arch.links)
    (8, 2, 8)
    """
    if nodes < 1 or cores_per_node < 1:
        raise ValueError("nodes and cores_per_node must be positive")
    units: list[ComputeUnit] = []
    memories: list[MemorySpace] = []
    links: list[tuple[ComputeUnit, MemorySpace]] = []
    for n in range(nodes):
        memory = MemorySpace(f"m{n}")
        memories.append(memory)
        for k in range(cores_per_node):
            unit = ComputeUnit(f"c{n}.{k}")
            units.append(unit)
            links.append((unit, memory))
    return ArchitectureModel(units, memories, links)


def shared_memory_system(cores: int) -> ArchitectureModel:
    """Single address space with ``cores`` compute units linked to it."""
    memory = MemorySpace("m0")
    units = [ComputeUnit(f"c{k}") for k in range(cores)]
    return ArchitectureModel(units, [memory], [(u, memory) for u in units])


def heterogeneous_cluster(
    nodes: int, cores_per_node: int = 1, gpus_per_node: int = 1
) -> ArchitectureModel:
    """Nodes with CPU cores *and* GPUs, each GPU owning a device memory.

    Definition 2.8 explicitly includes GPUs among compute units and device
    memories among address spaces: a GPU links only to its own memory, so
    the *start* rule forces data into device memory before a GPU variant
    may run — offloading expressed purely through the model.
    """
    if nodes < 1 or cores_per_node < 1 or gpus_per_node < 0:
        raise ValueError("invalid heterogeneous cluster shape")
    units: list[ComputeUnit] = []
    memories: list[MemorySpace] = []
    links: list[tuple[ComputeUnit, MemorySpace]] = []
    for n in range(nodes):
        host = MemorySpace(f"m{n}")
        memories.append(host)
        for k in range(cores_per_node):
            cpu = ComputeUnit(f"c{n}.{k}")
            units.append(cpu)
            links.append((cpu, host))
        for g in range(gpus_per_node):
            device_memory = MemorySpace(f"m{n}.gpu{g}")
            memories.append(device_memory)
            gpu = ComputeUnit(f"g{n}.{g}")
            units.append(gpu)
            # the device accesses only its own memory — data must be
            # migrated/replicated there for a GPU variant to start
            links.append((gpu, device_memory))
    return ArchitectureModel(units, memories, links)
