"""The action algebra (Definition 2.5).

``A = { spawn(t), sync(t), create(d), destroy(d), end }`` for tasks
``t ∈ T \\ P`` and data items ``d ∈ D``.  Actions are the service requests a
running task variant issues toward the runtime system; the task-related and
data-related transition rules of Figs. 2–3 consume them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

from repro.model.elements import DataItemDecl

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.model.task import Task


@dataclass(frozen=True)
class Spawn:
    """Request the runtime to schedule a new task (rule *spawn*)."""

    task: "Task"


@dataclass(frozen=True)
class Sync:
    """Suspend the issuing variant until ``task`` completes (rule *sync*)."""

    task: "Task"


@dataclass(frozen=True)
class Create:
    """Introduce a new data item to the runtime system (rule *create*)."""

    item: DataItemDecl


@dataclass(frozen=True)
class Destroy:
    """Request destruction of a data item (rule *destroy*)."""

    item: DataItemDecl


@dataclass(frozen=True)
class End:
    """Signal termination of the issuing variant (rule *end*)."""


Action = Union[Spawn, Sync, Create, Destroy, End]

END = End()
