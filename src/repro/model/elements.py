"""Data items at the specification level (Definitions 2.1 and 2.2).

A :class:`DataItemDecl` stands for one element ``d`` of the abstract set
``D`` of data structure instances: it carries an identity and the finite set
``elems(d)`` of logical element addresses, represented as a
:class:`~repro.regions.base.Region` so that the model never has to
enumerate elements explicitly.

Values of elements (the ``val`` function the paper mentions and omits) are
likewise omitted here; the functional data items of :mod:`repro.items`
carry values at the implementation level.
"""

from __future__ import annotations

from typing import Iterator

from repro.regions.base import Region
from repro.util.ids import fresh_id


class DataItemDecl:
    """Declaration of a single data item instance ``d ∈ D``.

    Parameters
    ----------
    full_region:
        The region addressing ``elems(d)`` — every element the item has.
    name:
        Optional human-readable name; a fresh id is generated otherwise.

    Identity is by object (two declarations with equal regions are distinct
    data items, matching the set-theoretic model where ``D`` contains
    *instances*).
    """

    __slots__ = ("name", "_full_region")

    def __init__(self, full_region: Region, name: str | None = None) -> None:
        self.name = name if name is not None else fresh_id("item")
        self._full_region = full_region

    @property
    def full_region(self) -> Region:
        """The region covering ``elems(d)``."""
        return self._full_region

    def elems(self) -> Iterator:
        """Enumerate ``elems(d)`` (tests/debugging only)."""
        return self._full_region.elements()

    def num_elements(self) -> int:
        return self._full_region.size()

    def empty_region(self) -> Region:
        """An empty region compatible with this item's element universe."""
        return self._full_region.difference(self._full_region)

    def check_region(self, region: Region) -> Region:
        """Validate ``region ⊆ elems(d)`` (Definition 2.2) and return it."""
        if not region.difference(self._full_region).is_empty():
            raise ValueError(
                f"region {region!r} is not a subset of elems({self.name})"
            )
        return region

    def __repr__(self) -> str:
        return f"DataItemDecl({self.name!r}, |elems|={self._full_region.size()})"
