"""Appendix A auxiliary definitions, as executable utilities.

The paper's appendix introduces notation used by the property proofs:
state-component accessors (Definition A.1), transition-relation utilities
(Definition A.2), and trace utilities (Definition A.3).  The library's own
classes already expose most of this; this module provides the appendix's
exact vocabulary on top, so the proof sketches can be followed — and
tested — line by line.
"""

from __future__ import annotations


from repro.model.architecture import ArchitectureModel
from repro.model.interpreter import PROGRESS_KINDS, Trace
from repro.model.state import SystemState, initial_state
from repro.model.task import Program, Task, Variant


# -- Definition A.1: state component accessors --------------------------------------


def q(state: SystemState) -> set[Task]:
    """Enqueued tasks ``Q``."""
    return set(state.queued)


def r(state: SystemState) -> set[tuple]:
    """Running entries ``R`` as ``(c, v, s)`` tuples."""
    return {(e.unit, e.variant, e.execution) for e in state.running}


def b(state: SystemState) -> set[tuple]:
    """Blocked entries ``B`` as ``(c, v, s, t)`` tuples."""
    return {
        (e.unit, e.variant, e.execution, e.waiting_on) for e in state.blocked
    }


def v(state: SystemState) -> set[Variant]:
    """Variants currently running or blocked (Def. A.1's ``v(s)``)."""
    out = {e.variant for e in state.running}
    out |= {e.variant for e in state.blocked}
    return out


def d(state: SystemState) -> dict:
    """The data distribution ``D`` as ``{(m, d): region}``."""
    return dict(state.distribution)


def lr(state: SystemState) -> dict:
    """Read locks ``Lr`` as ``{(v, m, d): region}``."""
    return dict(state.read_locks)


def lw(state: SystemState) -> dict:
    """Write locks ``Lw`` as ``{(v, m, d): region}``."""
    return dict(state.write_locks)


def l(state: SystemState) -> dict:
    """``l(s) = lw(s) ∪ lr(s)`` — all locks, unioned per key."""
    combined = dict(state.read_locks)
    for key, region in state.write_locks.items():
        if key in combined:
            combined[key] = combined[key].union(region)
        else:
            combined[key] = region
    return combined


# -- Definition A.3: trace utilities ---------------------------------------------------


def start(program: Program, architecture: ArchitectureModel) -> SystemState:
    """``start(t) = ({t0}, ∅, ∅, ∅, ∅, ∅, (C ⊎ M, L))``."""
    return initial_state(architecture, program.entry)


def is_terminal(state: SystemState) -> bool:
    """Membership in ``F``, the set of terminal states."""
    return state.is_terminal()


def p_steps(trace: Trace) -> int:
    """``p_steps`` — the number of ``→p`` transitions in a trace."""
    return trace.progress_steps()


def is_full_trace(trace: Trace) -> bool:
    """A *full* trace is terminated (finite traces ending in ``F``).

    Infinite traces cannot be materialized; a deadlocked or step-bounded
    run is neither terminated nor full.
    """
    return trace.terminated


def progress_kinds() -> frozenset[str]:
    """The rule names constituting ``→p`` (Definition A.2)."""
    return PROGRESS_KINDS


def reachable_task_names(trace: Trace) -> set[str]:
    """Names of tasks this trace enqueued — a witness subset of ``T_p``.

    Definition A.5's reachable set quantifies over *all* executions; any
    single trace provides a lower bound, which is what the finiteness
    arguments of Lemma A.1 are checked against in the tests.
    """
    names: set[str] = set()
    for event in trace.events:
        if event.kind == "spawn":
            # details read "<spawning variant>-><spawned task>"
            names.add(event.detail.rsplit("->", 1)[-1])
    return names
