"""Nondeterministic small-step interpreter producing traces (Definition 2.11).

The interpreter drives a :class:`~repro.model.state.SystemState` from the
initial state ``({t0}, ∅, ∅, ∅, ∅, ∅, arch)`` through transitions of
Definition 2.10 until a terminal state is reached (or a step bound or a
deadlock is hit).  All scheduling freedom the rules leave open — which task
to start, which variant to pick, which compute unit and memory binding to
use, when to run data management transitions — is resolved by a seeded RNG,
so that property-based tests can explore many interleavings while each run
stays reproducible.

Two kinds of runtime-controlled behaviour are modelled:

* a *staging policy* mirroring the real data item manager: when a queued
  task cannot start because its data is missing or misplaced, legal
  ``init`` / ``migrate`` / ``replicate`` transitions are issued to satisfy
  the requirements (this is how the actual runtime of §3.2 behaves);
* optional *chaos data operations*: random legal migrations/replications/
  deletions-of-replicas interleaved with the program, used by the tests to
  show the §2.5 invariants survive arbitrary runtime meddling.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

from repro.model import transitions as rules
from repro.model.architecture import ArchitectureModel, MemorySpace
from repro.model.state import StateSnapshot, SystemState, initial_state
from repro.model.task import Program, Variant


PROGRESS_KINDS = frozenset(
    {"start", "spawn", "sync", "continue", "end", "create", "destroy"}
)


@dataclass(frozen=True)
class TraceEvent:
    """One fired transition, with an optional post-state snapshot."""

    kind: str
    detail: str
    snapshot: StateSnapshot | None = None

    def is_progress(self) -> bool:
        """Whether this event is a ``→p`` transition (Definition A.2)."""
        return self.kind in PROGRESS_KINDS


@dataclass
class Trace:
    """A recorded execution ``s0 → s1 → ...`` plus its outcome."""

    initial: StateSnapshot
    events: list[TraceEvent] = field(default_factory=list)
    terminated: bool = False
    deadlocked: bool = False

    def progress_steps(self) -> int:
        """``p_steps`` of Definition A.3 — number of progress transitions."""
        return sum(1 for e in self.events if e.is_progress())

    def events_of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def __len__(self) -> int:
        return len(self.events)


@dataclass
class InterpreterConfig:
    """Knobs of the nondeterministic executor."""

    seed: int = 0
    max_transitions: int = 100_000
    chaos_data_ops: float = 0.0
    record_snapshots: bool = False
    max_start_candidates: int = 8


class DeadlockError(RuntimeError):
    """Raised by :meth:`Interpreter.run_to_completion` on a stuck state."""


class Interpreter:
    """Executes programs against the formal transition rules.

    ``observer`` receives transition notifications with their payloads —
    e.g. a :class:`~repro.model.values.VersionTracker` maintaining the
    value semantics of §2.1.  Any subset of the hook methods (``on_start``,
    ``on_init``, ``on_migrate``, ``on_replicate``, ``on_variant_end``,
    ``on_destroy``) may be provided.
    """

    def __init__(
        self,
        config: InterpreterConfig | None = None,
        observer: object | None = None,
    ) -> None:
        self.config = config or InterpreterConfig()
        self.observer = observer

    def _notify(self, hook: str, *args) -> None:
        if self.observer is not None:
            fn = getattr(self.observer, hook, None)
            if fn is not None:
                fn(*args)

    # -- public API ---------------------------------------------------------------

    def run(
        self, program: Program, architecture: ArchitectureModel
    ) -> tuple[Trace, SystemState]:
        """Execute ``program`` and return its trace and final state."""
        rng = random.Random(self.config.seed)
        state = initial_state(architecture, program.entry)
        trace = Trace(initial=state.snapshot())
        for _ in range(self.config.max_transitions):
            if state.is_terminal():
                trace.terminated = True
                break
            fired = self._fire_one(state, trace, rng)
            if not fired:
                trace.deadlocked = True
                break
        return trace, state

    def run_to_completion(
        self, program: Program, architecture: ArchitectureModel
    ) -> tuple[Trace, SystemState]:
        """Like :meth:`run` but raises on deadlock or step-bound exhaustion."""
        trace, state = self.run(program, architecture)
        if trace.deadlocked:
            raise DeadlockError(f"program deadlocked in state {state!r}")
        if not trace.terminated:
            raise DeadlockError(
                f"step bound {self.config.max_transitions} exhausted"
            )
        return trace, state

    # -- single transition selection ------------------------------------------------

    def _fire_one(
        self, state: SystemState, trace: Trace, rng: random.Random
    ) -> bool:
        """Fire one enabled transition; return False when truly stuck."""
        if self.config.chaos_data_ops and rng.random() < self.config.chaos_data_ops:
            if self._fire_chaos_data_op(state, trace, rng):
                return True

        choices: list[tuple[str, object]] = []
        choices.extend(("progress", entry) for entry in state.running)
        choices.extend(
            ("continue", entry) for entry in rules.enabled_continues(state)
        )
        starts = list(
            itertools.islice(
                rules.enabled_starts(state), self.config.max_start_candidates
            )
        )
        choices.extend(("start", c) for c in starts)

        if not choices and state.queued:
            # nothing runnable: stage data so a queued task can start
            if self._stage_for_some_task(state, trace, rng):
                return True
            return False
        if not choices:
            return False

        kind, payload = rng.choice(choices)
        if kind == "progress":
            action = rules.apply_progress(state, payload, self.observer)  # type: ignore[arg-type]
            name = type(action).__name__.lower()
            detail = payload.variant.name  # type: ignore[union-attr]
            target = getattr(action, "task", None) or getattr(
                action, "item", None
            )
            if target is not None:
                detail = f"{detail}->{target.name}"
            self._record(trace, state, name, detail)
        elif kind == "continue":
            rules.apply_continue(state, payload)  # type: ignore[arg-type]
            self._record(trace, state, "continue", payload.variant.name)  # type: ignore[union-attr]
        else:
            candidate = payload
            entry = rules.apply_start(state, candidate)  # type: ignore[arg-type]
            self._notify("on_start", state, entry)
            self._record(
                trace,
                state,
                "start",
                f"{candidate.variant.name}@{candidate.unit.name}",  # type: ignore[union-attr]
            )
        return True

    # -- data staging policy ----------------------------------------------------------

    def _stage_for_some_task(
        self, state: SystemState, trace: Trace, rng: random.Random
    ) -> bool:
        """Issue one batch of data transitions toward starting a queued task.

        Mirrors the real data item manager: bring the write set exclusively
        to a chosen memory (migrations), then fill remaining read gaps with
        replications, and initialize data present nowhere.  Returns whether
        any transition fired.
        """
        tasks = sorted(state.queued, key=lambda t: t.name)
        rng.shuffle(tasks)
        for task in tasks:
            variant = rng.choice(list(task.variants))
            units = sorted(
                state.architecture.compute_units, key=lambda c: c.name
            )
            unit = rng.choice(units)
            memories = sorted(
                state.architecture.accessible_memories(unit),
                key=lambda m: m.name,
            )
            if not memories:
                continue
            target = rng.choice(memories)
            if self._stage_variant(state, trace, variant, target):
                return True
        return False

    def _stage_variant(
        self,
        state: SystemState,
        trace: Trace,
        variant: Variant,
        target: MemorySpace,
    ) -> bool:
        fired = False
        reqs = variant.requirements
        for item in sorted(reqs.items(), key=lambda i: i.name):
            if item not in state.items:
                return fired  # not created yet; cannot stage
            write = reqs.write(item)
            # 1. written elements must live exclusively at `target`
            for memory in sorted(
                state.architecture.memories, key=lambda m: m.name
            ):
                if memory == target:
                    continue
                stray = state.present_region(memory, item).intersect(write)
                if not stray.is_empty() and rules.migrate_guard(
                    state, memory, target, item, stray
                ):
                    rules.apply_migrate(state, memory, target, item, stray)
                    self._notify("on_migrate", memory, target, item, stray)
                    self._record(
                        trace,
                        state,
                        "migrate",
                        f"{item.name}:{memory.name}->{target.name}",
                    )
                    fired = True
            # 2. read elements missing at `target`: replicate from any holder
            needed = reqs.accessed(item)
            missing = needed.difference(state.present_region(target, item))
            if not missing.is_empty():
                for memory in state.memories_holding(item, missing):
                    if memory == target:
                        continue
                    part = state.present_region(memory, item).intersect(missing)
                    if not part.is_empty() and rules.replicate_guard(
                        state, memory, target, item, part
                    ):
                        rules.apply_replicate(state, memory, target, item, part)
                        self._notify("on_replicate", memory, target, item, part)
                        self._record(
                            trace,
                            state,
                            "replicate",
                            f"{item.name}:{memory.name}->{target.name}",
                        )
                        missing = missing.difference(part)
                        fired = True
            # 3. elements present nowhere: initialize at `target`
            virgin = missing.intersect(rules.uninitialized_region(state, item))
            if not virgin.is_empty() and rules.init_guard(
                state, target, item, virgin
            ):
                rules.apply_init(state, target, item, virgin)
                self._notify("on_init", target, item, virgin)
                self._record(
                    trace, state, "init", f"{item.name}@{target.name}"
                )
                fired = True
        return fired

    # -- chaos data operations ----------------------------------------------------------

    def _fire_chaos_data_op(
        self, state: SystemState, trace: Trace, rng: random.Random
    ) -> bool:
        """Fire one random legal init/migrate/replicate, if any applies."""
        memories = sorted(state.architecture.memories, key=lambda m: m.name)
        items = sorted(state.items, key=lambda i: i.name)
        if not memories or not items:
            return False
        ops = ["init", "migrate", "replicate"]
        rng.shuffle(ops)
        for op in ops:
            item = rng.choice(items)
            if op == "init":
                region = rules.uninitialized_region(state, item)
                memory = rng.choice(memories)
                if rules.init_guard(state, memory, item, region):
                    rules.apply_init(state, memory, item, region)
                    self._notify("on_init", memory, item, region)
                    self._record(
                        trace, state, "init", f"chaos:{item.name}@{memory.name}"
                    )
                    return True
            else:
                holders = [
                    m
                    for m in memories
                    if not state.present_region(m, item).is_empty()
                ]
                if not holders or len(memories) < 2:
                    continue
                source = rng.choice(holders)
                target = rng.choice([m for m in memories if m != source])
                region = state.present_region(source, item)
                if op == "migrate" and rules.migrate_guard(
                    state, source, target, item, region
                ):
                    rules.apply_migrate(state, source, target, item, region)
                    self._notify("on_migrate", source, target, item, region)
                    self._record(
                        trace,
                        state,
                        "migrate",
                        f"chaos:{item.name}:{source.name}->{target.name}",
                    )
                    return True
                if op == "replicate" and rules.replicate_guard(
                    state, source, target, item, region
                ):
                    rules.apply_replicate(state, source, target, item, region)
                    self._notify("on_replicate", source, target, item, region)
                    self._record(
                        trace,
                        state,
                        "replicate",
                        f"chaos:{item.name}:{source.name}->{target.name}",
                    )
                    return True
        return False

    # -- helpers -------------------------------------------------------------------------

    def _record(
        self, trace: Trace, state: SystemState, kind: str, detail: str
    ) -> None:
        snapshot = state.snapshot() if self.config.record_snapshots else None
        trace.events.append(TraceEvent(kind, detail, snapshot))
