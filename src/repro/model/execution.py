"""Task-local execution states and the ``step`` function (Definition 2.6).

The paper models variant execution as an abstract state set ``S`` with
``init : V → S`` and ``step : V × S → S × A``.  Here a variant's behaviour
is a Python generator: ``init`` instantiates the generator, and each
``step`` resumes it until it yields the next :class:`Action`.  A variant
that returns (``StopIteration``) implicitly issues the final ``end``
action, so every execution trace ends with ``end`` as Def. 2.6 requires for
terminating variants.

:class:`TaskContext` is the handle a body receives; it exposes helpers to
build the actions without importing the action classes in user code.
"""

from __future__ import annotations

from typing import Iterator

from repro.model.actions import Action, Create, Destroy, End, Spawn, Sync, END
from repro.model.elements import DataItemDecl
from repro.model.task import Task, Variant


class TaskContext:
    """Execution context handed to variant bodies.

    Bodies are generator functions ``def body(ctx): yield ...``; the helper
    methods construct the actions of Definition 2.5:

    >>> def body(ctx):
    ...     child = make_child_task()
    ...     yield ctx.spawn(child)
    ...     yield ctx.sync(child)
    """

    __slots__ = ("variant",)

    def __init__(self, variant: Variant) -> None:
        self.variant = variant

    def spawn(self, task: Task) -> Spawn:
        return Spawn(task.check_well_formed())

    def sync(self, task: Task) -> Sync:
        return Sync(task)

    def create(self, item: DataItemDecl) -> Create:
        return Create(item)

    def destroy(self, item: DataItemDecl) -> Destroy:
        return Destroy(item)


class VariantExecution:
    """One element of the abstract state set ``S`` plus its driver.

    The pair ``(variant, generator-state)`` corresponds to a state
    ``s ∈ S``; :meth:`step` is ``step(v, s) = (s', a)`` where the successor
    state is this same object after mutation.  The number of executed steps
    and the issued action sequence are recorded for property checks.
    """

    __slots__ = ("variant", "_gen", "steps", "actions", "finished")

    def __init__(self, variant: Variant) -> None:
        self.variant = variant
        self._gen: Iterator[Action] | None = variant.body(TaskContext(variant))
        self.steps = 0
        self.actions: list[Action] = []
        self.finished = False

    @classmethod
    def init(cls, variant: Variant) -> "VariantExecution":
        """``init : V → S`` (Definition 2.6)."""
        return cls(variant)

    def step(self) -> Action:
        """Advance one transition of the task-local state machine.

        Returns the issued action; after :class:`End` has been returned the
        execution is finished and further stepping is an error.
        """
        if self.finished:
            raise RuntimeError(
                f"variant {self.variant.name!r} already issued end"
            )
        assert self._gen is not None
        try:
            action = next(self._gen)
        except StopIteration:
            action = END
        if not isinstance(action, (Spawn, Sync, Create, Destroy, End)):
            raise TypeError(
                f"variant {self.variant.name!r} yielded {action!r}, "
                "which is not an Action"
            )
        if isinstance(action, End):
            self.finished = True
            self._gen = None
        self.steps += 1
        self.actions.append(action)
        return action

    def __repr__(self) -> str:
        status = "finished" if self.finished else f"step {self.steps}"
        return f"VariantExecution({self.variant.name!r}, {status})"
