"""The planner's output: an initial layout plus task pins."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.regions.base import Region


@dataclass
class PlacementPlan:
    """An offline placement decision for one program on one cluster.

    ``layouts[name][p]`` is the region of data item ``name`` that process
    ``p`` should own *before the first task runs* (disjoint across
    processes by construction); ``pins[task_name]`` is the process a task
    of that name should be routed to.  Both are keyed by *name* rather
    than object identity so a plan computed from a statically-built
    program applies to the driver's separately-constructed instances.
    """

    label: str
    processes: int
    layouts: dict[str, list[Region]] = field(default_factory=dict)
    pins: dict[str, int] = field(default_factory=dict)
    stats: dict[str, float] = field(default_factory=dict)

    def layout_for(self, item_name: str, processes: int) -> list[Region] | None:
        """The item's planned layout, or ``None`` if the plan doesn't apply."""
        if processes != self.processes:
            return None
        return self.layouts.get(item_name)

    def summary(self) -> dict:
        """A JSON-friendly digest (used by the tournament benchmark)."""
        return {
            "label": self.label,
            "processes": self.processes,
            "items": {
                name: [int(region.size()) for region in regions]
                for name, regions in sorted(self.layouts.items())
            },
            "pins": len(self.pins),
            "stats": {key: self.stats[key] for key in sorted(self.stats)},
        }

    def __repr__(self) -> str:
        return (
            f"PlacementPlan({self.label!r}, processes={self.processes}, "
            f"items={len(self.layouts)}, pins={len(self.pins)})"
        )
